/// \file bench_ablation.cpp
/// \brief Ablations of the STP engine's design choices (DESIGN.md §3).
///
/// On a fixed NPN4 subset, measures the effect of
///   * fence pruning (Section III-A) vs the raw F_k family,
///   * shared-gate DAGs vs fanout-free trees,
///   * polarity normalization vs raw polarity search,
///   * factorization branch caps.
///
/// Expected shape: pruning and normalization are large wins; tree-only is
/// faster but can miss optima (reported as "size misses").

#include <iostream>

#include "synth/stp_synth.hpp"
#include "workload/collections.hpp"
#include "util/table_printer.hpp"

namespace {

struct config {
  const char* name;
  stpes::synth::stp_options options;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace stpes;
  double timeout = 5.0;
  std::size_t count = 12;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--timeout=", 0) == 0) {
      timeout = std::stod(arg.substr(10));
    } else if (arg.rfind("--count=", 0) == 0) {
      count = std::stoul(arg.substr(8));
    }
  }

  const auto classes = workload::npn4_classes();
  std::vector<tt::truth_table> functions;
  const double stride =
      static_cast<double>(classes.size()) / static_cast<double>(count);
  for (std::size_t i = 0; i < count; ++i) {
    functions.push_back(classes[static_cast<std::size_t>(i * stride)]);
  }

  std::vector<config> configs;
  configs.push_back({"default", {}});
  {
    stpes::synth::stp_options o;
    o.use_fence_pruning = false;
    configs.push_back({"no-fence-pruning", o});
  }
  {
    stpes::synth::stp_options o;
    o.allow_shared_gates = false;
    configs.push_back({"tree-only", o});
  }
  {
    stpes::synth::stp_options o;
    o.normalize_polarity = false;
    configs.push_back({"no-polarity-norm", o});
  }
  {
    stpes::synth::stp_options o;
    o.factor.max_branches_per_family = 4;
    configs.push_back({"branch-cap-4", o});
  }
  {
    stpes::synth::stp_options o;
    o.max_solutions = 1;
    configs.push_back({"first-solution", o});
  }

  std::cout << "== STP engine ablations (NPN4 subset, n=" << functions.size()
            << ", timeout=" << timeout << "s) ==\n";

  // Reference optimum sizes from the default configuration.
  std::vector<int> reference(functions.size(), -1);

  util::table_printer table;
  table.set_header({"config", "mean(s)", "#t/o", "avg#sol", "size misses"});
  for (const auto& cfg : configs) {
    double total = 0.0;
    std::size_t solved = 0;
    std::size_t timeouts = 0;
    double solutions = 0.0;
    int misses = 0;
    for (std::size_t i = 0; i < functions.size(); ++i) {
      synth::stp_engine engine{cfg.options};
      core::run_context ctx{timeout};
      synth::spec s;
      s.function = functions[i];
      s.ctx = &ctx;
      const auto r = engine.run(s);
      if (r.ok()) {
        ++solved;
        total += r.seconds;
        solutions += static_cast<double>(r.chains.size());
        if (reference[i] < 0) {
          reference[i] = static_cast<int>(r.optimum_gates);
        } else if (static_cast<int>(r.optimum_gates) != reference[i]) {
          ++misses;
        }
      } else {
        ++timeouts;
      }
    }
    table.add_row(
        {cfg.name,
         util::table_printer::fmt(solved ? total / solved : 0.0),
         std::to_string(timeouts),
         util::table_printer::fmt(solved ? solutions / solved : 0.0, 1),
         std::to_string(misses)});
  }
  table.print(std::cout);
  return 0;
}
