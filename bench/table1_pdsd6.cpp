/// \file table1_pdsd6.cpp
/// \brief Table I, PDSD6 row: partially-DSD 6-input functions
///        (paper: 1000 instances; default here: a seeded subset).

#include "table1_common.hpp"
#include "workload/collections.hpp"

int main(int argc, char** argv) {
  const auto options =
      stpes::bench::parse_options(argc, argv, /*default_count=*/10,
                                  /*default_timeout=*/5.0);
  const auto functions = stpes::workload::pdsd_functions(
      6, options.full ? 1000 : std::max<std::size_t>(options.count, 1),
      options.seed);
  return stpes::bench::run_table1("PDSD6", functions, options);
}
