/// \file table1_npn4.cpp
/// \brief Table I, NPN4 row: all 222 4-input NPN classes.

#include "table1_common.hpp"
#include "workload/collections.hpp"

int main(int argc, char** argv) {
  const auto options =
      stpes::bench::parse_options(argc, argv, /*default_count=*/30,
                                  /*default_timeout=*/3.0);
  return stpes::bench::run_table1("NPN4",
                                  stpes::workload::npn4_classes(), options);
}
