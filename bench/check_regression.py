#!/usr/bin/env python3
"""Compare a fresh table1 --json run against a committed BENCH_* baseline.

Usage:
    check_regression.py --baseline BENCH_table1_npn4.json --fresh fresh.json
                        [--runtime-tolerance 0.25]
    check_regression.py --baseline BENCH_table1_npn4.json --audit-baseline

Exit code 0 when the fresh run is acceptable, 1 otherwise.  The gate has
two parts, per engine present in both files:

  * correctness trajectory: `solved`, `timeouts`, and the gate counts
    (`total_gates`, `mean_gates`) must match the baseline exactly — any
    change in what gets synthesized, or how small, is a regression (or an
    improvement that must be re-baselined deliberately);
  * search-effort trajectory, gated when the baseline carries a
    `counters` object (pre-counter baselines skip this part).  The
    counters fall into three classes:

      - **exactly gated** — deterministic in the committed benchmark set
        alone: `fences_enumerated` (fence families are generated
        wholesale per gate count, so the sum over completely enumerated
        solves is fully determined by what was solved at which size) and
        the SAT-sweeping counters `sweep_*` (fixed simulation seed,
        deterministic refinement/proof schedule).  Any drift means the
        search behaviour changed.
      - **tolerance gated** (default +/-10%, `--counter-tolerance`) —
        the volume counters (`dags_generated`, `dags_pruned`,
        `factorization_attempts`), the memo-effectiveness counters
        (`factor_memo_hits`/`misses`), and the lower-bound-probe /
        portfolio counters (`probe_calls`, `probe_unsat_levels`,
        `probe_sat_levels`, `portfolio_probe_wins`,
        `portfolio_sweep_wins`), and the batched-factorization screen
        counters (`kernel_batch_queries`, `kernel_batch_screened`,
        `kernel_batch_survivors`).  The probe's conflict-budget cutoff is
        machine-independent, but under a wall-clock deadline or the
        portfolio race the losing side is cancelled at a
        timing-dependent point, so these totals wobble with machine
        load; a change beyond the tolerance means the probe/race (or
        screen) behaviour genuinely shifted.
      - **reported, never gated** — wall-clock-shaped totals (AllSAT
        propagations, SAT decisions/conflicts/restarts);
  * performance trajectory: `wall_seconds` may not regress by more than
    the tolerance (default +25%).  Getting faster never fails.

The instance count, timeout, and seed must match, otherwise the comparison
is meaningless and the script errors out.

`--audit-baseline` skips the comparison and instead checks the baseline
itself for schema drift: every engine entry carrying a `counters` object
must carry *all* counter keys the current binaries emit.  A missing key
means the committed BENCH_*.json predates a counter added since — stale
against the gated schema — and must be regenerated deliberately.
"""

import argparse
import json
import sys

# Counter keys gated exactly (deterministic in the committed benchmark
# set), with tolerance (volume / probe / race counters), and the full
# schema the current bench binaries emit (the --audit-baseline contract).
EXACT_COUNTERS = ("fences_enumerated", "sweep_sim_rounds",
                  "sweep_candidates", "sweep_proofs", "sweep_refutations",
                  "sweep_merged_nodes")
VOLUME_COUNTERS = ("dags_generated", "dags_pruned",
                   "factorization_attempts")
MEMO_COUNTERS = ("factor_memo_hits", "factor_memo_misses")
PROBE_COUNTERS = ("probe_calls", "probe_unsat_levels", "probe_sat_levels",
                  "portfolio_probe_wins", "portfolio_sweep_wins")
# Batched-factorization screen counters: the query volume tracks the memo
# miss volume (every miss enters the screen), and the screened/survivor
# split is the screen's selectivity.  Deadline cuts truncate a batch at a
# timing-dependent split, so these share the volume tolerance.
KERNEL_COUNTERS = ("kernel_batch_queries", "kernel_batch_screened",
                   "kernel_batch_survivors")
UNGATED_COUNTERS = ("factorization_prunes", "dont_care_expansions",
                    "allsat_propagations", "allsat_merges",
                    "sat_decisions", "sat_conflicts", "sat_restarts")
ALL_COUNTERS = (EXACT_COUNTERS + VOLUME_COUNTERS + MEMO_COUNTERS +
                PROBE_COUNTERS + KERNEL_COUNTERS + UNGATED_COUNTERS)


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def fail(msg):
    print(f"REGRESSION: {msg}")
    return 1


def audit_baseline(baseline, path):
    """Checks the committed baseline against the current counter schema."""
    errors = 0
    for eng in baseline.get("engines", []):
        counters = eng.get("counters")
        if counters is None:
            print(f"{path}: engine '{eng.get('engine')}' carries no "
                  "counters (pre-counter baseline) [SKIP]")
            continue
        missing = [k for k in ALL_COUNTERS if k not in counters]
        unknown = [k for k in counters if k not in ALL_COUNTERS]
        if missing:
            errors += fail(
                f"{path}: engine '{eng.get('engine')}' baseline is stale "
                f"against the gated counter schema, missing: "
                f"{', '.join(missing)} — regenerate the BENCH file")
        if unknown:
            errors += fail(
                f"{path}: engine '{eng.get('engine')}' baseline carries "
                f"counters this checker does not know: "
                f"{', '.join(unknown)} — update check_regression.py")
        if not missing and not unknown:
            print(f"{path}: engine '{eng.get('engine')}' counter schema "
                  "up to date [OK]")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh")
    parser.add_argument("--audit-baseline", action="store_true",
                        help="instead of comparing, check the baseline "
                             "file itself for counter-schema drift")
    parser.add_argument("--runtime-tolerance", type=float, default=0.25,
                        help="allowed fractional wall-clock regression")
    parser.add_argument("--counter-tolerance", type=float, default=0.10,
                        help="allowed fractional drift of the volume, "
                             "memo, and probe/portfolio search-effort "
                             "counters")
    args = parser.parse_args()

    baseline = load(args.baseline)
    if args.audit_baseline:
        errors = audit_baseline(baseline, args.baseline)
        if errors == 0:
            print("baseline schema audit passed")
        return 1 if errors else 0
    if args.fresh is None:
        parser.error("--fresh is required unless --audit-baseline is set")
    fresh = load(args.fresh)
    errors = 0

    # The runs must be the same experiment.
    for key in ("collection", "instances", "timeout_s", "seed"):
        if baseline.get(key) != fresh.get(key):
            print(f"ERROR: config mismatch on '{key}': baseline "
                  f"{baseline.get(key)!r} vs fresh {fresh.get(key)!r}")
            return 2

    if fresh.get("disagreements", 0) != 0:
        errors += fail(f"{fresh['disagreements']} engine disagreements "
                       "on optimum size")

    base_engines = {e["engine"]: e for e in baseline.get("engines", [])}
    fresh_engines = {e["engine"]: e for e in fresh.get("engines", [])}
    for name, base in base_engines.items():
        if name not in fresh_engines:
            errors += fail(f"engine '{name}' missing from fresh run")
            continue
        cur = fresh_engines[name]

        for key in ("solved", "timeouts", "total_gates", "mean_gates"):
            if base.get(key) != cur.get(key):
                errors += fail(f"{name}: {key} changed "
                               f"{base.get(key)} -> {cur.get(key)}")
        # Partial (budget-truncated but solved) counts are gated once the
        # baseline records them; older baselines predate the field.
        if "solved_partial" in base:
            if base["solved_partial"] != cur.get("solved_partial"):
                errors += fail(
                    f"{name}: solved_partial changed "
                    f"{base['solved_partial']} -> "
                    f"{cur.get('solved_partial')}")
        # Sweep-bench runs carry the merge count at the engine level; it
        # is part of the correctness trajectory (fewer merges = the sweep
        # stopped finding equivalences it used to prove).
        if "merged_nodes" in base:
            if base["merged_nodes"] != cur.get("merged_nodes"):
                errors += fail(
                    f"{name}: merged_nodes changed "
                    f"{base['merged_nodes']} -> {cur.get('merged_nodes')}")

        # Search-effort counters.  Only gated when the baseline carries
        # them, so pre-counter baselines keep working until deliberately
        # regenerated.
        base_counters = base.get("counters")
        cur_counters = cur.get("counters", {})
        if base_counters is not None:
            if (base_counters.get("fences_enumerated") !=
                    cur_counters.get("fences_enumerated")):
                errors += fail(
                    f"{name}: counter fences_enumerated changed "
                    f"{base_counters.get('fences_enumerated')} -> "
                    f"{cur_counters.get('fences_enumerated')}")
            for key in VOLUME_COUNTERS:
                base_val = base_counters.get(key)
                cur_val = cur_counters.get(key)
                if base_val is None or cur_val is None:
                    if base_val != cur_val:
                        errors += fail(f"{name}: counter {key} missing "
                                       f"({base_val} vs {cur_val})")
                    continue
                slack = base_val * args.counter_tolerance
                if abs(cur_val - base_val) > slack:
                    errors += fail(
                        f"{name}: counter {key} drifted beyond "
                        f"{100 * args.counter_tolerance:.0f}%: "
                        f"{base_val} -> {cur_val}")
            # Memo-effectiveness and probe/portfolio counters, gated only
            # once a baseline regenerated with the respective subsystem
            # carries them (older baselines simply skip this part).  A
            # memo-hit collapse means the cache keying broke; a probe
            # drift means levels stopped being refuted (or the portfolio
            # race flipped) — both show up here long before the
            # wall-clock gate trips on fast hardware.  The probe counters
            # share the tolerance because a deadline or the race cancels
            # the probe at a timing-dependent point.
            for key in MEMO_COUNTERS + PROBE_COUNTERS + KERNEL_COUNTERS:
                base_val = base_counters.get(key)
                cur_val = cur_counters.get(key)
                if base_val is None:
                    continue
                if cur_val is None:
                    errors += fail(f"{name}: counter {key} missing from "
                                   "fresh run")
                    continue
                slack = base_val * args.counter_tolerance
                if abs(cur_val - base_val) > slack:
                    errors += fail(
                        f"{name}: counter {key} drifted beyond "
                        f"{100 * args.counter_tolerance:.0f}%: "
                        f"{base_val} -> {cur_val}")
            # SAT-sweeping counters are gated *exactly*: the simulation
            # seed is fixed, the benchmark set is committed, and the
            # class-refinement / proof schedule is deterministic in both,
            # so any drift means the sweep's behaviour changed.  Gated
            # only once a baseline carries them (table1 baselines
            # predating the sweep subsystem skip this part).
            for key in EXACT_COUNTERS:
                if key == "fences_enumerated":
                    continue  # gated above, unconditionally
                base_val = base_counters.get(key)
                if base_val is None:
                    continue
                cur_val = cur_counters.get(key)
                if base_val != cur_val:
                    errors += fail(
                        f"{name}: counter {key} changed "
                        f"{base_val} -> {cur_val}")

        base_wall = float(base["wall_seconds"])
        cur_wall = float(cur["wall_seconds"])
        limit = base_wall * (1.0 + args.runtime_tolerance)
        status = "OK" if cur_wall <= limit else "FAIL"
        print(f"{name}: wall {cur_wall:.2f}s vs baseline {base_wall:.2f}s "
              f"(limit {limit:.2f}s) [{status}]")
        if cur_wall > limit:
            errors += fail(
                f"{name}: wall-clock regression beyond "
                f"{100 * args.runtime_tolerance:.0f}%")

    if errors == 0:
        print("bench regression check passed")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
