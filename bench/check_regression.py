#!/usr/bin/env python3
"""Compare a fresh table1 --json run against a committed BENCH_* baseline.

Usage:
    check_regression.py --baseline BENCH_table1_npn4.json --fresh fresh.json
                        [--runtime-tolerance 0.25]

Exit code 0 when the fresh run is acceptable, 1 otherwise.  The gate has
two parts, per engine present in both files:

  * correctness trajectory: `solved`, `timeouts`, and the gate counts
    (`total_gates`, `mean_gates`) must match the baseline exactly — any
    change in what gets synthesized, or how small, is a regression (or an
    improvement that must be re-baselined deliberately);
  * performance trajectory: `wall_seconds` may not regress by more than
    the tolerance (default +25%).  Getting faster never fails.

The instance count, timeout, and seed must match, otherwise the comparison
is meaningless and the script errors out.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def fail(msg):
    print(f"REGRESSION: {msg}")
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--runtime-tolerance", type=float, default=0.25,
                        help="allowed fractional wall-clock regression")
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)
    errors = 0

    # The runs must be the same experiment.
    for key in ("collection", "instances", "timeout_s", "seed"):
        if baseline.get(key) != fresh.get(key):
            print(f"ERROR: config mismatch on '{key}': baseline "
                  f"{baseline.get(key)!r} vs fresh {fresh.get(key)!r}")
            return 2

    if fresh.get("disagreements", 0) != 0:
        errors += fail(f"{fresh['disagreements']} engine disagreements "
                       "on optimum size")

    base_engines = {e["engine"]: e for e in baseline.get("engines", [])}
    fresh_engines = {e["engine"]: e for e in fresh.get("engines", [])}
    for name, base in base_engines.items():
        if name not in fresh_engines:
            errors += fail(f"engine '{name}' missing from fresh run")
            continue
        cur = fresh_engines[name]

        for key in ("solved", "timeouts", "total_gates", "mean_gates"):
            if base.get(key) != cur.get(key):
                errors += fail(f"{name}: {key} changed "
                               f"{base.get(key)} -> {cur.get(key)}")

        base_wall = float(base["wall_seconds"])
        cur_wall = float(cur["wall_seconds"])
        limit = base_wall * (1.0 + args.runtime_tolerance)
        status = "OK" if cur_wall <= limit else "FAIL"
        print(f"{name}: wall {cur_wall:.2f}s vs baseline {base_wall:.2f}s "
              f"(limit {limit:.2f}s) [{status}]")
        if cur_wall > limit:
            errors += fail(
                f"{name}: wall-clock regression beyond "
                f"{100 * args.runtime_tolerance:.0f}%")

    if errors == 0:
        print("bench regression check passed")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
