/// \file table1_pdsd8.cpp
/// \brief Table I, PDSD8 row: partially-DSD 8-input functions
///        (paper: 100 instances; default here: a seeded subset).

#include "table1_common.hpp"
#include "workload/collections.hpp"

int main(int argc, char** argv) {
  const auto options =
      stpes::bench::parse_options(argc, argv, /*default_count=*/5,
                                  /*default_timeout=*/8.0);
  const auto functions = stpes::workload::pdsd_functions(
      8, options.full ? 100 : std::max<std::size_t>(options.count, 1),
      options.seed);
  return stpes::bench::run_table1("PDSD8", functions, options);
}
