#!/usr/bin/env python3
"""Render the bench trend JSONL into a single static HTML dashboard.

Usage:
    render_trend.py --trend bench_trend.jsonl --out bench_dashboard.html
                    [--title "stpes bench trend"]

Pure-stdlib companion to append_trend.py: reads the rolling JSONL window
that CI accumulates per branch and emits one self-contained HTML file
(inline SVG, no JavaScript, no external assets) that the bench-guard job
publishes as an artifact.  Per (collection, engine) pair it renders

  * a summary table of the headline series — solve/partial/timeout
    counts, mean and wall-clock seconds — with the latest value and the
    p50 / p90 over the window, so "is this run typical?" is one glance;
  * a sparkline grid with one chart per numeric series the points carry
    (stage counters included).  Series are discovered from the data, not
    allowlisted, so new counters (the probe_* family, say) show up the
    first time a run exports them.

A perf cliff reads as a kink in the matching sparkline; a behaviour
change reads as a step in a counter series that the regression gate
tolerances may have absorbed point by point.
"""

import argparse
import html
import json
import os
import sys

# Headline series summarized with percentiles at the top of each section.
HEADLINE = ("solved", "solved_partial", "timeouts", "mean_seconds",
            "wall_seconds")

CHART_W = 220
CHART_H = 48
PAD = 4

STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 72em; color: #1a1a2e; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em;
     border-bottom: 1px solid #ccd; padding-bottom: .2em; }
table { border-collapse: collapse; margin: .8em 0; }
th, td { border: 1px solid #ccd; padding: .25em .6em; text-align: right;
         font-variant-numeric: tabular-nums; }
th { background: #eef; }
.grid { display: flex; flex-wrap: wrap; gap: .8em; }
.cell { border: 1px solid #dde; border-radius: 4px; padding: .4em .6em; }
.cell .k { font-size: .75em; color: #667; }
.cell .v { font-size: .9em; font-weight: 600; }
.muted { color: #667; font-size: .85em; }
svg polyline { fill: none; stroke: #3b5bdb; stroke-width: 1.5; }
svg .dot { fill: #e8590c; }
"""


def load_points(path):
    points = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                points.append(json.loads(line))
    return points


def percentile(values, q):
    """Nearest-rank percentile; `values` need not be sorted."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1,
                      round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


def fmt(value):
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def sparkline(values):
    """One inline-SVG polyline over `values`, latest point highlighted."""
    if len(values) < 2:
        return '<span class="muted">single point</span>'
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    inner_w = CHART_W - 2 * PAD
    inner_h = CHART_H - 2 * PAD
    coords = []
    for i, v in enumerate(values):
        x = PAD + inner_w * i / (len(values) - 1)
        y = PAD + inner_h * (1.0 - (v - lo) / span)
        coords.append(f"{x:.1f},{y:.1f}")
    last_x, last_y = coords[-1].split(",")
    return (f'<svg width="{CHART_W}" height="{CHART_H}" '
            f'viewBox="0 0 {CHART_W} {CHART_H}">'
            f'<polyline points="{" ".join(coords)}"/>'
            f'<circle class="dot" cx="{last_x}" cy="{last_y}" r="2.5"/>'
            '</svg>')


def series_of(entries):
    """Maps every numeric key carried by `entries` to its value series.

    A key missing from an early point (a counter that did not exist yet)
    contributes only from its first appearance, so new series start mid-
    window instead of being padded with fake zeros.
    """
    keys = []
    for entry in entries:
        for key, value in entry.items():
            if key == "engine" or not isinstance(value, (int, float)):
                continue
            if key not in keys:
                keys.append(key)
    return {k: [e[k] for e in entries if k in e] for k in sorted(keys)}


def render_section(collection, engine, points, entries, out):
    latest = points[-1]
    out.append(f"<h2>{html.escape(collection)} / "
               f"{html.escape(engine)}</h2>")
    out.append(f'<p class="muted">{len(entries)} run(s) in window &middot; '
               f'latest: instances={fmt(latest.get("instances"))}, '
               f'timeout={fmt(latest.get("timeout_s"))}s, '
               f'seed={fmt(latest.get("seed"))}, '
               f'threads={fmt(latest.get("threads"))}, '
               f'commit={html.escape(str(latest.get("commit", ""))[:12])}'
               '</p>')

    series = series_of(entries)

    out.append("<table><tr><th>series</th><th>latest</th><th>p50</th>"
               "<th>p90</th><th>min</th><th>max</th></tr>")
    for key in HEADLINE:
        values = series.get(key)
        if not values:
            continue
        out.append(f"<tr><td style='text-align:left'>{html.escape(key)}"
                   f"</td><td>{fmt(values[-1])}</td>"
                   f"<td>{fmt(percentile(values, 50))}</td>"
                   f"<td>{fmt(percentile(values, 90))}</td>"
                   f"<td>{fmt(min(values))}</td>"
                   f"<td>{fmt(max(values))}</td></tr>")
    out.append("</table>")

    out.append('<div class="grid">')
    for key, values in series.items():
        out.append('<div class="cell">'
                   f'<div class="k">{html.escape(key)}</div>'
                   f'<div class="v">{fmt(values[-1])}</div>'
                   f'{sparkline(values)}</div>')
    out.append("</div>")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trend", required=True,
                        help="JSONL trend file written by append_trend.py")
    parser.add_argument("--out", required=True,
                        help="HTML file to write")
    parser.add_argument("--title", default="stpes bench trend")
    args = parser.parse_args()

    points = load_points(args.trend) if os.path.exists(args.trend) else []

    # Group per (collection, engine): the trend file interleaves
    # collections (npn4, sweep, ...) run by run.
    groups = {}
    for point in points:
        for entry in point.get("engines", []):
            key = (point.get("collection", "?"), entry.get("engine", "?"))
            groups.setdefault(key, []).append((point, entry))

    out = ["<!DOCTYPE html><html><head><meta charset='utf-8'>",
           f"<title>{html.escape(args.title)}</title>",
           f"<style>{STYLE}</style></head><body>",
           f"<h1>{html.escape(args.title)}</h1>",
           f'<p class="muted">{len(points)} trend point(s), oldest first; '
           'the highlighted dot is the latest run.</p>']
    if not groups:
        out.append("<p>No trend points yet — the dashboard fills in as "
                   "bench-guard runs accumulate.</p>")
    for (collection, engine), pairs in sorted(groups.items()):
        render_section(collection, engine, [p for p, _ in pairs],
                       [e for _, e in pairs], out)
    out.append("</body></html>")

    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write("\n".join(out) + "\n")
    print(f"dashboard: {args.out} ({len(groups)} section(s), "
          f"{len(points)} point(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
