/// \file table1_fdsd8.cpp
/// \brief Table I, FDSD8 row: fully-DSD 8-input functions
///        (paper: 100 instances; default here: a seeded subset).

#include "table1_common.hpp"
#include "workload/collections.hpp"

int main(int argc, char** argv) {
  const auto options =
      stpes::bench::parse_options(argc, argv, /*default_count=*/8,
                                  /*default_timeout=*/8.0);
  const auto functions = stpes::workload::fdsd_functions(
      8, options.full ? 100 : std::max<std::size_t>(options.count, 1),
      options.seed);
  return stpes::bench::run_table1("FDSD8", functions, options);
}
