#include "table1_common.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "core/exact_synthesis.hpp"
#include "util/stopwatch.hpp"
#include "util/table_printer.hpp"

namespace stpes::bench {

namespace {

std::optional<std::string> flag_value(const std::string& arg,
                                      const std::string& name) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) == 0) {
    return arg.substr(prefix.size());
  }
  return std::nullopt;
}

}  // namespace

table1_options parse_options(int argc, char** argv,
                             std::size_t default_count,
                             double default_timeout) {
  table1_options options;
  options.count = default_count;
  options.timeout = default_timeout;
  if (const char* env = std::getenv("STP_BENCH_FULL");
      env != nullptr && std::string{env} == "1") {
    options.full = true;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      options.full = true;
    } else if (auto v = flag_value(arg, "count")) {
      options.count = std::stoul(*v);
    } else if (auto v = flag_value(arg, "timeout")) {
      options.timeout = std::stod(*v);
    } else if (auto v = flag_value(arg, "seed")) {
      options.seed = std::stoull(*v);
    } else if (auto v = flag_value(arg, "threads")) {
      options.threads = static_cast<unsigned>(std::stoul(*v));
    } else if (arg == "--json" && i + 1 < argc) {
      options.json_path = argv[++i];
    } else if (auto v = flag_value(arg, "json")) {
      options.json_path = *v;
    } else if (auto v = flag_value(arg, "engines")) {
      options.engines.clear();
      std::size_t start = 0;
      while (start <= v->size()) {
        const auto comma = v->find(',', start);
        options.engines.push_back(
            v->substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start));
        if (comma == std::string::npos) {
          break;
        }
        start = comma + 1;
      }
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--full] [--count=N] [--timeout=S] [--seed=S]"
                   " [--threads=N] [--engines=stp,bms,fen,cegar]"
                   " [--json PATH]\n";
      std::exit(2);
    }
  }
  if (options.full) {
    options.count = 0;
    options.timeout = 180.0;
  }
  return options;
}

int run_table1(const std::string& collection_name,
               const std::vector<tt::truth_table>& functions,
               const table1_options& options) {
  std::vector<std::vector<tt::truth_table>> instances;
  instances.reserve(functions.size());
  for (const auto& f : functions) {
    instances.push_back({f});
  }
  return run_table1(collection_name, instances, options);
}

int run_table1(const std::string& collection_name,
               const std::vector<std::vector<tt::truth_table>>& instances,
               const table1_options& options) {
  std::vector<std::vector<tt::truth_table>> selected;
  if (options.count == 0 || options.count >= instances.size()) {
    selected = instances;
  } else {
    // Deterministic spread across the collection (covers easy and hard).
    const double stride =
        static_cast<double>(instances.size()) /
        static_cast<double>(options.count);
    for (std::size_t i = 0; i < options.count; ++i) {
      selected.push_back(
          instances[static_cast<std::size_t>(i * stride)]);
    }
  }

  std::cout << "== Table I / " << collection_name << " ==  instances="
            << selected.size() << " timeout=" << options.timeout
            << "s seed=" << options.seed << " threads="
            << (options.threads == 0 ? 1u : options.threads) << "\n";

  util::table_printer table;
  table.set_header({"engine", "mean(s)", "#t/o", "#ok", "#part",
                    "mean/sol(s)", "avg#sol"});

  // optimum sizes per instance for cross-checking.
  std::vector<std::vector<unsigned>> optima(selected.size());
  int disagreements = 0;

  struct engine_stats {
    std::string name;
    std::size_t solved = 0;
    /// Solved with a budget-truncated chain enumeration
    /// (`result::enumeration_complete == false`): the optimum size is
    /// proven but the run spent the whole budget, so its seconds and
    /// effort counters are deadline-shaped noise.
    std::size_t solved_partial = 0;
    std::size_t timeouts = 0;
    double wall_seconds = 0.0;  ///< wall clock over the whole sweep
    /// Engine-reported time over *completely enumerated* solves only;
    /// a partial solve's time is identically the budget.
    double total_seconds = 0.0;
    std::size_t total_gates = 0;
    double total_solutions = 0.0;
    /// Per-stage effort summed over *completely enumerated* solved
    /// instances only: such a run's search is deterministic in the
    /// function, so these aggregates are machine-independent and
    /// regression-gateable (a timed-out or deadline-cut run's counters
    /// depend on where the wall clock cut it off).
    core::stage_counters counters;
  };
  std::vector<engine_stats> all_stats;

  for (const auto& engine_name : options.engines) {
    const auto which = core::engine_from_string(engine_name);
    util::stopwatch engine_timer;
    double total_seconds = 0.0;
    std::size_t solved = 0;
    std::size_t solved_partial = 0;
    std::size_t timeouts = 0;
    std::size_t total_gates = 0;
    double total_solutions = 0.0;
    double total_per_solution = 0.0;
    core::stage_counters counters;
    for (std::size_t i = 0; i < selected.size(); ++i) {
      core::run_context run_ctx{options.timeout};
      synth::spec spec;
      // A 1-element instance takes the historical single-output spec
      // path, keeping those rows bit-identical to the scalar overload.
      if (selected[i].size() == 1) {
        spec.function = selected[i].front();
      } else {
        spec.functions = selected[i];
      }
      spec.ctx = &run_ctx;
      spec.num_threads = options.threads;
      const auto r = core::exact_synthesis(spec, which);
      if (r.ok()) {
        ++solved;
        total_gates += r.optimum_gates;
        optima[i].push_back(r.optimum_gates);
        if (r.enumeration_complete) {
          total_seconds += r.seconds;
          total_solutions += static_cast<double>(r.chains.size());
          total_per_solution +=
              r.seconds / static_cast<double>(r.chains.size());
          counters += r.counters;
        } else {
          ++solved_partial;
        }
      } else {
        ++timeouts;
      }
    }
    const std::size_t complete = solved - solved_partial;
    all_stats.push_back(engine_stats{engine_name, solved, solved_partial,
                                     timeouts,
                                     engine_timer.elapsed_seconds(),
                                     total_seconds, total_gates,
                                     total_solutions, counters});
    const double mean =
        complete > 0 ? total_seconds / static_cast<double>(complete) : 0.0;
    std::vector<std::string> row{
        core::to_string(which), util::table_printer::fmt(mean),
        std::to_string(timeouts), std::to_string(solved),
        std::to_string(solved_partial)};
    if (which == core::engine::stp) {
      row.push_back(util::table_printer::fmt(
          complete > 0 ? total_per_solution / static_cast<double>(complete)
                       : 0.0));
      row.push_back(util::table_printer::fmt(
          complete > 0 ? total_solutions / static_cast<double>(complete)
                       : 0.0,
          1));
    } else {
      row.push_back("-");
      row.push_back("-");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  for (const auto& sizes : optima) {
    for (std::size_t j = 1; j < sizes.size(); ++j) {
      if (sizes[j] != sizes[0]) {
        ++disagreements;
      }
    }
  }
  if (disagreements > 0) {
    std::cout << "WARNING: " << disagreements
              << " optimum-size disagreements between engines!\n";
  }
  std::cout << "\n";

  if (!options.json_path.empty()) {
    std::ofstream json{options.json_path};
    if (!json) {
      std::cerr << "cannot write " << options.json_path << "\n";
      return disagreements + 1;
    }
    json << "{\"collection\":\"" << collection_name << "\""
         << ",\"instances\":" << selected.size()
         << ",\"timeout_s\":" << options.timeout
         << ",\"seed\":" << options.seed
         << ",\"threads\":" << (options.threads == 0 ? 1u : options.threads)
         << ",\"disagreements\":" << disagreements << ",\"engines\":[";
    for (std::size_t i = 0; i < all_stats.size(); ++i) {
      const auto& s = all_stats[i];
      const auto solved = static_cast<double>(s.solved);
      const auto complete =
          static_cast<double>(s.solved - s.solved_partial);
      if (i > 0) {
        json << ",";
      }
      // `mean_seconds` and `avg_solutions` average over the *completely
      // enumerated* solves only: a partial solve's time is identically
      // the budget and its solution count is deadline-shaped.
      json << "{\"engine\":\"" << s.name << "\""
           << ",\"solved\":" << s.solved
           << ",\"solved_partial\":" << s.solved_partial
           << ",\"timeouts\":" << s.timeouts
           << ",\"wall_seconds\":" << s.wall_seconds
           << ",\"mean_seconds\":"
           << (complete > 0 ? s.total_seconds / complete : 0.0)
           << ",\"total_gates\":" << s.total_gates
           << ",\"mean_gates\":"
           << (s.solved > 0 ? static_cast<double>(s.total_gates) / solved
                            : 0.0)
           << ",\"avg_solutions\":"
           << (complete > 0 ? s.total_solutions / complete : 0.0)
           << ",\"counters\":" << counters_json(s.counters) << "}";
    }
    json << "]}\n";
  }
  return disagreements;
}

std::string counters_json(const core::stage_counters& c) {
  std::ostringstream os;
  os << "{\"fences_enumerated\":" << c.fences_enumerated
     << ",\"dags_generated\":" << c.dags_generated
     << ",\"dags_pruned\":" << c.dags_pruned
     << ",\"factorization_attempts\":" << c.factorization_attempts
     << ",\"factorization_prunes\":" << c.factorization_prunes
     << ",\"dont_care_expansions\":" << c.dont_care_expansions
     << ",\"factor_memo_hits\":" << c.factor_memo_hits
     << ",\"factor_memo_misses\":" << c.factor_memo_misses
     << ",\"allsat_propagations\":" << c.allsat_propagations
     << ",\"allsat_merges\":" << c.allsat_merges
     << ",\"sat_decisions\":" << c.sat_decisions
     << ",\"sat_conflicts\":" << c.sat_conflicts
     << ",\"sat_restarts\":" << c.sat_restarts
     << ",\"sweep_sim_rounds\":" << c.sweep_sim_rounds
     << ",\"sweep_candidates\":" << c.sweep_candidates
     << ",\"sweep_proofs\":" << c.sweep_proofs
     << ",\"sweep_refutations\":" << c.sweep_refutations
     << ",\"sweep_merged_nodes\":" << c.sweep_merged_nodes
     << ",\"probe_calls\":" << c.probe_calls
     << ",\"probe_unsat_levels\":" << c.probe_unsat_levels
     << ",\"probe_sat_levels\":" << c.probe_sat_levels
     << ",\"portfolio_probe_wins\":" << c.portfolio_probe_wins
     << ",\"portfolio_sweep_wins\":" << c.portfolio_sweep_wins
     << ",\"kernel_batch_queries\":" << c.kernel_batch_queries
     << ",\"kernel_batch_screened\":" << c.kernel_batch_screened
     << ",\"kernel_batch_survivors\":" << c.kernel_batch_survivors << "}";
  return os.str();
}

}  // namespace stpes::bench
