/// \file table1_fdsd6.cpp
/// \brief Table I, FDSD6 row: fully-DSD 6-input functions
///        (paper: 1000 instances; default here: a seeded subset).

#include "table1_common.hpp"
#include "workload/collections.hpp"

int main(int argc, char** argv) {
  const auto options =
      stpes::bench::parse_options(argc, argv, /*default_count=*/40,
                                  /*default_timeout=*/3.0);
  const auto functions = stpes::workload::fdsd_functions(
      6, options.full ? 1000 : std::max<std::size_t>(options.count, 1),
      options.seed);
  return stpes::bench::run_table1("FDSD6", functions, options);
}
