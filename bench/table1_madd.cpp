/// \file table1_madd.cpp
/// \brief Multi-output row: small arithmetic blocks (adders and
///        comparators up to 4 inputs, 2-3 outputs each) synthesized as
///        one shared chain per instance.
///
/// The collection is tiny and fixed (no sampling), so the default run
/// covers every instance; `--count=N` still takes a deterministic
/// stride subset.  Gate counts are whole-chain sizes, which is exactly
/// what the joint-vs-separate sharing argument is about: the committed
/// baseline pins the shared-chain optima (e.g. the 5-gate full adder).

#include "table1_common.hpp"
#include "workload/collections.hpp"

int main(int argc, char** argv) {
  const auto options =
      stpes::bench::parse_options(argc, argv, /*default_count=*/0,
                                  /*default_timeout=*/5.0);
  std::vector<std::vector<stpes::tt::truth_table>> instances;
  for (auto& instance : stpes::workload::madd_collection()) {
    instances.push_back(std::move(instance.functions));
  }
  return stpes::bench::run_table1("MADD", instances, options);
}
