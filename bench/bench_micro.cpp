/// \file bench_micro.cpp
/// \brief google-benchmark microbenchmarks of the building blocks:
///        STP products, canonical forms, the circuit AllSAT solver, the
///        CDCL solver, NPN canonization, and DSD analysis.

#include <benchmark/benchmark.h>

#include "allsat/circuit_allsat.hpp"
#include "sat/solver.hpp"
#include "stp/expr.hpp"
#include "stp/logic_matrix.hpp"
#include "stp/stp_allsat.hpp"
#include "tt/dsd.hpp"
#include "tt/kernels/kernels.hpp"
#include "tt/npn.hpp"
#include "util/rng.hpp"
#include "workload/collections.hpp"

namespace {

using namespace stpes;

void BM_StpProduct(benchmark::State& state) {
  const auto m_c = stp::logic_matrix::binary_op(0x8).to_matrix();
  const auto m_n = stp::logic_matrix::negation().to_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m_c.stp(m_n).stp(m_n));
  }
}
BENCHMARK(BM_StpProduct);

void BM_KroneckerIdentity(benchmark::State& state) {
  const auto m = stp::logic_matrix::binary_op(0x6).to_matrix();
  const auto identity =
      stp::matrix::identity(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(identity.kronecker(m));
  }
}
BENCHMARK(BM_KroneckerIdentity)->Arg(4)->Arg(16)->Arg(64);

void BM_CanonicalForm(benchmark::State& state) {
  // The liar puzzle of Example 4.
  const auto a = stp::expr::var(2);
  const auto b = stp::expr::var(1);
  const auto c = stp::expr::var(0);
  const auto phi = stp::equiv(a, !b) & stp::equiv(b, !c) &
                   stp::equiv(c, (!a) & (!b));
  for (auto _ : state) {
    benchmark::DoNotOptimize(phi.canonical());
  }
}
BENCHMARK(BM_CanonicalForm);

void BM_StpAllSat(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  util::rng rng{7};
  tt::truth_table f{n};
  for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
    f.set_bit(t, rng.next_bool());
  }
  const auto m = stp::logic_matrix::from_truth_table(f);
  for (auto _ : state) {
    stp::stp_sat_solver solver{m};
    benchmark::DoNotOptimize(solver.solve_all());
  }
}
BENCHMARK(BM_StpAllSat)->Arg(4)->Arg(6)->Arg(8);

void BM_CircuitAllSat(benchmark::State& state) {
  chain::boolean_chain c{4};
  const auto x4 = c.add_step(0x8, 0, 1);
  const auto x5 = c.add_step(0x6, 2, 3);
  c.set_output(c.add_step(0xE, x4, x5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(allsat::solve_all(c));
  }
}
BENCHMARK(BM_CircuitAllSat);

void BM_CdclRandom3Sat(benchmark::State& state) {
  const auto num_vars = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    util::rng rng{42};
    sat::solver solver;
    std::vector<sat::var> vars;
    for (std::size_t i = 0; i < num_vars; ++i) {
      vars.push_back(solver.new_var());
    }
    for (std::size_t c = 0; c < num_vars * 4; ++c) {
      sat::clause_lits clause;
      for (int k = 0; k < 3; ++k) {
        clause.push_back(sat::lit{
            vars[rng.next_below(num_vars)], rng.next_bool()});
      }
      solver.add_clause(clause);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_CdclRandom3Sat)->Arg(30)->Arg(60);

void BM_NpnCanonize(benchmark::State& state) {
  util::rng rng{3};
  std::vector<tt::truth_table> functions;
  for (int i = 0; i < 16; ++i) {
    functions.emplace_back(4u, rng.next_u64() & 0xFFFF);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tt::exact_npn_canonize(functions[i++ % functions.size()]));
  }
}
BENCHMARK(BM_NpnCanonize);

void BM_DsdAnalysis(benchmark::State& state) {
  util::rng rng{11};
  const auto functions = workload::fdsd_functions(8, 8, 5);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tt::analyze_dsd(functions[i++ % functions.size()]));
  }
}
BENCHMARK(BM_DsdAnalysis);

// ---------------------------------------------------------------------------
// Kernel tier: each hot word primitive timed once through the scalar
// reference and once through the runtime-dispatched table, so the
// dispatched/scalar ratio is the headline number of the SIMD tier.  Under
// STPES_FORCE_SCALAR the "dispatched" rows honestly report the scalar
// tier.  Buffers fit comfortably in L1 — these measure compute, not
// memory.

const tt::kernels::kernel_ops& micro_ops(bool dispatched) {
  return dispatched
             ? tt::kernels::ops_for(tt::kernels::detect_best_tier())
             : tt::kernels::scalar_ops();
}

std::vector<std::uint64_t> micro_words(std::uint64_t seed, std::size_t n) {
  util::rng rng{seed};
  std::vector<std::uint64_t> out(n);
  for (auto& w : out) {
    w = rng.next_u64();
  }
  return out;
}

void BM_KernelVecAnd(benchmark::State& state, bool dispatched) {
  const auto& ops = micro_ops(dispatched);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = micro_words(1, n);
  const auto b = micro_words(2, n);
  std::vector<std::uint64_t> dst(n);
  for (auto _ : state) {
    ops.vec_and(dst.data(), a.data(), b.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 8);
}
BENCHMARK_CAPTURE(BM_KernelVecAnd, scalar, false)->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_KernelVecAnd, dispatched, true)->Arg(8)->Arg(64);

void BM_KernelNotMask(benchmark::State& state, bool dispatched) {
  const auto& ops = micro_ops(dispatched);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = micro_words(3, n);
  std::vector<std::uint64_t> dst(n);
  for (auto _ : state) {
    ops.vec_not_mask(dst.data(), a.data(), n, 0xffffffffull);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 8);
}
BENCHMARK_CAPTURE(BM_KernelNotMask, scalar, false)->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_KernelNotMask, dispatched, true)->Arg(8)->Arg(64);

void BM_KernelAnyAnd3(benchmark::State& state, bool dispatched) {
  const auto& ops = micro_ops(dispatched);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = micro_words(4, n);
  const auto b = micro_words(5, n);
  // All-zero third operand: no early exit, the whole buffer is scanned.
  const std::vector<std::uint64_t> c(n, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.any_and3(a.data(), b.data(), c.data(), n));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 24);
}
BENCHMARK_CAPTURE(BM_KernelAnyAnd3, scalar, false)->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_KernelAnyAnd3, dispatched, true)->Arg(8)->Arg(64);

void BM_KernelAccepts(benchmark::State& state, bool dispatched) {
  const auto& ops = micro_ops(dispatched);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto cand = micro_words(6, n);
  const auto care = micro_words(7, n);
  std::vector<std::uint64_t> on(n);  // on = cand & care: full accept scan
  for (std::size_t i = 0; i < n; ++i) {
    on[i] = cand[i] & care[i];
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops.accepts(cand.data(), care.data(), on.data(), n));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 24);
}
BENCHMARK_CAPTURE(BM_KernelAccepts, scalar, false)->Arg(8)->Arg(64);
BENCHMARK_CAPTURE(BM_KernelAccepts, dispatched, true)->Arg(8)->Arg(64);

void BM_KernelCofactorSplit(benchmark::State& state, bool dispatched) {
  const auto& ops = micro_ops(dispatched);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto src = micro_words(8, n);
  std::vector<std::uint64_t> lo(n);
  std::vector<std::uint64_t> hi(n);
  unsigned var = 0;
  for (auto _ : state) {
    ops.cofactor_split(src.data(), lo.data(), hi.data(), n, var);
    var = (var + 1) % 6;
    benchmark::DoNotOptimize(lo.data());
    benchmark::DoNotOptimize(hi.data());
  }
}
BENCHMARK_CAPTURE(BM_KernelCofactorSplit, scalar, false)->Arg(4)->Arg(16);
BENCHMARK_CAPTURE(BM_KernelCofactorSplit, dispatched, true)->Arg(4)->Arg(16);

void BM_KernelSmoothBatch(benchmark::State& state, bool dispatched) {
  const auto& ops = micro_ops(dispatched);
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const auto original = micro_words(9, lanes);
  std::vector<std::uint8_t> select(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    select[i] = (i & 3) != 0 ? 1 : 0;  // 75% selected, like a real batch
  }
  std::vector<std::uint64_t> work(lanes);
  unsigned var = 0;
  for (auto _ : state) {
    work = original;
    ops.smooth_var_w1_masked(work.data(), select.data(), lanes, var);
    var = (var + 1) % 6;
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lanes));
}
BENCHMARK_CAPTURE(BM_KernelSmoothBatch, scalar, false)->Arg(32)->Arg(1024);
BENCHMARK_CAPTURE(BM_KernelSmoothBatch, dispatched, true)->Arg(32)->Arg(1024);

void BM_KernelAnd3Batch(benchmark::State& state, bool dispatched) {
  const auto& ops = micro_ops(dispatched);
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const auto a = micro_words(10, lanes);
  const auto b = micro_words(11, lanes);
  auto c = micro_words(12, lanes);
  for (auto& w : c) {
    w &= w >> 32;  // mixed verdicts
  }
  std::vector<std::uint8_t> verdict(lanes);
  for (auto _ : state) {
    ops.and3_nonzero_w1(a.data(), b.data(), c.data(), lanes, verdict.data());
    benchmark::DoNotOptimize(verdict.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lanes));
}
BENCHMARK_CAPTURE(BM_KernelAnd3Batch, scalar, false)->Arg(32)->Arg(1024);
BENCHMARK_CAPTURE(BM_KernelAnd3Batch, dispatched, true)->Arg(32)->Arg(1024);

void BM_KernelReverseTable(benchmark::State& state, bool dispatched) {
  const auto& ops = micro_ops(dispatched);
  const auto num_vars = static_cast<unsigned>(state.range(0));
  const std::size_t n =
      num_vars < 6 ? 1 : (std::size_t{1} << (num_vars - 6));
  const auto src = micro_words(13, n);
  std::vector<std::uint64_t> dst(n);
  for (auto _ : state) {
    ops.reverse_table(dst.data(), src.data(), num_vars);
    benchmark::DoNotOptimize(dst.data());
  }
}
BENCHMARK_CAPTURE(BM_KernelReverseTable, scalar, false)->Arg(6)->Arg(10);
BENCHMARK_CAPTURE(BM_KernelReverseTable, dispatched, true)->Arg(6)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
