/// \file bench_micro.cpp
/// \brief google-benchmark microbenchmarks of the building blocks:
///        STP products, canonical forms, the circuit AllSAT solver, the
///        CDCL solver, NPN canonization, and DSD analysis.

#include <benchmark/benchmark.h>

#include "allsat/circuit_allsat.hpp"
#include "sat/solver.hpp"
#include "stp/expr.hpp"
#include "stp/logic_matrix.hpp"
#include "stp/stp_allsat.hpp"
#include "tt/dsd.hpp"
#include "tt/npn.hpp"
#include "util/rng.hpp"
#include "workload/collections.hpp"

namespace {

using namespace stpes;

void BM_StpProduct(benchmark::State& state) {
  const auto m_c = stp::logic_matrix::binary_op(0x8).to_matrix();
  const auto m_n = stp::logic_matrix::negation().to_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m_c.stp(m_n).stp(m_n));
  }
}
BENCHMARK(BM_StpProduct);

void BM_KroneckerIdentity(benchmark::State& state) {
  const auto m = stp::logic_matrix::binary_op(0x6).to_matrix();
  const auto identity =
      stp::matrix::identity(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(identity.kronecker(m));
  }
}
BENCHMARK(BM_KroneckerIdentity)->Arg(4)->Arg(16)->Arg(64);

void BM_CanonicalForm(benchmark::State& state) {
  // The liar puzzle of Example 4.
  const auto a = stp::expr::var(2);
  const auto b = stp::expr::var(1);
  const auto c = stp::expr::var(0);
  const auto phi = stp::equiv(a, !b) & stp::equiv(b, !c) &
                   stp::equiv(c, (!a) & (!b));
  for (auto _ : state) {
    benchmark::DoNotOptimize(phi.canonical());
  }
}
BENCHMARK(BM_CanonicalForm);

void BM_StpAllSat(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  util::rng rng{7};
  tt::truth_table f{n};
  for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
    f.set_bit(t, rng.next_bool());
  }
  const auto m = stp::logic_matrix::from_truth_table(f);
  for (auto _ : state) {
    stp::stp_sat_solver solver{m};
    benchmark::DoNotOptimize(solver.solve_all());
  }
}
BENCHMARK(BM_StpAllSat)->Arg(4)->Arg(6)->Arg(8);

void BM_CircuitAllSat(benchmark::State& state) {
  chain::boolean_chain c{4};
  const auto x4 = c.add_step(0x8, 0, 1);
  const auto x5 = c.add_step(0x6, 2, 3);
  c.set_output(c.add_step(0xE, x4, x5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(allsat::solve_all(c));
  }
}
BENCHMARK(BM_CircuitAllSat);

void BM_CdclRandom3Sat(benchmark::State& state) {
  const auto num_vars = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    util::rng rng{42};
    sat::solver solver;
    std::vector<sat::var> vars;
    for (std::size_t i = 0; i < num_vars; ++i) {
      vars.push_back(solver.new_var());
    }
    for (std::size_t c = 0; c < num_vars * 4; ++c) {
      sat::clause_lits clause;
      for (int k = 0; k < 3; ++k) {
        clause.push_back(sat::lit{
            vars[rng.next_below(num_vars)], rng.next_bool()});
      }
      solver.add_clause(clause);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_CdclRandom3Sat)->Arg(30)->Arg(60);

void BM_NpnCanonize(benchmark::State& state) {
  util::rng rng{3};
  std::vector<tt::truth_table> functions;
  for (int i = 0; i < 16; ++i) {
    functions.emplace_back(4u, rng.next_u64() & 0xFFFF);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tt::exact_npn_canonize(functions[i++ % functions.size()]));
  }
}
BENCHMARK(BM_NpnCanonize);

void BM_DsdAnalysis(benchmark::State& state) {
  util::rng rng{11};
  const auto functions = workload::fdsd_functions(8, 8, 5);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tt::analyze_dsd(functions[i++ % functions.size()]));
  }
}
BENCHMARK(BM_DsdAnalysis);

}  // namespace

BENCHMARK_MAIN();
