/// \file bench_fence.cpp
/// \brief Figures 2 and 3: fence families and valid DAG counts.
///
/// Prints, per gate count k, the unpruned fence family size |F_k|, the
/// pruned family size (Fig. 2(b) rules), and the number of valid DAG
/// topologies with connectivity information (Fig. 3), with and without
/// shared gates.  For k = 3 the pruned family is {(1,1,1), (2,1)} and the
/// DAG count is 3, matching the figures.

#include <iostream>

#include "fence/dag.hpp"
#include "fence/fence.hpp"
#include "util/stopwatch.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace stpes;
  std::cout << "== Fig. 2 / Fig. 3: fences and DAG topology families ==\n";
  util::table_printer table;
  table.set_header({"k", "|F_k|", "pruned", "DAGs", "tree DAGs",
                    "gen time(s)"});
  for (unsigned k = 1; k <= 8; ++k) {
    util::stopwatch watch;
    const auto all = fence::all_fences(k);
    const auto pruned = fence::pruned_fences(k);
    const auto dags = fence::generate_dags_for_size(k);
    fence::dag_options tree_options;
    tree_options.allow_shared_gates = false;
    const auto trees = fence::generate_dags_for_size(k, tree_options);
    table.add_row({std::to_string(k), std::to_string(all.size()),
                   std::to_string(pruned.size()), std::to_string(dags.size()),
                   std::to_string(trees.size()),
                   util::table_printer::fmt(watch.elapsed_seconds())});
  }
  table.print(std::cout);

  std::cout << "\npruned F_3 fences (Fig. 2b): ";
  for (const auto& f : stpes::fence::pruned_fences(3)) {
    std::cout << f.to_string() << ' ';
  }
  std::cout << "\n";
  return 0;
}
