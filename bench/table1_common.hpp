/// \file table1_common.hpp
/// \brief Shared harness for the Table-I reproduction binaries.
///
/// Each `table1_*` binary runs the four engines (BMS, FEN, CEGAR-as-ABC,
/// STP) over one function collection and prints a row set in the paper's
/// layout: mean solving time over solved instances, number of timeouts,
/// number solved, and — for STP — the per-solution mean and the average
/// number of optimum chains.
///
/// Defaults are sized for a laptop CI run (a subset of instances, a few
/// seconds of budget each).  `--full` (or env STP_BENCH_FULL=1) switches to
/// paper-scale settings: the whole collection with a 180 s timeout.
/// Other flags: --count=N, --timeout=SECONDS, --engines=stp,bms,fen,cegar,
/// --seed=S, --threads=N (STP DAG-sweep workers).

#pragma once

#include <string>
#include <vector>

#include "tt/truth_table.hpp"
#include "util/run_context.hpp"

namespace stpes::bench {

struct table1_options {
  std::size_t count = 0;       ///< instances to run (0 = collection size)
  double timeout = 3.0;        ///< per-instance budget in seconds
  bool full = false;           ///< paper-scale run
  std::uint64_t seed = 1;      ///< generator seed (printed for provenance)
  /// Worker threads for the STP engine's intra-instance DAG sweep
  /// (`--threads=N`; 0 keeps the engine default of 1).  The solution set
  /// and the deterministic counters are thread-count independent, so the
  /// flag only moves wall clock.
  unsigned threads = 0;
  std::vector<std::string> engines{"bms", "fen", "cegar", "stp"};
  /// When non-empty, per-collection wall-clock and gate-count stats are
  /// also written to this path as one JSON object (`--json <path>` or
  /// `--json=<path>`), seeding the BENCH_*.json perf trajectory.
  std::string json_path;
};

/// Parses the common CLI flags (exits with a message on bad input).
table1_options parse_options(int argc, char** argv,
                             std::size_t default_count,
                             double default_timeout);

/// Runs the comparison and prints the paper-style rows.  Returns the
/// number of engine/instance pairs that disagreed on the optimum size
/// (0 in a healthy run; cross-checked over instances solved by all).
int run_table1(const std::string& collection_name,
               const std::vector<tt::truth_table>& functions,
               const table1_options& options);

/// Multi-output variant: each instance is one output list synthesized as
/// a single shared chain.  Single-output instances take the exact
/// single-output spec path, so a collection of 1-element lists is
/// bit-identical to the overload above.  Emits the same table layout and
/// BENCH_*.json schema (gates are whole-chain gate counts).
int run_table1(const std::string& collection_name,
               const std::vector<std::vector<tt::truth_table>>& instances,
               const table1_options& options);

/// Renders a full `stage_counters` object as the `"counters"` JSON value
/// shared by every BENCH_*.json emitter (table1 rows and the sweep bench),
/// so the regression gate and the trend exporter see one key set.
std::string counters_json(const core::stage_counters& counters);

}  // namespace stpes::bench
