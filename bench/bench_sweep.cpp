/// \file bench_sweep.cpp
/// \brief SAT-sweeping benchmark over the vendored AIGER circuits.
///
/// Runs `sweep::sweep` with each prover (CDCL cones and the paper's
/// circuit AllSAT) over every benchmark listed in the
/// `tests/data/aig/MANIFEST`, equivalence-checks every swept network
/// against its original with the AllSAT miter path, and emits the same
/// gated JSON shape as the table1 binaries:
///
///   * `solved` / `timeouts` — completed vs. deadline-cut sweeps,
///   * `total_gates` / `mean_gates` — AND counts *after* sweeping (the
///     deterministic quality trajectory),
///   * `disagreements` — equivalence-check failures (0 in a healthy run),
///   * `counters` — the full stage-counter set; the `sweep_*` members are
///     deterministic for a fixed seed and benchmark set.
///
/// Flags: --timeout=S --seed=S --engines=cdcl,allsat --json PATH
///        --data DIR (defaults to the source-tree benchmark directory).

#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "aig/aiger_io.hpp"
#include "sweep/sweep.hpp"
#include "table1_common.hpp"
#include "util/run_context.hpp"
#include "util/stopwatch.hpp"

#ifndef STPES_SWEEP_BENCH_DATA_DIR
#define STPES_SWEEP_BENCH_DATA_DIR "tests/data/aig"
#endif

namespace {

struct sweep_bench_options {
  double timeout = 10.0;  ///< per-benchmark budget in seconds
  std::uint64_t seed = 1;
  std::vector<std::string> engines{"cdcl", "allsat"};
  std::string json_path;
  std::string data_dir = STPES_SWEEP_BENCH_DATA_DIR;
};

std::optional<std::string> flag_value(const std::string& arg,
                                      const std::string& name) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) == 0) {
    return arg.substr(prefix.size());
  }
  return std::nullopt;
}

sweep_bench_options parse_options(int argc, char** argv) {
  sweep_bench_options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (auto v = flag_value(arg, "timeout")) {
      options.timeout = std::stod(*v);
    } else if (auto v = flag_value(arg, "seed")) {
      options.seed = std::stoull(*v);
    } else if (arg == "--json" && i + 1 < argc) {
      options.json_path = argv[++i];
    } else if (auto v = flag_value(arg, "json")) {
      options.json_path = *v;
    } else if (arg == "--data" && i + 1 < argc) {
      options.data_dir = argv[++i];
    } else if (auto v = flag_value(arg, "data")) {
      options.data_dir = *v;
    } else if (auto v = flag_value(arg, "engines")) {
      options.engines.clear();
      std::size_t start = 0;
      while (start <= v->size()) {
        const auto comma = v->find(',', start);
        options.engines.push_back(v->substr(
            start,
            comma == std::string::npos ? std::string::npos : comma - start));
        if (comma == std::string::npos) {
          break;
        }
        start = comma + 1;
      }
    } else {
      std::cerr << "usage: bench_sweep [--timeout=S] [--seed=S]"
                   " [--engines=cdcl,allsat] [--json PATH] [--data DIR]\n";
      std::exit(2);
    }
  }
  return options;
}

/// Benchmark names from the MANIFEST, in file order (deterministic across
/// platforms, unlike directory iteration).
std::vector<std::string> manifest_names(const std::string& data_dir) {
  const auto path = std::filesystem::path{data_dir} / "MANIFEST";
  std::ifstream in{path};
  if (!in) {
    std::cerr << "cannot read " << path.string() << "\n";
    std::exit(2);
  }
  std::vector<std::string> names;
  std::string crc;
  std::size_t bytes = 0;
  std::string name;
  while (in >> crc >> bytes >> name) {
    names.push_back(name);
  }
  return names;
}

struct engine_stats {
  std::string name;
  std::size_t solved = 0;
  std::size_t timeouts = 0;
  std::uint64_t total_gates = 0;  ///< AND nodes after sweeping
  std::uint64_t merged_nodes = 0;
  double total_seconds = 0.0;
  double wall_seconds = 0.0;
  stpes::core::stage_counters counters;
};

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse_options(argc, argv);
  const auto names = manifest_names(options.data_dir);

  std::size_t disagreements = 0;
  std::vector<engine_stats> all_stats;
  for (const auto& engine_name : options.engines) {
    stpes::sweep::prover engine{};
    try {
      engine = stpes::sweep::prover_from_string(engine_name);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
    engine_stats stats;
    stats.name = engine_name;
    const stpes::util::stopwatch wall;
    std::cout << "engine " << engine_name << "\n";
    for (const auto& name : names) {
      const auto path = std::filesystem::path{options.data_dir} / name;
      stpes::aig::aig_network network;
      try {
        network = stpes::aig::read_aiger_file(path.string());
      } catch (const std::exception& e) {
        std::cerr << "cannot load " << path.string() << ": " << e.what()
                  << "\n";
        return 2;
      }
      stpes::core::run_context ctx{options.timeout};
      stpes::sweep::sweep_options sweep_opts;
      sweep_opts.seed = options.seed;
      sweep_opts.engine = engine;
      const auto result = stpes::sweep::sweep(network, sweep_opts, &ctx);
      stats.counters += result.counters;
      if (result.completed) {
        ++stats.solved;
        stats.total_seconds += result.seconds;
      } else {
        ++stats.timeouts;
      }
      stats.total_gates += result.ands_after;
      stats.merged_nodes += result.merged_nodes;
      const bool equivalent =
          stpes::sweep::networks_equivalent(network, result.swept);
      if (!equivalent) {
        ++disagreements;
      }
      std::cout << "  " << name << ": " << result.ands_before << " -> "
                << result.ands_after << " ands, " << result.merged_nodes
                << " merged, " << result.proofs << " proofs, "
                << result.refutations << " refutations, "
                << result.sim_rounds << " sim rounds"
                << (result.completed ? "" : " [timeout]")
                << (equivalent ? "" : " [NOT EQUIVALENT]") << "\n";
    }
    stats.wall_seconds = wall.elapsed_seconds();
    all_stats.push_back(stats);
  }
  if (disagreements > 0) {
    std::cout << "WARNING: " << disagreements
              << " swept networks failed the equivalence check!\n";
  }

  if (!options.json_path.empty()) {
    std::ofstream json{options.json_path};
    if (!json) {
      std::cerr << "cannot write " << options.json_path << "\n";
      return static_cast<int>(disagreements) + 1;
    }
    json << "{\"collection\":\"sweep_aiger\""
         << ",\"instances\":" << names.size()
         << ",\"timeout_s\":" << options.timeout
         << ",\"seed\":" << options.seed << ",\"threads\":1"
         << ",\"disagreements\":" << disagreements << ",\"engines\":[";
    for (std::size_t i = 0; i < all_stats.size(); ++i) {
      const auto& s = all_stats[i];
      if (i > 0) {
        json << ",";
      }
      json << "{\"engine\":\"" << s.name << "\""
           << ",\"solved\":" << s.solved << ",\"solved_partial\":0"
           << ",\"timeouts\":" << s.timeouts
           << ",\"wall_seconds\":" << s.wall_seconds << ",\"mean_seconds\":"
           << (s.solved > 0 ? s.total_seconds /
                                  static_cast<double>(s.solved)
                            : 0.0)
           << ",\"total_gates\":" << s.total_gates << ",\"mean_gates\":"
           << (names.empty() ? 0.0
                             : static_cast<double>(s.total_gates) /
                                   static_cast<double>(names.size()))
           << ",\"merged_nodes\":" << s.merged_nodes
           << ",\"counters\":" << stpes::bench::counters_json(s.counters)
           << "}";
    }
    json << "]}\n";
  }
  return static_cast<int>(disagreements);
}
