#!/usr/bin/env python3
"""Append one table1 --json run to an accumulating trend file (JSONL).

Usage:
    append_trend.py --run fresh.json --trend bench_trend.jsonl
                    [--commit SHA] [--max-lines 500] [--micro]

With --micro, --run is a google-benchmark JSON file (bench_micro
--benchmark_format=json) instead of a table1 run: each benchmark's
real_time lands as one series named after the benchmark
("BM_KernelVecAnd/dispatched/64", ...), under the synthetic
collection/engine pair "micro"/"micro" so the render_trend.py dashboard
gives every kernel case its own sparkline next to the table1 sections.

Each invocation appends exactly one line: a compact JSON object with the
run's configuration, its per-engine solve/timeout/wall-clock numbers, and
every stage counter the run carries (memo effectiveness, SAT effort, the
sweep_* series, ...).  CI keeps the
trend file in an `actions/cache` slot keyed per branch, so every push
extends the same file and the artifact that gets uploaded is the whole
history, not one point — a perf cliff shows up as a kink in a series
instead of a single red build that someone re-runs until it is green.

The file is bounded: once it exceeds --max-lines the oldest lines are
dropped (the committed BENCH_*.json baselines are the durable record;
the trend is a rolling window for plotting).
"""

import argparse
import json
import os
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--run", required=True,
                        help="fresh table1 --json output to record")
    parser.add_argument("--trend", required=True,
                        help="JSONL trend file to append to (created if "
                             "missing)")
    parser.add_argument("--commit", default=os.environ.get("GITHUB_SHA", ""),
                        help="commit identifier for this point (defaults "
                             "to $GITHUB_SHA)")
    parser.add_argument("--max-lines", type=int, default=500,
                        help="rolling-window bound; oldest points beyond "
                             "it are dropped")
    parser.add_argument("--micro", action="store_true",
                        help="treat --run as google-benchmark JSON "
                             "(bench_micro) instead of a table1 run")
    args = parser.parse_args()

    with open(args.run, "r", encoding="utf-8") as fh:
        run = json.load(fh)

    if args.micro:
        point = micro_point(run, args.commit)
        append_point(point, args)
        return 0

    point = {
        "commit": args.commit,
        "collection": run.get("collection"),
        "instances": run.get("instances"),
        "timeout_s": run.get("timeout_s"),
        "seed": run.get("seed"),
        "threads": run.get("threads"),
        "disagreements": run.get("disagreements"),
        "engines": [],
    }
    for engine in run.get("engines", []):
        entry = {
            "engine": engine.get("engine"),
            "solved": engine.get("solved"),
            "solved_partial": engine.get("solved_partial"),
            "timeouts": engine.get("timeouts"),
            "mean_seconds": engine.get("mean_seconds"),
            "wall_seconds": engine.get("wall_seconds"),
        }
        # Every stage counter the run carries is exported: the counter set
        # grows with the engine (the sweep_* members arrived with the
        # SAT-sweeping subsystem) and the trend plotter filters by key, so
        # a hand-maintained allowlist here just loses new series.
        for key, value in sorted(engine.get("counters", {}).items()):
            entry[key] = value
        point["engines"].append(entry)

    append_point(point, args)
    return 0


def micro_point(run, commit):
    """One trend point from a google-benchmark JSON document.

    Aggregate rows (mean/median/stddev of --benchmark_repetitions) are
    skipped — the raw per-case real_time is the series.
    """
    entry = {"engine": "micro"}
    benchmarks = run.get("benchmarks", [])
    for bench in benchmarks:
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        value = bench.get("real_time")
        if name and isinstance(value, (int, float)):
            entry[name] = value
    return {
        "commit": commit,
        "collection": "micro",
        "instances": len(entry) - 1,
        "time_unit": (benchmarks[0].get("time_unit", "ns")
                      if benchmarks else "ns"),
        "engines": [entry],
    }


def append_point(point, args):
    lines = []
    if os.path.exists(args.trend):
        with open(args.trend, "r", encoding="utf-8") as fh:
            lines = [ln for ln in fh.read().splitlines() if ln.strip()]
    lines.append(json.dumps(point, separators=(",", ":"), sort_keys=True))
    if args.max_lines > 0:
        lines = lines[-args.max_lines:]

    with open(args.trend, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")

    print(f"trend: {args.trend} now holds {len(lines)} point(s)")


if __name__ == "__main__":
    sys.exit(main())
