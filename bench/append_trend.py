#!/usr/bin/env python3
"""Append one table1 --json run to an accumulating trend file (JSONL).

Usage:
    append_trend.py --run fresh.json --trend bench_trend.jsonl
                    [--commit SHA] [--max-lines 500]

Each invocation appends exactly one line: a compact JSON object with the
run's configuration, its per-engine solve/timeout/wall-clock numbers, and
every stage counter the run carries (memo effectiveness, SAT effort, the
sweep_* series, ...).  CI keeps the
trend file in an `actions/cache` slot keyed per branch, so every push
extends the same file and the artifact that gets uploaded is the whole
history, not one point — a perf cliff shows up as a kink in a series
instead of a single red build that someone re-runs until it is green.

The file is bounded: once it exceeds --max-lines the oldest lines are
dropped (the committed BENCH_*.json baselines are the durable record;
the trend is a rolling window for plotting).
"""

import argparse
import json
import os
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--run", required=True,
                        help="fresh table1 --json output to record")
    parser.add_argument("--trend", required=True,
                        help="JSONL trend file to append to (created if "
                             "missing)")
    parser.add_argument("--commit", default=os.environ.get("GITHUB_SHA", ""),
                        help="commit identifier for this point (defaults "
                             "to $GITHUB_SHA)")
    parser.add_argument("--max-lines", type=int, default=500,
                        help="rolling-window bound; oldest points beyond "
                             "it are dropped")
    args = parser.parse_args()

    with open(args.run, "r", encoding="utf-8") as fh:
        run = json.load(fh)

    point = {
        "commit": args.commit,
        "collection": run.get("collection"),
        "instances": run.get("instances"),
        "timeout_s": run.get("timeout_s"),
        "seed": run.get("seed"),
        "threads": run.get("threads"),
        "disagreements": run.get("disagreements"),
        "engines": [],
    }
    for engine in run.get("engines", []):
        entry = {
            "engine": engine.get("engine"),
            "solved": engine.get("solved"),
            "solved_partial": engine.get("solved_partial"),
            "timeouts": engine.get("timeouts"),
            "mean_seconds": engine.get("mean_seconds"),
            "wall_seconds": engine.get("wall_seconds"),
        }
        # Every stage counter the run carries is exported: the counter set
        # grows with the engine (the sweep_* members arrived with the
        # SAT-sweeping subsystem) and the trend plotter filters by key, so
        # a hand-maintained allowlist here just loses new series.
        for key, value in sorted(engine.get("counters", {}).items()):
            entry[key] = value
        point["engines"].append(entry)

    lines = []
    if os.path.exists(args.trend):
        with open(args.trend, "r", encoding="utf-8") as fh:
            lines = [ln for ln in fh.read().splitlines() if ln.strip()]
    lines.append(json.dumps(point, separators=(",", ":"), sort_keys=True))
    if args.max_lines > 0:
        lines = lines[-args.max_lines:]

    with open(args.trend, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")

    print(f"trend: {args.trend} now holds {len(lines)} point(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
