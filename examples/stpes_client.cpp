/// \file stpes_client.cpp
/// \brief Command-line client for a running stpes-serve daemon.
///
///     stpes-client --socket=/tmp/stpes.sock synth stp 4 0x8ff8 [timeout]
///     stpes-client --connect=127.0.0.1:9100 synth stp 3 96,e8 [timeout]
///     stpes-client --socket=/tmp/stpes.sock batch < functions.txt
///     stpes-client --connect=host:port stats [json]
///     stpes-client --socket=/tmp/stpes.sock save /tmp/cache.txt
///     stpes-client --socket=/tmp/stpes.sock load /tmp/cache.txt
///     stpes-client --socket=/tmp/stpes.sock ping | shutdown
///
/// `--socket=PATH` dials a Unix socket; `--connect=SPEC` accepts any
/// endpoint form (`host:port`, `unix:/path`, or a bare path) and is how a
/// TCP daemon or a `stpes-route` front is reached.  `batch` reads
/// `<engine> <n> <hex> [timeout]` lines from stdin.  A comma-separated
/// hex list (`96,e8`) asks for one shared multi-output chain.  The exit
/// code is 0 on an OK reply, 1 on ERR (including `ERR timeout`), and 2 on
/// usage or connection problems.

#include <unistd.h>

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "server/client.hpp"
#include "server/fd_stream.hpp"
#include "server/resilient_client.hpp"

namespace {

[[noreturn]] void usage() {
  std::cerr
      << "usage: stpes-client --socket=PATH | --connect=SPEC <command>\n"
         "  SPEC: host:port, unix:/path, or /path\n"
         "  synth <engine> <n> <hex>[,<hex>...] [timeout]   one request\n"
         "  batch                                requests from stdin\n"
         "  stats [json]                         daemon counters\n"
         "  save <path> | load <path>            cache persistence\n"
         "  ping | shutdown\n";
  std::exit(2);
}

/// An endpoint-agnostic connection owning the fd, the stream, and the
/// protocol client.
struct connection_holder {
  explicit connection_holder(const stpes::server::endpoint& ep)
      : fd(stpes::server::connect_endpoint(ep, 5000)),
        io(fd),
        client(io, io) {}
  ~connection_holder() { ::close(fd); }
  connection_holder(const connection_holder&) = delete;
  connection_holder& operator=(const connection_holder&) = delete;

  int fd;
  stpes::server::fd_iostream io;
  stpes::server::line_client client;
};

/// Splits a `<hex>[,<hex>...]` payload into per-output truth tables.
std::vector<stpes::tt::truth_table> parse_targets(unsigned num_vars,
                                                  const std::string& list) {
  std::vector<stpes::tt::truth_table> targets;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const auto comma = list.find(',', begin);
    const auto piece = list.substr(
        begin,
        comma == std::string::npos ? std::string::npos : comma - begin);
    targets.push_back(stpes::tt::truth_table::from_hex(num_vars, piece));
    if (comma == std::string::npos) {
      break;
    }
    begin = comma + 1;
  }
  return targets;
}

int print_reply(const stpes::server::line_client::synth_reply& r) {
  if (!r.ok) {
    std::cout << "ERR " << r.error << "\n";
    return 1;
  }
  std::cout << stpes::synth::to_string(r.outcome) << " gates=" << r.gates
            << " chains=" << r.chains.size() << " seconds=" << r.seconds
            << "\n";
  for (const auto& c : r.chains) {
    std::cout << stpes::service::serialize_chain(c) << "\n";
  }
  return r.outcome == stpes::synth::status::success ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stpes;

  std::optional<server::endpoint> target;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      server::endpoint ep;
      ep.host_or_path = arg.substr(9);
      target = ep;
    } else if (arg.rfind("--connect=", 0) == 0) {
      try {
        target = server::endpoint::parse(arg.substr(10));
      } catch (const std::exception& e) {
        std::cerr << "stpes-client: " << e.what() << "\n";
        usage();
      }
    } else {
      args.push_back(arg);
    }
  }
  if (!target.has_value() || target->host_or_path.empty() || args.empty()) {
    usage();
  }

  try {
    connection_holder connection{*target};
    auto& client = connection.client;
    const std::string& command = args[0];

    if (command == "synth" && (args.size() == 4 || args.size() == 5)) {
      const auto engine = core::engine_from_string(args[1]);
      const auto num_vars = static_cast<unsigned>(std::stoul(args[2]));
      const auto targets = parse_targets(num_vars, args[3]);
      std::optional<double> timeout;
      if (args.size() == 5) {
        timeout = std::stod(args[4]);
      }
      return print_reply(targets.size() == 1
                             ? client.synth(engine, targets.front(), timeout)
                             : client.synth(engine, targets, timeout));
    }
    if (command == "batch" && args.size() == 1) {
      std::vector<std::pair<core::engine, tt::truth_table>> requests;
      std::string engine_name;
      unsigned num_vars = 0;
      std::string hex;
      while (std::cin >> engine_name >> num_vars >> hex) {
        requests.emplace_back(core::engine_from_string(engine_name),
                              tt::truth_table::from_hex(num_vars, hex));
      }
      int exit_code = 0;
      const auto replies = client.batch(requests);
      for (std::size_t i = 0; i < replies.size(); ++i) {
        std::cout << "# request " << i << "\n";
        exit_code |= print_reply(replies[i]);
      }
      return exit_code;
    }
    if (command == "stats" && args.size() <= 2) {
      if (args.size() == 2 && args[1] == "json") {
        std::cout << client.stats_json() << "\n";
      } else {
        for (const auto& line : client.stats_text()) {
          std::cout << line << "\n";
        }
      }
      return 0;
    }
    if (command == "save" && args.size() == 2) {
      std::cout << "saved " << client.save(args[1]) << " entries\n";
      return 0;
    }
    if (command == "load" && args.size() == 2) {
      const auto [loaded, skipped] = client.load(args[1]);
      std::cout << "loaded " << loaded << " entries, skipped " << skipped
                << "\n";
      return 0;
    }
    if (command == "ping" && args.size() == 1) {
      std::cout << (client.ping() ? "pong" : "no reply") << "\n";
      return 0;
    }
    if (command == "shutdown" && args.size() == 1) {
      client.shutdown();
      std::cout << "daemon shutting down\n";
      return 0;
    }
    usage();
  } catch (const std::exception& e) {
    std::cerr << "stpes-client: " << e.what() << "\n";
    return 2;
  }
}
