/// \file quickstart.cpp
/// \brief Five-minute tour of the library.
///
/// Synthesizes the paper's running example f = 0x8ff8 (Example 7) with the
/// STP engine, prints every optimum chain, verifies one with the circuit
/// AllSAT solver, and compares against a CNF baseline.  A comma-separated
/// hex list asks for one shared chain realizing every listed output, e.g.
/// the 2-output full adder (sum, carry):
///
///     ./quickstart [hex-tt[,hex-tt...]] [num-vars]
///     ./quickstart 96,e8 3

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "allsat/circuit_allsat.hpp"
#include "allsat/lut_network.hpp"
#include "core/exact_synthesis.hpp"

namespace {

std::vector<std::string> split_list(const std::string& hex) {
  std::vector<std::string> pieces;
  std::size_t begin = 0;
  while (begin <= hex.size()) {
    const auto comma = hex.find(',', begin);
    pieces.push_back(hex.substr(
        begin,
        comma == std::string::npos ? std::string::npos : comma - begin));
    if (comma == std::string::npos) {
      break;
    }
    begin = comma + 1;
  }
  return pieces;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stpes;

  const unsigned num_vars =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4u;
  const std::string hex = argc > 1 ? argv[1] : "0x8ff8";
  std::vector<tt::truth_table> targets;
  for (const auto& piece : split_list(hex)) {
    targets.push_back(tt::truth_table::from_hex(num_vars, piece));
  }

  std::cout << "Synthesizing ";
  for (std::size_t k = 0; k < targets.size(); ++k) {
    std::cout << (k == 0 ? "f" : ", f") << k << " = " << targets[k].to_hex();
  }
  std::cout << " over " << num_vars << " inputs\n\n";

  // 1. The paper's engine: all optimum 2-LUT chains in one pass.  With
  //    several targets the optimum is one *shared* chain — usually smaller
  //    than synthesizing the outputs apart.
  const auto r = core::exact_synthesis(targets, core::engine::stp, 60.0);
  if (!r.ok()) {
    std::cout << "STP synthesis did not finish ("
              << synth::to_string(r.outcome) << ")\n";
    return 1;
  }
  std::cout << "optimum size: " << r.optimum_gates << " gates, "
            << r.chains.size() << " optimum chain(s) in "
            << r.seconds << " s\n\n";
  for (std::size_t i = 0; i < r.chains.size(); ++i) {
    std::cout << "-- chain " << i + 1 << " --\n"
              << r.chains[i].to_string();
  }

  // 2. Verify the first chain.  Every spec output is addressed by index
  //    (`best_output`); the circuit AllSAT solver (Algorithms 1-2 of the
  //    paper) enumerates the assignments driving all outputs to 1.
  const auto& best = r.best();
  bool all_match = true;
  for (std::size_t k = 0; k < targets.size(); ++k) {
    all_match = all_match &&
                r.best_output(static_cast<unsigned>(k)) == targets[k];
  }
  const auto net = allsat::lut_network::from_chain(best);
  const auto allsat_result =
      allsat::solve_all(net, std::vector<bool>(targets.size(), true));
  std::cout << "\ncircuit AllSAT: " << allsat_result.solutions.size()
            << " satisfying pattern(s); simulation "
            << (all_match ? "matches" : "MISMATCHES")
            << " the specification\n";
  for (const auto& s : allsat_result.solutions) {
    std::cout << "  " << s.to_string() << "\n";
  }

  // 3. A CNF baseline finds one chain of the same size.
  const auto baseline = core::exact_synthesis(targets, core::engine::bms,
                                              60.0);
  if (baseline.ok()) {
    std::cout << "\nBMS baseline agrees: " << baseline.optimum_gates
              << " gates (one solution)\n";
  }
  return 0;
}
