/// \file quickstart.cpp
/// \brief Five-minute tour of the library.
///
/// Synthesizes the paper's running example f = 0x8ff8 (Example 7) with the
/// STP engine, prints every optimum chain, verifies one with the circuit
/// AllSAT solver, and compares against a CNF baseline.
///
///     ./quickstart [hex-truth-table] [num-vars]

#include <cstdlib>
#include <iostream>

#include "allsat/circuit_allsat.hpp"
#include "core/exact_synthesis.hpp"

int main(int argc, char** argv) {
  using namespace stpes;

  const unsigned num_vars =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4u;
  const std::string hex = argc > 1 ? argv[1] : "0x8ff8";
  const auto f = tt::truth_table::from_hex(num_vars, hex);

  std::cout << "Synthesizing f = " << f.to_hex() << " over " << num_vars
            << " inputs\n\n";

  // 1. The paper's engine: all optimum 2-LUT chains in one pass.
  const auto r = core::exact_synthesis(f, core::engine::stp, 60.0);
  if (!r.ok()) {
    std::cout << "STP synthesis did not finish (" << synth::to_string(r.outcome)
              << ")\n";
    return 1;
  }
  std::cout << "optimum size: " << r.optimum_gates << " gates, "
            << r.chains.size() << " optimum chain(s) in "
            << r.seconds << " s\n\n";
  for (std::size_t i = 0; i < r.chains.size(); ++i) {
    std::cout << "-- chain " << i + 1 << " --\n"
              << r.chains[i].to_string();
  }

  // 2. Verify the first chain with the STP circuit AllSAT solver
  //    (Algorithms 1-2 of the paper).
  const auto& best = r.best();
  const auto allsat = allsat::solve_all(best);
  std::cout << "\ncircuit AllSAT: " << allsat.solutions.size()
            << " satisfying pattern(s); simulation "
            << (allsat::verify_chain(best, f) ? "matches" : "MISMATCHES")
            << " the specification\n";
  for (const auto& s : allsat.solutions) {
    std::cout << "  " << s.to_string() << "\n";
  }

  // 3. A CNF baseline finds one chain of the same size.
  const auto baseline = core::exact_synthesis(f, core::engine::bms, 60.0);
  if (baseline.ok()) {
    std::cout << "\nBMS baseline agrees: " << baseline.optimum_gates
              << " gates (one solution)\n";
  }
  return 0;
}
