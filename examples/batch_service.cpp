/// \file batch_service.cpp
/// \brief Batch synthesis service driver.
///
/// Feeds a function collection (or a file of hex truth tables, one per
/// line) through `service::batch_synthesizer`, optionally cross-checks the
/// serial `core::npn_cached_synthesizer` path, and prints the metrics and
/// cache statistics of the run.
///
///     ./batch_service [--collection=npn4|fdsd6|fdsd8|pdsd6|pdsd8]
///                     [--file=PATH] [--threads=N] [--engine=stp|bms|fen|cegar]
///                     [--timeout=S] [--count=N] [--seed=S]
///                     [--cache=PATH] [--no-serial-check]
///
/// `--cache` warms the NPN result cache from PATH before the batch and
/// persists it back afterwards, so repeated invocations skip synthesis
/// entirely.  The serial check re-synthesizes everything single-threaded
/// and compares gate counts chain-for-chain; it is on by default because
/// the wall-clock ratio it prints is the point of the service.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/npn_cache.hpp"
#include "service/batch_synthesizer.hpp"
#include "util/stopwatch.hpp"
#include "workload/collections.hpp"

namespace {

struct cli_options {
  std::string collection = "npn4";
  std::string file;
  std::string cache_path;
  unsigned threads = 0;  // 0 = hardware concurrency
  std::string engine = "stp";
  double timeout = 60.0;
  std::size_t count = 0;  // 0 = whole collection
  std::uint64_t seed = 1;
  bool serial_check = true;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--collection=npn4|fdsd6|fdsd8|pdsd6|pdsd8] [--file=PATH]"
               " [--threads=N] [--engine=stp|bms|fen|cegar] [--timeout=S]"
               " [--count=N] [--seed=S] [--cache=PATH] [--no-serial-check]\n";
  std::exit(2);
}

cli_options parse_cli(int argc, char** argv) {
  cli_options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const std::string& name) -> std::string {
      const std::string prefix = "--" + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.substr(prefix.size())
                                       : std::string{};
    };
    if (arg == "--no-serial-check") {
      opts.serial_check = false;
    } else if (auto v = value("collection"); !v.empty()) {
      opts.collection = v;
    } else if (auto v = value("file"); !v.empty()) {
      opts.file = v;
    } else if (auto v = value("cache"); !v.empty()) {
      opts.cache_path = v;
    } else if (auto v = value("threads"); !v.empty()) {
      opts.threads = static_cast<unsigned>(std::stoul(v));
    } else if (auto v = value("engine"); !v.empty()) {
      opts.engine = v;
    } else if (auto v = value("timeout"); !v.empty()) {
      opts.timeout = std::stod(v);
    } else if (auto v = value("count"); !v.empty()) {
      opts.count = std::stoul(v);
    } else if (auto v = value("seed"); !v.empty()) {
      opts.seed = std::stoull(v);
    } else {
      usage(argv[0]);
    }
  }
  return opts;
}

/// One hex table per line ("0x8ff8" or "8ff8"); arity is inferred from the
/// digit count.  '#' starts a comment.
std::vector<stpes::tt::truth_table> load_functions(const std::string& path) {
  std::ifstream is{path};
  if (!is) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(1);
  }
  std::vector<stpes::tt::truth_table> out;
  std::string line;
  while (std::getline(is, line)) {
    if (const auto pos = line.find('#'); pos != std::string::npos) {
      line.erase(pos);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    std::string hex = line;
    if (hex.rfind("0x", 0) == 0) {
      hex.erase(0, 2);
    }
    unsigned num_vars = 2;
    while ((std::size_t{1} << (num_vars - 2)) < hex.size()) {
      ++num_vars;
    }
    try {
      out.push_back(stpes::tt::truth_table::from_hex(num_vars, line));
    } catch (const std::exception& e) {
      std::cerr << path << ": bad truth table '" << line << "': " << e.what()
                << "\n";
      std::exit(1);
    }
  }
  return out;
}

std::vector<stpes::tt::truth_table> make_workload(const cli_options& opts) {
  using namespace stpes;
  if (!opts.file.empty()) {
    return load_functions(opts.file);
  }
  const std::size_t count = opts.count == 0 ? 100 : opts.count;
  if (opts.collection == "npn4") {
    auto fs = workload::npn4_classes();
    if (opts.count > 0 && opts.count < fs.size()) {
      fs.resize(opts.count);
    }
    return fs;
  }
  if (opts.collection == "fdsd6") {
    return workload::fdsd_functions(6, count, opts.seed);
  }
  if (opts.collection == "fdsd8") {
    return workload::fdsd_functions(8, count, opts.seed);
  }
  if (opts.collection == "pdsd6") {
    return workload::pdsd_functions(6, count, opts.seed);
  }
  if (opts.collection == "pdsd8") {
    return workload::pdsd_functions(8, count, opts.seed);
  }
  std::cerr << "unknown collection: " << opts.collection << "\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stpes;

  const auto opts = parse_cli(argc, argv);
  const auto functions = make_workload(opts);

  service::batch_options batch_opts;
  try {
    batch_opts.engine = core::engine_from_string(opts.engine);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  batch_opts.timeout_seconds = opts.timeout;
  batch_opts.num_threads = opts.threads;
  service::batch_synthesizer service{batch_opts};

  if (!opts.cache_path.empty()) {
    try {
      const auto warmed = service.warm_cache(opts.cache_path);
      std::cout << "warmed " << warmed << " cache entries from "
                << opts.cache_path << "\n";
    } catch (const std::exception& e) {
      std::cerr << "corrupt cache file " << opts.cache_path << ": "
                << e.what() << "\n";
      return 1;
    }
  }

  std::cout << "batch: " << functions.size() << " functions, engine="
            << opts.engine << ", timeout=" << opts.timeout << "s\n";

  const auto batch = service.run(functions);

  std::size_t solved = 0;
  std::size_t total_gates = 0;
  for (const auto& r : batch.results) {
    if (r.ok()) {
      ++solved;
      total_gates += r.optimum_gates;
    }
  }
  std::cout << "batch done: " << solved << "/" << batch.results.size()
            << " solved, " << total_gates << " total gates, "
            << batch.unique_classes << " unique classes, "
            << batch.wall_seconds << " s wall\n\n";

  std::cout << "-- metrics --\n" << batch.metrics.to_text();
  std::cout << "-- cache --\n"
            << "hits " << batch.cache.hits << "  misses "
            << batch.cache.misses << "  inflight_waits "
            << batch.cache.inflight_waits << "  evictions "
            << batch.cache.evictions << "  resident " << batch.cache.size
            << "\n\n";

  if (!opts.cache_path.empty()) {
    const auto persisted = service.persist_cache(opts.cache_path);
    std::cout << "persisted " << persisted << " cache entries to "
              << opts.cache_path << "\n";
  }

  int exit_code = 0;
  if (opts.serial_check) {
    core::npn_cached_synthesizer serial{batch_opts.engine, opts.timeout};
    util::stopwatch sw;
    std::size_t mismatches = 0;
    std::size_t budget_flips = 0;  // one path hit the budget, the other not
    for (std::size_t i = 0; i < functions.size(); ++i) {
      const auto r = serial.synthesize(functions[i]);
      const auto& b = batch.results[i];
      if (r.outcome != b.outcome) {
        // Wall-clock noise can flip a near-budget class between success
        // and timeout; that says nothing about batch/serial equivalence.
        ++budget_flips;
        continue;
      }
      if (r.optimum_gates != b.optimum_gates) {
        ++mismatches;
        continue;
      }
      bool chains_equal = r.chains.size() == b.chains.size();
      for (std::size_t j = 0; chains_equal && j < r.chains.size(); ++j) {
        chains_equal = r.chains[j] == b.chains[j];
      }
      if (!chains_equal) {
        // The STP engine returns `success` with a partial solution set
        // when the budget expires mid-enumeration at the optimum size, so
        // a near-budget run can differ in chains while agreeing on gate
        // count.  Only a difference far from the budget is a real bug.
        const bool near_budget =
            opts.timeout > 0.0 &&
            std::max(r.seconds, b.seconds) > 0.5 * opts.timeout;
        if (near_budget) {
          ++budget_flips;
        } else {
          ++mismatches;
        }
      }
    }
    const double serial_seconds = sw.elapsed_seconds();
    std::cout << "serial check: " << mismatches << " mismatches, "
              << budget_flips << " budget flips, " << serial_seconds
              << " s wall, speedup "
              << (batch.wall_seconds > 0.0
                      ? serial_seconds / batch.wall_seconds
                      : 0.0)
              << "x with " << service.num_threads() << " threads\n";
    if (mismatches > 0) {
      std::cerr << "ERROR: batch and serial paths disagree\n";
      exit_code = 1;
    }
  }
  return exit_code;
}
