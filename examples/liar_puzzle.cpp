/// \file liar_puzzle.cpp
/// \brief Example 4 of the paper: logical reasoning with STP matrices.
///
/// Three persons a, b, c; liars always lie, honest people always tell the
/// truth.  a says "b is a liar", b says "c is a liar", c says "a and b are
/// both liars".  Who is honest?
///
/// The program builds Phi = (a <-> !b) & (b <-> !c) & (c <-> !a & !b),
/// computes its STP canonical form M_Phi (Property 2) with genuine matrix
/// algebra (structural matrices, M_w swaps, M_r power-reductions), prints
/// the matrix — it matches the paper — and solves AllSAT by the sequential
/// halving of Fig. 1.

#include <iostream>

#include "stp/expr.hpp"
#include "stp/stp_allsat.hpp"

int main() {
  using namespace stpes::stp;

  const auto a = expr::var(2);
  const auto b = expr::var(1);
  const auto c = expr::var(0);
  const auto phi =
      equiv(a, !b) & equiv(b, !c) & equiv(c, (!a) & (!b));

  std::cout << "Phi = " << phi.to_string() << "\n\n";

  const auto canonical = phi.canonical().to_logic_matrix(3);
  std::cout << "canonical form M_Phi (columns, all-True first):\n  "
            << canonical.to_string() << "\n\n";

  stp_sat_solver solver{canonical};
  const auto solutions = solver.solve_all();
  std::cout << "sequential STP solve (Fig. 1): " << solutions.size()
            << " solution(s), " << solver.stats().backtracks
            << " branch(es) cut\n";
  for (const auto& s : solutions) {
    std::cout << "  a=" << (s.values[0] ? "honest" : "liar")
              << "  b=" << (s.values[1] ? "honest" : "liar")
              << "  c=" << (s.values[2] ? "honest" : "liar") << "\n";
  }
  return 0;
}
