/// \file cost_selection.cpp
/// \brief The paper's flexibility argument in action.
///
/// Conventional SAT-based exact synthesis returns one chain; the STP engine
/// returns *all* optimum chains, so the implementation can be chosen by the
/// real design cost afterwards.  This example synthesizes a set of
/// functions, then picks per function (a) the shallowest chain and (b) the
/// XOR-free-est chain — e.g. for a technology where parity gates are
/// expensive — and shows how often the two picks differ.

#include <iostream>

#include "core/exact_synthesis.hpp"
#include "core/selector.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace stpes;

  const struct {
    const char* name;
    const char* hex;
    unsigned vars;
  } functions[] = {
      {"maj3-on-4", "0xe8e8", 4},  {"mux", "0xcaca", 4},
      {"and-or-xor", "0x8ff8", 4}, {"xor3", "0x9696", 4},
      {"one-hot-2of3", "0x1616", 4},
  };

  util::table_printer table;
  table.set_header({"function", "gates", "#optima", "min depth",
                    "min #xor", "same pick?"});

  for (const auto& fn : functions) {
    const auto f = tt::truth_table::from_hex(fn.vars, fn.hex);
    const auto r = core::exact_synthesis(f, core::engine::stp, 60.0);
    if (!r.ok()) {
      std::cout << fn.name << ": synthesis timed out\n";
      continue;
    }
    const auto depth_pick = core::select_best(r.chains, core::depth_cost());
    const auto xor_pick = core::select_best(r.chains, core::xor_cost());
    table.add_row(
        {fn.name, std::to_string(r.optimum_gates),
         std::to_string(r.chains.size()),
         std::to_string(r.chains[depth_pick].depth()),
         std::to_string(r.chains[xor_pick].xor_count()),
         depth_pick == xor_pick ? "yes" : "no"});
  }
  table.print(std::cout);

  std::cout << "\nExample: the two picks for 0x8ff8\n";
  const auto f = tt::truth_table::from_hex(4, "0x8ff8");
  const auto r = core::exact_synthesis(f, core::engine::stp, 60.0);
  if (r.ok()) {
    std::cout << "shallowest:\n"
              << core::best_chain(r.chains, core::depth_cost()).to_string()
              << "fewest XORs:\n"
              << core::best_chain(r.chains, core::xor_cost()).to_string();
  }
  return 0;
}
