/// \file npn4_catalog.cpp
/// \brief Builds an optimum-size catalog of 4-input NPN classes.
///
/// Enumerates the 222 NPN4 classes (the paper's first benchmark
/// collection), synthesizes each with the STP engine under a small budget,
/// and prints the distribution of optimum gate counts plus the average
/// number of optimum chains per size — a compact "cost table" a technology
/// mapper could embed.
///
///     ./npn4_catalog [timeout-seconds] [max-classes]

#include <cstdlib>
#include <iostream>
#include <map>

#include "core/exact_synthesis.hpp"
#include "util/table_printer.hpp"
#include "workload/collections.hpp"

int main(int argc, char** argv) {
  using namespace stpes;
  const double timeout = argc > 1 ? std::atof(argv[1]) : 2.0;
  const std::size_t max_classes =
      argc > 2 ? std::stoul(argv[2]) : std::size_t{60};

  const auto classes = workload::npn4_classes();
  const std::size_t limit = std::min(max_classes, classes.size());
  std::cout << "Cataloguing " << limit << " of " << classes.size()
            << " NPN4 classes (timeout " << timeout << " s each)\n\n";

  struct bucket {
    std::size_t classes = 0;
    double solutions = 0.0;
    double seconds = 0.0;
  };
  std::map<unsigned, bucket> by_size;
  std::size_t timeouts = 0;

  for (std::size_t i = 0; i < limit; ++i) {
    const auto r =
        core::exact_synthesis(classes[i], core::engine::stp, timeout);
    if (!r.ok()) {
      ++timeouts;
      continue;
    }
    auto& b = by_size[r.optimum_gates];
    ++b.classes;
    b.solutions += static_cast<double>(r.chains.size());
    b.seconds += r.seconds;
  }

  util::table_printer table;
  table.set_header({"gates", "#classes", "avg #optima", "avg time(s)"});
  for (const auto& [size, b] : by_size) {
    table.add_row({std::to_string(size), std::to_string(b.classes),
                   util::table_printer::fmt(
                       b.solutions / static_cast<double>(b.classes), 1),
                   util::table_printer::fmt(
                       b.seconds / static_cast<double>(b.classes))});
  }
  table.print(std::cout);
  std::cout << "timeouts: " << timeouts << "\n";
  return 0;
}
