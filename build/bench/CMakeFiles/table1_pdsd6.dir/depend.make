# Empty dependencies file for table1_pdsd6.
# This may be replaced when dependencies are built.
