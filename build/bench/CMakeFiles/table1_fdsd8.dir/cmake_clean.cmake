file(REMOVE_RECURSE
  "CMakeFiles/table1_fdsd8.dir/table1_fdsd8.cpp.o"
  "CMakeFiles/table1_fdsd8.dir/table1_fdsd8.cpp.o.d"
  "table1_fdsd8"
  "table1_fdsd8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fdsd8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
