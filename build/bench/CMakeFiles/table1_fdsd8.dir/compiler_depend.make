# Empty compiler generated dependencies file for table1_fdsd8.
# This may be replaced when dependencies are built.
