file(REMOVE_RECURSE
  "CMakeFiles/table1_pdsd8.dir/table1_pdsd8.cpp.o"
  "CMakeFiles/table1_pdsd8.dir/table1_pdsd8.cpp.o.d"
  "table1_pdsd8"
  "table1_pdsd8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_pdsd8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
