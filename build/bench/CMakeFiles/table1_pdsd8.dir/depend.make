# Empty dependencies file for table1_pdsd8.
# This may be replaced when dependencies are built.
