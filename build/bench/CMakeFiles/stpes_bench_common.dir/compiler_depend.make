# Empty compiler generated dependencies file for stpes_bench_common.
# This may be replaced when dependencies are built.
