file(REMOVE_RECURSE
  "libstpes_bench_common.a"
)
