file(REMOVE_RECURSE
  "CMakeFiles/stpes_bench_common.dir/table1_common.cpp.o"
  "CMakeFiles/stpes_bench_common.dir/table1_common.cpp.o.d"
  "libstpes_bench_common.a"
  "libstpes_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpes_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
