file(REMOVE_RECURSE
  "CMakeFiles/table1_npn4.dir/table1_npn4.cpp.o"
  "CMakeFiles/table1_npn4.dir/table1_npn4.cpp.o.d"
  "table1_npn4"
  "table1_npn4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_npn4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
