# Empty dependencies file for table1_npn4.
# This may be replaced when dependencies are built.
