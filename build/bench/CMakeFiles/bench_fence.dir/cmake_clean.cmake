file(REMOVE_RECURSE
  "CMakeFiles/bench_fence.dir/bench_fence.cpp.o"
  "CMakeFiles/bench_fence.dir/bench_fence.cpp.o.d"
  "bench_fence"
  "bench_fence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
