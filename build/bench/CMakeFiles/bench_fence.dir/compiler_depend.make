# Empty compiler generated dependencies file for bench_fence.
# This may be replaced when dependencies are built.
