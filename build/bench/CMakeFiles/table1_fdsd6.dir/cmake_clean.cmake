file(REMOVE_RECURSE
  "CMakeFiles/table1_fdsd6.dir/table1_fdsd6.cpp.o"
  "CMakeFiles/table1_fdsd6.dir/table1_fdsd6.cpp.o.d"
  "table1_fdsd6"
  "table1_fdsd6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fdsd6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
