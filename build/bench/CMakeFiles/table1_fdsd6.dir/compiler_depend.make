# Empty compiler generated dependencies file for table1_fdsd6.
# This may be replaced when dependencies are built.
