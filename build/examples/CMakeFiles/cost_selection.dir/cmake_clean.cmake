file(REMOVE_RECURSE
  "CMakeFiles/cost_selection.dir/cost_selection.cpp.o"
  "CMakeFiles/cost_selection.dir/cost_selection.cpp.o.d"
  "cost_selection"
  "cost_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
