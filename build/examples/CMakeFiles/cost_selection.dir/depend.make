# Empty dependencies file for cost_selection.
# This may be replaced when dependencies are built.
