file(REMOVE_RECURSE
  "CMakeFiles/npn4_catalog.dir/npn4_catalog.cpp.o"
  "CMakeFiles/npn4_catalog.dir/npn4_catalog.cpp.o.d"
  "npn4_catalog"
  "npn4_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npn4_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
