# Empty dependencies file for npn4_catalog.
# This may be replaced when dependencies are built.
