
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stpes_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/stpes_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/stpes_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/allsat/CMakeFiles/stpes_allsat.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/stpes_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/fence/CMakeFiles/stpes_fence.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/stpes_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/stp/CMakeFiles/stpes_stp.dir/DependInfo.cmake"
  "/root/repo/build/src/tt/CMakeFiles/stpes_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stpes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
