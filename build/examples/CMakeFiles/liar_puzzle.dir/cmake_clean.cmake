file(REMOVE_RECURSE
  "CMakeFiles/liar_puzzle.dir/liar_puzzle.cpp.o"
  "CMakeFiles/liar_puzzle.dir/liar_puzzle.cpp.o.d"
  "liar_puzzle"
  "liar_puzzle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liar_puzzle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
