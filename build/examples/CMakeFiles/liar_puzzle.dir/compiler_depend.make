# Empty compiler generated dependencies file for liar_puzzle.
# This may be replaced when dependencies are built.
