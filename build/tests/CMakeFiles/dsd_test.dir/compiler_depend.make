# Empty compiler generated dependencies file for dsd_test.
# This may be replaced when dependencies are built.
