file(REMOVE_RECURSE
  "CMakeFiles/dsd_test.dir/dsd_test.cpp.o"
  "CMakeFiles/dsd_test.dir/dsd_test.cpp.o.d"
  "dsd_test"
  "dsd_test.pdb"
  "dsd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
