file(REMOVE_RECURSE
  "CMakeFiles/npn_test.dir/npn_test.cpp.o"
  "CMakeFiles/npn_test.dir/npn_test.cpp.o.d"
  "npn_test"
  "npn_test.pdb"
  "npn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
