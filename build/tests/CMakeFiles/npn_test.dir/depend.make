# Empty dependencies file for npn_test.
# This may be replaced when dependencies are built.
