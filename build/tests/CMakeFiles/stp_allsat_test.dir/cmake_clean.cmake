file(REMOVE_RECURSE
  "CMakeFiles/stp_allsat_test.dir/stp_allsat_test.cpp.o"
  "CMakeFiles/stp_allsat_test.dir/stp_allsat_test.cpp.o.d"
  "stp_allsat_test"
  "stp_allsat_test.pdb"
  "stp_allsat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stp_allsat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
