# Empty compiler generated dependencies file for stp_allsat_test.
# This may be replaced when dependencies are built.
