# Empty compiler generated dependencies file for ssv_encoding_test.
# This may be replaced when dependencies are built.
