file(REMOVE_RECURSE
  "CMakeFiles/ssv_encoding_test.dir/ssv_encoding_test.cpp.o"
  "CMakeFiles/ssv_encoding_test.dir/ssv_encoding_test.cpp.o.d"
  "ssv_encoding_test"
  "ssv_encoding_test.pdb"
  "ssv_encoding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssv_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
