# Empty compiler generated dependencies file for fence_test.
# This may be replaced when dependencies are built.
