file(REMOVE_RECURSE
  "CMakeFiles/fence_test.dir/fence_test.cpp.o"
  "CMakeFiles/fence_test.dir/fence_test.cpp.o.d"
  "fence_test"
  "fence_test.pdb"
  "fence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
