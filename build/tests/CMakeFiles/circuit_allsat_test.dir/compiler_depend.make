# Empty compiler generated dependencies file for circuit_allsat_test.
# This may be replaced when dependencies are built.
