file(REMOVE_RECURSE
  "CMakeFiles/circuit_allsat_test.dir/circuit_allsat_test.cpp.o"
  "CMakeFiles/circuit_allsat_test.dir/circuit_allsat_test.cpp.o.d"
  "circuit_allsat_test"
  "circuit_allsat_test.pdb"
  "circuit_allsat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_allsat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
