file(REMOVE_RECURSE
  "CMakeFiles/stp_matrix_test.dir/stp_matrix_test.cpp.o"
  "CMakeFiles/stp_matrix_test.dir/stp_matrix_test.cpp.o.d"
  "stp_matrix_test"
  "stp_matrix_test.pdb"
  "stp_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stp_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
