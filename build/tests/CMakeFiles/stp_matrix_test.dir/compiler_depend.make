# Empty compiler generated dependencies file for stp_matrix_test.
# This may be replaced when dependencies are built.
