# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for stp_matrix_test.
