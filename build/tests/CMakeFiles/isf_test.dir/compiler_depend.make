# Empty compiler generated dependencies file for isf_test.
# This may be replaced when dependencies are built.
