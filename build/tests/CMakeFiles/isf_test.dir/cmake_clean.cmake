file(REMOVE_RECURSE
  "CMakeFiles/isf_test.dir/isf_test.cpp.o"
  "CMakeFiles/isf_test.dir/isf_test.cpp.o.d"
  "isf_test"
  "isf_test.pdb"
  "isf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
