# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dont_care_synth_test.
