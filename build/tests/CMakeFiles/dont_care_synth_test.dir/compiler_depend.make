# Empty compiler generated dependencies file for dont_care_synth_test.
# This may be replaced when dependencies are built.
