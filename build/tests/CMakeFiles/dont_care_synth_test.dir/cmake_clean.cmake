file(REMOVE_RECURSE
  "CMakeFiles/dont_care_synth_test.dir/dont_care_synth_test.cpp.o"
  "CMakeFiles/dont_care_synth_test.dir/dont_care_synth_test.cpp.o.d"
  "dont_care_synth_test"
  "dont_care_synth_test.pdb"
  "dont_care_synth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dont_care_synth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
