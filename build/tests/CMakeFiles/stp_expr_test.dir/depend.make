# Empty dependencies file for stp_expr_test.
# This may be replaced when dependencies are built.
