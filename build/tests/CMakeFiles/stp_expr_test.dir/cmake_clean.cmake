file(REMOVE_RECURSE
  "CMakeFiles/stp_expr_test.dir/stp_expr_test.cpp.o"
  "CMakeFiles/stp_expr_test.dir/stp_expr_test.cpp.o.d"
  "stp_expr_test"
  "stp_expr_test.pdb"
  "stp_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stp_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
