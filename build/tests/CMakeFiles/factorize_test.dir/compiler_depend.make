# Empty compiler generated dependencies file for factorize_test.
# This may be replaced when dependencies are built.
