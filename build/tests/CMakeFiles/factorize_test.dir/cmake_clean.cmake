file(REMOVE_RECURSE
  "CMakeFiles/factorize_test.dir/factorize_test.cpp.o"
  "CMakeFiles/factorize_test.dir/factorize_test.cpp.o.d"
  "factorize_test"
  "factorize_test.pdb"
  "factorize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factorize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
