# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/truth_table_test[1]_include.cmake")
include("/root/repo/build/tests/isf_test[1]_include.cmake")
include("/root/repo/build/tests/npn_test[1]_include.cmake")
include("/root/repo/build/tests/dsd_test[1]_include.cmake")
include("/root/repo/build/tests/stp_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/stp_expr_test[1]_include.cmake")
include("/root/repo/build/tests/stp_allsat_test[1]_include.cmake")
include("/root/repo/build/tests/sat_solver_test[1]_include.cmake")
include("/root/repo/build/tests/fence_test[1]_include.cmake")
include("/root/repo/build/tests/chain_test[1]_include.cmake")
include("/root/repo/build/tests/circuit_allsat_test[1]_include.cmake")
include("/root/repo/build/tests/factorize_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/ssv_encoding_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/lut_network_test[1]_include.cmake")
include("/root/repo/build/tests/dont_care_synth_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
