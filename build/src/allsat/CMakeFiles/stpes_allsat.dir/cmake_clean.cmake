file(REMOVE_RECURSE
  "CMakeFiles/stpes_allsat.dir/circuit_allsat.cpp.o"
  "CMakeFiles/stpes_allsat.dir/circuit_allsat.cpp.o.d"
  "CMakeFiles/stpes_allsat.dir/lut_network.cpp.o"
  "CMakeFiles/stpes_allsat.dir/lut_network.cpp.o.d"
  "libstpes_allsat.a"
  "libstpes_allsat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpes_allsat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
