file(REMOVE_RECURSE
  "libstpes_allsat.a"
)
