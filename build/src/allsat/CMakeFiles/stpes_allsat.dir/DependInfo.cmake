
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/allsat/circuit_allsat.cpp" "src/allsat/CMakeFiles/stpes_allsat.dir/circuit_allsat.cpp.o" "gcc" "src/allsat/CMakeFiles/stpes_allsat.dir/circuit_allsat.cpp.o.d"
  "/root/repo/src/allsat/lut_network.cpp" "src/allsat/CMakeFiles/stpes_allsat.dir/lut_network.cpp.o" "gcc" "src/allsat/CMakeFiles/stpes_allsat.dir/lut_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chain/CMakeFiles/stpes_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/tt/CMakeFiles/stpes_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stpes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
