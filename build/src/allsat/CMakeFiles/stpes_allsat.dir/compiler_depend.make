# Empty compiler generated dependencies file for stpes_allsat.
# This may be replaced when dependencies are built.
