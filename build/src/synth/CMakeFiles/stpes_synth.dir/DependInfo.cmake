
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/bms.cpp" "src/synth/CMakeFiles/stpes_synth.dir/bms.cpp.o" "gcc" "src/synth/CMakeFiles/stpes_synth.dir/bms.cpp.o.d"
  "/root/repo/src/synth/cegar.cpp" "src/synth/CMakeFiles/stpes_synth.dir/cegar.cpp.o" "gcc" "src/synth/CMakeFiles/stpes_synth.dir/cegar.cpp.o.d"
  "/root/repo/src/synth/factorize.cpp" "src/synth/CMakeFiles/stpes_synth.dir/factorize.cpp.o" "gcc" "src/synth/CMakeFiles/stpes_synth.dir/factorize.cpp.o.d"
  "/root/repo/src/synth/fen.cpp" "src/synth/CMakeFiles/stpes_synth.dir/fen.cpp.o" "gcc" "src/synth/CMakeFiles/stpes_synth.dir/fen.cpp.o.d"
  "/root/repo/src/synth/spec.cpp" "src/synth/CMakeFiles/stpes_synth.dir/spec.cpp.o" "gcc" "src/synth/CMakeFiles/stpes_synth.dir/spec.cpp.o.d"
  "/root/repo/src/synth/ssv_encoding.cpp" "src/synth/CMakeFiles/stpes_synth.dir/ssv_encoding.cpp.o" "gcc" "src/synth/CMakeFiles/stpes_synth.dir/ssv_encoding.cpp.o.d"
  "/root/repo/src/synth/stp_synth.cpp" "src/synth/CMakeFiles/stpes_synth.dir/stp_synth.cpp.o" "gcc" "src/synth/CMakeFiles/stpes_synth.dir/stp_synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/allsat/CMakeFiles/stpes_allsat.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/stpes_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/fence/CMakeFiles/stpes_fence.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/stpes_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/stp/CMakeFiles/stpes_stp.dir/DependInfo.cmake"
  "/root/repo/build/src/tt/CMakeFiles/stpes_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stpes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
