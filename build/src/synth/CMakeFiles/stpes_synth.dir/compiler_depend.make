# Empty compiler generated dependencies file for stpes_synth.
# This may be replaced when dependencies are built.
