file(REMOVE_RECURSE
  "CMakeFiles/stpes_synth.dir/bms.cpp.o"
  "CMakeFiles/stpes_synth.dir/bms.cpp.o.d"
  "CMakeFiles/stpes_synth.dir/cegar.cpp.o"
  "CMakeFiles/stpes_synth.dir/cegar.cpp.o.d"
  "CMakeFiles/stpes_synth.dir/factorize.cpp.o"
  "CMakeFiles/stpes_synth.dir/factorize.cpp.o.d"
  "CMakeFiles/stpes_synth.dir/fen.cpp.o"
  "CMakeFiles/stpes_synth.dir/fen.cpp.o.d"
  "CMakeFiles/stpes_synth.dir/spec.cpp.o"
  "CMakeFiles/stpes_synth.dir/spec.cpp.o.d"
  "CMakeFiles/stpes_synth.dir/ssv_encoding.cpp.o"
  "CMakeFiles/stpes_synth.dir/ssv_encoding.cpp.o.d"
  "CMakeFiles/stpes_synth.dir/stp_synth.cpp.o"
  "CMakeFiles/stpes_synth.dir/stp_synth.cpp.o.d"
  "libstpes_synth.a"
  "libstpes_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpes_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
