file(REMOVE_RECURSE
  "libstpes_synth.a"
)
