
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stp/expr.cpp" "src/stp/CMakeFiles/stpes_stp.dir/expr.cpp.o" "gcc" "src/stp/CMakeFiles/stpes_stp.dir/expr.cpp.o.d"
  "/root/repo/src/stp/logic_matrix.cpp" "src/stp/CMakeFiles/stpes_stp.dir/logic_matrix.cpp.o" "gcc" "src/stp/CMakeFiles/stpes_stp.dir/logic_matrix.cpp.o.d"
  "/root/repo/src/stp/matrix.cpp" "src/stp/CMakeFiles/stpes_stp.dir/matrix.cpp.o" "gcc" "src/stp/CMakeFiles/stpes_stp.dir/matrix.cpp.o.d"
  "/root/repo/src/stp/stp_allsat.cpp" "src/stp/CMakeFiles/stpes_stp.dir/stp_allsat.cpp.o" "gcc" "src/stp/CMakeFiles/stpes_stp.dir/stp_allsat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tt/CMakeFiles/stpes_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stpes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
