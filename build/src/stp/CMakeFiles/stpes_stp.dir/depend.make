# Empty dependencies file for stpes_stp.
# This may be replaced when dependencies are built.
