file(REMOVE_RECURSE
  "libstpes_stp.a"
)
