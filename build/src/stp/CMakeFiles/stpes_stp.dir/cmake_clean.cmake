file(REMOVE_RECURSE
  "CMakeFiles/stpes_stp.dir/expr.cpp.o"
  "CMakeFiles/stpes_stp.dir/expr.cpp.o.d"
  "CMakeFiles/stpes_stp.dir/logic_matrix.cpp.o"
  "CMakeFiles/stpes_stp.dir/logic_matrix.cpp.o.d"
  "CMakeFiles/stpes_stp.dir/matrix.cpp.o"
  "CMakeFiles/stpes_stp.dir/matrix.cpp.o.d"
  "CMakeFiles/stpes_stp.dir/stp_allsat.cpp.o"
  "CMakeFiles/stpes_stp.dir/stp_allsat.cpp.o.d"
  "libstpes_stp.a"
  "libstpes_stp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpes_stp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
