# Empty dependencies file for stpes_fence.
# This may be replaced when dependencies are built.
