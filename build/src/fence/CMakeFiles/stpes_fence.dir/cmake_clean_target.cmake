file(REMOVE_RECURSE
  "libstpes_fence.a"
)
