file(REMOVE_RECURSE
  "CMakeFiles/stpes_fence.dir/dag.cpp.o"
  "CMakeFiles/stpes_fence.dir/dag.cpp.o.d"
  "CMakeFiles/stpes_fence.dir/fence.cpp.o"
  "CMakeFiles/stpes_fence.dir/fence.cpp.o.d"
  "libstpes_fence.a"
  "libstpes_fence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpes_fence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
