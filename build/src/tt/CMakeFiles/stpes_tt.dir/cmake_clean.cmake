file(REMOVE_RECURSE
  "CMakeFiles/stpes_tt.dir/dsd.cpp.o"
  "CMakeFiles/stpes_tt.dir/dsd.cpp.o.d"
  "CMakeFiles/stpes_tt.dir/isf.cpp.o"
  "CMakeFiles/stpes_tt.dir/isf.cpp.o.d"
  "CMakeFiles/stpes_tt.dir/npn.cpp.o"
  "CMakeFiles/stpes_tt.dir/npn.cpp.o.d"
  "CMakeFiles/stpes_tt.dir/truth_table.cpp.o"
  "CMakeFiles/stpes_tt.dir/truth_table.cpp.o.d"
  "libstpes_tt.a"
  "libstpes_tt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpes_tt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
