# Empty compiler generated dependencies file for stpes_tt.
# This may be replaced when dependencies are built.
