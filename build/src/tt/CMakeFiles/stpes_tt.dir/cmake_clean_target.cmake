file(REMOVE_RECURSE
  "libstpes_tt.a"
)
