file(REMOVE_RECURSE
  "CMakeFiles/stpes_util.dir/table_printer.cpp.o"
  "CMakeFiles/stpes_util.dir/table_printer.cpp.o.d"
  "libstpes_util.a"
  "libstpes_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpes_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
