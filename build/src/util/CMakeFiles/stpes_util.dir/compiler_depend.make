# Empty compiler generated dependencies file for stpes_util.
# This may be replaced when dependencies are built.
