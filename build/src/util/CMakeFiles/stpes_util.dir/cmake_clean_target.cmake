file(REMOVE_RECURSE
  "libstpes_util.a"
)
