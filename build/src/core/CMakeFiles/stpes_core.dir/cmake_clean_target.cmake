file(REMOVE_RECURSE
  "libstpes_core.a"
)
