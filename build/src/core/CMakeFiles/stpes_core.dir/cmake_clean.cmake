file(REMOVE_RECURSE
  "CMakeFiles/stpes_core.dir/exact_synthesis.cpp.o"
  "CMakeFiles/stpes_core.dir/exact_synthesis.cpp.o.d"
  "CMakeFiles/stpes_core.dir/npn_cache.cpp.o"
  "CMakeFiles/stpes_core.dir/npn_cache.cpp.o.d"
  "CMakeFiles/stpes_core.dir/selector.cpp.o"
  "CMakeFiles/stpes_core.dir/selector.cpp.o.d"
  "libstpes_core.a"
  "libstpes_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpes_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
