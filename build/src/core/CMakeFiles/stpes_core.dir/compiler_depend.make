# Empty compiler generated dependencies file for stpes_core.
# This may be replaced when dependencies are built.
