# Empty compiler generated dependencies file for stpes_workload.
# This may be replaced when dependencies are built.
