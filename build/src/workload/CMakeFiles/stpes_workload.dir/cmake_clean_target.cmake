file(REMOVE_RECURSE
  "libstpes_workload.a"
)
