file(REMOVE_RECURSE
  "CMakeFiles/stpes_workload.dir/collections.cpp.o"
  "CMakeFiles/stpes_workload.dir/collections.cpp.o.d"
  "libstpes_workload.a"
  "libstpes_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpes_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
