file(REMOVE_RECURSE
  "libstpes_chain.a"
)
