# Empty compiler generated dependencies file for stpes_chain.
# This may be replaced when dependencies are built.
