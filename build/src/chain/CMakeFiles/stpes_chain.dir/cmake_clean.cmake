file(REMOVE_RECURSE
  "CMakeFiles/stpes_chain.dir/boolean_chain.cpp.o"
  "CMakeFiles/stpes_chain.dir/boolean_chain.cpp.o.d"
  "CMakeFiles/stpes_chain.dir/transform.cpp.o"
  "CMakeFiles/stpes_chain.dir/transform.cpp.o.d"
  "libstpes_chain.a"
  "libstpes_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpes_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
