
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/boolean_chain.cpp" "src/chain/CMakeFiles/stpes_chain.dir/boolean_chain.cpp.o" "gcc" "src/chain/CMakeFiles/stpes_chain.dir/boolean_chain.cpp.o.d"
  "/root/repo/src/chain/transform.cpp" "src/chain/CMakeFiles/stpes_chain.dir/transform.cpp.o" "gcc" "src/chain/CMakeFiles/stpes_chain.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tt/CMakeFiles/stpes_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stpes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
