file(REMOVE_RECURSE
  "libstpes_sat.a"
)
