file(REMOVE_RECURSE
  "CMakeFiles/stpes_sat.dir/dimacs.cpp.o"
  "CMakeFiles/stpes_sat.dir/dimacs.cpp.o.d"
  "CMakeFiles/stpes_sat.dir/solver.cpp.o"
  "CMakeFiles/stpes_sat.dir/solver.cpp.o.d"
  "libstpes_sat.a"
  "libstpes_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpes_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
