# Empty compiler generated dependencies file for stpes_sat.
# This may be replaced when dependencies are built.
