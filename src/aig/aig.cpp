#include "aig/aig.hpp"

#include <algorithm>
#include <cassert>

namespace stpes::aig {

literal aig_network::create_and(literal a, literal b) {
  // Constant and trivial-pair folding.
  if (a == lit_false || b == lit_false || a == lit_not(b)) {
    return lit_false;
  }
  if (a == lit_true) {
    return b;
  }
  if (b == lit_true) {
    return a;
  }
  if (a == b) {
    return a;
  }
  assert(lit_var(a) <= max_var() && lit_var(b) <= max_var());
  if (a < b) {
    std::swap(a, b);  // normalize: fanin0 is the larger literal
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
  const auto it = strash_.find(key);
  if (it != strash_.end()) {
    ++strash_hits_;
    return make_lit(it->second);
  }
  const std::uint32_t var = max_var() + 1;
  nodes_.push_back(and_node{a, b});
  strash_.emplace(key, var);
  return make_lit(var);
}

bool aig_network::is_well_formed() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const std::uint32_t var = num_inputs_ + 1 + static_cast<std::uint32_t>(i);
    const auto& n = nodes_[i];
    if (n.fanin0 < n.fanin1) {
      return false;
    }
    if (lit_var(n.fanin0) >= var || lit_var(n.fanin1) >= var) {
      return false;
    }
  }
  for (const auto out : outputs_) {
    if (lit_var(out) > max_var()) {
      return false;
    }
  }
  return true;
}

std::vector<std::vector<std::uint64_t>> aig_network::simulate_words(
    const std::vector<std::vector<std::uint64_t>>& input_words) const {
  assert(input_words.size() == num_inputs_);
  const std::size_t w = input_words.empty() ? 0 : input_words.front().size();
  std::vector<std::vector<std::uint64_t>> rows(max_var() + 1);
  rows[0].assign(w, 0);  // constant false
  for (unsigned i = 0; i < num_inputs_; ++i) {
    assert(input_words[i].size() == w);
    rows[i + 1] = input_words[i];
  }
  for (std::size_t j = 0; j < nodes_.size(); ++j) {
    const auto& n = nodes_[j];
    const auto& f0 = rows[lit_var(n.fanin0)];
    const auto& f1 = rows[lit_var(n.fanin1)];
    const std::uint64_t m0 = lit_complemented(n.fanin0) ? ~0ull : 0ull;
    const std::uint64_t m1 = lit_complemented(n.fanin1) ? ~0ull : 0ull;
    auto& out = rows[num_inputs_ + 1 + j];
    out.resize(w);
    for (std::size_t k = 0; k < w; ++k) {
      out[k] = (f0[k] ^ m0) & (f1[k] ^ m1);
    }
  }
  return rows;
}

std::vector<tt::truth_table> aig_network::simulate() const {
  const unsigned n = num_inputs_;
  std::vector<tt::truth_table> values(max_var() + 1);
  values[0] = tt::truth_table::constant(n, false);
  for (unsigned i = 0; i < n; ++i) {
    values[i + 1] = tt::truth_table::nth_var(n, i);
  }
  for (std::size_t j = 0; j < nodes_.size(); ++j) {
    const auto& nd = nodes_[j];
    auto a = values[lit_var(nd.fanin0)];
    auto b = values[lit_var(nd.fanin1)];
    if (lit_complemented(nd.fanin0)) {
      a = ~a;
    }
    if (lit_complemented(nd.fanin1)) {
      b = ~b;
    }
    values[n + 1 + j] = a & b;
  }
  std::vector<tt::truth_table> out;
  out.reserve(outputs_.size());
  for (const auto po : outputs_) {
    auto v = values[lit_var(po)];
    if (lit_complemented(po)) {
      v = ~v;
    }
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<std::uint32_t> aig_network::cone(
    const std::vector<std::uint32_t>& roots) const {
  std::vector<bool> seen(max_var() + 1, false);
  std::vector<std::uint32_t> stack;
  for (const auto r : roots) {
    assert(r <= max_var());
    if (r != 0 && !seen[r]) {
      seen[r] = true;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    const auto var = stack.back();
    stack.pop_back();
    if (!is_and(var)) {
      continue;
    }
    const auto& nd = node(var);
    for (const auto fanin : {nd.fanin0, nd.fanin1}) {
      const auto fv = lit_var(fanin);
      if (fv != 0 && !seen[fv]) {
        seen[fv] = true;
        stack.push_back(fv);
      }
    }
  }
  std::vector<std::uint32_t> result;
  for (std::uint32_t v = 1; v <= max_var(); ++v) {
    if (seen[v]) {
      result.push_back(v);
    }
  }
  return result;
}

}  // namespace stpes::aig
