/// \file aig.hpp
/// \brief And-inverter graphs: the netlist substrate of the SAT-sweeping
///        workload (follow-up paper, arXiv 2312.00421).
///
/// An AIG is a combinational network of 2-input AND nodes with optional
/// inversion on every edge.  We use the AIGER literal convention
/// throughout: variable 0 is the constant FALSE, variables 1..I are the
/// primary inputs, variables I+1..I+A are the AND nodes, and a *literal*
/// is `2 * var + complement`.  Nodes are stored in topological order by
/// construction — every fanin literal refers to a smaller variable — so
/// a single forward pass is a valid evaluation order and the binary
/// AIGER delta encoding applies directly.
///
/// `create_and` performs constant folding (x & 0, x & 1, x & x, x & ~x)
/// and structural hashing: building the same (normalized) fanin pair
/// twice returns the existing node, so functionally redundant structure
/// introduced by a reader or a rewriter collapses for free.  Semantic
/// redundancy — structurally different nodes computing the same function
/// — is what `sweep::sweep` exists to remove.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tt/truth_table.hpp"

namespace stpes::aig {

/// An AIGER literal: `2 * var + complement`.
using literal = std::uint32_t;

/// Constant-false / constant-true literals (variable 0).
inline constexpr literal lit_false = 0;
inline constexpr literal lit_true = 1;

[[nodiscard]] constexpr std::uint32_t lit_var(literal l) { return l >> 1; }
[[nodiscard]] constexpr bool lit_complemented(literal l) {
  return (l & 1u) != 0;
}
[[nodiscard]] constexpr literal make_lit(std::uint32_t var,
                                         bool complement = false) {
  return (var << 1) | (complement ? 1u : 0u);
}
[[nodiscard]] constexpr literal lit_not(literal l) { return l ^ 1u; }

/// A combinational and-inverter graph.
class aig_network {
public:
  /// One AND node; `create_and` normalizes the pair so `fanin0 >= fanin1`
  /// as literals — the binary AIGER `rhs0 >= rhs1` convention, which both
  /// canonicalizes the strash key and makes the delta encoding direct.
  struct and_node {
    literal fanin0 = 0;  ///< larger fanin literal
    literal fanin1 = 0;  ///< smaller (or equal-var) fanin literal
  };

  aig_network() = default;
  /// Network with `num_inputs` primary inputs and no nodes yet.
  explicit aig_network(unsigned num_inputs) : num_inputs_(num_inputs) {}

  [[nodiscard]] unsigned num_inputs() const { return num_inputs_; }
  [[nodiscard]] unsigned num_ands() const {
    return static_cast<unsigned>(nodes_.size());
  }
  [[nodiscard]] unsigned num_outputs() const {
    return static_cast<unsigned>(outputs_.size());
  }
  /// Highest variable index in use (the AIGER `M` of a packed network).
  [[nodiscard]] std::uint32_t max_var() const {
    return num_inputs_ + num_ands();
  }

  /// Literal of primary input `i` (0-based).
  [[nodiscard]] literal input_lit(unsigned i) const {
    return make_lit(i + 1);
  }
  /// The AND node of variable `var` (must satisfy `is_and(var)`).
  [[nodiscard]] const and_node& node(std::uint32_t var) const {
    return nodes_[var - num_inputs_ - 1];
  }
  [[nodiscard]] bool is_input(std::uint32_t var) const {
    return var >= 1 && var <= num_inputs_;
  }
  [[nodiscard]] bool is_and(std::uint32_t var) const {
    return var > num_inputs_ && var <= max_var();
  }

  [[nodiscard]] const std::vector<and_node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<literal>& outputs() const {
    return outputs_;
  }

  /// AND of two existing literals.  Folds constants and trivial pairs
  /// (`x & x`, `x & ~x`) and structurally hashes: an already-present
  /// normalized fanin pair returns the existing node's literal instead of
  /// growing the network.
  literal create_and(literal a, literal b);

  /// \name Derived connectives (built from AND nodes)
  /// @{
  literal create_or(literal a, literal b) {
    return lit_not(create_and(lit_not(a), lit_not(b)));
  }
  literal create_xor(literal a, literal b) {
    return lit_not(create_and(lit_not(create_and(a, lit_not(b))),
                              lit_not(create_and(lit_not(a), b))));
  }
  /// `sel ? t : e`.
  literal create_mux(literal sel, literal t, literal e) {
    return lit_not(create_and(lit_not(create_and(sel, t)),
                              lit_not(create_and(lit_not(sel), e))));
  }
  /// @}

  /// Appends a primary output driven by `l`.
  void add_output(literal l) { outputs_.push_back(l); }

  /// Structural-hash lookups served from an existing node (statistics for
  /// tests and the reader's dedup accounting).
  [[nodiscard]] std::uint64_t strash_hits() const { return strash_hits_; }

  /// Structural sanity: every fanin refers to a smaller existing variable,
  /// every output literal exists.
  [[nodiscard]] bool is_well_formed() const;

  /// Word-parallel simulation (the packed-uint64 kernel style of the
  /// synthesis hot path): `input_words[i]` holds the pattern words of
  /// input `i`, all inputs the same word count W.  Returns one W-word row
  /// per *variable* (row 0 = constant false, then inputs, then ANDs), so
  /// `value of literal l = rows[lit_var(l)] ^ (lit_complemented(l) ? ~0 :
  /// 0)`.
  [[nodiscard]] std::vector<std::vector<std::uint64_t>> simulate_words(
      const std::vector<std::vector<std::uint64_t>>& input_words) const;

  /// Exhaustive truth-table simulation of every output (num_inputs() must
  /// be small enough for `tt::truth_table`, i.e. <= 16).
  [[nodiscard]] std::vector<tt::truth_table> simulate() const;

  /// Variables in the transitive fanin cone of `roots` (AND and input
  /// variables, sorted ascending; constant 0 excluded).
  [[nodiscard]] std::vector<std::uint32_t> cone(
      const std::vector<std::uint32_t>& roots) const;

private:
  unsigned num_inputs_ = 0;
  std::vector<and_node> nodes_;
  std::vector<literal> outputs_;
  /// Normalized (fanin0, fanin1) pair -> node variable.
  std::unordered_map<std::uint64_t, std::uint32_t> strash_;
  std::uint64_t strash_hits_ = 0;
};

}  // namespace stpes::aig
