#include "aig/aiger_io.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace stpes::aig {

namespace {

/// Hard sanity bound on the header's `M`: a larger value is a corrupt or
/// hostile header, not a benchmark (2^28 variables is ~4 GiB of nodes).
constexpr std::uint64_t kMaxVariables = 1ull << 28;

struct header {
  bool binary = false;
  std::uint64_t m = 0, i = 0, l = 0, o = 0, a = 0;
};

header parse_header(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw aiger_error("aiger: empty input, no header line");
  }
  if (!line.empty() && line.back() == '\r') {
    line.pop_back();
  }
  std::istringstream hs{line};
  std::string magic;
  header h;
  if (!(hs >> magic) || (magic != "aag" && magic != "aig")) {
    throw aiger_error("aiger: bad magic '" + magic + "' (want aag or aig)");
  }
  h.binary = magic == "aig";
  if (!(hs >> h.m >> h.i >> h.l >> h.o >> h.a)) {
    throw aiger_error("aiger: short header (want M I L O A)");
  }
  std::string extra;
  if (hs >> extra) {
    throw aiger_error("aiger: trailing token '" + extra + "' in header");
  }
  if (h.l != 0) {
    throw unsupported_latches_error(
        "aiger: " + std::to_string(h.l) +
        " latch(es); only combinational networks are supported");
  }
  if (h.m > kMaxVariables) {
    throw aiger_error("aiger: header M=" + std::to_string(h.m) +
                      " exceeds the sanity bound");
  }
  if (h.m < h.i + h.l + h.a) {
    throw aiger_error("aiger: header M=" + std::to_string(h.m) +
                      " smaller than I+L+A");
  }
  if (h.binary && h.m != h.i + h.l + h.a) {
    throw aiger_error("aiger: binary header requires M = I+L+A");
  }
  return h;
}

/// One whitespace-separated line of exactly `count` unsigned literals.
std::vector<std::uint64_t> parse_literal_line(std::istream& in,
                                              std::size_t count,
                                              const char* what) {
  std::string line;
  if (!std::getline(in, line)) {
    throw aiger_error(std::string("aiger: truncated file, missing ") + what +
                      " line");
  }
  std::istringstream ls{line};
  std::vector<std::uint64_t> lits(count);
  for (auto& lit : lits) {
    if (!(ls >> lit)) {
      throw aiger_error(std::string("aiger: malformed ") + what + " line '" +
                        line + "'");
    }
  }
  std::string extra;
  if (ls >> extra) {
    throw aiger_error(std::string("aiger: trailing token '") + extra +
                      "' on " + what + " line");
  }
  return lits;
}

void check_lit_range(std::uint64_t lit, std::uint64_t m, const char* what) {
  if ((lit >> 1) > m) {
    throw aiger_error(std::string("aiger: ") + what + " literal " +
                      std::to_string(lit) + " out of range (M=" +
                      std::to_string(m) + ")");
  }
}

/// Shared tail of both readers: maps every file literal through the
/// var -> internal-literal table built while creating the nodes.
literal map_file_lit(std::uint64_t file_lit,
                     const std::vector<literal>& var_map) {
  const auto mapped = var_map[file_lit >> 1];
  return (file_lit & 1) != 0 ? lit_not(mapped) : mapped;
}

/// The per-variable "where is it defined" table of the ASCII reader.
enum class var_kind : std::uint8_t { undefined, constant, input, and_gate };

aig_network read_ascii(std::istream& in, const header& h) {
  aig_network network{static_cast<unsigned>(h.i)};

  std::vector<var_kind> kind(h.m + 1, var_kind::undefined);
  std::vector<std::uint32_t> and_index(h.m + 1, 0);
  kind[0] = var_kind::constant;

  // var -> internal literal, filled as definitions are resolved.
  std::vector<literal> var_map(h.m + 1, lit_false);

  for (std::uint64_t i = 0; i < h.i; ++i) {
    const auto lit = parse_literal_line(in, 1, "input").front();
    if (lit == 0 || (lit & 1) != 0) {
      throw aiger_error("aiger: input literal " + std::to_string(lit) +
                        " must be a positive even literal");
    }
    check_lit_range(lit, h.m, "input");
    const auto var = lit >> 1;
    if (kind[var] != var_kind::undefined) {
      throw aiger_error("aiger: variable " + std::to_string(var) +
                        " defined twice");
    }
    kind[var] = var_kind::input;
    var_map[var] = network.input_lit(static_cast<unsigned>(i));
  }

  std::vector<std::uint64_t> output_lits(h.o);
  for (auto& lit : output_lits) {
    lit = parse_literal_line(in, 1, "output").front();
    check_lit_range(lit, h.m, "output");
  }

  struct and_def {
    std::uint64_t rhs0 = 0, rhs1 = 0;
  };
  std::vector<and_def> ands(h.a);
  for (std::uint64_t j = 0; j < h.a; ++j) {
    const auto lits = parse_literal_line(in, 3, "and");
    const auto lhs = lits[0];
    if (lhs == 0 || (lhs & 1) != 0) {
      throw aiger_error("aiger: and lhs " + std::to_string(lhs) +
                        " must be a positive even literal");
    }
    check_lit_range(lhs, h.m, "and lhs");
    check_lit_range(lits[1], h.m, "and rhs");
    check_lit_range(lits[2], h.m, "and rhs");
    const auto var = lhs >> 1;
    if (kind[var] != var_kind::undefined) {
      throw aiger_error("aiger: variable " + std::to_string(var) +
                        " defined twice");
    }
    kind[var] = var_kind::and_gate;
    and_index[var] = static_cast<std::uint32_t>(j);
    ands[j] = and_def{lits[1], lits[2]};
  }

  // Resolve AND definitions depth-first; the spec allows any definition
  // order, so this is where out-of-order bodies get topologically sorted
  // and where a definition cycle is detected.
  std::vector<std::uint8_t> state(h.m + 1, 0);  // 0 new, 1 open, 2 done
  state[0] = 2;
  for (std::uint64_t v = 1; v <= h.m; ++v) {
    if (kind[v] == var_kind::input) {
      state[v] = 2;
    }
  }
  std::vector<std::uint64_t> stack;
  for (std::uint64_t root = 1; root <= h.m; ++root) {
    if (kind[root] != var_kind::and_gate || state[root] == 2) {
      continue;
    }
    stack.push_back(root);
    while (!stack.empty()) {
      const auto var = stack.back();
      if (state[var] == 2) {
        stack.pop_back();
        continue;
      }
      const auto& def = ands[and_index[var]];
      bool ready = true;
      for (const auto rhs : {def.rhs0, def.rhs1}) {
        const auto rv = rhs >> 1;
        if (kind[rv] == var_kind::undefined) {
          throw aiger_error("aiger: literal " + std::to_string(rhs) +
                            " references undefined variable " +
                            std::to_string(rv));
        }
        if (state[rv] == 2) {
          continue;
        }
        if (state[rv] == 1) {
          throw aiger_error("aiger: combinational cycle through variable " +
                            std::to_string(rv));
        }
        stack.push_back(rv);
        ready = false;
      }
      if (!ready) {
        state[var] = 1;
        continue;
      }
      var_map[var] = network.create_and(map_file_lit(def.rhs0, var_map),
                                        map_file_lit(def.rhs1, var_map));
      state[var] = 2;
      stack.pop_back();
    }
  }

  for (const auto lit : output_lits) {
    if (kind[lit >> 1] == var_kind::undefined) {
      throw aiger_error("aiger: output literal " + std::to_string(lit) +
                        " references undefined variable " +
                        std::to_string(lit >> 1));
    }
    network.add_output(map_file_lit(lit, var_map));
  }
  return network;
}

std::uint64_t read_varint(std::istream& in) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (;;) {
    const int byte = in.get();
    if (byte == std::char_traits<char>::eof()) {
      throw aiger_error("aiger: truncated binary and section");
    }
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return value;
    }
    shift += 7;
    if (shift > 63) {
      throw aiger_error("aiger: varint overflow in binary and section");
    }
  }
}

aig_network read_binary(std::istream& in, const header& h) {
  aig_network network{static_cast<unsigned>(h.i)};
  // Binary numbering is implicit and contiguous: inputs are variables
  // 1..I, ANDs I+1..I+A.
  std::vector<literal> var_map(h.m + 1, lit_false);
  for (std::uint64_t i = 0; i < h.i; ++i) {
    var_map[i + 1] = network.input_lit(static_cast<unsigned>(i));
  }

  std::vector<std::uint64_t> output_lits(h.o);
  for (auto& lit : output_lits) {
    lit = parse_literal_line(in, 1, "output").front();
    check_lit_range(lit, h.m, "output");
  }

  for (std::uint64_t j = 0; j < h.a; ++j) {
    const std::uint64_t var = h.i + 1 + j;
    const std::uint64_t lhs = var << 1;
    const std::uint64_t delta0 = read_varint(in);
    if (delta0 == 0 || delta0 > lhs) {
      throw aiger_error("aiger: binary delta0 out of range at and " +
                        std::to_string(j));
    }
    const std::uint64_t rhs0 = lhs - delta0;
    const std::uint64_t delta1 = read_varint(in);
    if (delta1 > rhs0) {
      throw aiger_error("aiger: binary delta1 out of range at and " +
                        std::to_string(j));
    }
    const std::uint64_t rhs1 = rhs0 - delta1;
    var_map[var] = network.create_and(map_file_lit(rhs0, var_map),
                                      map_file_lit(rhs1, var_map));
  }

  for (const auto lit : output_lits) {
    network.add_output(map_file_lit(lit, var_map));
  }
  return network;
}

void write_varint(std::ostream& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.put(static_cast<char>(0x80 | (value & 0x7F)));
    value >>= 7;
  }
  out.put(static_cast<char>(value));
}

}  // namespace

aig_network read_aiger(std::istream& in) {
  const auto h = parse_header(in);
  return h.binary ? read_binary(in, h) : read_ascii(in, h);
}

aig_network read_aiger_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw aiger_error("aiger: cannot open '" + path + "'");
  }
  return read_aiger(in);
}

void write_aiger_ascii(std::ostream& out, const aig_network& network) {
  // Internal numbering is already the packed topological numbering the
  // format wants, so both writers are straight dumps.
  out << "aag " << network.max_var() << ' ' << network.num_inputs()
      << " 0 " << network.num_outputs() << ' ' << network.num_ands() << '\n';
  for (unsigned i = 0; i < network.num_inputs(); ++i) {
    out << network.input_lit(i) << '\n';
  }
  for (const auto po : network.outputs()) {
    out << po << '\n';
  }
  for (std::size_t j = 0; j < network.nodes().size(); ++j) {
    const auto& n = network.nodes()[j];
    const std::uint64_t lhs =
        (static_cast<std::uint64_t>(network.num_inputs()) + 1 + j) << 1;
    out << lhs << ' ' << n.fanin0 << ' ' << n.fanin1 << '\n';
  }
}

void write_aiger_binary(std::ostream& out, const aig_network& network) {
  out << "aig " << network.max_var() << ' ' << network.num_inputs()
      << " 0 " << network.num_outputs() << ' ' << network.num_ands() << '\n';
  for (const auto po : network.outputs()) {
    out << po << '\n';
  }
  for (std::size_t j = 0; j < network.nodes().size(); ++j) {
    const auto& n = network.nodes()[j];
    const std::uint64_t lhs =
        (static_cast<std::uint64_t>(network.num_inputs()) + 1 + j) << 1;
    write_varint(out, lhs - n.fanin0);
    write_varint(out, static_cast<std::uint64_t>(n.fanin0) - n.fanin1);
  }
}

void write_aiger_file(const std::string& path, const aig_network& network) {
  std::ofstream out{path, std::ios::binary};
  if (!out) {
    throw aiger_error("aiger: cannot write '" + path + "'");
  }
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".aag") == 0) {
    write_aiger_ascii(out, network);
  } else {
    write_aiger_binary(out, network);
  }
}

}  // namespace stpes::aig
