/// \file aiger_io.hpp
/// \brief AIGER reader/writer (ASCII `aag` and binary `aig`, format 1.9
///        header subset), combinational networks only.
///
/// The sweep workload consumes public benchmark circuits, and AIGER is
/// their lingua franca.  We support exactly the combinational core of the
/// format:
///
///   * header `aag|aig M I L O A`; any latch count `L > 0` is rejected
///     with `unsupported_latches_error` — the sweep engine (and the
///     circuit AllSAT solver behind it) reasons about combinational
///     equivalence only, and silently dropping sequential behaviour would
///     "prove" wrong merges;
///   * ASCII bodies may list AND definitions in any order (the spec does
///     not require topological order); the reader reorders them and
///     reports a cycle as `aiger_error`;
///   * binary bodies use the standard delta/varint encoding with the
///     implicit contiguous numbering;
///   * the symbol table and comment section are accepted and ignored.
///
/// Reading rebuilds the network through `aig_network::create_and`, so
/// structurally duplicate ANDs in a file are deduplicated on the way in
/// (the resulting network can have fewer nodes than the header's `A`);
/// output literals are remapped accordingly.  Every malformed input —
/// bad magic, short header, counts that disagree with the body, literals
/// out of range, truncated varints — raises `aiger_error` with a message
/// naming what was wrong and never leaves a partially valid network in
/// the caller's hands.

#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "aig/aig.hpp"

namespace stpes::aig {

/// Any malformed or unreadable AIGER input; the message is presentable to
/// a daemon client as an `ERR` reply.
struct aiger_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// The file is valid AIGER but sequential (`L > 0`); named separately so
/// callers can distinguish "bad file" from "unsupported feature".
struct unsupported_latches_error : aiger_error {
  using aiger_error::aiger_error;
};

/// Reads one network, auto-detecting ASCII (`aag`) vs binary (`aig`) from
/// the magic.  Throws `aiger_error` / `unsupported_latches_error`.
aig_network read_aiger(std::istream& in);

/// Opens and reads `path`; an unopenable file is an `aiger_error`.
aig_network read_aiger_file(const std::string& path);

/// Writes the ASCII (`aag`) form.
void write_aiger_ascii(std::ostream& out, const aig_network& network);

/// Writes the binary (`aig`) form.
void write_aiger_binary(std::ostream& out, const aig_network& network);

/// Writes to `path`; ASCII when `path` ends in `.aag`, binary otherwise.
void write_aiger_file(const std::string& path, const aig_network& network);

}  // namespace stpes::aig
