/// \file circuit_allsat.hpp
/// \brief The STP-based circuit AllSAT solver of Section III-C
///        (Algorithms 1 and 2).
///
/// The solver takes a 2-LUT network (a `boolean_chain`) and computes *all*
/// primary-input assignments that drive the output to a target value.  As
/// in the paper, it works directly on circuit structure: the target value
/// of a node is propagated through the node's structural matrix (= its LUT
/// truth table) to target values of its children, branching over every
/// input pattern that produces the target, and partial solutions are merged
/// for consistency (which also resolves reconvergent fanout).  Solutions
/// keep unassigned inputs as don't-cares ('-' in the paper's notation).
///
/// The final "judging" step of the paper — simulate the solution set into a
/// function f_s and compare with the specification f — is `verify_chain`.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "allsat/lut_network.hpp"
#include "chain/boolean_chain.hpp"
#include "tt/truth_table.hpp"
#include "util/run_context.hpp"

namespace stpes::allsat {

/// A (possibly partial) assignment over the primary inputs:
/// -1 = unassigned ('-'), 0 / 1 = forced value.
struct partial_assignment {
  std::vector<std::int8_t> values;

  /// True iff minterm `t` (bit i = input i) agrees with every assigned
  /// input.
  [[nodiscard]] bool matches(std::uint64_t t) const;
  /// Number of minterms covered (2^#unassigned).
  [[nodiscard]] std::uint64_t coverage() const;
  /// e.g. "(1,0,-,1)" with input 0 first.
  [[nodiscard]] std::string to_string() const;
};

/// Result of a circuit AllSAT run.
struct circuit_allsat_result {
  bool satisfiable = false;
  std::vector<partial_assignment> solutions;
  /// Branching steps taken (statistics; roughly the paper's traverse count).
  std::uint64_t expansions = 0;
};

/// Runs Algorithms 1-2 on `network` with output target `target`.
/// When `ctx` is given, expansions/merges flow into its counters and the
/// traverse polls `ctx->should_stop()` at a bounded stride; an aborted run
/// returns with `satisfiable == false` and a truncated solution set, so
/// callers must re-check the context before trusting an UNSAT answer.
circuit_allsat_result solve_all(const chain::boolean_chain& network,
                                bool target = true,
                                core::run_context* ctx = nullptr);

/// Multi-output form (Algorithm 1, line 3): all input assignments driving
/// every output i to `targets[i]` simultaneously.  `targets` must match
/// the network's output count.
circuit_allsat_result solve_all(const lut_network& network,
                                const std::vector<bool>& targets,
                                core::run_context* ctx = nullptr);

/// ORs the solution patterns into the function they cover.
tt::truth_table solutions_to_function(
    unsigned num_inputs, const std::vector<partial_assignment>& solutions);

/// The paper's correctness check for one optimum-chain candidate:
/// the AllSAT solution set of the network, simulated to f_s, must equal
/// the specification (and the target-0 side must match the complement,
/// which follows automatically).
bool verify_chain(const chain::boolean_chain& network,
                  const tt::truth_table& specification);

}  // namespace stpes::allsat
