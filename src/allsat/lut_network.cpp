#include "allsat/lut_network.hpp"

namespace stpes::allsat {

lut_network lut_network::from_chain(const chain::boolean_chain& chain) {
  lut_network net;
  net.num_inputs = chain.num_inputs();
  net.steps = chain.steps();
  for (const auto& o : chain.outputs()) {
    net.outputs.push_back(output{o.signal, o.complemented});
  }
  return net;
}

bool lut_network::is_well_formed() const {
  for (std::size_t j = 0; j < steps.size(); ++j) {
    const auto limit = num_inputs + j;
    if (steps[j].fanin[0] >= limit || steps[j].fanin[1] >= limit ||
        steps[j].op > 0xF) {
      return false;
    }
  }
  for (const auto& po : outputs) {
    if (po.signal >= num_signals()) {
      return false;
    }
  }
  return !outputs.empty();
}

std::vector<tt::truth_table> lut_network::simulate() const {
  std::vector<tt::truth_table> signals;
  signals.reserve(num_signals());
  for (unsigned v = 0; v < num_inputs; ++v) {
    signals.push_back(tt::truth_table::nth_var(num_inputs, v));
  }
  for (const auto& s : steps) {
    signals.push_back(
        tt::apply_binary_op(s.op, signals[s.fanin[0]], signals[s.fanin[1]]));
  }
  std::vector<tt::truth_table> out;
  out.reserve(outputs.size());
  for (const auto& po : outputs) {
    out.push_back(po.complemented ? ~signals[po.signal]
                                  : signals[po.signal]);
  }
  return out;
}

}  // namespace stpes::allsat
