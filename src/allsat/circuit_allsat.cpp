#include "allsat/circuit_allsat.hpp"

#include <cassert>

namespace stpes::allsat {

bool partial_assignment::matches(std::uint64_t t) const {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= 0 &&
        values[i] != static_cast<std::int8_t>((t >> i) & 1)) {
      return false;
    }
  }
  return true;
}

std::uint64_t partial_assignment::coverage() const {
  unsigned unassigned = 0;
  for (const auto v : values) {
    if (v < 0) {
      ++unassigned;
    }
  }
  return std::uint64_t{1} << unassigned;
}

std::string partial_assignment::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < values.size(); ++i) {
    out += values[i] < 0 ? '-' : static_cast<char>('0' + values[i]);
    if (i + 1 < values.size()) {
      out += ',';
    }
  }
  out += ')';
  return out;
}

namespace {

/// Assignment over *all* signals during the traverse (PIs then steps).
using signal_values = std::vector<std::int8_t>;

}  // namespace

circuit_allsat_result solve_all(const chain::boolean_chain& network,
                                bool target, core::run_context* ctx) {
  const auto net = lut_network::from_chain(network);
  return solve_all(net, std::vector<bool>(net.outputs.size(), target), ctx);
}

circuit_allsat_result solve_all(const lut_network& network,
                                const std::vector<bool>& targets,
                                core::run_context* ctx) {
  assert(targets.size() == network.outputs.size());
  circuit_allsat_result result;
  const unsigned n = network.num_inputs;
  const unsigned total = network.num_signals();
  if (total == 0 || network.outputs.empty()) {
    return result;
  }

  // Lines 1-2 of Algorithm 1: initialize the solution set with the single
  // partial solution pinning every primary output to its target; the
  // per-output MERGE of line 5 is the consistency check when two outputs
  // pin the same signal.
  signal_values initial(total, -1);
  for (std::size_t i = 0; i < network.outputs.size(); ++i) {
    const auto& po = network.outputs[i];
    bool value = targets[i];
    if (po.complemented) {
      value = !value;
    }
    const auto pinned = static_cast<std::int8_t>(value ? 1 : 0);
    if (initial[po.signal] >= 0 && initial[po.signal] != pinned) {
      return result;  // two outputs demand opposite values: UNSAT
    }
    initial[po.signal] = pinned;
  }
  std::vector<signal_values> frontier{initial};

  // Algorithm 2, iteratively: walk the steps top-down.  A step whose value
  // is pinned in a partial solution is expanded through its structural
  // matrix: every fanin pattern producing the pinned value spawns one
  // refined solution; merging is the consistency check against values
  // already pinned by other parents (reconvergence).
  std::uint64_t polls = 0;
  for (unsigned j = static_cast<unsigned>(network.steps.size()); j-- > 0;) {
    const auto& s = network.steps[j];
    const unsigned signal = n + j;
    std::vector<signal_values> next;
    next.reserve(frontier.size());
    for (auto& sol : frontier) {
      if (ctx != nullptr && (++polls & 0x3FF) == 0 && ctx->should_stop()) {
        // Truncated traverse: report unsatisfiable so no caller mistakes
        // the partial frontier for a complete solution set.
        result.satisfiable = false;
        result.solutions.clear();
        return result;
      }
      const auto pinned = sol[signal];
      if (pinned < 0) {
        // Node value irrelevant for this partial solution.
        next.push_back(std::move(sol));
        continue;
      }
      for (unsigned pattern = 0; pattern < 4; ++pattern) {
        const auto a = static_cast<std::int8_t>(pattern & 1);
        const auto b = static_cast<std::int8_t>((pattern >> 1) & 1);
        const auto out =
            static_cast<std::int8_t>((s.op >> ((b << 1) | a)) & 1);
        if (out != pinned) {
          continue;
        }
        ++result.expansions;
        if (ctx != nullptr) {
          ++ctx->counters.allsat_propagations;
        }
        // Merge with existing pins on the fanins.
        const auto va = sol[s.fanin[0]];
        const auto vb = sol[s.fanin[1]];
        if ((va >= 0 && va != a) || (vb >= 0 && vb != b)) {
          continue;
        }
        // Twin fanins must receive consistent values.
        if (s.fanin[0] == s.fanin[1] && a != b) {
          continue;
        }
        if (ctx != nullptr) {
          ++ctx->counters.allsat_merges;
        }
        signal_values refined = sol;
        refined[s.fanin[0]] = a;
        refined[s.fanin[1]] = b;
        next.push_back(std::move(refined));
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) {
      return result;  // UNSAT
    }
  }

  // Project to primary inputs, dropping exact duplicates.
  std::vector<partial_assignment> projected;
  projected.reserve(frontier.size());
  for (const auto& sol : frontier) {
    partial_assignment pa;
    pa.values.assign(sol.begin(), sol.begin() + n);
    bool duplicate = false;
    for (const auto& existing : projected) {
      if (existing.values == pa.values) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      projected.push_back(std::move(pa));
    }
  }
  result.satisfiable = !projected.empty();
  result.solutions = std::move(projected);
  return result;
}

tt::truth_table solutions_to_function(
    unsigned num_inputs, const std::vector<partial_assignment>& solutions) {
  tt::truth_table f{num_inputs};
  for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
    for (const auto& s : solutions) {
      if (s.matches(t)) {
        f.set_bit(t, true);
        break;
      }
    }
  }
  return f;
}

bool verify_chain(const chain::boolean_chain& network,
                  const tt::truth_table& specification) {
  assert(network.num_inputs() == specification.num_vars());
  const auto result = solve_all(network, /*target=*/true);
  const auto realized =
      solutions_to_function(network.num_inputs(), result.solutions);
  return realized == specification;
}

}  // namespace stpes::allsat
