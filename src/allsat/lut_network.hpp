/// \file lut_network.hpp
/// \brief Multi-output 2-LUT networks for the circuit AllSAT solver.
///
/// Algorithm 1 of the paper is stated for networks with several primary
/// outputs (line 3 loops over POs and merges the per-output solution
/// sets).  `boolean_chain` is single-output by design; this thin network
/// type carries the same step list with any number of (possibly
/// complemented) outputs and is what the general solver entry point in
/// `circuit_allsat.hpp` consumes.

#pragma once

#include <cstdint>
#include <vector>

#include "chain/boolean_chain.hpp"
#include "tt/truth_table.hpp"

namespace stpes::allsat {

/// A combinational network of 2-input LUT steps with multiple outputs.
struct lut_network {
  struct output {
    std::uint32_t signal = 0;
    bool complemented = false;
  };

  unsigned num_inputs = 0;
  std::vector<chain::step> steps;
  std::vector<output> outputs;

  /// Wraps a chain, carrying over its full output list.
  static lut_network from_chain(const chain::boolean_chain& chain);

  [[nodiscard]] unsigned num_signals() const {
    return num_inputs + static_cast<unsigned>(steps.size());
  }

  /// Structural sanity (fanins precede steps, outputs exist).
  [[nodiscard]] bool is_well_formed() const;

  /// Truth table of every output.
  [[nodiscard]] std::vector<tt::truth_table> simulate() const;
};

}  // namespace stpes::allsat
