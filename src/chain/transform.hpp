/// \file transform.hpp
/// \brief Structure-preserving chain rewrites: NPN transforms and netlist
///        exports.
///
/// `apply_npn_to_chain` lets a chain synthesized for an NPN class
/// representative serve every member of the class: input permutations
/// re-wire the PI references, input complementations fold into the
/// consuming LUTs (2-LUT steps absorb any input polarity for free — one of
/// the paper's arguments for LUT-shaped solutions), and output
/// complementation folds into the output flag.  This is the mechanism
/// behind `core::npn_cached_synthesizer`.
///
/// The exporters emit standard interchange formats so chains can be handed
/// to downstream tools: BLIF (`.names` per step) and structural Verilog.

#pragma once

#include <string>

#include "chain/boolean_chain.hpp"
#include "tt/npn.hpp"

namespace stpes::chain {

/// Given `chain` computing g and a transform T with
/// `g == apply_npn_transform(f, T)`, returns a chain computing f — i.e.
/// applies T^(-1) structurally.  The result has the same number of steps
/// and the same topology; only PI wiring, step LUTs, and the output flag
/// change.
boolean_chain apply_inverse_npn_to_chain(const boolean_chain& chain,
                                         const tt::npn_transform& transform);

/// Emits the chain as a BLIF model (one `.names` per step).
std::string to_blif(const boolean_chain& chain,
                    const std::string& model_name = "chain");

/// Emits the chain as structural Verilog (one `assign` per step).
std::string to_verilog(const boolean_chain& chain,
                       const std::string& module_name = "chain");

}  // namespace stpes::chain
