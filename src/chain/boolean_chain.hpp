/// \file boolean_chain.hpp
/// \brief Knuth-style Boolean chains over 2-input LUT steps (Section II-B).
///
/// A chain over inputs x_1..x_n is a sequence of steps x_{n+1}..x_{n+r};
/// step i applies an arbitrary 2-input operator (a 4-bit LUT) to two
/// earlier signals.  This is the *output format* of every synthesis engine
/// in this project: the paper stresses that its solutions are 2-LUTs rather
/// than a homogeneous gate library, so downstream cost functions can pick
/// among all optimum chains (see `cost` and `core/selector`).
///
/// Signal numbering: 0..n-1 are primary inputs, n+j is step j.  A chain
/// carries an ordered *list* of outputs; each output is one signal,
/// optionally complemented (Knuth's definition allows f = x_l or !x_l).
/// The historical single-output API (`set_output`/`output`/`simulate`)
/// remains and addresses output 0, so m = 1 callers are unchanged.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "tt/truth_table.hpp"

namespace stpes::chain {

/// One step: `op` is a 4-bit LUT over (fanin[0], fanin[1]) with the
/// bit-(b<<1|a) convention of `tt::apply_binary_op`.
struct step {
  unsigned op = 0;
  std::array<std::uint32_t, 2> fanin{0, 0};

  bool operator==(const step& other) const {
    return op == other.op && fanin == other.fanin;
  }
};

/// One chain output: a signal index plus a complement flag.
struct output_ref {
  std::uint32_t signal = 0;
  bool complemented = false;

  bool operator==(const output_ref& other) const {
    return signal == other.signal && complemented == other.complemented;
  }
};

/// A multi-output Boolean chain (m = 1 in the classic Knuth setting).
class boolean_chain {
public:
  boolean_chain() = default;
  /// Chain with `num_inputs` primary inputs, no steps, one output (x0).
  explicit boolean_chain(unsigned num_inputs);

  [[nodiscard]] unsigned num_inputs() const { return num_inputs_; }
  [[nodiscard]] unsigned num_steps() const {
    return static_cast<unsigned>(steps_.size());
  }
  [[nodiscard]] const std::vector<step>& steps() const { return steps_; }

  /// Appends a step and returns its signal index (num_inputs + position).
  std::uint32_t add_step(unsigned op, std::uint32_t fanin0,
                         std::uint32_t fanin1);

  /// Selects output 0, discarding any further outputs (m = 1 API).
  void set_output(std::uint32_t signal, bool complemented = false);
  /// Output 0's signal (m = 1 API).
  [[nodiscard]] std::uint32_t output() const { return outputs_[0].signal; }
  /// Output 0's complement flag (m = 1 API).
  [[nodiscard]] bool output_complemented() const {
    return outputs_[0].complemented;
  }

  /// \name Multi-output access
  /// @{
  [[nodiscard]] unsigned num_outputs() const {
    return static_cast<unsigned>(outputs_.size());
  }
  [[nodiscard]] const std::vector<output_ref>& outputs() const {
    return outputs_;
  }
  /// Replaces the whole output list (must be non-empty, signals valid).
  void set_outputs(std::vector<output_ref> outputs);
  /// Appends one output and returns its index.
  unsigned add_output(std::uint32_t signal, bool complemented = false);
  /// @}

  /// Structural sanity: every fanin refers to an earlier signal, every
  /// output exists, ops are 4-bit.
  [[nodiscard]] bool is_well_formed() const;

  /// Truth table of every signal (inputs first, then steps).
  [[nodiscard]] std::vector<tt::truth_table> simulate_all() const;
  /// Truth table of chain output 0 (m = 1 API).
  [[nodiscard]] tt::truth_table simulate() const;
  /// Truth table of chain output `index`.
  [[nodiscard]] tt::truth_table simulate_output(unsigned index) const;
  /// Truth tables of all outputs, in output order.
  [[nodiscard]] std::vector<tt::truth_table> simulate_outputs() const;

  /// \name Cost measures for optimum-solution selection
  /// @{
  [[nodiscard]] unsigned size() const { return num_steps(); }
  /// Longest input-to-output path length in steps (max over outputs).
  [[nodiscard]] unsigned depth() const;
  /// Steps whose operator is XOR or XNOR (relevant e.g. when mapping to
  /// technologies where parity gates are expensive, or cheap).
  [[nodiscard]] unsigned xor_count() const;
  /// Steps whose operator is not a positive-unate AND/OR (i.e. involves
  /// some input complementation); a proxy for inverter cost.
  [[nodiscard]] unsigned nontrivial_polarity_count() const;
  /// @}

  /// Human-readable listing, one step per line:
  /// "x5 = 0x8(x0, x1)" style, mirroring Example 7 of the paper.  A
  /// single output prints as "f = x5"; m >= 2 prints "f0 = x5" etc.
  [[nodiscard]] std::string to_string() const;
  /// Graphviz dot rendering.
  [[nodiscard]] std::string to_dot() const;

  /// Stable content hash (for dedup across solution sets).  For m = 1 the
  /// value is identical to the historical single-output hash.
  [[nodiscard]] std::size_t hash() const;
  bool operator==(const boolean_chain& other) const;

private:
  unsigned num_inputs_ = 0;
  std::vector<step> steps_;
  std::vector<output_ref> outputs_{output_ref{}};
};

struct boolean_chain_hash {
  std::size_t operator()(const boolean_chain& c) const { return c.hash(); }
};

}  // namespace stpes::chain
