/// \file boolean_chain.hpp
/// \brief Knuth-style Boolean chains over 2-input LUT steps (Section II-B).
///
/// A chain over inputs x_1..x_n is a sequence of steps x_{n+1}..x_{n+r};
/// step i applies an arbitrary 2-input operator (a 4-bit LUT) to two
/// earlier signals.  This is the *output format* of every synthesis engine
/// in this project: the paper stresses that its solutions are 2-LUTs rather
/// than a homogeneous gate library, so downstream cost functions can pick
/// among all optimum chains (see `cost` and `core/selector`).
///
/// Signal numbering: 0..n-1 are primary inputs, n+j is step j.  The chain
/// output is one signal, optionally complemented (Knuth's definition allows
/// f = x_l or !x_l).

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "tt/truth_table.hpp"

namespace stpes::chain {

/// One step: `op` is a 4-bit LUT over (fanin[0], fanin[1]) with the
/// bit-(b<<1|a) convention of `tt::apply_binary_op`.
struct step {
  unsigned op = 0;
  std::array<std::uint32_t, 2> fanin{0, 0};

  bool operator==(const step& other) const {
    return op == other.op && fanin == other.fanin;
  }
};

/// A single-output Boolean chain.
class boolean_chain {
public:
  boolean_chain() = default;
  /// Chain with `num_inputs` primary inputs and no steps yet.
  explicit boolean_chain(unsigned num_inputs);

  [[nodiscard]] unsigned num_inputs() const { return num_inputs_; }
  [[nodiscard]] unsigned num_steps() const {
    return static_cast<unsigned>(steps_.size());
  }
  [[nodiscard]] const std::vector<step>& steps() const { return steps_; }

  /// Appends a step and returns its signal index (num_inputs + position).
  std::uint32_t add_step(unsigned op, std::uint32_t fanin0,
                         std::uint32_t fanin1);

  /// Selects the output signal.
  void set_output(std::uint32_t signal, bool complemented = false);
  [[nodiscard]] std::uint32_t output() const { return output_; }
  [[nodiscard]] bool output_complemented() const {
    return output_complemented_;
  }

  /// Structural sanity: every fanin refers to an earlier signal, the
  /// output exists, ops are 4-bit.
  [[nodiscard]] bool is_well_formed() const;

  /// Truth table of every signal (inputs first, then steps).
  [[nodiscard]] std::vector<tt::truth_table> simulate_all() const;
  /// Truth table of the chain output.
  [[nodiscard]] tt::truth_table simulate() const;

  /// \name Cost measures for optimum-solution selection
  /// @{
  [[nodiscard]] unsigned size() const { return num_steps(); }
  /// Longest input-to-output path length in steps.
  [[nodiscard]] unsigned depth() const;
  /// Steps whose operator is XOR or XNOR (relevant e.g. when mapping to
  /// technologies where parity gates are expensive, or cheap).
  [[nodiscard]] unsigned xor_count() const;
  /// Steps whose operator is not a positive-unate AND/OR (i.e. involves
  /// some input complementation); a proxy for inverter cost.
  [[nodiscard]] unsigned nontrivial_polarity_count() const;
  /// @}

  /// Human-readable listing, one step per line:
  /// "x5 = 0x8(x0, x1)" style, mirroring Example 7 of the paper.
  [[nodiscard]] std::string to_string() const;
  /// Graphviz dot rendering.
  [[nodiscard]] std::string to_dot() const;

  /// Stable content hash (for dedup across solution sets).
  [[nodiscard]] std::size_t hash() const;
  bool operator==(const boolean_chain& other) const;

private:
  unsigned num_inputs_ = 0;
  std::vector<step> steps_;
  std::uint32_t output_ = 0;
  bool output_complemented_ = false;
};

struct boolean_chain_hash {
  std::size_t operator()(const boolean_chain& c) const { return c.hash(); }
};

}  // namespace stpes::chain
