#include "chain/transform.hpp"

#include <cassert>

namespace stpes::chain {

namespace {

/// Rewrites a 2-input LUT so that selected inputs are complemented:
/// op'(a, b) = op(a ^ neg0, b ^ neg1).
unsigned fold_input_negations(unsigned op, bool neg0, bool neg1) {
  unsigned out = 0;
  for (unsigned pattern = 0; pattern < 4; ++pattern) {
    const unsigned a = (pattern & 1) ^ (neg0 ? 1u : 0u);
    const unsigned b = ((pattern >> 1) & 1) ^ (neg1 ? 1u : 0u);
    if ((op >> ((b << 1) | a)) & 1) {
      out |= 1u << pattern;
    }
  }
  return out;
}

}  // namespace

boolean_chain apply_inverse_npn_to_chain(
    const boolean_chain& chain, const tt::npn_transform& transform) {
  const unsigned n = chain.num_inputs();
  assert(transform.perm.size() == n);
  // g(x) = f(y) ^ out_neg with y[perm[i]] = x[i] ^ neg[i], hence
  // f(y) = g(x(y)) ^ out_neg with x[i] = y[perm[i]] ^ neg[i]: every PI
  // reference i becomes perm[i], complemented iff neg[i].
  boolean_chain result{n};
  for (const auto& st : chain.steps()) {
    unsigned op = st.op;
    std::array<std::uint32_t, 2> fanin = st.fanin;
    bool neg[2] = {false, false};
    for (int pos = 0; pos < 2; ++pos) {
      if (fanin[static_cast<std::size_t>(pos)] < n) {
        const auto i = fanin[static_cast<std::size_t>(pos)];
        neg[pos] = ((transform.input_negation >> i) & 1) != 0;
        fanin[static_cast<std::size_t>(pos)] = transform.perm[i];
      }
    }
    op = fold_input_negations(op, neg[0], neg[1]);
    result.add_step(op, fanin[0], fanin[1]);
  }
  // The NPN transform carries a single output-negation bit, so it applies
  // to output 0; further outputs (the cache only stores m = 1 chains, but
  // the rewrite is total anyway) keep their own polarity modulo PI rewiring.
  std::vector<output_ref> outputs = chain.outputs();
  for (std::size_t h = 0; h < outputs.size(); ++h) {
    auto& o = outputs[h];
    if (o.signal < n) {
      // Output is a PI: rewire and absorb its polarity.
      o.complemented ^= ((transform.input_negation >> o.signal) & 1) != 0;
      o.signal = transform.perm[o.signal];
    }
    if (h == 0 && transform.output_negation) {
      o.complemented = !o.complemented;
    }
  }
  result.set_outputs(std::move(outputs));
  return result;
}

std::string to_blif(const boolean_chain& chain,
                    const std::string& model_name) {
  const unsigned n = chain.num_inputs();
  const unsigned m = chain.num_outputs();
  auto out_name = [&](unsigned h) {
    return m == 1 ? std::string{"f"} : "f" + std::to_string(h);
  };
  std::string out = ".model " + model_name + "\n.inputs";
  for (unsigned v = 0; v < n; ++v) {
    out += " x" + std::to_string(v);
  }
  out += "\n.outputs";
  for (unsigned h = 0; h < m; ++h) {
    out += " " + out_name(h);
  }
  out += "\n";
  for (std::size_t j = 0; j < chain.steps().size(); ++j) {
    const auto& st = chain.steps()[j];
    out += ".names x" + std::to_string(st.fanin[0]) + " x" +
           std::to_string(st.fanin[1]) + " x" + std::to_string(n + j) + "\n";
    for (unsigned pattern = 0; pattern < 4; ++pattern) {
      if ((st.op >> pattern) & 1) {
        out += std::string{} + static_cast<char>('0' + (pattern & 1)) +
               static_cast<char>('0' + ((pattern >> 1) & 1)) + " 1\n";
      }
    }
  }
  for (unsigned h = 0; h < m; ++h) {
    const auto& o = chain.outputs()[h];
    out += ".names x" + std::to_string(o.signal) + " " + out_name(h) + "\n";
    out += o.complemented ? "0 1\n" : "1 1\n";
  }
  out += ".end\n";
  return out;
}

std::string to_verilog(const boolean_chain& chain,
                       const std::string& module_name) {
  const unsigned n = chain.num_inputs();
  const unsigned m = chain.num_outputs();
  auto out_name = [&](unsigned h) {
    return m == 1 ? std::string{"f"} : "f" + std::to_string(h);
  };
  std::string out = "module " + module_name + "(";
  for (unsigned v = 0; v < n; ++v) {
    out += "x" + std::to_string(v) + ", ";
  }
  for (unsigned h = 0; h < m; ++h) {
    out += out_name(h) + (h + 1 == m ? "" : ", ");
  }
  out += ");\n";
  for (unsigned v = 0; v < n; ++v) {
    out += "  input x" + std::to_string(v) + ";\n";
  }
  for (unsigned h = 0; h < m; ++h) {
    out += "  output " + out_name(h) + ";\n";
  }
  for (std::size_t j = 0; j < chain.steps().size(); ++j) {
    out += "  wire x" + std::to_string(n + j) + ";\n";
  }
  for (std::size_t j = 0; j < chain.steps().size(); ++j) {
    const auto& st = chain.steps()[j];
    const std::string a = "x" + std::to_string(st.fanin[0]);
    const std::string b = "x" + std::to_string(st.fanin[1]);
    // Sum-of-products of the LUT.
    std::string expr;
    for (unsigned pattern = 0; pattern < 4; ++pattern) {
      if (((st.op >> pattern) & 1) == 0) {
        continue;
      }
      if (!expr.empty()) {
        expr += " | ";
      }
      expr += "(" + std::string{(pattern & 1) ? "" : "~"} + a + " & " +
              std::string{((pattern >> 1) & 1) ? "" : "~"} + b + ")";
    }
    if (expr.empty()) {
      expr = "1'b0";
    }
    out += "  assign x" + std::to_string(n + j) + " = " + expr + ";\n";
  }
  for (unsigned h = 0; h < m; ++h) {
    const auto& o = chain.outputs()[h];
    out += "  assign " + out_name(h) + " = " +
           std::string{o.complemented ? "~" : ""} + "x" +
           std::to_string(o.signal) + ";\n";
  }
  out += "endmodule\n";
  return out;
}

}  // namespace stpes::chain
