#include "chain/boolean_chain.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace stpes::chain {

boolean_chain::boolean_chain(unsigned num_inputs)
    : num_inputs_(num_inputs) {}

std::uint32_t boolean_chain::add_step(unsigned op, std::uint32_t fanin0,
                                      std::uint32_t fanin1) {
  const std::uint32_t index = num_inputs_ + num_steps();
  if (fanin0 >= index || fanin1 >= index) {
    throw std::invalid_argument{"boolean_chain: fanin must precede step"};
  }
  steps_.push_back(step{op & 0xF, {fanin0, fanin1}});
  return index;
}

void boolean_chain::set_output(std::uint32_t signal, bool complemented) {
  if (signal >= num_inputs_ + num_steps()) {
    throw std::invalid_argument{"boolean_chain: bad output signal"};
  }
  outputs_.assign(1, output_ref{signal, complemented});
}

void boolean_chain::set_outputs(std::vector<output_ref> outputs) {
  if (outputs.empty()) {
    throw std::invalid_argument{"boolean_chain: empty output list"};
  }
  for (const auto& o : outputs) {
    if (o.signal >= num_inputs_ + num_steps()) {
      throw std::invalid_argument{"boolean_chain: bad output signal"};
    }
  }
  outputs_ = std::move(outputs);
}

unsigned boolean_chain::add_output(std::uint32_t signal, bool complemented) {
  if (signal >= num_inputs_ + num_steps()) {
    throw std::invalid_argument{"boolean_chain: bad output signal"};
  }
  outputs_.push_back(output_ref{signal, complemented});
  return num_outputs() - 1;
}

bool boolean_chain::is_well_formed() const {
  for (std::size_t j = 0; j < steps_.size(); ++j) {
    const auto limit = num_inputs_ + j;
    if (steps_[j].fanin[0] >= limit || steps_[j].fanin[1] >= limit ||
        steps_[j].op > 0xF) {
      return false;
    }
  }
  if (outputs_.empty()) {
    return false;
  }
  for (const auto& o : outputs_) {
    if (o.signal >= num_inputs_ + num_steps() &&
        !(num_inputs_ == 0 && steps_.empty())) {
      return false;
    }
  }
  return true;
}

std::vector<tt::truth_table> boolean_chain::simulate_all() const {
  std::vector<tt::truth_table> signals;
  signals.reserve(num_inputs_ + steps_.size());
  for (unsigned v = 0; v < num_inputs_; ++v) {
    signals.push_back(tt::truth_table::nth_var(num_inputs_, v));
  }
  for (const auto& s : steps_) {
    signals.push_back(tt::apply_binary_op(s.op, signals[s.fanin[0]],
                                          signals[s.fanin[1]]));
  }
  return signals;
}

tt::truth_table boolean_chain::simulate() const { return simulate_output(0); }

tt::truth_table boolean_chain::simulate_output(unsigned index) const {
  const auto signals = simulate_all();
  if (signals.empty()) {
    throw std::logic_error{"boolean_chain: nothing to simulate"};
  }
  if (index >= outputs_.size()) {
    throw std::out_of_range{"boolean_chain: bad output index"};
  }
  const auto& o = outputs_[index];
  const auto& out = signals[o.signal];
  return o.complemented ? ~out : out;
}

std::vector<tt::truth_table> boolean_chain::simulate_outputs() const {
  const auto signals = simulate_all();
  if (signals.empty()) {
    throw std::logic_error{"boolean_chain: nothing to simulate"};
  }
  std::vector<tt::truth_table> out;
  out.reserve(outputs_.size());
  for (const auto& o : outputs_) {
    out.push_back(o.complemented ? ~signals[o.signal] : signals[o.signal]);
  }
  return out;
}

unsigned boolean_chain::depth() const {
  std::vector<unsigned> level(num_inputs_ + steps_.size(), 0);
  for (std::size_t j = 0; j < steps_.size(); ++j) {
    const auto& s = steps_[j];
    level[num_inputs_ + j] =
        1 + std::max(level[s.fanin[0]], level[s.fanin[1]]);
  }
  if (level.empty()) {
    return 0;
  }
  unsigned max_level = 0;
  for (const auto& o : outputs_) {
    max_level = std::max(max_level, level[o.signal]);
  }
  return max_level;
}

unsigned boolean_chain::xor_count() const {
  unsigned count = 0;
  for (const auto& s : steps_) {
    if (s.op == 0x6 || s.op == 0x9) {
      ++count;
    }
  }
  return count;
}

unsigned boolean_chain::nontrivial_polarity_count() const {
  unsigned count = 0;
  for (const auto& s : steps_) {
    // Positive-unate 2-input operators: AND (0x8) and OR (0xE); everything
    // else needs at least one complemented input or output.
    if (s.op != 0x8 && s.op != 0xE) {
      ++count;
    }
  }
  return count;
}

std::string boolean_chain::to_string() const {
  static constexpr char kHex[] = "0123456789abcdef";
  auto signal_name = [&](std::uint32_t s) {
    return "x" + std::to_string(s);
  };
  std::string out;
  for (std::size_t j = 0; j < steps_.size(); ++j) {
    const auto& s = steps_[j];
    out += signal_name(num_inputs_ + static_cast<std::uint32_t>(j));
    out += " = 0x";
    out += kHex[s.op];
    out += "(" + signal_name(s.fanin[0]) + ", " + signal_name(s.fanin[1]) +
           ")\n";
  }
  for (std::size_t h = 0; h < outputs_.size(); ++h) {
    out += outputs_.size() == 1 ? "f" : "f" + std::to_string(h);
    out += " = ";
    if (outputs_[h].complemented) {
      out += "!";
    }
    out += signal_name(outputs_[h].signal) + "\n";
  }
  return out;
}

std::string boolean_chain::to_dot() const {
  std::string out = "digraph chain {\n  rankdir=BT;\n";
  for (unsigned v = 0; v < num_inputs_; ++v) {
    out += "  x" + std::to_string(v) + " [shape=circle];\n";
  }
  static constexpr char kHex[] = "0123456789abcdef";
  for (std::size_t j = 0; j < steps_.size(); ++j) {
    const auto id = num_inputs_ + j;
    out += "  x" + std::to_string(id) + " [shape=box,label=\"x" +
           std::to_string(id) + "\\n0x";
    out += kHex[steps_[j].op];
    out += "\"];\n";
    for (const auto fi : steps_[j].fanin) {
      out += "  x" + std::to_string(fi) + " -> x" + std::to_string(id) +
             ";\n";
    }
  }
  for (std::size_t h = 0; h < outputs_.size(); ++h) {
    const std::string name =
        outputs_.size() == 1 ? "f" : "f" + std::to_string(h);
    const std::string node = outputs_.size() == 1 ? "out" : "out" +
        std::to_string(h);
    out += "  " + node + " [shape=plaintext,label=\"" + name +
           std::string(outputs_[h].complemented ? " = !" : " = ") + "x" +
           std::to_string(outputs_[h].signal) + "\"];\n";
    out += "  x" + std::to_string(outputs_[h].signal) + " -> " + node +
           ";\n";
  }
  out += "}\n";
  return out;
}

std::size_t boolean_chain::hash() const {
  std::size_t h = 0xcbf29ce484222325ull ^ num_inputs_;
  auto mix = [&h](std::size_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  for (const auto& s : steps_) {
    mix(s.op);
    mix(s.fanin[0]);
    mix(s.fanin[1]);
  }
  // One (signal, complement) pair per output: for m = 1 this is the exact
  // historical hash, so solution dedup and ordering are unchanged.
  for (const auto& o : outputs_) {
    mix(o.signal);
    mix(o.complemented ? 1 : 0);
  }
  return h;
}

bool boolean_chain::operator==(const boolean_chain& other) const {
  return num_inputs_ == other.num_inputs_ && steps_ == other.steps_ &&
         outputs_ == other.outputs_;
}

}  // namespace stpes::chain
