#include "route/health.hpp"

namespace stpes::route {

const char* to_string(backend_health h) {
  return h == backend_health::healthy ? "healthy" : "down";
}

bool health_tracker::attemptable(std::size_t idx,
                                 clock::time_point now) const {
  std::lock_guard<std::mutex> lock{mutex_};
  return attemptable_locked(backends_[idx], now);
}

bool health_tracker::healthy(std::size_t idx) const {
  std::lock_guard<std::mutex> lock{mutex_};
  return backends_[idx].pub.state == backend_health::healthy;
}

bool health_tracker::attemptable_locked(const state& s,
                                        clock::time_point now) const {
  if (s.pub.state == backend_health::healthy) {
    return true;
  }
  return now - s.down_since >= std::chrono::milliseconds(probation_ms_);
}

void health_tracker::record_success(std::size_t idx) {
  std::lock_guard<std::mutex> lock{mutex_};
  auto& s = backends_[idx];
  ++s.pub.successes_total;
  s.pub.consecutive_failures = 0;
  if (s.pub.state == backend_health::down) {
    s.pub.state = backend_health::healthy;
    ++s.pub.readmissions;
  }
}

void health_tracker::record_failure(std::size_t idx, clock::time_point now) {
  std::lock_guard<std::mutex> lock{mutex_};
  auto& s = backends_[idx];
  ++s.pub.failures_total;
  ++s.pub.consecutive_failures;
  if (s.pub.state == backend_health::healthy) {
    if (s.pub.consecutive_failures >= fail_threshold_) {
      s.pub.state = backend_health::down;
      s.down_since = now;
      ++s.pub.ejections;
    }
  } else {
    // A failed probation trial: refresh the window so the next attempt
    // waits another full probation period.
    s.down_since = now;
  }
}

unsigned health_tracker::retry_hint_ms(unsigned floor_ms,
                                       clock::time_point now) const {
  std::lock_guard<std::mutex> lock{mutex_};
  bool any = false;
  std::chrono::milliseconds best{0};
  for (const auto& s : backends_) {
    if (attemptable_locked(s, now)) {
      return floor_ms;  // something is usable right now
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            s.down_since + std::chrono::milliseconds(probation_ms_) - now);
    if (!any || remaining < best) {
      best = remaining;
      any = true;
    }
  }
  const auto hint = any ? static_cast<unsigned>(best.count()) : floor_ms;
  return hint > floor_ms ? hint : floor_ms;
}

backend_status health_tracker::status(std::size_t idx) const {
  std::lock_guard<std::mutex> lock{mutex_};
  return backends_[idx].pub;
}

std::vector<backend_status> health_tracker::snapshot() const {
  std::lock_guard<std::mutex> lock{mutex_};
  std::vector<backend_status> out;
  out.reserve(backends_.size());
  for (const auto& s : backends_) {
    out.push_back(s.pub);
  }
  return out;
}

}  // namespace stpes::route
