/// \file router.hpp
/// \brief The routing tier: consistent-hash failover over N daemons.
///
/// `route::router` is a `session_host` like `synthesis_server`, so it
/// runs behind the same Unix/TCP listeners — clients speak the ordinary
/// line protocol to it and never learn the topology.  Per request:
///
///   1. Parse and validate (a malformed request dies here with `ERR`,
///      never touching a backend).
///   2. Key it: single-output requests by NPN class (n <= 5, the same
///      canonization the shard caches use), everything else by the raw
///      function list — so one class always hits one shard's warm cache.
///   3. Walk the ring's preference order.  Each attemptable replica gets
///      the request through that session's `resilient_client` (connect/
///      read deadlines, capped backoff, BUSY floors); a transport failure
///      feeds the health tracker and fails over to the next replica.
///   4. If every replica is down: reply `BUSY retry-after <hint>` where
///      the hint is computed from the earliest probation expiry — the
///      degraded mode that keeps callers backing off instead of hanging.
///
/// Health is tracked two ways at once: passively (request-path transport
/// failures) and actively (a prober thread STATS-pinging every backend on
/// an interval).  `fail_threshold` consecutive failures eject a backend;
/// after `probation_ms` one successful trial readmits it.  The probe loop
/// evaluates the `route.probe` failpoint, so chaos tests can blackhole
/// probes without any real network fault.
///
/// BUSY from a live backend is *forwarded*, not failed over: an
/// overloaded shard asked for backpressure, and bouncing its load onto
/// the next replica would destroy both cache locality and the shedding
/// math.  Only dead transports fail over.
///
/// `BATCH` is decomposed: each body line routes independently to its own
/// home shard, and the replies are reassembled into `RESULT <i>` blocks
/// in request order — the counted framing guarantees a reply for every
/// request even when shards die mid-batch.  A request that could not be
/// served lands as `RESULT <i> busy|error 0 0 0 <reason...>` (trailing
/// tokens, compatible with count-driven readers).

#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "route/health.hpp"
#include "route/ring.hpp"
#include "server/protocol.hpp"
#include "server/resilient_client.hpp"
#include "server/session_host.hpp"

namespace stpes::route {

struct router_options {
  /// Backend endpoint specs (`unix:/path`, `/path`, or `host:port`).
  std::vector<std::string> backends;
  unsigned vnodes = 64;  ///< ring points per backend
  /// Consecutive transport failures before a backend is ejected.
  unsigned fail_threshold = 3;
  /// How long an ejected backend sits out before a readmission trial.
  unsigned probation_ms = 2000;
  /// Active probe cadence (0 = passive health only).
  unsigned probe_interval_ms = 500;
  /// Per-backend retry behaviour of the forwarding clients.  Note
  /// `max_attempts` here is attempts *per backend*; ring failover
  /// multiplies by the replica count.
  server::retry_policy backend_policy{
      .max_attempts = 2,
      .connect_timeout_ms = 1000,
      .io_timeout_ms = 30000,
      .base_backoff_ms = 5,
      .max_backoff_ms = 200,
      .jitter_seed = 0x5eedULL,
  };
  /// Floor for degraded-mode BUSY retry hints.
  unsigned min_retry_hint_ms = 50;
  double drain_grace_seconds = 1.0;
  double idle_timeout_seconds = 0.0;
  server::request_limits limits;
};

/// Router-level counters, all surfaced through its STATS verbs.
struct router_counters {
  std::uint64_t sessions = 0;
  std::uint64_t commands = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t routed_ok = 0;     ///< OK replies relayed
  std::uint64_t routed_busy = 0;   ///< backend BUSY relayed (backpressure)
  std::uint64_t routed_error = 0;  ///< backend ERR relayed
  std::uint64_t failovers = 0;     ///< served by a non-home replica
  std::uint64_t degraded_busy = 0;  ///< all replicas down -> BUSY
  std::uint64_t backend_failures = 0;  ///< transport failures observed
  std::uint64_t idle_timeouts = 0;
  std::uint64_t probes_ok = 0;
  std::uint64_t probes_failed = 0;
  // Aggregated resilient_client metrics across all sessions + prober.
  std::uint64_t client_retries = 0;
  std::uint64_t client_reconnects = 0;
  std::uint64_t client_busy_backoffs = 0;
  std::uint64_t client_io_timeouts = 0;
  std::uint64_t client_backoff_ms = 0;
};

class router : public server::session_host {
public:
  /// Validates every endpoint spec eagerly (throws on a malformed one)
  /// but connects lazily.  Probing starts with `start_probes()`.
  explicit router(router_options opts);
  ~router() override;

  router(const router&) = delete;
  router& operator=(const router&) = delete;

  // session_host
  void serve(std::istream& in, std::ostream& out) override;
  void begin_drain() override;
  [[nodiscard]] bool shutdown_requested() const override {
    return shutdown_.load(std::memory_order_acquire);
  }
  void cancel_inflight_jobs() override {}  // forwards are deadline-bounded
  [[nodiscard]] double drain_grace_seconds() const override {
    return options_.drain_grace_seconds;
  }
  [[nodiscard]] double idle_timeout_seconds() const override {
    return options_.idle_timeout_seconds;
  }
  void note_idle_timeout() override {
    idle_timeouts_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Starts / stops the active prober thread.  Idempotent.
  void start_probes();
  void stop_probes();

  /// One synchronous probe round over every attemptable backend —
  /// exactly what the prober thread runs per interval.  Exposed so tests
  /// drive health transitions deterministically, without sleeping.
  void probe_once();

  [[nodiscard]] router_counters counters() const;
  [[nodiscard]] std::string stats_text() const;
  [[nodiscard]] std::string stats_json() const;

  [[nodiscard]] const hash_ring& ring() const { return ring_; }
  [[nodiscard]] health_tracker& health() { return health_; }
  [[nodiscard]] const router_options& options() const { return options_; }

  /// The routing key of a parsed request — NPN-canonical for
  /// single-output n <= 5 (mirrors the shard caches), raw otherwise.
  [[nodiscard]] static std::string request_key(
      const server::synth_args& args);

private:
  /// One session's lazily-created per-backend clients plus the metric
  /// snapshots used to flush deltas into the router-wide aggregates.
  struct session_clients;

  bool handle_line(const std::string& line, std::istream& in,
                   std::ostream& out, session_clients& clients);
  void route_synth(const std::string& line,
                   const std::vector<std::string>& tokens, std::ostream& out,
                   session_clients& clients);
  bool route_batch(std::istream& in, std::ostream& out,
                   session_clients& clients);

  /// Routes one serialized SYNTH line; returns the raw reply to relay
  /// (head + chain lines) or empty when every replica is down (the
  /// caller writes the degraded reply).  `served_by` reports the replica.
  [[nodiscard]] std::string forward(const server::synth_args& args,
                                    const std::string& line,
                                    session_clients& clients,
                                    bool* busy_reply, bool* err_reply);

  void probe_loop();
  void absorb_metrics(const server::client_metrics& total,
                      server::client_metrics& last_seen);

  router_options options_;
  std::vector<server::endpoint> endpoints_;
  hash_ring ring_;
  health_tracker health_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdown_{false};

  std::atomic<std::uint64_t> sessions_{0};
  std::atomic<std::uint64_t> commands_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
  std::atomic<std::uint64_t> routed_ok_{0};
  std::atomic<std::uint64_t> routed_busy_{0};
  std::atomic<std::uint64_t> routed_error_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> degraded_busy_{0};
  std::atomic<std::uint64_t> backend_failures_{0};
  std::atomic<std::uint64_t> idle_timeouts_{0};
  std::atomic<std::uint64_t> probes_ok_{0};
  std::atomic<std::uint64_t> probes_failed_{0};
  std::atomic<std::uint64_t> client_retries_{0};
  std::atomic<std::uint64_t> client_reconnects_{0};
  std::atomic<std::uint64_t> client_busy_backoffs_{0};
  std::atomic<std::uint64_t> client_io_timeouts_{0};
  std::atomic<std::uint64_t> client_backoff_ms_{0};

  std::thread prober_;
  std::atomic<bool> probing_{false};
  /// Prober's own clients (never shared with sessions) + metric shadows.
  std::vector<std::unique_ptr<server::resilient_client>> probe_clients_;
  std::vector<server::client_metrics> probe_metrics_seen_;
};

}  // namespace stpes::route
