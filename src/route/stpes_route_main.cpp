/// \file stpes_route_main.cpp
/// \brief The `stpes-route` binary: a consistent-hash router front-end.
///
/// Sits in front of N `stpes-serve` daemons and speaks the same line
/// protocol to clients, so pointing an existing client at the router is a
/// config change, not a code change:
///
///     stpes-route --listen=HOST:PORT --backend=host:port
///                 [--backend=unix:/path ...]
///                 [--vnodes=N] [--fail-threshold=N] [--probation-ms=MS]
///                 [--probe-interval-ms=MS] [--backend-attempts=N]
///                 [--connect-timeout-ms=MS] [--io-timeout-ms=MS]
///                 [--retry-hint-ms=MS] [--idle-timeout=S]
///                 [--drain-grace=S]
///     stpes-route --socket=PATH ...   # Unix-socket front, TCP backends
///     stpes-route --pipe ...          # one session on stdin/stdout
///
/// Requests hash by NPN class to a home shard (warm caches stay disjoint),
/// fail over along the ring when shards die, and degrade to
/// `BUSY retry-after <ms>` when every replica is down.  Health is both
/// passive (request-path failures) and active (`--probe-interval-ms`
/// pings).  SIGTERM/SIGINT drain exactly like the daemon.

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "route/router.hpp"
#include "server/socket_server.hpp"
#include "server/tcp_socket_server.hpp"
#include "util/failpoint.hpp"

namespace {

struct cli_options {
  std::string socket_path;
  std::string listen_spec;
  bool pipe = false;
  stpes::route::router_options router;
};

[[noreturn]] void usage(const char* argv0, const std::string& reason = "") {
  if (!reason.empty()) {
    std::cerr << argv0 << ": " << reason << "\n";
  }
  std::cerr << "usage: " << argv0
            << " (--socket=PATH | --listen=HOST:PORT | --pipe)"
               " --backend=SPEC [--backend=SPEC ...]"
               " [--vnodes=N] [--fail-threshold=N] [--probation-ms=MS]"
               " [--probe-interval-ms=MS] [--backend-attempts=N]"
               " [--connect-timeout-ms=MS] [--io-timeout-ms=MS]"
               " [--retry-hint-ms=MS] [--idle-timeout=S] [--drain-grace=S]"
               "\n  SPEC is unix:/path, /path, or host:port\n";
  std::exit(2);
}

unsigned parse_unsigned(const char* argv0, const std::string& flag,
                        const std::string& v) {
  std::size_t pos = 0;
  unsigned long out = 0;
  try {
    out = std::stoul(v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != v.size() || v.empty() || out > ~0u) {
    usage(argv0, "--" + flag + " wants a non-negative integer, got '" + v +
                     "'");
  }
  return static_cast<unsigned>(out);
}

double parse_seconds(const char* argv0, const std::string& flag,
                     const std::string& v) {
  std::size_t pos = 0;
  double out = 0.0;
  try {
    out = std::stod(v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != v.size() || v.empty() || out < 0.0) {
    usage(argv0, "--" + flag + " wants non-negative seconds, got '" + v +
                     "'");
  }
  return out;
}

cli_options parse_cli(int argc, char** argv) {
  cli_options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const std::string& name) -> std::string {
      const std::string prefix = "--" + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.substr(prefix.size())
                                       : std::string{};
    };
    if (arg == "--pipe") {
      opts.pipe = true;
    } else if (auto v = value("socket"); !v.empty()) {
      opts.socket_path = v;
    } else if (auto v = value("listen"); !v.empty()) {
      opts.listen_spec = v;
    } else if (auto v = value("backend"); !v.empty()) {
      opts.router.backends.push_back(v);
    } else if (auto v = value("vnodes"); !v.empty()) {
      opts.router.vnodes = parse_unsigned(argv[0], "vnodes", v);
    } else if (auto v = value("fail-threshold"); !v.empty()) {
      opts.router.fail_threshold =
          parse_unsigned(argv[0], "fail-threshold", v);
    } else if (auto v = value("probation-ms"); !v.empty()) {
      opts.router.probation_ms = parse_unsigned(argv[0], "probation-ms", v);
    } else if (auto v = value("probe-interval-ms"); !v.empty()) {
      opts.router.probe_interval_ms =
          parse_unsigned(argv[0], "probe-interval-ms", v);
    } else if (auto v = value("backend-attempts"); !v.empty()) {
      opts.router.backend_policy.max_attempts =
          parse_unsigned(argv[0], "backend-attempts", v);
    } else if (auto v = value("connect-timeout-ms"); !v.empty()) {
      opts.router.backend_policy.connect_timeout_ms =
          parse_unsigned(argv[0], "connect-timeout-ms", v);
    } else if (auto v = value("io-timeout-ms"); !v.empty()) {
      opts.router.backend_policy.io_timeout_ms =
          parse_unsigned(argv[0], "io-timeout-ms", v);
    } else if (auto v = value("retry-hint-ms"); !v.empty()) {
      opts.router.min_retry_hint_ms =
          parse_unsigned(argv[0], "retry-hint-ms", v);
    } else if (auto v = value("idle-timeout"); !v.empty()) {
      opts.router.idle_timeout_seconds =
          parse_seconds(argv[0], "idle-timeout", v);
    } else if (auto v = value("drain-grace"); !v.empty()) {
      opts.router.drain_grace_seconds =
          parse_seconds(argv[0], "drain-grace", v);
    } else {
      usage(argv[0], "unknown argument '" + arg + "'");
    }
  }
  const int transports = (opts.pipe ? 1 : 0) +
                         (opts.socket_path.empty() ? 0 : 1) +
                         (opts.listen_spec.empty() ? 0 : 1);
  if (transports != 1) {
    usage(argv[0], "pick exactly one of --socket, --listen, --pipe");
  }
  if (opts.router.backends.empty()) {
    usage(argv[0], "at least one --backend=SPEC is required");
  }
  if (opts.router.vnodes == 0) {
    usage(argv[0], "--vnodes must be >= 1");
  }
  return opts;
}

stpes::server::stream_listener* g_listener = nullptr;

void on_signal(int) {
  if (g_listener != nullptr) {
    g_listener->stop();  // async-signal-safe: atomic + pipe write
  }
}

void install_signal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  struct sigaction ign{};
  ign.sa_handler = SIG_IGN;
  sigemptyset(&ign.sa_mask);
  sigaction(SIGPIPE, &ign, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stpes;

  const auto cli = parse_cli(argc, argv);

  if (util::failpoints_compiled_in()) {
    const auto armed = util::failpoint_registry::instance().load_from_env();
    if (armed > 0) {
      std::cerr << "stpes-route: armed " << armed
                << " failpoint(s) from STPES_FAILPOINTS\n";
    }
  }

  try {
    route::router router{cli.router};  // validates backend specs eagerly
    router.start_probes();
    if (cli.pipe) {
      std::cerr << "stpes-route: pipe mode, "
                << cli.router.backends.size() << " backend(s)\n";
      router.serve(std::cin, std::cout);
    } else if (!cli.listen_spec.empty()) {
      const auto spec = server::tcp_listen_spec::parse(cli.listen_spec);
      server::tcp_socket_server listener{router, spec};
      g_listener = &listener;
      install_signal_handlers();
      std::cerr << "stpes-route: listening on " << spec.host << ":"
                << listener.port() << ", " << cli.router.backends.size()
                << " backend(s)\n";
      listener.run();
      g_listener = nullptr;
    } else {
      server::unix_socket_server listener{router, cli.socket_path};
      g_listener = &listener;
      install_signal_handlers();
      std::cerr << "stpes-route: listening on " << cli.socket_path << ", "
                << cli.router.backends.size() << " backend(s)\n";
      listener.run();
      g_listener = nullptr;
    }
    router.stop_probes();
  } catch (const std::exception& e) {
    std::cerr << "stpes-route: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "stpes-route: drained, exiting\n";
  return 0;
}
