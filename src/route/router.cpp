#include "route/router.hpp"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>

#include "tt/npn.hpp"
#include "util/failpoint.hpp"

namespace stpes::route {

using server::client_metrics;
using server::resilient_client;
using server::retry_policy;

struct router::session_clients {
  explicit session_clients(router& r) : owner(r) {
    clients.resize(r.endpoints_.size());
    last_seen.resize(r.endpoints_.size());
  }
  ~session_clients() { flush(); }

  resilient_client& get(std::size_t idx) {
    if (clients[idx] == nullptr) {
      clients[idx] = std::make_unique<resilient_client>(
          owner.endpoints_[idx], owner.options_.backend_policy);
    }
    return *clients[idx];
  }

  /// Pushes this session's client-metric deltas into the router-wide
  /// aggregates (called after every routed request so STATS is live).
  void flush() {
    for (std::size_t i = 0; i < clients.size(); ++i) {
      if (clients[i] != nullptr) {
        owner.absorb_metrics(clients[i]->metrics(), last_seen[i]);
      }
    }
  }

  router& owner;
  std::vector<std::unique_ptr<resilient_client>> clients;
  std::vector<client_metrics> last_seen;
};

namespace {

retry_policy probe_policy(const retry_policy& base) {
  retry_policy p = base;
  p.max_attempts = 1;  // a probe is one trial; the tracker does the rest
  return p;
}

}  // namespace

router::router(router_options opts)
    : options_(std::move(opts)),
      ring_(options_.backends, options_.vnodes),
      health_(options_.backends.size(), options_.fail_threshold,
              options_.probation_ms) {
  if (options_.backends.empty()) {
    throw std::runtime_error{"router needs at least one backend"};
  }
  endpoints_.reserve(options_.backends.size());
  for (const auto& spec : options_.backends) {
    endpoints_.push_back(server::endpoint::parse(spec));  // throws on junk
  }
  probe_clients_.resize(endpoints_.size());
  probe_metrics_seen_.resize(endpoints_.size());
}

router::~router() { stop_probes(); }

std::string router::request_key(const server::synth_args& args) {
  std::ostringstream key;
  if (args.functions.empty()) {
    const auto& f = args.function;
    if (f.num_vars() <= 5) {
      // The same canonization the shard caches key on: every member of
      // an NPN class routes to the class's one warm shard.
      key << "npn1:" << f.num_vars() << ":"
          << tt::exact_npn_canonize(f).canonical.to_hex();
    } else {
      key << "raw1:" << f.num_vars() << ":" << f.to_hex();
    }
  } else {
    key << "m" << args.functions.size() << ":"
        << args.functions.front().num_vars();
    for (const auto& f : args.functions) {
      key << ":" << f.to_hex();
    }
  }
  return key.str();
}

void router::serve(std::istream& in, std::ostream& out) {
  sessions_.fetch_add(1, std::memory_order_relaxed);
  session_clients clients{*this};
  std::string line;
  while (!draining()) {
    const auto status =
        server::read_limited_line(in, line, options_.limits.max_line_bytes);
    if (status == server::line_status::eof) {
      break;
    }
    if (status == server::line_status::too_long) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      server::write_error(
          out, "line-too-long (max " +
                   std::to_string(options_.limits.max_line_bytes) +
                   " bytes)");
      out.flush();
      continue;
    }
    if (line.empty()) {
      continue;
    }
    const bool keep_going = handle_line(line, in, out, clients);
    clients.flush();
    out.flush();
    if (!keep_going) {
      break;
    }
  }
}

bool router::handle_line(const std::string& line, std::istream& in,
                         std::ostream& out, session_clients& clients) {
  const auto tokens = server::tokenize(line);
  if (tokens.empty()) {
    return true;
  }
  commands_.fetch_add(1, std::memory_order_relaxed);
  const std::string& verb = tokens.front();

  if (verb == "PING") {
    out << "OK pong\n";
    return true;
  }
  if (verb == "SYNTH") {
    route_synth(line, tokens, out, clients);
    return true;
  }
  if (verb == "BATCH") {
    return route_batch(in, out, clients);
  }
  if (verb == "STATS") {
    const std::string mode = tokens.size() > 1 ? tokens[1] : "TEXT";
    if (mode == "JSON") {
      out << "OK 1\n" << stats_json() << "\n";
    } else if (mode == "TEXT") {
      const auto text = stats_text();
      out << "OK "
          << std::count(text.begin(), text.end(), '\n') << "\n"
          << text;
    } else {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      server::write_error(out,
                          "unknown STATS mode '" + mode + "' (want "
                          "TEXT|JSON)");
    }
    return true;
  }
  if (verb == "QUIT") {
    out << "OK bye\n";
    return false;
  }
  if (verb == "SHUTDOWN") {
    out << "OK shutting-down\n";
    shutdown_.store(true, std::memory_order_release);
    begin_drain();
    return false;
  }
  parse_errors_.fetch_add(1, std::memory_order_relaxed);
  server::write_error(out, "command '" + verb +
                               "' is not routable (router speaks SYNTH, "
                               "BATCH, STATS, PING, QUIT, SHUTDOWN)");
  return true;
}

std::string router::forward(const server::synth_args& args,
                            const std::string& line,
                            session_clients& clients, bool* busy_reply,
                            bool* err_reply) {
  *busy_reply = false;
  *err_reply = false;
  const auto key_hash = fnv1a64(request_key(args));
  const auto order = ring_.preference(key_hash);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const auto idx = order[rank];
    if (!health_.attemptable(idx)) {
      continue;
    }
    auto& client = clients.get(idx);
    try {
      const auto reply = client.forward_synth(line);
      health_.record_success(idx);
      if (rank > 0) {
        failovers_.fetch_add(1, std::memory_order_relaxed);
      }
      *busy_reply = reply.busy;
      *err_reply = !reply.ok && !reply.busy;
      if (reply.busy && client.last_raw().empty()) {
        // The final BUSY came from an attempt whose connection was since
        // dropped; re-frame it from the parsed reply.
        return "BUSY retry-after " + std::to_string(reply.retry_after_ms) +
               "\n";
      }
      return client.last_raw();
    } catch (const server::transport_error&) {
      // This replica is unreachable even after the client's own retries:
      // feed the tracker and walk to the next ring replica.
      backend_failures_.fetch_add(1, std::memory_order_relaxed);
      health_.record_failure(idx);
    }
  }
  return {};  // every replica down or unattemptable — degraded mode
}

void router::route_synth(const std::string& line,
                         const std::vector<std::string>& tokens,
                         std::ostream& out, session_clients& clients) {
  server::synth_args args;
  try {
    args = server::parse_synth_args({tokens.begin() + 1, tokens.end()},
                                    options_.limits);
  } catch (const server::protocol_error& e) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    server::write_error(out, e.what());
    return;
  }
  bool busy = false;
  bool err = false;
  const auto raw = forward(args, line, clients, &busy, &err);
  if (raw.empty()) {
    degraded_busy_.fetch_add(1, std::memory_order_relaxed);
    server::write_busy(
        out, health_.retry_hint_ms(options_.min_retry_hint_ms));
    return;
  }
  if (busy) {
    routed_busy_.fetch_add(1, std::memory_order_relaxed);
  } else if (err) {
    routed_error_.fetch_add(1, std::memory_order_relaxed);
  } else {
    routed_ok_.fetch_add(1, std::memory_order_relaxed);
  }
  out << raw;
}

bool router::route_batch(std::istream& in, std::ostream& out,
                         session_clients& clients) {
  // Same bounded block consumption as the daemon: the whole body is read
  // (and validated) before any reply, so a parse error mid-block can
  // never desynchronize the session.
  std::vector<std::pair<server::synth_args, std::string>> entries;
  std::string first_error;
  std::size_t body_lines = 0;
  std::string line;
  bool terminated = false;
  while (true) {
    const auto status =
        server::read_limited_line(in, line, options_.limits.max_line_bytes);
    if (status == server::line_status::eof) {
      break;
    }
    if (status == server::line_status::too_long) {
      ++body_lines;
      if (first_error.empty()) {
        first_error =
            "batch line " + std::to_string(body_lines) + " too long";
      }
      continue;
    }
    if (line.empty()) {
      continue;
    }
    if (line == "END") {
      terminated = true;
      break;
    }
    ++body_lines;
    if (body_lines > options_.limits.max_batch_requests) {
      if (first_error.empty()) {
        first_error = "batch exceeds " +
                      std::to_string(options_.limits.max_batch_requests) +
                      " requests";
      }
      continue;
    }
    if (!first_error.empty()) {
      continue;
    }
    try {
      auto args =
          server::parse_synth_args(server::tokenize(line), options_.limits);
      entries.emplace_back(std::move(args), "SYNTH " + line);
    } catch (const server::protocol_error& e) {
      first_error =
          "batch line " + std::to_string(body_lines) + ": " + e.what();
    }
  }
  if (!terminated) {
    return false;  // client went away mid-block
  }
  if (!first_error.empty()) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    server::write_error(out, first_error);
    return true;
  }
  out << "OK " << entries.size() << "\n";
  // Each entry routes to its own home shard; the reply blocks come back
  // in request order regardless of which backends served (or failed)
  // them, so replies can neither cross nor go missing.
  for (std::size_t i = 0; i < entries.size(); ++i) {
    bool busy = false;
    bool err = false;
    const auto raw =
        forward(entries[i].first, entries[i].second, clients, &busy, &err);
    if (raw.empty()) {
      degraded_busy_.fetch_add(1, std::memory_order_relaxed);
      out << "RESULT " << i << " busy 0 0 0 retry-after "
          << health_.retry_hint_ms(options_.min_retry_hint_ms) << "\n";
      continue;
    }
    // Re-frame the backend's head line as this batch's RESULT block.
    const auto newline = raw.find('\n');
    const std::string head = raw.substr(0, newline);
    const std::string tail =
        newline == std::string::npos ? "" : raw.substr(newline + 1);
    if (head.rfind("OK ", 0) == 0) {
      routed_ok_.fetch_add(1, std::memory_order_relaxed);
      out << "RESULT " << i << " " << head.substr(3) << "\n" << tail;
    } else if (head.rfind("BUSY", 0) == 0) {
      routed_busy_.fetch_add(1, std::memory_order_relaxed);
      out << "RESULT " << i << " busy 0 0 0 "
          << (head.size() > 5 ? head.substr(5) : "") << "\n";
    } else if (head == "ERR timeout") {
      // Matches the daemon's own batch grammar: a timed-out entry is a
      // counted result block, not a session error.
      routed_error_.fetch_add(1, std::memory_order_relaxed);
      out << "RESULT " << i << " timeout 0 0 0\n";
    } else {
      routed_error_.fetch_add(1, std::memory_order_relaxed);
      out << "RESULT " << i << " error 0 0 0 "
          << (head.rfind("ERR ", 0) == 0 ? head.substr(4) : head) << "\n";
    }
  }
  return true;
}

void router::begin_drain() {
  draining_.store(true, std::memory_order_release);
}

void router::start_probes() {
  if (options_.probe_interval_ms == 0 ||
      probing_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  prober_ = std::thread{[this] { probe_loop(); }};
}

void router::stop_probes() {
  probing_.store(false, std::memory_order_release);
  if (prober_.joinable()) {
    prober_.join();
  }
}

void router::probe_loop() {
  while (probing_.load(std::memory_order_acquire)) {
    probe_once();
    // Sleep in small slices so stop_probes() joins quickly.
    const auto interval =
        std::chrono::milliseconds(options_.probe_interval_ms);
    const auto deadline = std::chrono::steady_clock::now() + interval;
    while (probing_.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

void router::probe_once() {
  for (std::size_t idx = 0; idx < endpoints_.size(); ++idx) {
    if (!health_.attemptable(idx)) {
      continue;  // inside its probation window: leave it alone
    }
    if (probe_clients_[idx] == nullptr) {
      probe_clients_[idx] = std::make_unique<resilient_client>(
          endpoints_[idx], probe_policy(options_.backend_policy));
    }
    bool alive = false;
    // Chaos seam: a fired `route.probe` is a blackholed probe — the
    // packet never arrives, the backend looks dead to the prober even
    // though it is serving requests fine.
    if (STPES_FAILPOINT_ERRNO("route.probe") == 0) {
      alive = probe_clients_[idx]->ping();
    } else {
      probe_clients_[idx]->disconnect();
    }
    if (alive) {
      probes_ok_.fetch_add(1, std::memory_order_relaxed);
      health_.record_success(idx);
    } else {
      probes_failed_.fetch_add(1, std::memory_order_relaxed);
      health_.record_failure(idx);
    }
    absorb_metrics(probe_clients_[idx]->metrics(),
                   probe_metrics_seen_[idx]);
  }
}

void router::absorb_metrics(const client_metrics& total,
                            client_metrics& last_seen) {
  client_retries_.fetch_add(total.retries - last_seen.retries,
                            std::memory_order_relaxed);
  client_reconnects_.fetch_add(total.reconnects - last_seen.reconnects,
                               std::memory_order_relaxed);
  client_busy_backoffs_.fetch_add(
      total.busy_backoffs - last_seen.busy_backoffs,
      std::memory_order_relaxed);
  client_io_timeouts_.fetch_add(total.io_timeouts - last_seen.io_timeouts,
                                std::memory_order_relaxed);
  client_backoff_ms_.fetch_add(
      total.backoff_ms_total - last_seen.backoff_ms_total,
      std::memory_order_relaxed);
  last_seen = total;
}

router_counters router::counters() const {
  router_counters c;
  c.sessions = sessions_.load(std::memory_order_relaxed);
  c.commands = commands_.load(std::memory_order_relaxed);
  c.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  c.routed_ok = routed_ok_.load(std::memory_order_relaxed);
  c.routed_busy = routed_busy_.load(std::memory_order_relaxed);
  c.routed_error = routed_error_.load(std::memory_order_relaxed);
  c.failovers = failovers_.load(std::memory_order_relaxed);
  c.degraded_busy = degraded_busy_.load(std::memory_order_relaxed);
  c.backend_failures = backend_failures_.load(std::memory_order_relaxed);
  c.idle_timeouts = idle_timeouts_.load(std::memory_order_relaxed);
  c.probes_ok = probes_ok_.load(std::memory_order_relaxed);
  c.probes_failed = probes_failed_.load(std::memory_order_relaxed);
  c.client_retries = client_retries_.load(std::memory_order_relaxed);
  c.client_reconnects = client_reconnects_.load(std::memory_order_relaxed);
  c.client_busy_backoffs =
      client_busy_backoffs_.load(std::memory_order_relaxed);
  c.client_io_timeouts =
      client_io_timeouts_.load(std::memory_order_relaxed);
  c.client_backoff_ms = client_backoff_ms_.load(std::memory_order_relaxed);
  return c;
}

std::string router::stats_text() const {
  const auto c = counters();
  std::ostringstream os;
  os << "sessions            " << c.sessions << "\n"
     << "commands            " << c.commands << "\n"
     << "parse_errors        " << c.parse_errors << "\n"
     << "routed_ok           " << c.routed_ok << "\n"
     << "routed_busy         " << c.routed_busy << "\n"
     << "routed_error        " << c.routed_error << "\n"
     << "failovers           " << c.failovers << "\n"
     << "degraded_busy       " << c.degraded_busy << "\n"
     << "backend_failures    " << c.backend_failures << "\n"
     << "idle_timeouts       " << c.idle_timeouts << "\n"
     << "probes_ok           " << c.probes_ok << "\n"
     << "probes_failed       " << c.probes_failed << "\n"
     << "client_retries      " << c.client_retries << "\n"
     << "client_reconnects   " << c.client_reconnects << "\n"
     << "client_busy_backoffs " << c.client_busy_backoffs << "\n"
     << "client_io_timeouts  " << c.client_io_timeouts << "\n"
     << "client_backoff_ms   " << c.client_backoff_ms << "\n";
  const auto states = health_.snapshot();
  for (std::size_t i = 0; i < states.size(); ++i) {
    os << "backend." << i << "             " << options_.backends[i] << " "
       << to_string(states[i].state) << " fails "
       << states[i].consecutive_failures << "\n";
  }
  return os.str();
}

std::string router::stats_json() const {
  const auto c = counters();
  std::ostringstream os;
  os << "{\"router\":{\"sessions\":" << c.sessions
     << ",\"commands\":" << c.commands
     << ",\"parse_errors\":" << c.parse_errors
     << ",\"routed_ok\":" << c.routed_ok
     << ",\"routed_busy\":" << c.routed_busy
     << ",\"routed_error\":" << c.routed_error
     << ",\"failovers\":" << c.failovers
     << ",\"degraded_busy\":" << c.degraded_busy
     << ",\"backend_failures\":" << c.backend_failures
     << ",\"idle_timeouts\":" << c.idle_timeouts
     << ",\"draining\":" << (draining() ? "true" : "false")
     << "},\"client\":{\"retries\":" << c.client_retries
     << ",\"reconnects\":" << c.client_reconnects
     << ",\"busy_backoffs\":" << c.client_busy_backoffs
     << ",\"io_timeouts\":" << c.client_io_timeouts
     << ",\"backoff_ms_total\":" << c.client_backoff_ms
     << "},\"probes\":{\"ok\":" << c.probes_ok
     << ",\"failed\":" << c.probes_failed << "},\"backends\":[";
  const auto states = health_.snapshot();
  for (std::size_t i = 0; i < states.size(); ++i) {
    os << (i == 0 ? "" : ",") << "{\"name\":\"" << options_.backends[i]
       << "\",\"state\":\"" << to_string(states[i].state)
       << "\",\"consecutive_failures\":" << states[i].consecutive_failures
       << ",\"failures_total\":" << states[i].failures_total
       << ",\"successes_total\":" << states[i].successes_total
       << ",\"ejections\":" << states[i].ejections
       << ",\"readmissions\":" << states[i].readmissions << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace stpes::route
