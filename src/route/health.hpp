/// \file health.hpp
/// \brief Per-backend health state machine: ejection and probation.
///
/// One tracker serves the whole router: the prober thread and every
/// session thread feed it transport-level successes and failures, and the
/// request path asks it which replicas are worth trying.  The machine per
/// backend:
///
///     healthy --(fail_threshold consecutive failures)--> down
///     down    --(probation_ms elapsed)--> probe-eligible
///     probe-eligible --(one success)--> healthy (readmission)
///                    --(one failure)--> down again, timer refreshed
///
/// While a backend is down and inside its probation window, `attemptable`
/// is false: no request and no probe touches it, so a dead shard costs
/// each key one failed connect per window at most, not per request.  Once
/// the window elapses, requests *and* probes may try it again — whichever
/// arrives first decides readmission, so recovery needs no dedicated
/// probe round-trip on the hot path.
///
/// All methods are thread-safe (one mutex; health transitions are rare
/// events compared to request traffic).

#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace stpes::route {

enum class backend_health { healthy, down };

[[nodiscard]] const char* to_string(backend_health h);

/// One backend's externally visible state.
struct backend_status {
  backend_health state = backend_health::healthy;
  unsigned consecutive_failures = 0;
  std::uint64_t failures_total = 0;
  std::uint64_t successes_total = 0;
  std::uint64_t ejections = 0;     ///< healthy -> down transitions
  std::uint64_t readmissions = 0;  ///< down -> healthy transitions
};

class health_tracker {
public:
  using clock = std::chrono::steady_clock;

  health_tracker(std::size_t num_backends, unsigned fail_threshold,
                 unsigned probation_ms)
      : fail_threshold_(fail_threshold == 0 ? 1 : fail_threshold),
        probation_ms_(probation_ms),
        backends_(num_backends) {}

  /// True when a request or probe should try this backend now: healthy,
  /// or down with its probation window elapsed.
  [[nodiscard]] bool attemptable(std::size_t idx,
                                 clock::time_point now = clock::now()) const;

  /// True when the backend is currently marked healthy.
  [[nodiscard]] bool healthy(std::size_t idx) const;

  /// A transport-level success: resets the failure streak; a down
  /// backend is readmitted.
  void record_success(std::size_t idx);

  /// A transport-level failure: extends the streak; at the threshold the
  /// backend is ejected (marked down) and its probation timer starts.
  void record_failure(std::size_t idx, clock::time_point now = clock::now());

  /// Milliseconds until *some* backend becomes attemptable again — the
  /// computed retry hint for degraded-mode BUSY replies.  At least
  /// `floor_ms`; `floor_ms` exactly when anything is attemptable already.
  [[nodiscard]] unsigned retry_hint_ms(
      unsigned floor_ms, clock::time_point now = clock::now()) const;

  [[nodiscard]] backend_status status(std::size_t idx) const;
  [[nodiscard]] std::vector<backend_status> snapshot() const;

private:
  struct state {
    backend_status pub;
    clock::time_point down_since{};
  };

  [[nodiscard]] bool attemptable_locked(const state& s,
                                        clock::time_point now) const;

  const unsigned fail_threshold_;
  const unsigned probation_ms_;
  mutable std::mutex mutex_;
  std::vector<state> backends_;
};

}  // namespace stpes::route
