/// \file ring.hpp
/// \brief Consistent-hash ring over named backends.
///
/// The routing invariant the service tier depends on: requests for one
/// NPN class always land on the same shard, so each shard's warm cache
/// stays hot and disjoint instead of every shard slowly accumulating a
/// copy of the whole workload.  Classic Karger ring with virtual nodes:
/// every backend owns `vnodes` points hashed from its *name* (so the
/// mapping is stable under config reordering and under adding/removing
/// other backends — only ~1/N of keys move), and a key is served by the
/// first point clockwise from its hash.
///
/// `preference()` returns the full failover order: the home backend
/// first, then each next *distinct* backend walking the ring — which is
/// exactly the order the router tries replicas in when shards die.
/// Everything here is immutable after construction and therefore
/// trivially thread-safe.

#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace stpes::route {

/// FNV-1a, 64-bit, with a murmur-style avalanche finalizer.  Raw FNV-1a
/// is fine for table lookups but terrible as ring coordinates: for short
/// strings the high bits are dominated by `basis * prime^length`, so
/// same-length point names cluster on one arc and a backend can end up
/// owning most of the hash space.  The finalizer spreads every input bit
/// across the whole word, which is what uniform arc ownership needs.
[[nodiscard]] inline std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

class hash_ring {
public:
  /// `names` identify the backends (endpoint specs in practice); their
  /// order defines the indices `preference()` returns.
  explicit hash_ring(std::vector<std::string> names, unsigned vnodes = 64)
      : names_(std::move(names)) {
    points_.reserve(names_.size() * vnodes);
    for (std::size_t b = 0; b < names_.size(); ++b) {
      for (unsigned v = 0; v < vnodes; ++v) {
        points_.emplace_back(
            fnv1a64(names_[b] + "#" + std::to_string(v)), b);
      }
    }
    std::sort(points_.begin(), points_.end());
  }

  [[nodiscard]] std::size_t num_backends() const { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }

  /// The home backend of `key_hash` (first ring point clockwise).
  [[nodiscard]] std::size_t home(std::uint64_t key_hash) const {
    return points_[successor(key_hash)].second;
  }

  /// Failover order for `key_hash`: every backend exactly once, home
  /// first, then by ring walk — the order replicas are tried when the
  /// home shard is down.
  [[nodiscard]] std::vector<std::size_t> preference(
      std::uint64_t key_hash) const {
    std::vector<std::size_t> order;
    order.reserve(names_.size());
    std::vector<bool> seen(names_.size(), false);
    for (std::size_t step = 0;
         step < points_.size() && order.size() < names_.size(); ++step) {
      const auto backend =
          points_[(successor(key_hash) + step) % points_.size()].second;
      if (!seen[backend]) {
        seen[backend] = true;
        order.push_back(backend);
      }
    }
    return order;
  }

private:
  /// Index of the first point with hash >= key_hash (wrapping).
  [[nodiscard]] std::size_t successor(std::uint64_t key_hash) const {
    const auto it = std::lower_bound(
        points_.begin(), points_.end(),
        std::make_pair(key_hash, std::size_t{0}));
    return it == points_.end()
               ? 0
               : static_cast<std::size_t>(it - points_.begin());
  }

  std::vector<std::string> names_;
  /// (point hash, backend index), sorted by hash.
  std::vector<std::pair<std::uint64_t, std::size_t>> points_;
};

}  // namespace stpes::route
