/// \file sweep.hpp
/// \brief SAT sweeping over and-inverter graphs (follow-up paper,
///        arXiv 2312.00421): STP-style word-parallel simulation seeds
///        node-equivalence classes, the circuit solvers prove or refute
///        each candidate pair on an XOR-miter, and proven-equivalent
///        nodes are merged with their fanout rewired.
///
/// The pipeline per `sweep()` call:
///
///   1. **Simulate.**  Word-parallel packed-uint64 simulation (the same
///      kernel style as the synthesis hot path) over seeded random
///      patterns; nodes are partitioned into candidate classes by their
///      signature, normalized up to complement so a node and its
///      inversion land in the same class.  The constant-false variable
///      participates, so constant nodes are candidates too.  Rounds of
///      additional patterns refine the partition until it stabilizes.
///   2. **Prove.**  For every non-representative class member, an
///      XOR-miter between the member and its class representative (the
///      smallest variable, hence always an earlier node) is handed to a
///      prover: the CDCL solver on a Tseitin encoding of the two cones
///      (default), or the paper's circuit AllSAT solver on the miter as
///      a 2-LUT network (`prover::allsat`).  UNSAT proves equivalence;
///      a model is a counterexample that is fed back into the pattern
///      set, splitting every class it distinguishes before the next
///      proving pass.
///   3. **Merge.**  Proven members are replaced by their representative
///      (with the phase folded into the edge) in one topological
///      rebuild; structural hashing during the rebuild collapses any
///      structure the substitutions made redundant.
///
/// Everything is threaded through `core::run_context`: the simulation,
/// partition, and proving loops poll `should_stop()` at bounded strides,
/// the CDCL / AllSAT strides apply inside a proof, and effort lands in
/// the `sweep_*` stage counters.  A cancelled or deadline-cut run
/// returns `completed == false` with the merges proven so far already
/// applied — they are sound regardless of where the run stopped.

#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

#include "aig/aig.hpp"
#include "util/run_context.hpp"

namespace stpes::sweep {

/// Which engine proves candidate miters.
enum class prover {
  cdcl,    ///< Tseitin cones on the CDCL solver (scales best)
  allsat,  ///< the paper's circuit AllSAT traverse on the miter network
};

const char* to_string(prover p);
/// Parses "cdcl" / "allsat" (throws std::invalid_argument otherwise).
prover prover_from_string(std::string_view name);

/// Live progress of one in-flight sweep, safe to read from other threads
/// (the daemon's STATS path polls it while the job runs on a worker).
struct sweep_progress {
  std::atomic<std::uint64_t> sim_rounds{0};
  std::atomic<std::uint64_t> candidates{0};
  std::atomic<std::uint64_t> proofs{0};
  std::atomic<std::uint64_t> refutations{0};
  std::atomic<std::uint64_t> merged_nodes{0};
};

struct sweep_options {
  /// Pattern-generator seed (printed by benches for provenance).
  std::uint64_t seed = 1;
  /// 64-bit words of random patterns per simulation round.
  unsigned sim_words = 4;
  /// Refinement rounds before the first proving pass (the partition
  /// usually stabilizes much earlier; stable partitions stop the loop).
  unsigned max_sim_rounds = 8;
  prover engine = prover::cdcl;
  /// Optional live progress sink (not owned; may be null).
  sweep_progress* progress = nullptr;
};

/// Outcome of one sweep run.
struct sweep_result {
  /// The swept network (valid even for incomplete runs: only proven
  /// merges are applied).
  aig::aig_network swept;
  /// True iff every candidate was resolved before deadline/cancel.
  bool completed = false;
  std::uint64_t ands_before = 0;
  std::uint64_t ands_after = 0;
  std::uint64_t sim_rounds = 0;
  std::uint64_t candidates = 0;    ///< miter proofs attempted
  std::uint64_t proofs = 0;        ///< UNSAT miters (equivalences)
  std::uint64_t refutations = 0;   ///< SAT miters (counterexamples)
  std::uint64_t merged_nodes = 0;  ///< nodes replaced by a representative
  /// Per-run effort delta (also accumulated into the caller's context).
  core::stage_counters counters;
  double seconds = 0.0;
};

/// Sweeps `network` under `options`; `ctx` (when set) carries deadline,
/// cancel flag, and accumulates the `sweep_*` / solver stage counters.
sweep_result sweep(const aig::aig_network& network,
                   const sweep_options& options = {},
                   core::run_context* ctx = nullptr);

/// Combinational equivalence of two AIGs with matching input/output
/// counts, proved output by output with the paper's circuit AllSAT
/// solver on an XOR-miter (the same "judging" path the synthesis
/// engines use).  Returns true only for a complete UNSAT proof of every
/// output; a deadline/cancel abort returns false (check the context to
/// distinguish "different" from "unproven").
bool networks_equivalent(const aig::aig_network& a, const aig::aig_network& b,
                         core::run_context* ctx = nullptr);

}  // namespace stpes::sweep
