#include "sweep/sweep.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "allsat/circuit_allsat.hpp"
#include "chain/boolean_chain.hpp"
#include "sat/solver.hpp"
#include "sat/types.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace stpes::sweep {

const char* to_string(prover p) {
  return p == prover::cdcl ? "cdcl" : "allsat";
}

prover prover_from_string(std::string_view name) {
  if (name == "cdcl") {
    return prover::cdcl;
  }
  if (name == "allsat") {
    return prover::allsat;
  }
  throw std::invalid_argument("unknown sweep prover: " + std::string(name));
}

namespace {

/// Signature partition of all variables: `rep[v]` is the smallest variable
/// whose normalized signature equals v's, and `phase[v]` is 1 when v's
/// simulated values are the complement of its representative's.
struct partition {
  std::vector<std::uint32_t> rep;
  std::vector<std::uint8_t> phase;
};

/// Phase normalization: complement a row whose first simulated bit is 1,
/// so a node and its inversion share a signature (and the constant class
/// is keyed off variable 0's all-zero row).
std::uint64_t phase_mask(const std::vector<std::uint64_t>& row) {
  return (row[0] & 1ull) != 0 ? ~0ull : 0ull;
}

partition partition_by_signature(
    const std::vector<std::vector<std::uint64_t>>& rows) {
  const auto n = static_cast<std::uint32_t>(rows.size());
  const std::size_t w = rows[0].size();
  partition part;
  part.rep.resize(n);
  part.phase.assign(n, 0);
  // Hash bucket of class leaders; exact (normalized) comparison inside a
  // bucket guards against hash collisions.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  buckets.reserve(2 * n);
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint64_t mask_v = phase_mask(rows[v]);
    std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over normalized words
    for (std::size_t k = 0; k < w; ++k) {
      h ^= rows[v][k] ^ mask_v;
      h *= 0x100000001b3ull;
    }
    auto& bucket = buckets[h];
    std::uint32_t rep = v;
    for (const std::uint32_t leader : bucket) {
      const std::uint64_t mask_l = phase_mask(rows[leader]);
      bool equal = true;
      for (std::size_t k = 0; k < w; ++k) {
        if ((rows[v][k] ^ mask_v) != (rows[leader][k] ^ mask_l)) {
          equal = false;
          break;
        }
      }
      if (equal) {
        rep = leader;
        break;
      }
    }
    if (rep == v) {
      bucket.push_back(v);
    }
    part.rep[v] = rep;
    part.phase[v] =
        static_cast<std::uint8_t>((rows[v][0] ^ rows[rep][0]) & 1ull);
  }
  return part;
}

/// Verdict of one miter proof.
enum class verdict { proven, refuted, unresolved };

struct proof_outcome {
  verdict kind = verdict::unresolved;
  /// Refutation witness: (primary-input index, value) per cone input.
  std::vector<std::pair<std::uint32_t, bool>> cex;
};

/// The suspected relation is always `cand == rep ^ phase`; a miter proof
/// asks the solver for an input where they *differ*, so UNSAT is the
/// equivalence proof and a model is the counterexample.

proof_outcome prove_cdcl(const aig::aig_network& net, std::uint32_t rep_var,
                         std::uint32_t cand_var, bool phase,
                         core::run_context* ctx) {
  std::vector<std::uint32_t> roots{cand_var};
  if (rep_var != 0) {
    roots.push_back(rep_var);
  }
  const auto cone = net.cone(roots);

  sat::solver solver;
  solver.set_run_context(ctx);
  std::unordered_map<std::uint32_t, sat::var> sat_var;
  sat_var.reserve(cone.size());
  for (const auto v : cone) {
    sat_var.emplace(v, solver.new_var());
  }
  const auto map_lit = [&](aig::literal l) {
    return sat::lit{sat_var.at(aig::lit_var(l)), aig::lit_complemented(l)};
  };

  bool trivially_unsat = false;
  const auto add = [&](sat::clause_lits lits) {
    if (!solver.add_clause(std::move(lits))) {
      trivially_unsat = true;
    }
  };
  // Tseitin encoding of every AND in the two cones: c <-> (a & b).
  // `create_and` folds constants, so fanins are always real variables.
  for (const auto v : cone) {
    if (!net.is_and(v)) {
      continue;
    }
    const auto& nd = net.node(v);
    const sat::lit c = sat::pos(sat_var.at(v));
    const sat::lit a = map_lit(nd.fanin0);
    const sat::lit b = map_lit(nd.fanin1);
    add({~c, a});
    add({~c, b});
    add({c, ~a, ~b});
  }
  // The miter constraint: cand differs from rep ^ phase.
  const sat::lit c = sat::pos(sat_var.at(cand_var));
  if (rep_var == 0) {
    add({phase ? ~c : c});
  } else {
    const sat::lit r = sat::pos(sat_var.at(rep_var));
    if (phase) {
      add({~c, r});
      add({c, ~r});
    } else {
      add({c, r});
      add({~c, ~r});
    }
  }

  proof_outcome out;
  if (trivially_unsat) {
    out.kind = verdict::proven;
    return out;
  }
  switch (solver.solve()) {
    case sat::solve_result::unsat:
      out.kind = verdict::proven;
      break;
    case sat::solve_result::sat:
      out.kind = verdict::refuted;
      for (const auto v : cone) {
        if (net.is_input(v)) {
          out.cex.emplace_back(v - 1, solver.model_value(sat_var.at(v)));
        }
      }
      break;
    case sat::solve_result::unknown:
      out.kind = verdict::unresolved;
      break;
  }
  return out;
}

/// 4-bit LUT of `(a ^ inv0) & (b ^ inv1)` under the chain's bit-(b<<1|a)
/// operator convention.
unsigned and_op(bool inv0, bool inv1) {
  unsigned op = 0;
  for (unsigned pattern = 0; pattern < 4; ++pattern) {
    const bool a = (pattern & 1u) != 0;
    const bool b = (pattern & 2u) != 0;
    if ((a != inv0) && (b != inv1)) {
      op |= 1u << pattern;
    }
  }
  return op;
}

constexpr unsigned op_xor = 0x6;
constexpr unsigned op_xnor = 0x9;

/// Appends the AND nodes of `cone` (ascending = topological) to `ch`; the
/// caller pre-fills `sig` with the chain signals of the cone's inputs.
void append_cone_steps(chain::boolean_chain& ch, const aig::aig_network& net,
                       const std::vector<std::uint32_t>& cone,
                       std::vector<std::uint32_t>& sig) {
  for (const auto v : cone) {
    if (!net.is_and(v)) {
      continue;
    }
    const auto& nd = net.node(v);
    sig[v] = ch.add_step(and_op(aig::lit_complemented(nd.fanin0),
                                aig::lit_complemented(nd.fanin1)),
                         sig[aig::lit_var(nd.fanin0)],
                         sig[aig::lit_var(nd.fanin1)]);
  }
}

proof_outcome prove_allsat(const aig::aig_network& net, std::uint32_t rep_var,
                           std::uint32_t cand_var, bool phase,
                           core::run_context* ctx) {
  std::vector<std::uint32_t> roots{cand_var};
  if (rep_var != 0) {
    roots.push_back(rep_var);
  }
  const auto cone = net.cone(roots);
  std::vector<std::uint32_t> cone_inputs;
  for (const auto v : cone) {
    if (net.is_input(v)) {
      cone_inputs.push_back(v);
    }
  }

  chain::boolean_chain miter(static_cast<unsigned>(cone_inputs.size()));
  std::vector<std::uint32_t> sig(net.max_var() + 1, 0);
  for (std::uint32_t i = 0; i < cone_inputs.size(); ++i) {
    sig[cone_inputs[i]] = i;
  }
  append_cone_steps(miter, net, cone, sig);
  if (rep_var == 0) {
    // Against the constant: the output literal cand ^ phase is 1 exactly
    // on the inputs where cand differs from its suspected constant value.
    miter.set_output(sig[cand_var], phase);
  } else {
    miter.set_output(
        miter.add_step(phase ? op_xnor : op_xor, sig[rep_var], sig[cand_var]));
  }

  const auto all = allsat::solve_all(miter, /*target=*/true, ctx);
  proof_outcome out;
  if (all.satisfiable) {
    out.kind = verdict::refuted;
    // Any completion of the first solution cube drives the miter to 1;
    // complete don't-cares with 0.
    const auto& cube = all.solutions.front();
    for (std::uint32_t i = 0; i < cone_inputs.size(); ++i) {
      out.cex.emplace_back(cone_inputs[i] - 1, cube.values[i] == 1);
    }
  } else if (ctx != nullptr && ctx->should_stop()) {
    out.kind = verdict::unresolved;  // truncated traverse, not a proof
  } else {
    out.kind = verdict::proven;
  }
  return out;
}

/// Rebuilds `src` with every merged variable replaced by its recorded
/// representative literal, dropping nodes that become unreachable from the
/// outputs.  Structural hashing inside `create_and` collapses any pairs the
/// substitution made identical.
aig::aig_network rebuild_merged(
    const aig::aig_network& src,
    const std::unordered_map<std::uint32_t, aig::literal>& merged) {
  // Liveness from the outputs, resolving merges.  Representatives are
  // never merged themselves (a smaller equivalent node would have been the
  // representative), so resolution is a single hop.
  const auto resolve = [&](std::uint32_t v) {
    const auto it = merged.find(v);
    return it == merged.end() ? v : aig::lit_var(it->second);
  };
  std::vector<char> live(src.max_var() + 1, 0);
  std::vector<std::uint32_t> stack;
  const auto mark = [&](std::uint32_t v) {
    v = resolve(v);
    if (live[v] == 0) {
      live[v] = 1;
      if (src.is_and(v)) {
        stack.push_back(v);
      }
    }
  };
  for (const auto o : src.outputs()) {
    mark(aig::lit_var(o));
  }
  while (!stack.empty()) {
    const auto v = stack.back();
    stack.pop_back();
    const auto& nd = src.node(v);
    mark(aig::lit_var(nd.fanin0));
    mark(aig::lit_var(nd.fanin1));
  }

  aig::aig_network out(src.num_inputs());
  std::vector<aig::literal> lit_of(src.max_var() + 1, aig::lit_false);
  for (unsigned i = 0; i < src.num_inputs(); ++i) {
    lit_of[i + 1] = out.input_lit(i);
  }
  const auto remap = [&](aig::literal l) {
    std::uint32_t v = aig::lit_var(l);
    bool c = aig::lit_complemented(l);
    const auto it = merged.find(v);
    if (it != merged.end()) {
      v = aig::lit_var(it->second);
      c ^= aig::lit_complemented(it->second);
    }
    return lit_of[v] ^ (c ? 1u : 0u);
  };
  for (std::uint32_t v = src.num_inputs() + 1; v <= src.max_var(); ++v) {
    if (live[v] == 0 || merged.count(v) != 0) {
      continue;
    }
    const auto& nd = src.node(v);
    lit_of[v] = out.create_and(remap(nd.fanin0), remap(nd.fanin1));
  }
  for (const auto o : src.outputs()) {
    out.add_output(remap(o));
  }
  return out;
}

}  // namespace

sweep_result sweep(const aig::aig_network& network,
                   const sweep_options& options, core::run_context* ctx) {
  const util::stopwatch timer;
  core::run_context local;
  core::run_context& rc = ctx != nullptr ? *ctx : local;
  const core::stage_counters counters_before = rc.counters;
  sweep_progress* progress = options.progress;

  sweep_result result;
  result.ands_before = network.num_ands();

  const auto finish = [&](bool completed) {
    result.completed = completed;
    result.ands_after = result.swept.num_ands();
    result.counters = rc.counters - counters_before;
    result.seconds = timer.elapsed_seconds();
    return result;
  };

  // Constant folding in create_and means a network without inputs has no
  // AND nodes either; both degenerate shapes have nothing to sweep.
  if (network.num_ands() == 0 || network.num_inputs() == 0) {
    result.swept = network;
    return finish(!rc.should_stop());
  }

  const unsigned n_in = network.num_inputs();
  const unsigned words_per_round = std::max(1u, options.sim_words);
  util::rng prng(options.seed);
  std::vector<std::vector<std::uint64_t>> patterns(n_in);
  const auto add_random_round = [&] {
    for (auto& row : patterns) {
      for (unsigned k = 0; k < words_per_round; ++k) {
        row.push_back(prng.next_u64());
      }
    }
  };
  std::vector<std::vector<std::uint64_t>> rows;
  const auto simulate = [&] {
    rows = network.simulate_words(patterns);
    ++rc.counters.sweep_sim_rounds;
    ++result.sim_rounds;
    if (progress != nullptr) {
      progress->sim_rounds.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // Stage 1: random simulation until the partition stabilizes.
  add_random_round();
  simulate();
  partition part = partition_by_signature(rows);
  for (unsigned round = 1; round < options.max_sim_rounds; ++round) {
    if (rc.should_stop()) {
      break;
    }
    add_random_round();
    simulate();
    partition refined = partition_by_signature(rows);
    const bool stable = refined.rep == part.rep;
    part = std::move(refined);
    if (stable) {
      break;
    }
  }

  // Stage 2: proving passes.  Every refutation's counterexample is folded
  // into the pattern set before the next pass, so refuted pairs are split
  // apart and each pass with refutations strictly refines the partition;
  // the loop therefore terminates (classes are bounded by the variable
  // count) once a pass resolves every candidate without a refutation.
  std::unordered_map<std::uint32_t, aig::literal> merged;
  bool aborted = false;
  while (!aborted) {
    std::vector<std::vector<std::uint64_t>> cex_words(n_in);
    unsigned cex_count = 0;
    bool refuted_this_pass = false;
    for (std::uint32_t v = n_in + 1; v <= network.max_var(); ++v) {
      if (rc.should_stop()) {
        aborted = true;
        break;
      }
      if (merged.count(v) != 0) {
        continue;
      }
      const std::uint32_t rep = part.rep[v];
      if (rep == v) {
        continue;
      }
      const bool phase = part.phase[v] != 0;
      ++rc.counters.sweep_candidates;
      ++result.candidates;
      if (progress != nullptr) {
        progress->candidates.fetch_add(1, std::memory_order_relaxed);
      }
      const proof_outcome outcome =
          options.engine == prover::cdcl
              ? prove_cdcl(network, rep, v, phase, &rc)
              : prove_allsat(network, rep, v, phase, &rc);
      switch (outcome.kind) {
        case verdict::proven:
          ++rc.counters.sweep_proofs;
          ++result.proofs;
          ++rc.counters.sweep_merged_nodes;
          ++result.merged_nodes;
          merged.emplace(v, aig::make_lit(rep, phase));
          if (progress != nullptr) {
            progress->proofs.fetch_add(1, std::memory_order_relaxed);
            progress->merged_nodes.fetch_add(1, std::memory_order_relaxed);
          }
          break;
        case verdict::refuted: {
          ++rc.counters.sweep_refutations;
          ++result.refutations;
          if (progress != nullptr) {
            progress->refutations.fetch_add(1, std::memory_order_relaxed);
          }
          refuted_this_pass = true;
          const unsigned word = cex_count / 64;
          const unsigned bit = cex_count % 64;
          if (bit == 0) {
            for (auto& row : cex_words) {
              row.push_back(0);
            }
          }
          for (const auto& [input, value] : outcome.cex) {
            if (value) {
              cex_words[input][word] |= 1ull << bit;
            }
          }
          ++cex_count;
          break;
        }
        case verdict::unresolved:
          // A deadline or cancel observed inside the prover.
          aborted = true;
          break;
      }
      if (aborted) {
        break;
      }
    }
    if (aborted || !refuted_this_pass) {
      break;
    }
    for (unsigned i = 0; i < n_in; ++i) {
      patterns[i].insert(patterns[i].end(), cex_words[i].begin(),
                         cex_words[i].end());
    }
    simulate();
    part = partition_by_signature(rows);
  }

  result.swept = rebuild_merged(network, merged);
  return finish(!aborted);
}

bool networks_equivalent(const aig::aig_network& a, const aig::aig_network& b,
                         core::run_context* ctx) {
  if (a.num_inputs() != b.num_inputs() ||
      a.num_outputs() != b.num_outputs()) {
    return false;
  }
  const unsigned n = a.num_inputs();
  for (unsigned k = 0; k < a.num_outputs(); ++k) {
    if (ctx != nullptr && ctx->should_stop()) {
      return false;
    }
    const aig::literal la = a.outputs()[k];
    const aig::literal lb = b.outputs()[k];
    const bool ca = aig::lit_complemented(la);
    const bool cb = aig::lit_complemented(lb);
    const bool a_const = aig::lit_var(la) == 0;
    const bool b_const = aig::lit_var(lb) == 0;
    if (a_const && b_const) {
      if (ca != cb) {
        return false;
      }
      continue;
    }

    // One miter chain over all primary inputs; input i is chain signal i.
    chain::boolean_chain miter(n);
    const auto append_side = [&](const aig::aig_network& net,
                                 std::uint32_t root) {
      std::vector<std::uint32_t> sig(net.max_var() + 1, 0);
      for (unsigned i = 0; i < n; ++i) {
        sig[i + 1] = i;
      }
      append_cone_steps(miter, net, net.cone({root}), sig);
      return sig[root];
    };
    if (a_const || b_const) {
      // Against a constant side c: the miter is the other side's literal
      // complemented by c, true exactly where the two outputs differ.
      const auto& net = a_const ? b : a;
      const auto root_lit = a_const ? lb : la;
      const std::uint32_t sig = append_side(net, aig::lit_var(root_lit));
      miter.set_output(sig, ca != cb);
    } else {
      const std::uint32_t sig_a = append_side(a, aig::lit_var(la));
      const std::uint32_t sig_b = append_side(b, aig::lit_var(lb));
      miter.set_output(miter.add_step(ca != cb ? op_xnor : op_xor, sig_a,
                                      sig_b));
    }
    const auto all = allsat::solve_all(miter, /*target=*/true, ctx);
    if (all.satisfiable) {
      return false;  // a concrete disagreeing input exists
    }
    if (ctx != nullptr && ctx->should_stop()) {
      return false;  // truncated traverse: UNSAT answer is not trusted
    }
  }
  return true;
}

}  // namespace stpes::sweep
