/// \file stp_allsat.hpp
/// \brief AllSAT over STP canonical forms (the procedure of Fig. 1).
///
/// For a canonical form `M_Phi x_1 ... x_n`, a satisfying assignment is a
/// column of `M_Phi` equal to [1,0]^T.  The paper solves SAT/AllSAT by
/// assigning variables in sequence: fixing `x_1` halves the matrix (left
/// half for True, right half for False); if the current sub-matrix contains
/// no [1,0]^T column, the branch is abandoned and the solver backtracks.
///
/// `stp_sat_solver` implements exactly that sequential halving search (and
/// reports how many branches were cut), while `all_sat_columns` provides the
/// direct one-shot column scan; the two agree and the test suite checks it.

#pragma once

#include <cstdint>
#include <vector>

#include "stp/logic_matrix.hpp"
#include "util/run_context.hpp"

namespace stpes::stp {

/// One satisfying assignment: `values[i]` is the value of STP variable
/// x_{i+1} (the i-th factor of the canonical form, leftmost first).
struct stp_assignment {
  std::vector<bool> values;

  /// Converts to a truth-table minterm index with the standard variable
  /// order x_1 = input n-1, ..., x_n = input 0.
  [[nodiscard]] std::uint64_t to_minterm() const;
};

/// Statistics of a sequential solve.
struct stp_solve_stats {
  std::uint64_t branches_explored = 0;  ///< variable assignments tried
  std::uint64_t backtracks = 0;         ///< branches cut by an empty matrix
};

/// Sequential halving AllSAT solver over a canonical form.
class stp_sat_solver {
public:
  explicit stp_sat_solver(logic_matrix canonical);

  /// Attaches the shared run context (not owned; nullptr detaches).  The
  /// halving search polls `ctx->should_stop()` every 64 branches and
  /// returns early with whatever assignments it found so far — callers
  /// must re-check the context before treating the result as complete.
  /// Branch/backtrack effort flows into the context's AllSAT counters.
  void attach_run_context(core::run_context* ctx) { ctx_ = ctx; }

  /// True iff at least one satisfying assignment exists.
  [[nodiscard]] bool is_satisfiable() const;

  /// All satisfying assignments, in lexicographic order of (x_1, ..., x_n)
  /// with True explored before False (as in Fig. 1).
  [[nodiscard]] std::vector<stp_assignment> solve_all();

  /// The first satisfying assignment found, if any.
  [[nodiscard]] std::vector<stp_assignment> solve_one();

  [[nodiscard]] const stp_solve_stats& stats() const { return stats_; }

private:
  void search(std::uint64_t column_base, unsigned depth,
              std::vector<bool>& partial,
              std::vector<stp_assignment>& out, bool stop_at_first);

  /// True iff the sub-matrix of 2^(n-depth) columns starting at
  /// `column_base` contains a [1,0]^T column.
  [[nodiscard]] bool block_has_true(std::uint64_t column_base,
                                    unsigned depth) const;

  logic_matrix m_;
  stp_solve_stats stats_;
  core::run_context* ctx_ = nullptr;
  bool stopped_ = false;
};

/// Direct scan: minterm indices (truth-table order) of all satisfying
/// assignments of the canonical form.
std::vector<std::uint64_t> all_sat_columns(const logic_matrix& canonical);

}  // namespace stpes::stp
