#include "stp/stp_allsat.hpp"

namespace stpes::stp {

std::uint64_t stp_assignment::to_minterm() const {
  // STP variable x_{i+1} is truth-table input (n-1-i).
  std::uint64_t t = 0;
  const std::size_t n = values.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (values[i]) {
      t |= std::uint64_t{1} << (n - 1 - i);
    }
  }
  return t;
}

stp_sat_solver::stp_sat_solver(logic_matrix canonical)
    : m_(std::move(canonical)) {}

bool stp_sat_solver::block_has_true(std::uint64_t column_base,
                                    unsigned depth) const {
  const std::uint64_t span = m_.num_cols() >> depth;
  for (std::uint64_t c = 0; c < span; ++c) {
    if (m_.column_is_true(column_base + c)) {
      return true;
    }
  }
  return false;
}

void stp_sat_solver::search(std::uint64_t column_base, unsigned depth,
                            std::vector<bool>& partial,
                            std::vector<stp_assignment>& out,
                            bool stop_at_first) {
  if (depth == m_.num_vars()) {
    if (m_.column_is_true(column_base)) {
      out.push_back(stp_assignment{partial});
    }
    return;
  }
  const std::uint64_t half = m_.num_cols() >> (depth + 1);
  // Assigning the next variable keeps the left half (True: the column
  // index bit is 0) or selects the right half (False).
  const std::uint64_t base_true = column_base;
  const std::uint64_t base_false = column_base + half;
  for (const bool value : {true, false}) {
    ++stats_.branches_explored;
    if (ctx_ != nullptr) {
      ++ctx_->counters.allsat_propagations;
      if ((stats_.branches_explored & 0x3F) == 0 && ctx_->should_stop()) {
        stopped_ = true;
      }
    }
    if (stopped_) {
      return;
    }
    const std::uint64_t base = value ? base_true : base_false;
    if (!block_has_true(base, depth + 1)) {
      ++stats_.backtracks;
      continue;
    }
    partial.push_back(value);
    search(base, depth + 1, partial, out, stop_at_first);
    partial.pop_back();
    if (stop_at_first && !out.empty()) {
      return;
    }
  }
}

bool stp_sat_solver::is_satisfiable() const {
  return block_has_true(0, 0);
}

std::vector<stp_assignment> stp_sat_solver::solve_all() {
  std::vector<stp_assignment> out;
  std::vector<bool> partial;
  stopped_ = false;
  if (m_.num_vars() == 0) {
    if (m_.column_is_true(0)) {
      out.push_back(stp_assignment{});
    }
    return out;
  }
  search(0, 0, partial, out, /*stop_at_first=*/false);
  return out;
}

std::vector<stp_assignment> stp_sat_solver::solve_one() {
  std::vector<stp_assignment> out;
  std::vector<bool> partial;
  stopped_ = false;
  search(0, 0, partial, out, /*stop_at_first=*/true);
  return out;
}

std::vector<std::uint64_t> all_sat_columns(const logic_matrix& canonical) {
  std::vector<std::uint64_t> minterms;
  const std::uint64_t mask = canonical.num_cols() - 1;
  for (const auto column : canonical.true_columns()) {
    minterms.push_back(~column & mask);
  }
  return minterms;
}

}  // namespace stpes::stp
