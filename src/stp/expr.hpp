/// \file expr.hpp
/// \brief Boolean expression ASTs and their STP canonical forms.
///
/// Implements the logical-reasoning pipeline of Section II-A: an expression
/// over variables x_0, x_1, ... is converted into its canonical form
/// `M_Phi x_{n-1} ... x_0` (Property 2) by genuine STP manipulation —
/// structural-matrix products, variable swaps with `I (x) M_w (x) I`
/// factors, and duplicate elimination with `I (x) M_r (x) I` factors — not
/// by shortcut truth-table evaluation.  (A direct evaluator is provided as
/// an independent cross-check; the two agree by construction of the
/// algebra, and the test suite verifies it.)
///
/// Expressions are immutable DAGs with shared subterms; the public surface
/// is a small value type with overloaded operators:
///
///     auto a = expr::var(0), b = expr::var(1);
///     auto phi = equiv(a, !b) & implies(b, a);
///     logic_matrix m = phi.canonical_form().to_logic_matrix();

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "stp/logic_matrix.hpp"
#include "stp/matrix.hpp"
#include "tt/truth_table.hpp"

namespace stpes::stp {

/// A canonical form in progress: a 2 x 2^k dense matrix together with the
/// ordered list of STP variables it multiplies (leftmost factor first).
/// After normalization the list is strictly decreasing in variable id, which
/// matches the `logic_matrix` convention (x_1 = highest input).
struct canonical_form {
  matrix m;
  std::vector<unsigned> vars;

  /// Requires the form to be normalized and complete over variables
  /// {0, ..., num_vars-1}; extends with irrelevant variables if needed.
  [[nodiscard]] logic_matrix to_logic_matrix(unsigned num_vars) const;
};

/// Immutable Boolean expression.
class expr {
public:
  /// \name Leaf constructors
  /// @{
  static expr var(unsigned id);
  static expr constant(bool value);
  /// @}

  /// \name Connectives
  /// @{
  expr operator!() const;
  expr operator&(const expr& other) const;
  expr operator|(const expr& other) const;
  expr operator^(const expr& other) const;
  /// Arbitrary 2-input operator by 4-bit LUT (bit (b<<1|a) convention).
  [[nodiscard]] expr binary(unsigned op, const expr& other) const;
  /// @}

  /// Largest variable id occurring in the expression plus one (0 if none).
  [[nodiscard]] unsigned min_num_vars() const;

  /// Direct truth-table evaluation over `num_vars >= min_num_vars()` inputs.
  [[nodiscard]] tt::truth_table evaluate(unsigned num_vars) const;

  /// STP canonical form (Property 2), normalized: variables sorted in
  /// decreasing id with duplicates power-reduced.
  [[nodiscard]] canonical_form canonical() const;

  /// Infix rendering for diagnostics, e.g. "((x0 & !x1) ^ x2)".
  [[nodiscard]] std::string to_string() const;

  /// AST node; public so the implementation file can traverse it, but not
  /// part of the supported API surface.
  struct node;

private:
  explicit expr(std::shared_ptr<const node> n) : node_(std::move(n)) {}

  std::shared_ptr<const node> node_;
};

/// Convenience connectives used by the paper's examples.
expr implies(const expr& a, const expr& b);  ///< a -> b (LUT 0xD)
expr equiv(const expr& a, const expr& b);    ///< a <-> b (LUT 0x9)

}  // namespace stpes::stp
