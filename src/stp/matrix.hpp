/// \file matrix.hpp
/// \brief Dense integer matrices with Kronecker and semi-tensor products.
///
/// This is the general-purpose arithmetic layer behind the STP formalism of
/// Section II-A: Definition 1 (the semi-tensor product via lcm-padded
/// Kronecker factors), Property 1 (swap matrices), the power-reducing matrix
/// `M_r` (eq. 3) and the variable-swap matrix `M_w` (eq. 4).  Logic-specific
/// 2 x 2^n matrices get a fast specialized representation in
/// `logic_matrix.hpp`; this class favours generality and is used by the
/// expression-to-canonical-form pipeline and by tests that verify the STP
/// identities from the paper.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stpes::stp {

/// Dense row-major matrix over 32-bit signed integers.
///
/// All values arising from logic computations are 0/1, but intermediate
/// generality (sums during multiplication) is kept in `int`.
class matrix {
public:
  matrix() = default;

  /// Zero matrix of the given shape.
  matrix(std::size_t rows, std::size_t cols);

  /// Matrix from an initializer list of rows (used heavily in tests).
  matrix(std::initializer_list<std::initializer_list<int>> rows);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] int at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  int& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }

  bool operator==(const matrix& other) const;
  bool operator!=(const matrix& other) const { return !(*this == other); }

  /// n x n identity.
  static matrix identity(std::size_t n);

  /// The swap matrix W_[m,n]: W * (x (x) y) == y (x) x for column vectors
  /// x of length m and y of length n (Property 1 generalized).
  static matrix swap_matrix(std::size_t m, std::size_t n);

  /// The power-reducing matrix M_r of eq. (3): x (x) x == M_r * x for
  /// Boolean column vectors x.
  static matrix power_reducing();

  /// The variable swap matrix M_w of eq. (4) (equals swap_matrix(2, 2)).
  static matrix variable_swap();

  /// Boolean column vectors of S_V (eq. 1).
  static matrix boolean_true();
  static matrix boolean_false();

  /// Ordinary matrix product (requires cols() == other.rows()).
  [[nodiscard]] matrix multiply(const matrix& other) const;

  /// Ordinary matrix product written into `result`, reusing its storage
  /// (no allocation when `result` already has capacity).  `result` must
  /// not alias either operand.
  void multiply_into(const matrix& other, matrix& result) const;

  /// Kronecker product.
  [[nodiscard]] matrix kronecker(const matrix& other) const;

  /// `*this (x) I_k`, built directly from the diagonal structure — the
  /// identity factor of the lcm padding is never materialized.
  [[nodiscard]] matrix kron_identity(std::size_t k) const;

  /// Semi-tensor product per Definition 1:
  /// X |x Y = (X (x) I_{t/n}) * (Y (x) I_{t/p}) with t = lcm(n, p).
  [[nodiscard]] matrix stp(const matrix& other) const;

  /// Semi-tensor product written into `result` (same contract as
  /// `multiply_into`); the long left-to-right products of `stp_chain` ping
  /// -pong between two buffers instead of allocating per factor.
  void stp_into(const matrix& other, matrix& result) const;

  /// Multi-line debug rendering.
  [[nodiscard]] std::string to_string() const;

private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<int> data_;
};

/// Left-to-right STP chain product (convenience for tests and examples).
matrix stp_chain(const std::vector<matrix>& factors);

}  // namespace stpes::stp
