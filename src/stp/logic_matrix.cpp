#include "stp/logic_matrix.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>
#include <vector>

#include "tt/kernels/kernels.hpp"

namespace stpes::stp {

logic_matrix::logic_matrix(unsigned num_vars) : top_(num_vars) {}

logic_matrix logic_matrix::from_truth_table(const tt::truth_table& f) {
  // Column c of the canonical matrix form holds f(~c & mask): the
  // semi-tensor row expansion is a full bit-order reversal of the table,
  // one dispatched kernel pass instead of a per-minterm loop.
  logic_matrix m{f.num_vars()};
  const auto& src = f.words();
  std::vector<std::uint64_t> reversed(src.size());
  tt::kernels::active().reverse_table(reversed.data(), src.data(),
                                      f.num_vars());
  m.top_ = tt::truth_table::from_words(f.num_vars(), reversed.data(),
                                       reversed.size());
  return m;
}

tt::truth_table logic_matrix::to_truth_table() const {
  const auto& src = top_.words();
  std::vector<std::uint64_t> reversed(src.size());
  tt::kernels::active().reverse_table(reversed.data(), src.data(),
                                      num_vars());
  return tt::truth_table::from_words(num_vars(), reversed.data(),
                                     reversed.size());
}

matrix logic_matrix::to_matrix() const {
  matrix m{2, static_cast<std::size_t>(num_cols())};
  for (std::uint64_t c = 0; c < num_cols(); ++c) {
    const bool is_true = column_is_true(c);
    m.at(0, c) = is_true ? 1 : 0;
    m.at(1, c) = is_true ? 0 : 1;
  }
  return m;
}

logic_matrix logic_matrix::from_matrix(const matrix& m) {
  if (m.rows() != 2 || !std::has_single_bit(m.cols())) {
    throw std::invalid_argument{"logic_matrix::from_matrix: bad shape"};
  }
  const unsigned num_vars =
      static_cast<unsigned>(std::countr_zero(m.cols()));
  logic_matrix result{num_vars};
  for (std::size_t c = 0; c < m.cols(); ++c) {
    const int hi = m.at(0, c);
    const int lo = m.at(1, c);
    if (!((hi == 1 && lo == 0) || (hi == 0 && lo == 1))) {
      throw std::invalid_argument{
          "logic_matrix::from_matrix: column not in S_V"};
    }
    result.set_column(c, hi == 1);
  }
  return result;
}

logic_matrix logic_matrix::binary_op(unsigned op) {
  logic_matrix m{2};
  for (std::uint64_t c = 0; c < 4; ++c) {
    const unsigned a = ((c >> 1) & 1) == 0 ? 1 : 0;  // MSB bit = first var
    const unsigned b = (c & 1) == 0 ? 1 : 0;
    m.set_column(c, ((op >> ((b << 1) | a)) & 1) != 0);
  }
  return m;
}

logic_matrix logic_matrix::negation() {
  logic_matrix m{1};
  m.set_column(0, false);  // input True  -> output False
  m.set_column(1, true);   // input False -> output True
  return m;
}

logic_matrix logic_matrix::complement() const {
  logic_matrix m{*this};
  m.top_ = ~m.top_;
  return m;
}

std::vector<logic_matrix> logic_matrix::split(std::size_t parts) const {
  if (parts == 0 || !std::has_single_bit(parts) || parts > num_cols()) {
    throw std::invalid_argument{"logic_matrix::split: bad part count"};
  }
  const unsigned part_vars =
      num_vars() - static_cast<unsigned>(std::countr_zero(parts));
  const std::uint64_t part_cols = std::uint64_t{1} << part_vars;
  const auto& words = top_.words();
  std::vector<logic_matrix> result;
  result.reserve(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    logic_matrix block{part_vars};
    if (part_cols >= 64) {
      // Word-aligned block: hand the source words over directly.
      const std::size_t part_words = static_cast<std::size_t>(part_cols / 64);
      block.top_ = tt::truth_table::from_words(
          part_vars, words.data() + p * part_words, part_words);
    } else {
      // Sub-word block: part_cols divides 64, so the block never straddles
      // a word boundary.
      const std::uint64_t first = p * part_cols;
      const std::uint64_t mask = (std::uint64_t{1} << part_cols) - 1;
      const std::uint64_t w = (words[first >> 6] >> (first & 63)) & mask;
      block.top_ = tt::truth_table::from_words(part_vars, &w, 1);
    }
    result.push_back(std::move(block));
  }
  return result;
}

std::vector<std::uint64_t> logic_matrix::true_columns() const {
  const auto& words = top_.words();
  std::size_t count = 0;
  for (const std::uint64_t w : words) {
    count += static_cast<std::size_t>(std::popcount(w));
  }
  std::vector<std::uint64_t> cols;
  cols.reserve(count);
  for (std::size_t i = 0; i < words.size(); ++i) {
    const std::uint64_t base = static_cast<std::uint64_t>(i) << 6;
    for (std::uint64_t w = words[i]; w != 0; w &= w - 1) {
      cols.push_back(base +
                     static_cast<std::uint64_t>(std::countr_zero(w)));
    }
  }
  return cols;
}

std::string logic_matrix::to_string() const {
  std::string top = "[";
  std::string bottom = " ";
  for (std::uint64_t c = 0; c < num_cols(); ++c) {
    top += column_is_true(c) ? '1' : '0';
    bottom += column_is_true(c) ? '0' : '1';
    if (c + 1 < num_cols()) {
      top += ' ';
      bottom += ' ';
    }
  }
  return top + " / " + bottom + "]";
}

}  // namespace stpes::stp
