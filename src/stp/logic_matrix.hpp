/// \file logic_matrix.hpp
/// \brief Specialized 2 x 2^n logic matrices (Definition 2/3 of the paper).
///
/// A logic matrix has every column in S_V = { [1,0]^T, [0,1]^T }, so the
/// bottom row is the complement of the top row and a single bit vector (the
/// top row) represents the whole matrix.  The canonical form `M_Phi` of an
/// n-variable function, the structural matrices `M_sigma` of the 16 binary
/// operators, and the per-vertex matrices produced by the factorization of
/// Section III-B are all logic matrices.
///
/// Column convention (delta indexing of the STP literature): column 0 is the
/// all-True assignment; reading column index `c` as n bits MSB-first, bit i
/// set means STP variable x_{i+1} (the (i+1)-th factor of M_Phi x_1 ... x_n)
/// is False.  With the truth-table convention of `tt::truth_table` (variable
/// 0 = least significant input bit) and the STP variable order
/// x_1 = input n-1, ..., x_n = input 0, the conversion is simply
/// `top_row(c) = f(~c & (2^n - 1))`.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stp/matrix.hpp"
#include "tt/truth_table.hpp"

namespace stpes::stp {

/// A 2 x 2^n logic matrix stored as its top row.
class logic_matrix {
public:
  /// All-[0,1]^T (constant-False) matrix over `num_vars` STP variables.
  explicit logic_matrix(unsigned num_vars = 0);

  [[nodiscard]] unsigned num_vars() const { return top_.num_vars(); }
  [[nodiscard]] std::uint64_t num_cols() const { return top_.num_bits(); }

  /// Top-row entry of column `c` (1 means the column is [1,0]^T = True).
  [[nodiscard]] bool column_is_true(std::uint64_t c) const {
    return top_.get_bit(c);
  }
  void set_column(std::uint64_t c, bool is_true) { top_.set_bit(c, is_true); }

  /// \name Conversions
  /// @{
  /// Canonical form of `f` with STP variable order x_1 = input n-1, ...,
  /// x_n = input 0.
  static logic_matrix from_truth_table(const tt::truth_table& f);
  /// Inverse of `from_truth_table`.
  [[nodiscard]] tt::truth_table to_truth_table() const;
  /// Widening to the general dense representation.
  [[nodiscard]] matrix to_matrix() const;
  /// Narrowing from a dense 2 x 2^k 0/1 matrix with complementary rows;
  /// throws if `m` is not a logic matrix.
  static logic_matrix from_matrix(const matrix& m);
  /// @}

  /// \name Structural matrices (Definition 3)
  /// @{
  /// Structural matrix of the 2-input operator whose LUT is the low 4 bits
  /// of `op` (bit (b<<1|a) = output for first input a, second input b); STP
  /// variable order is (first, second).
  static logic_matrix binary_op(unsigned op);
  /// Structural matrix M_n of negation.
  static logic_matrix negation();
  /// @}

  /// The represented Boolean function complemented (swap of the two rows).
  [[nodiscard]] logic_matrix complement() const;

  /// Splits the columns into `parts` equal consecutive blocks (the
  /// "quartering" of Section III-B when parts == 4) and returns them as
  /// smaller logic matrices.  `parts` must be a power of two dividing the
  /// column count.
  [[nodiscard]] std::vector<logic_matrix> split(std::size_t parts) const;

  /// All column indices whose column equals [1,0]^T — the satisfying
  /// assignments of the canonical form (Fig. 1).
  [[nodiscard]] std::vector<std::uint64_t> true_columns() const;

  bool operator==(const logic_matrix& other) const {
    return top_ == other.top_;
  }
  bool operator!=(const logic_matrix& other) const {
    return !(*this == other);
  }

  /// Rendering such as "[1 0 1 1 / 0 1 0 0]".
  [[nodiscard]] std::string to_string() const;

private:
  tt::truth_table top_;  ///< top row, indexed by column
};

}  // namespace stpes::stp
