#include "stp/matrix.hpp"

#include <cassert>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace stpes::stp {

matrix::matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

matrix::matrix(std::initializer_list<std::initializer_list<int>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument{"matrix: ragged initializer"};
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

bool matrix::operator==(const matrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
}

matrix matrix::identity(std::size_t n) {
  matrix m{n, n};
  for (std::size_t i = 0; i < n; ++i) {
    m.at(i, i) = 1;
  }
  return m;
}

matrix matrix::swap_matrix(std::size_t m, std::size_t n) {
  matrix w{m * n, m * n};
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // (x (x) y)[i*n + j] = x_i * y_j must land at (y (x) x)[j*m + i].
      w.at(j * m + i, i * n + j) = 1;
    }
  }
  return w;
}

matrix matrix::power_reducing() {
  return matrix{{1, 0}, {0, 0}, {0, 0}, {0, 1}};
}

matrix matrix::variable_swap() { return swap_matrix(2, 2); }

matrix matrix::boolean_true() { return matrix{{1}, {0}}; }
matrix matrix::boolean_false() { return matrix{{0}, {1}}; }

matrix matrix::multiply(const matrix& other) const {
  matrix result;
  multiply_into(other, result);
  return result;
}

void matrix::multiply_into(const matrix& other, matrix& result) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument{"matrix::multiply: dimension mismatch"};
  }
  assert(&result != this && &result != &other);
  result.rows_ = rows_;
  result.cols_ = other.cols_;
  result.data_.assign(rows_ * other.cols_, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const int v = at(r, k);
      if (v == 0) {
        continue;
      }
      for (std::size_t c = 0; c < other.cols_; ++c) {
        result.at(r, c) += v * other.at(k, c);
      }
    }
  }
}

matrix matrix::kronecker(const matrix& other) const {
  matrix result{rows_ * other.rows_, cols_ * other.cols_};
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const int v = at(r, c);
      if (v == 0) {
        continue;
      }
      for (std::size_t r2 = 0; r2 < other.rows_; ++r2) {
        for (std::size_t c2 = 0; c2 < other.cols_; ++c2) {
          result.at(r * other.rows_ + r2, c * other.cols_ + c2) =
              v * other.at(r2, c2);
        }
      }
    }
  }
  return result;
}

matrix matrix::kron_identity(std::size_t k) const {
  matrix result{rows_ * k, cols_ * k};
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const int v = at(r, c);
      if (v == 0) {
        continue;
      }
      for (std::size_t i = 0; i < k; ++i) {
        result.at(r * k + i, c * k + i) = v;
      }
    }
  }
  return result;
}

matrix matrix::stp(const matrix& other) const {
  matrix result;
  stp_into(other, result);
  return result;
}

void matrix::stp_into(const matrix& other, matrix& result) const {
  const std::size_t t = std::lcm(cols_, other.rows_);
  const matrix* left = this;
  const matrix* right = &other;
  matrix left_pad;
  matrix right_pad;
  if (t != cols_) {
    left_pad = kron_identity(t / cols_);
    left = &left_pad;
  }
  if (t != other.rows_) {
    right_pad = other.kron_identity(t / other.rows_);
    right = &right_pad;
  }
  left->multiply_into(*right, result);
}

std::string matrix::to_string() const {
  std::string out;
  for (std::size_t r = 0; r < rows_; ++r) {
    out += '[';
    for (std::size_t c = 0; c < cols_; ++c) {
      out += std::to_string(at(r, c));
      if (c + 1 < cols_) {
        out += ' ';
      }
    }
    out += "]\n";
  }
  return out;
}

matrix stp_chain(const std::vector<matrix>& factors) {
  if (factors.empty()) {
    throw std::invalid_argument{"stp_chain: empty product"};
  }
  matrix acc = factors.front();
  matrix scratch;  // ping-pongs with acc so each step reuses capacity
  for (std::size_t i = 1; i < factors.size(); ++i) {
    acc.stp_into(factors[i], scratch);
    std::swap(acc, scratch);
  }
  return acc;
}

}  // namespace stpes::stp
