#include "stp/expr.hpp"

#include <cassert>
#include <stdexcept>

namespace stpes::stp {

struct expr::node {
  enum class kind { constant, variable, negation, binary };
  kind k;
  bool value = false;                    // kind::constant
  unsigned var = 0;                      // kind::variable
  unsigned op = 0;                       // kind::binary (4-bit LUT)
  std::shared_ptr<const node> left;      // negation / binary
  std::shared_ptr<const node> right;     // binary
};

namespace {

using node_ptr = std::shared_ptr<const expr::node>;

/// I_{2^p} (x) core (x) I_{2^suffix}.
matrix padded(const matrix& core, unsigned prefix_vars,
              unsigned suffix_vars) {
  matrix result = core;
  if (prefix_vars > 0) {
    result =
        matrix::identity(std::size_t{1} << prefix_vars).kronecker(result);
  }
  if (suffix_vars > 0) {
    result = result.kronecker(matrix::identity(std::size_t{1} << suffix_vars));
  }
  return result;
}

/// Sorts `vars` into strictly decreasing order by right-multiplying `m`
/// with I (x) M_w (x) I swap factors; adjacent duplicates are merged with
/// I (x) M_r (x) I power-reducing factors (Properties 1, 3, 4).
void normalize(matrix& m, std::vector<unsigned>& vars) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t p = 0; p + 1 < vars.size(); ++p) {
      const unsigned k = static_cast<unsigned>(vars.size());
      const unsigned suffix = k - static_cast<unsigned>(p) - 2;
      if (vars[p] < vars[p + 1]) {
        m = m.multiply(
            padded(matrix::variable_swap(), static_cast<unsigned>(p), suffix));
        std::swap(vars[p], vars[p + 1]);
        changed = true;
      } else if (vars[p] == vars[p + 1]) {
        m = m.multiply(padded(matrix::power_reducing(),
                              static_cast<unsigned>(p), suffix));
        vars.erase(vars.begin() + static_cast<std::ptrdiff_t>(p) + 1);
        changed = true;
        break;  // vector length changed; restart the pass
      }
    }
  }
}

canonical_form canonical_of(const expr::node& n) {
  switch (n.k) {
    case expr::node::kind::constant:
      return {n.value ? matrix::boolean_true() : matrix::boolean_false(), {}};
    case expr::node::kind::variable:
      return {matrix::identity(2), {n.var}};
    case expr::node::kind::negation: {
      canonical_form child = canonical_of(*n.left);
      child.m = logic_matrix::negation().to_matrix().multiply(child.m);
      return child;
    }
    case expr::node::kind::binary: {
      canonical_form lhs = canonical_of(*n.left);
      canonical_form rhs = canonical_of(*n.right);
      const unsigned a = static_cast<unsigned>(lhs.vars.size());
      // M = M_op |x M_L |x (I_{2^a} (x) M_R); see Section II-A.
      matrix m = logic_matrix::binary_op(n.op).to_matrix().stp(lhs.m);
      m = m.multiply(
          matrix::identity(std::size_t{1} << a).kronecker(rhs.m));
      canonical_form result{std::move(m), lhs.vars};
      result.vars.insert(result.vars.end(), rhs.vars.begin(),
                         rhs.vars.end());
      normalize(result.m, result.vars);
      return result;
    }
  }
  throw std::logic_error{"canonical_of: bad node kind"};
}

tt::truth_table evaluate_node(const expr::node& n, unsigned num_vars) {
  switch (n.k) {
    case expr::node::kind::constant:
      return tt::truth_table::constant(num_vars, n.value);
    case expr::node::kind::variable:
      return tt::truth_table::nth_var(num_vars, n.var);
    case expr::node::kind::negation:
      return ~evaluate_node(*n.left, num_vars);
    case expr::node::kind::binary:
      return tt::apply_binary_op(n.op, evaluate_node(*n.left, num_vars),
                                 evaluate_node(*n.right, num_vars));
  }
  throw std::logic_error{"evaluate_node: bad node kind"};
}

unsigned min_vars_of(const expr::node& n) {
  switch (n.k) {
    case expr::node::kind::constant:
      return 0;
    case expr::node::kind::variable:
      return n.var + 1;
    case expr::node::kind::negation:
      return min_vars_of(*n.left);
    case expr::node::kind::binary:
      return std::max(min_vars_of(*n.left), min_vars_of(*n.right));
  }
  return 0;
}

std::string render(const expr::node& n) {
  switch (n.k) {
    case expr::node::kind::constant:
      return n.value ? "1" : "0";
    case expr::node::kind::variable:
      return "x" + std::to_string(n.var);
    case expr::node::kind::negation:
      return "!" + render(*n.left);
    case expr::node::kind::binary: {
      const char* sym = nullptr;
      switch (n.op) {
        case 0x8:
          sym = " & ";
          break;
        case 0xE:
          sym = " | ";
          break;
        case 0x6:
          sym = " ^ ";
          break;
        case 0xD:
          sym = " -> ";
          break;
        case 0x9:
          sym = " <-> ";
          break;
        default:
          break;
      }
      if (sym != nullptr) {
        return "(" + render(*n.left) + sym + render(*n.right) + ")";
      }
      return "op" + std::to_string(n.op) + "(" + render(*n.left) + ", " +
             render(*n.right) + ")";
    }
  }
  return "?";
}

node_ptr make_binary(unsigned op, node_ptr l, node_ptr r) {
  auto n = std::make_shared<expr::node>();
  n->k = expr::node::kind::binary;
  n->op = op & 0xF;
  n->left = std::move(l);
  n->right = std::move(r);
  return n;
}

}  // namespace

logic_matrix canonical_form::to_logic_matrix(unsigned num_vars) const {
  for (std::size_t i = 0; i + 1 < vars.size(); ++i) {
    if (vars[i] <= vars[i + 1]) {
      throw std::logic_error{"canonical_form: not normalized"};
    }
  }
  const std::size_t k = vars.size();
  if (m.rows() != 2 || m.cols() != (std::size_t{1} << k)) {
    throw std::logic_error{"canonical_form: bad matrix shape"};
  }
  logic_matrix result{num_vars};
  for (std::uint64_t t = 0; t < (std::uint64_t{1} << num_vars); ++t) {
    // Column index over the present variables only; absent variables are
    // irrelevant by construction.
    std::uint64_t c = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (vars[i] >= num_vars) {
        throw std::invalid_argument{"canonical_form: variable out of range"};
      }
      const bool var_true = ((t >> vars[i]) & 1) != 0;
      if (!var_true) {
        c |= std::uint64_t{1} << (k - 1 - i);
      }
    }
    const int hi = m.at(0, c);
    const int lo = m.at(1, c);
    if (!((hi == 1 && lo == 0) || (hi == 0 && lo == 1))) {
      throw std::logic_error{"canonical_form: column not in S_V"};
    }
    // Column index of the full logic matrix: bit for input v set iff the
    // input is False, i.e. complement of t.
    const std::uint64_t full_col =
        ~t & ((std::uint64_t{1} << num_vars) - 1);
    result.set_column(full_col, hi == 1);
  }
  return result;
}

expr expr::var(unsigned id) {
  auto n = std::make_shared<node>();
  n->k = node::kind::variable;
  n->var = id;
  return expr{std::move(n)};
}

expr expr::constant(bool value) {
  auto n = std::make_shared<node>();
  n->k = node::kind::constant;
  n->value = value;
  return expr{std::move(n)};
}

expr expr::operator!() const {
  auto n = std::make_shared<node>();
  n->k = node::kind::negation;
  n->left = node_;
  return expr{std::move(n)};
}

expr expr::operator&(const expr& other) const {
  return expr{make_binary(0x8, node_, other.node_)};
}

expr expr::operator|(const expr& other) const {
  return expr{make_binary(0xE, node_, other.node_)};
}

expr expr::operator^(const expr& other) const {
  return expr{make_binary(0x6, node_, other.node_)};
}

expr expr::binary(unsigned op, const expr& other) const {
  return expr{make_binary(op, node_, other.node_)};
}

unsigned expr::min_num_vars() const { return min_vars_of(*node_); }

tt::truth_table expr::evaluate(unsigned num_vars) const {
  if (num_vars < min_num_vars()) {
    throw std::invalid_argument{"expr::evaluate: too few variables"};
  }
  return evaluate_node(*node_, num_vars);
}

canonical_form expr::canonical() const { return canonical_of(*node_); }

std::string expr::to_string() const { return render(*node_); }

expr implies(const expr& a, const expr& b) { return a.binary(0xD, b); }
expr equiv(const expr& a, const expr& b) { return a.binary(0x9, b); }

}  // namespace stpes::stp
