#include "server/socket_server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "server/fd_stream.hpp"
#include "util/failpoint.hpp"

namespace stpes::server {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error{what + ": " + std::strerror(errno)};
}

}  // namespace

stream_listener::stream_listener(session_host& host) : host_(host) {
  if (::pipe(wake_fds_) < 0) {
    fail_errno("pipe");
  }
}

stream_listener::~stream_listener() {
  for (const int fd : {listen_fd_, wake_fds_[0], wake_fds_[1]}) {
    if (fd >= 0) {
      ::close(fd);
    }
  }
}

void stream_listener::run() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (fds[1].revents != 0 || stopping_.load(std::memory_order_acquire)) {
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    // Accept-time fault seam: an injected errno behaves exactly like a
    // transient kernel-level accept failure (ECONNABORTED, EMFILE, ...) —
    // the connection is dropped, the loop keeps serving.
    int client = -1;
    if (const int injected =
            STPES_FAILPOINT_ERRNO(accept_failpoint_name());
        injected != 0) {
      errno = injected;
    } else {
      client = ::accept(listen_fd_, nullptr, nullptr);
    }
    if (client < 0) {
      continue;
    }
    configure_accepted_fd(client);
    std::lock_guard<std::mutex> lock{mutex_};
    open_fds_.push_back(client);
    threads_.emplace_back([this, client] { handle_connection(client); });
  }

  // Stop listening before draining: a stopped daemon must look *dead*
  // to peers — connection refused, port immediately rebindable — not
  // like a blackhole whose backlog swallows connects until destruction.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Drain: give in-flight requests a grace period to finish naturally,
  // wake idle readers, then cooperatively cancel whatever is still
  // running so the joins below are bounded by the engines' poll stride
  // rather than by a client's synthesis budget.
  host_.begin_drain();
  unblock_open_connections();
  const double grace = host_.drain_grace_seconds();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(grace);
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::lock_guard<std::mutex> lock{mutex_};
      if (open_fds_.empty()) {
        break;  // every session already finished
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  host_.cancel_inflight_jobs();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock{mutex_};
    workers.swap(threads_);
  }
  for (auto& t : workers) {
    t.join();
  }
}

void stream_listener::stop() {
  stopping_.store(true, std::memory_order_release);
  // Wake the poll(); one byte is enough, and write() is signal-safe.
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], "x", 1);
}

void stream_listener::handle_connection(int fd) {
  {
    const double idle = host_.idle_timeout_seconds();
    const int read_timeout_ms =
        idle > 0.0 ? static_cast<int>(idle * 1000.0) : -1;
    fd_iostream io{fd, read_timeout_ms};
    host_.serve(io, io);
    if (io.timed_out()) {
      // The session ended because the peer went silent, not because it
      // hung up: tell it why before closing, then reclaim the thread.
      host_.note_idle_timeout();
      io.clear();
      io << "ERR idle-timeout\n";
      io.flush();
    }
  }
  {
    // Untrack before close: once closed, the fd number can be reused by a
    // new connection, and the drain path must never shut that one down.
    std::lock_guard<std::mutex> lock{mutex_};
    open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                    open_fds_.end());
  }
  ::close(fd);
  if (host_.shutdown_requested()) {
    stop();  // a client-issued SHUTDOWN stops the accept loop too
  }
}

void stream_listener::unblock_open_connections() {
  std::lock_guard<std::mutex> lock{mutex_};
  for (const int fd : open_fds_) {
    ::shutdown(fd, SHUT_RD);  // blocked reads return EOF; writes still work
  }
}

unix_socket_server::unix_socket_server(session_host& host,
                                       std::string socket_path)
    : stream_listener(host), path_(std::move(socket_path)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error{"socket path too long: " + path_};
  }
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    fail_errno("socket");
  }
  ::unlink(path_.c_str());  // stale socket from a previous daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("bind " + path_);
  }
  if (::listen(fd, 64) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("listen");
  }
  bound_ = true;
  adopt_listen_fd(fd);
}

unix_socket_server::~unix_socket_server() {
  if (bound_) {
    ::unlink(path_.c_str());
  }
}

}  // namespace stpes::server
