#include "server/socket_server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "server/fd_stream.hpp"
#include "util/failpoint.hpp"

namespace stpes::server {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error{what + ": " + std::strerror(errno)};
}

}  // namespace

unix_socket_server::unix_socket_server(synthesis_server& server,
                                       std::string socket_path)
    : server_(server), path_(std::move(socket_path)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error{"socket path too long: " + path_};
  }
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    fail_errno("socket");
  }
  ::unlink(path_.c_str());  // stale socket from a previous daemon
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    fail_errno("bind " + path_);
  }
  if (::listen(listen_fd_, 64) < 0) {
    fail_errno("listen");
  }
  if (::pipe(wake_fds_) < 0) {
    fail_errno("pipe");
  }
}

unix_socket_server::~unix_socket_server() {
  for (const int fd : {listen_fd_, wake_fds_[0], wake_fds_[1]}) {
    if (fd >= 0) {
      ::close(fd);
    }
  }
  if (listen_fd_ >= 0) {
    ::unlink(path_.c_str());
  }
}

void unix_socket_server::run() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (fds[1].revents != 0 || stopping_.load(std::memory_order_acquire)) {
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    // Accept-time fault seam: an injected errno behaves exactly like a
    // transient kernel-level accept failure (ECONNABORTED, EMFILE, ...) —
    // the connection is dropped, the loop keeps serving.
    int client = -1;
    if (const int injected = STPES_FAILPOINT_ERRNO("socket_server.accept");
        injected != 0) {
      errno = injected;
    } else {
      client = ::accept(listen_fd_, nullptr, nullptr);
    }
    if (client < 0) {
      continue;
    }
    std::lock_guard<std::mutex> lock{mutex_};
    open_fds_.push_back(client);
    threads_.emplace_back([this, client] { handle_connection(client); });
  }

  // Drain: give in-flight requests a grace period to finish naturally,
  // wake idle readers, then cooperatively cancel whatever is still
  // running so the joins below are bounded by the engines' poll stride
  // rather than by a client's synthesis budget.
  server_.begin_drain();
  unblock_open_connections();
  const double grace = server_.options().drain_grace_seconds;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(grace);
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::lock_guard<std::mutex> lock{mutex_};
      if (open_fds_.empty()) {
        break;  // every session already finished
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server_.synthesizer().cancel_inflight();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock{mutex_};
    workers.swap(threads_);
  }
  for (auto& t : workers) {
    t.join();
  }
}

void unix_socket_server::stop() {
  stopping_.store(true, std::memory_order_release);
  // Wake the poll(); one byte is enough, and write() is signal-safe.
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], "x", 1);
}

void unix_socket_server::handle_connection(int fd) {
  {
    fd_iostream io{fd};
    server_.serve(io, io);
  }
  {
    // Untrack before close: once closed, the fd number can be reused by a
    // new connection, and the drain path must never shut that one down.
    std::lock_guard<std::mutex> lock{mutex_};
    open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                    open_fds_.end());
  }
  ::close(fd);
  if (server_.shutdown_requested()) {
    stop();  // a client-issued SHUTDOWN stops the accept loop too
  }
}

void unix_socket_server::unblock_open_connections() {
  std::lock_guard<std::mutex> lock{mutex_};
  for (const int fd : open_fds_) {
    ::shutdown(fd, SHUT_RD);  // blocked reads return EOF; writes still work
  }
}

}  // namespace stpes::server
