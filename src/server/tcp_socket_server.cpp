#include "server/tcp_socket_server.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace stpes::server {

tcp_listen_spec tcp_listen_spec::parse(const std::string& spec) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 == spec.size()) {
    throw std::runtime_error{"bad listen spec '" + spec +
                             "' (want host:port)"};
  }
  tcp_listen_spec out;
  out.host = spec.substr(0, colon);
  if (out.host == "*") {
    out.host.clear();
  }
  const std::string port_str = spec.substr(colon + 1);
  std::size_t pos = 0;
  unsigned long port = 0;
  try {
    port = std::stoul(port_str, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != port_str.size() || port > 65535) {
    throw std::runtime_error{"bad port '" + port_str + "' in listen spec '" +
                             spec + "'"};
  }
  out.port = static_cast<std::uint16_t>(port);
  return out;
}

tcp_socket_server::tcp_socket_server(session_host& host,
                                     const tcp_listen_spec& spec)
    : stream_listener(host) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(spec.port);
  if (spec.host.empty()) {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, spec.host.c_str(), &addr.sin_addr) != 1) {
    // Not a dotted quad: resolve the name (e.g. "localhost").
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const int rc = ::getaddrinfo(spec.host.c_str(), nullptr, &hints, &res);
    if (rc != 0 || res == nullptr) {
      throw std::runtime_error{"cannot resolve listen host '" + spec.host +
                               "': " + ::gai_strerror(rc)};
    }
    addr.sin_addr =
        reinterpret_cast<const sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error{"socket: " + std::string{std::strerror(errno)}};
  }
  // A restarted shard must rebind its port while old connections linger
  // in TIME_WAIT — the router's kill/restart failover depends on it.
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error{"bind " + spec.host + ":" +
                             std::to_string(spec.port) + ": " + reason};
  }
  if (::listen(fd, 64) < 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error{"listen: " + reason};
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  adopt_listen_fd(fd);
}

void tcp_socket_server::configure_accepted_fd(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace stpes::server
