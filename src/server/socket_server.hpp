/// \file socket_server.hpp
/// \brief Stream-socket transports for any `session_host`.
///
/// Thread-per-connection on top of the shared daemon core: every accepted
/// client gets its own session thread, and all of them fan work onto the
/// one `service::thread_pool` through the single-flight cache.  The accept
/// loop multiplexes the listen fd with a self-pipe so `stop()` is safe to
/// call from a signal handler (it only stores an atomic and writes one
/// byte).
///
/// `stream_listener` is everything transport-independent — the accept
/// loop, the per-connection session threads, the idle-timeout shedding,
/// and the drain sequencing; `unix_socket_server` (this file) and
/// `tcp_socket_server` (tcp_socket_server.hpp) only differ in how the
/// listening socket is created.
///
/// Idle shedding: when the host reports a nonzero `idle_timeout_seconds`,
/// each connection reads through a deadline-bounded stream; a client that
/// stays silent past the deadline — including one that connects and never
/// writes a byte (a half-open peer) — gets `ERR idle-timeout` and its
/// session thread back.
///
/// Shutdown sequencing — the part that makes SIGTERM graceful:
///   1. `stop()` wakes the accept loop; no new connections are accepted.
///   2. The host drains: sessions finish their in-flight request.
///   3. Idle connections blocked in `read()` are unblocked with
///      `shutdown(fd, SHUT_RD)`; their sessions see EOF and return.
///   4. In-flight requests get `drain_grace_seconds()` to finish;
///      anything still running is then cooperatively cancelled through
///      `cancel_inflight_jobs()` (the session replies ERR timeout and
///      closes), so joins complete within the engines' poll stride.
///   5. All session threads are joined.
/// A client that issues `SHUTDOWN` triggers the same sequence from inside
/// a session.

#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/session_host.hpp"

namespace stpes::server {

/// Accept loop + session threads + drain over an already-listening fd.
/// Derived classes create the socket in their constructor and hand it
/// over with `adopt_listen_fd()`.
class stream_listener {
public:
  explicit stream_listener(session_host& host);
  virtual ~stream_listener();

  stream_listener(const stream_listener&) = delete;
  stream_listener& operator=(const stream_listener&) = delete;

  /// Accept loop; returns after `stop()` (or a client SHUTDOWN) once every
  /// session has drained and joined.
  void run();

  /// Requests shutdown.  Async-signal-safe: atomic store + pipe write.
  void stop();

protected:
  /// Takes ownership of a bound+listening socket.  Called once, from the
  /// derived constructor.
  void adopt_listen_fd(int fd) { listen_fd_ = fd; }
  [[nodiscard]] int listen_fd() const { return listen_fd_; }

  /// The failpoint name evaluated on every accept (chaos seam).
  [[nodiscard]] virtual const char* accept_failpoint_name() const = 0;

  /// Transport hook applied to every accepted fd (e.g. TCP_NODELAY).
  virtual void configure_accepted_fd(int /*fd*/) {}

private:
  void handle_connection(int fd);
  void unblock_open_connections();

  session_host& host_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: [0] polled, [1] written
  std::atomic<bool> stopping_{false};

  std::mutex mutex_;  ///< guards open_fds_ and threads_
  std::vector<int> open_fds_;
  std::vector<std::thread> threads_;
};

/// Listener over a Unix-domain socket file.
class unix_socket_server final : public stream_listener {
public:
  /// Binds and listens on `socket_path` (an existing socket file from a
  /// dead daemon is replaced).  Throws `std::runtime_error` on bind
  /// failure.
  unix_socket_server(session_host& host, std::string socket_path);
  ~unix_socket_server() override;

  [[nodiscard]] const std::string& socket_path() const { return path_; }

protected:
  [[nodiscard]] const char* accept_failpoint_name() const override {
    return "socket_server.accept";
  }

private:
  std::string path_;
  bool bound_ = false;
};

}  // namespace stpes::server
