/// \file socket_server.hpp
/// \brief Unix-domain socket transport for `synthesis_server`.
///
/// Thread-per-connection on top of the shared daemon core: every accepted
/// client gets its own session thread, and all of them fan work onto the
/// one `service::thread_pool` through the single-flight cache.  The accept
/// loop multiplexes the listen fd with a self-pipe so `stop()` is safe to
/// call from a signal handler (it only stores an atomic and writes one
/// byte).
///
/// Shutdown sequencing — the part that makes SIGTERM graceful:
///   1. `stop()` wakes the accept loop; no new connections are accepted.
///   2. The daemon core drains: sessions finish their in-flight request.
///   3. Idle connections blocked in `read()` are unblocked with
///      `shutdown(fd, SHUT_RD)`; their sessions see EOF and return.
///   4. In-flight requests get `server_options::drain_grace_seconds` to
///      finish; anything still running is then cooperatively cancelled
///      through its `core::run_context` (the session replies ERR timeout
///      and closes), so joins complete within the engines' poll stride.
///   5. All session threads are joined, the socket file is unlinked.
/// A client that issues `SHUTDOWN` triggers the same sequence from inside
/// a session.

#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/server.hpp"

namespace stpes::server {

class unix_socket_server {
public:
  /// Binds and listens on `socket_path` (an existing socket file from a
  /// dead daemon is replaced).  Throws `std::runtime_error` on bind
  /// failure.
  unix_socket_server(synthesis_server& server, std::string socket_path);
  ~unix_socket_server();

  unix_socket_server(const unix_socket_server&) = delete;
  unix_socket_server& operator=(const unix_socket_server&) = delete;

  /// Accept loop; returns after `stop()` (or a client SHUTDOWN) once every
  /// session has drained and joined.
  void run();

  /// Requests shutdown.  Async-signal-safe: atomic store + pipe write.
  void stop();

  [[nodiscard]] const std::string& socket_path() const { return path_; }

private:
  void handle_connection(int fd);
  void unblock_open_connections();

  synthesis_server& server_;
  std::string path_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: [0] polled, [1] written
  std::atomic<bool> stopping_{false};

  std::mutex mutex_;  ///< guards open_fds_ and threads_
  std::vector<int> open_fds_;
  std::vector<std::thread> threads_;
};

}  // namespace stpes::server
