/// \file protocol.hpp
/// \brief The stpes-serve line protocol: request parsing and reply framing.
///
/// The daemon speaks a plain text protocol, one request per line, so any
/// client that can write to a socket (netcat, a Python rewrite loop, the
/// bundled `stpes-client`) can use it:
///
///     SYNTH <engine> <n> <hex-tt>[,<hex-tt>...] [timeout_s]
///     BATCH ... <engine> <n> <hex-tt>[,...] [timeout_s] per line ... END
///     SWEEP <path> [timeout_s] [prover]
///     STATS [TEXT|JSON]
///     SAVE <path>
///     LOAD <path>
///     RELOAD <path>
///     CANCEL [id]
///     FAILPOINT SET <name> <spec> | CLEAR [name] | LIST
///     PING | QUIT | SHUTDOWN
///
/// Every reply starts with exactly one `OK ...`, `ERR <reason>`, or
/// `BUSY retry-after <ms>` line.  Multi-line payloads are counted, never
/// sentinel-terminated: the OK line carries how many lines (or result
/// blocks) follow, so a client always knows when a reply is complete.
///
///     SYNTH reply:  OK <status> <gates> <num_chains> <seconds>
///                   [outputs=<m>] id=<id>
///                   then exactly <num_chains> `chain ...` (or, for
///                   m >= 2, `mchain ...`) lines
///     BATCH reply:  OK <count> id=<id>
///                   then <count> blocks, each
///                   RESULT <index> <status> <gates> <num_chains> <seconds>
///                   [outputs=<m>]
///                   followed by its <num_chains> chain lines
///
/// A comma-separated hex list makes the request multi-output: one chain
/// realizing every listed function over the same `n` inputs, in order.
/// `outputs=<m>` is echoed on the head line only for m >= 2, so
/// single-output replies are byte-identical to the previous protocol
/// generation (count-driven readers that ignore unknown trailing tokens
/// need no change either way).
///     SWEEP reply:  OK swept <ands_before> <ands_after> <merged> <proofs>
///                   <refutations> <sim_rounds> <seconds> id=<id>
///     STATS reply:  OK <num_lines>  then that many lines
///     CANCEL reply: OK cancelled <n>  (in-flight jobs signalled)
///     RELOAD reply: OK reloaded <n> skipped <m> cleared <k>
///     BUSY reply:   BUSY retry-after <ms>  (overload shed; retry later)
///
/// `SWEEP` loads a combinational AIGER file from the daemon's filesystem
/// and SAT-sweeps it on the worker pool (see `sweep/sweep.hpp`); the
/// optional prover is `cdcl` (default) or `allsat`.  Sweep jobs run under
/// the same registered run contexts as synthesis, so CANCEL / CANCEL <id>
/// and the drain grace apply to them unchanged, and in-flight sweeps report
/// live progress in the JSON STATS payload under `sweeps`.
///
/// `CANCEL` cooperatively cancels every in-flight job on the daemon;
/// `CANCEL <id>` cancels only the request whose replies carry `id=<id>`
/// (the protocol is synchronous per session, so both are issued from
/// another connection — ids of in-flight requests are listed in the JSON
/// STATS payload as `active_ids`).  Cancelled requests reply `ERR timeout`
/// to their own clients within the engines' cancellation poll stride.
///
/// A malformed request yields one `ERR <reason>` line and the session keeps
/// serving: parse errors poison only the offending request, never the
/// daemon.  A line longer than the wire limit yields `ERR line-too-long`
/// with the rest of that line discarded — the buffer never grows with the
/// input.  When the admission queue is full the daemon sheds load with a
/// `BUSY retry-after <ms>` reply instead of queueing unboundedly.  Chain
/// lines reuse the `service::chain_io` grammar, so a SYNTH reply can be
/// pasted into a cache file and vice versa.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/exact_synthesis.hpp"
#include "synth/spec.hpp"
#include "tt/truth_table.hpp"

namespace stpes::server {

/// A request the daemon refuses to parse; the message becomes the ERR
/// reply.  Never fatal to the session.
struct protocol_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Wire-level limits enforced before any synthesis work is scheduled.
struct request_limits {
  /// Largest accepted function arity.  8 keeps payloads at <= 64 hex
  /// digits and matches the workloads the engines are tuned for.
  unsigned max_vars = 8;
  /// Hard cap on one request line (a multi-kilobyte "truth table" is an
  /// attack or a bug, not a function).
  std::size_t max_line_bytes = 4096;
  /// Requests per BATCH block.
  std::size_t max_batch_requests = 4096;
  /// Outputs per request (comma-separated hex list entries).
  std::size_t max_outputs = 8;
  /// Largest AIG (in AND nodes) a SWEEP request may load; a bigger file
  /// is refused after the header, before any simulation or proving.
  std::size_t max_aig_ands = 1u << 20;
};

/// A parsed `SYNTH`-shaped request body:
/// `<engine> <n> <hex>[,<hex>...] [timeout_s]`.
struct synth_args {
  core::engine engine = core::engine::stp;
  tt::truth_table function;
  /// Multi-output request (comma-separated hex list): when non-empty,
  /// `function` is ignored (the same convention as `synth::spec`).
  std::vector<tt::truth_table> functions;
  /// Requested output count (1 for the classic single-output form).
  [[nodiscard]] std::size_t num_outputs() const {
    return functions.empty() ? 1 : functions.size();
  }
  std::optional<double> timeout_seconds;
};

/// Outcome of one bounded line read.
enum class line_status {
  ok,        ///< a complete line (possibly empty) was read
  eof,       ///< stream ended before any byte of a new line
  too_long,  ///< line exceeded the limit; the rest was discarded
};

/// Reads one '\n'-terminated line into `line` (CR stripped), never
/// buffering more than `max_bytes` of it: once the limit is crossed the
/// remainder of the line is consumed and dropped and `too_long` is
/// returned, so a client sending an unbounded line costs the daemon a
/// fixed-size buffer instead of an allocation proportional to the attack.
/// A final unterminated line is returned as `ok`, matching std::getline.
[[nodiscard]] line_status read_limited_line(std::istream& in,
                                            std::string& line,
                                            std::size_t max_bytes);

/// Splits a line on whitespace.
[[nodiscard]] std::vector<std::string> tokenize(std::string_view line);

/// Parses the tokens after a SYNTH verb (or one BATCH body line).
/// Throws `protocol_error` with a client-presentable message on any
/// violation: unknown engine, arity above `limits.max_vars`, hex digits
/// not matching the arity, malformed or negative timeout.
[[nodiscard]] synth_args parse_synth_args(
    const std::vector<std::string>& tokens, const request_limits& limits);

/// Writes `<status> <gates> <num_chains> <seconds>` plus the chain lines.
/// `head` is the reply head to print first ("OK" or "RESULT <i>").
/// `num_outputs >= 2` appends ` outputs=<m>`, and a nonzero `request_id`
/// appends ` id=<id>`, to the head line (trailing tokens, so count-driven
/// readers that ignore extras stay compatible; single-output head lines
/// are unchanged).
void write_result_block(std::ostream& os, std::string_view head,
                        const synth::result& result,
                        std::uint64_t request_id = 0,
                        std::size_t num_outputs = 1);

/// Writes the single-line `ERR <reason>` reply.
void write_error(std::ostream& os, std::string_view reason);

/// Writes the single-line `BUSY retry-after <ms>` overload-shed reply.
void write_busy(std::ostream& os, unsigned retry_after_ms);

}  // namespace stpes::server
