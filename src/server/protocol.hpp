/// \file protocol.hpp
/// \brief The stpes-serve line protocol: request parsing and reply framing.
///
/// The daemon speaks a plain text protocol, one request per line, so any
/// client that can write to a socket (netcat, a Python rewrite loop, the
/// bundled `stpes-client`) can use it:
///
///     SYNTH <engine> <n> <hex-tt> [timeout_s]
///     BATCH ... <engine> <n> <hex-tt> [timeout_s] per line ... END
///     STATS [TEXT|JSON]
///     SAVE <path>
///     LOAD <path>
///     CANCEL
///     PING | QUIT | SHUTDOWN
///
/// Every reply starts with exactly one `OK ...` or `ERR <reason>` line.
/// Multi-line payloads are counted, never sentinel-terminated: the OK line
/// carries how many lines (or result blocks) follow, so a client always
/// knows when a reply is complete.
///
///     SYNTH reply:  OK <status> <gates> <num_chains> <seconds>
///                   then exactly <num_chains> `chain ...` lines
///     BATCH reply:  OK <count>
///                   then <count> blocks, each
///                   RESULT <index> <status> <gates> <num_chains> <seconds>
///                   followed by its <num_chains> chain lines
///     STATS reply:  OK <num_lines>  then that many lines
///     CANCEL reply: OK cancelled <n>  (in-flight jobs signalled)
///
/// `CANCEL` cooperatively cancels every in-flight synthesis on the daemon
/// (the protocol is synchronous per session, so it is issued from another
/// connection); cancelled requests reply `ERR timeout` to their own
/// clients within the engines' cancellation poll stride.
///
/// A malformed request yields one `ERR <reason>` line and the session keeps
/// serving: parse errors poison only the offending request, never the
/// daemon.  Chain lines reuse the `service::chain_io` grammar, so a SYNTH
/// reply can be pasted into a cache file and vice versa.

#pragma once

#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/exact_synthesis.hpp"
#include "synth/spec.hpp"
#include "tt/truth_table.hpp"

namespace stpes::server {

/// A request the daemon refuses to parse; the message becomes the ERR
/// reply.  Never fatal to the session.
struct protocol_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Wire-level limits enforced before any synthesis work is scheduled.
struct request_limits {
  /// Largest accepted function arity.  8 keeps payloads at <= 64 hex
  /// digits and matches the workloads the engines are tuned for.
  unsigned max_vars = 8;
  /// Hard cap on one request line (a multi-kilobyte "truth table" is an
  /// attack or a bug, not a function).
  std::size_t max_line_bytes = 4096;
  /// Requests per BATCH block.
  std::size_t max_batch_requests = 4096;
};

/// A parsed `SYNTH`-shaped request body: `<engine> <n> <hex> [timeout_s]`.
struct synth_args {
  core::engine engine = core::engine::stp;
  tt::truth_table function;
  std::optional<double> timeout_seconds;
};

/// Splits a line on whitespace.
[[nodiscard]] std::vector<std::string> tokenize(std::string_view line);

/// Parses the tokens after a SYNTH verb (or one BATCH body line).
/// Throws `protocol_error` with a client-presentable message on any
/// violation: unknown engine, arity above `limits.max_vars`, hex digits
/// not matching the arity, malformed or negative timeout.
[[nodiscard]] synth_args parse_synth_args(
    const std::vector<std::string>& tokens, const request_limits& limits);

/// Writes `<status> <gates> <num_chains> <seconds>` plus the chain lines.
/// `head` is the reply head to print first ("OK" or "RESULT <i>").
void write_result_block(std::ostream& os, std::string_view head,
                        const synth::result& result);

/// Writes the single-line `ERR <reason>` reply.
void write_error(std::ostream& os, std::string_view reason);

}  // namespace stpes::server
