/// \file fd_stream.hpp
/// \brief A std::iostream over a POSIX file descriptor.
///
/// The daemon core speaks iostreams so sessions are testable over
/// stringstreams and runnable over pipes; this adapter is the thin bridge
/// that lets an accepted socket fd join that world.  Buffered reads and
/// writes with EINTR retry, no seeking, and the fd's lifetime stays with
/// the caller (closing it concurrently from another thread is the drain
/// path's way of unblocking a read).

#pragma once

#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <istream>
#include <streambuf>

#include "util/failpoint.hpp"

namespace stpes::server {

class fd_streambuf final : public std::streambuf {
public:
  explicit fd_streambuf(int fd) : fd_(fd) {
    setg(in_.data(), in_.data(), in_.data());
    setp(out_.data(), out_.data() + out_.size());
  }
  ~fd_streambuf() override { sync(); }

  fd_streambuf(const fd_streambuf&) = delete;
  fd_streambuf& operator=(const fd_streambuf&) = delete;

protected:
  int_type underflow() override {
    if (gptr() < egptr()) {
      return traits_type::to_int_type(*gptr());
    }
    // Chaos seam: a fired `fd_stream.read` is a peer that vanished —
    // surfaces as EOF exactly like a real dead connection.
    if (const int injected = STPES_FAILPOINT_ERRNO("fd_stream.read")) {
      errno = injected;
      return traits_type::eof();
    }
    ssize_t n = 0;
    do {
      n = ::read(fd_, in_.data(), in_.size());
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      return traits_type::eof();
    }
    setg(in_.data(), in_.data(), in_.data() + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (flush_buffer() < 0) {
      return traits_type::eof();
    }
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush_buffer() < 0 ? -1 : 0; }

private:
  /// Writes out everything buffered; returns -1 on a write error.
  int flush_buffer() {
    // Chaos seam: a fired `fd_stream.write` is EPIPE-at-the-peer; the
    // stream goes bad and the session winds down like a real broken pipe.
    if (const int injected = STPES_FAILPOINT_ERRNO("fd_stream.write")) {
      errno = injected;
      return -1;
    }
    const char* p = pbase();
    while (p < pptr()) {
      ssize_t n = 0;
      do {
        n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
      } while (n < 0 && errno == EINTR);
      if (n <= 0) {
        return -1;
      }
      p += n;
    }
    setp(out_.data(), out_.data() + out_.size());
    return 0;
  }

  int fd_;
  std::array<char, 4096> in_;
  std::array<char, 4096> out_;
};

/// An iostream bound to an fd for the connection's lifetime.
class fd_iostream final : public std::iostream {
public:
  explicit fd_iostream(int fd) : std::iostream(nullptr), buf_(fd) {
    rdbuf(&buf_);
  }

private:
  fd_streambuf buf_;
};

}  // namespace stpes::server
