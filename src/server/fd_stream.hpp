/// \file fd_stream.hpp
/// \brief A std::iostream over a POSIX file descriptor.
///
/// The daemon core speaks iostreams so sessions are testable over
/// stringstreams and runnable over pipes; this adapter is the thin bridge
/// that lets an accepted socket fd join that world.  Buffered reads and
/// writes with EINTR retry, no seeking, and the fd's lifetime stays with
/// the caller (closing it concurrently from another thread is the drain
/// path's way of unblocking a read).
///
/// An optional read timeout turns a blocked `read()` into a bounded
/// `poll()`-then-read: when no byte arrives within the deadline the stream
/// reports EOF and latches `timed_out()`, which is how the listeners shed
/// idle sessions (`ERR idle-timeout`) and how `resilient_client` tells a
/// stalled daemon from a closed one.  The timeout bounds *every* read gap,
/// including the first one after `accept()`, so a half-open peer that
/// connects and never writes cannot pin a session thread either.

#pragma once

#include <poll.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <istream>
#include <streambuf>

#include "util/failpoint.hpp"

namespace stpes::server {

class fd_streambuf final : public std::streambuf {
public:
  /// `read_timeout_ms < 0` blocks forever (the classic behaviour);
  /// otherwise a read that sees no byte for that long returns EOF and
  /// latches `timed_out()`.
  explicit fd_streambuf(int fd, int read_timeout_ms = -1)
      : fd_(fd), read_timeout_ms_(read_timeout_ms) {
    setg(in_.data(), in_.data(), in_.data());
    setp(out_.data(), out_.data() + out_.size());
  }
  ~fd_streambuf() override { sync(); }

  fd_streambuf(const fd_streambuf&) = delete;
  fd_streambuf& operator=(const fd_streambuf&) = delete;

  /// True once a read deadline expired (sticky until `clear_timeout()`).
  [[nodiscard]] bool timed_out() const { return timed_out_; }
  void clear_timeout() { timed_out_ = false; }

protected:
  int_type underflow() override {
    if (gptr() < egptr()) {
      return traits_type::to_int_type(*gptr());
    }
    // Chaos seam: a fired `fd_stream.read` is a peer that vanished —
    // surfaces as EOF exactly like a real dead connection.
    if (const int injected = STPES_FAILPOINT_ERRNO("fd_stream.read")) {
      errno = injected;
      return traits_type::eof();
    }
    if (read_timeout_ms_ >= 0) {
      pollfd p{fd_, POLLIN, 0};
      int ready = 0;
      do {
        ready = ::poll(&p, 1, read_timeout_ms_);
      } while (ready < 0 && errno == EINTR);
      if (ready == 0) {
        timed_out_ = true;
        return traits_type::eof();
      }
      if (ready < 0) {
        return traits_type::eof();
      }
    }
    ssize_t n = 0;
    do {
      n = ::read(fd_, in_.data(), in_.size());
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      return traits_type::eof();
    }
    setg(in_.data(), in_.data(), in_.data() + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (flush_buffer() < 0) {
      return traits_type::eof();
    }
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush_buffer() < 0 ? -1 : 0; }

private:
  /// Writes out everything buffered; returns -1 on a write error.
  int flush_buffer() {
    // Chaos seam: a fired `fd_stream.write` is EPIPE-at-the-peer; the
    // stream goes bad and the session winds down like a real broken pipe.
    if (const int injected = STPES_FAILPOINT_ERRNO("fd_stream.write")) {
      errno = injected;
      return -1;
    }
    // Chaos seam: `fd_stream.write.partial` is a connection cut mid-write
    // — half of the pending bytes reach the wire, then the stream dies.
    // The peer sees a *truncated* reply, which is how the client suites
    // exercise every torn-payload parse path without a real network.
    if (const int injected =
            STPES_FAILPOINT_ERRNO("fd_stream.write.partial")) {
      const auto pending = static_cast<std::size_t>(pptr() - pbase());
      if (pending > 1) {
        [[maybe_unused]] const ssize_t n =
            ::write(fd_, pbase(), pending / 2);
      }
      setp(out_.data(), out_.data() + out_.size());
      errno = injected;
      return -1;
    }
    const char* p = pbase();
    while (p < pptr()) {
      ssize_t n = 0;
      do {
        n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
      } while (n < 0 && errno == EINTR);
      if (n <= 0) {
        return -1;
      }
      p += n;
    }
    setp(out_.data(), out_.data() + out_.size());
    return 0;
  }

  int fd_;
  int read_timeout_ms_;
  bool timed_out_ = false;
  std::array<char, 4096> in_;
  std::array<char, 4096> out_;
};

/// An iostream bound to an fd for the connection's lifetime.
class fd_iostream final : public std::iostream {
public:
  explicit fd_iostream(int fd, int read_timeout_ms = -1)
      : std::iostream(nullptr), buf_(fd, read_timeout_ms) {
    rdbuf(&buf_);
  }

  /// True once a read deadline expired (vs. a real EOF / dead peer).
  [[nodiscard]] bool timed_out() const { return buf_.timed_out(); }

private:
  fd_streambuf buf_;
};

}  // namespace stpes::server
