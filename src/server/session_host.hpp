/// \file session_host.hpp
/// \brief The contract between a stream transport and whatever serves it.
///
/// The Unix-socket and TCP listeners own sockets, threads, and drain
/// sequencing; what runs *inside* a session is behind this interface.  Two
/// implementations exist: `synthesis_server` (the daemon core) and
/// `route::router` (the consistent-hash routing tier), so both binaries
/// share one hardened accept loop instead of duplicating it.
///
/// A host must tolerate `serve()` being called from many threads at once
/// (one per live connection) and must return from it promptly once
/// `begin_drain()` has been observed — the listeners enforce the grace
/// period and call `cancel_inflight_jobs()` when it runs out.

#pragma once

#include <iosfwd>

namespace stpes::server {

class session_host {
public:
  virtual ~session_host() = default;

  /// Runs one session over the stream pair; returns on EOF/QUIT/drain.
  virtual void serve(std::istream& in, std::ostream& out) = 0;

  /// Stops all sessions after their in-flight request.  Idempotent.
  virtual void begin_drain() = 0;

  /// True once a client issued SHUTDOWN; the transport stops accepting.
  [[nodiscard]] virtual bool shutdown_requested() const = 0;

  /// Called by the drain path when the grace period expires: anything
  /// still running must be cooperatively cancelled so session threads
  /// join within a poll stride.
  virtual void cancel_inflight_jobs() = 0;

  /// How long the drain waits for in-flight work before cancelling.
  [[nodiscard]] virtual double drain_grace_seconds() const = 0;

  /// Per-connection idle read timeout (0 = none): a session whose client
  /// sends no byte for this long is shed with `ERR idle-timeout`.
  [[nodiscard]] virtual double idle_timeout_seconds() const = 0;

  /// Counter hook: the transport shed a session on its idle deadline.
  virtual void note_idle_timeout() = 0;
};

}  // namespace stpes::server
