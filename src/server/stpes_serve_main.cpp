/// \file stpes_serve_main.cpp
/// \brief The `stpes-serve` daemon binary.
///
/// Long-lived front-end over `service::batch_synthesizer`: external tools
/// (rewriting flows, mapper loops, SAT sweepers) connect over a Unix
/// socket or TCP, speak the line protocol, and share one warm NPN cache
/// without linking the library.
///
///     stpes-serve --socket=/tmp/stpes.sock [--engine=stp] [--threads=N]
///                 [--timeout=S] [--max-timeout=S] [--max-vars=N]
///                 [--drain-grace=S] [--idle-timeout=S] [--warm=FILE]
///                 [--persist=FILE] [--max-pending=N] [--quota=N]
///                 [--retry-ms=MS]
///     stpes-serve --listen=HOST:PORT ...   # TCP ("*:PORT" = any iface;
///                                          # port 0 = ephemeral, printed)
///     stpes-serve --pipe ...    # one session over stdin/stdout (CI)
///
/// Overload protection: `--max-pending` bounds the admission queue (excess
/// requests get `BUSY retry-after <--retry-ms>`), `--quota` caps synthesis
/// requests per client session, and `--idle-timeout` sheds sessions whose
/// peer goes silent (`ERR idle-timeout`) — including half-open TCP
/// connections that never send a byte.  In chaos builds the
/// `STPES_FAILPOINTS` environment variable arms fault-injection points at
/// startup (grammar in `util/failpoint.hpp`).
///
/// SIGTERM/SIGINT drain gracefully: in-flight syntheses get
/// `--drain-grace` seconds to finish, anything still running is then
/// cooperatively cancelled, sessions close, the cache is persisted when
/// `--persist` is set, and the process exits 0.  A client `SHUTDOWN` does
/// the same.  All logging goes to stderr; in pipe mode stdout belongs to
/// the protocol.

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "server/server.hpp"
#include "server/socket_server.hpp"
#include "server/tcp_socket_server.hpp"
#include "util/failpoint.hpp"

namespace {

struct cli_options {
  std::string socket_path;
  std::string listen_spec;
  bool pipe = false;
  std::string engine = "stp";
  unsigned threads = 0;
  double timeout = 5.0;
  double max_timeout = 0.0;
  double drain_grace = 5.0;
  double idle_timeout = 0.0;
  unsigned max_vars = 8;
  std::size_t max_pending = 0;
  std::uint64_t quota = 0;
  unsigned retry_ms = 100;
  std::string warm_path;
  std::string persist_path;
};

[[noreturn]] void usage(const char* argv0, const std::string& reason = "") {
  if (!reason.empty()) {
    std::cerr << argv0 << ": " << reason << "\n";
  }
  std::cerr << "usage: " << argv0
            << " (--socket=PATH | --listen=HOST:PORT | --pipe)"
               " [--engine=stp|bms|fen|cegar]"
               " [--threads=N] [--timeout=S] [--max-timeout=S]"
               " [--max-vars=N] [--drain-grace=S] [--idle-timeout=S]"
               " [--warm=FILE] [--persist=FILE] [--max-pending=N]"
               " [--quota=N] [--retry-ms=MS]\n";
  std::exit(2);
}

/// Guarded numeric parsers: a malformed flag value is a usage error (exit
/// 2 with a message), never an uncaught std::invalid_argument abort.
std::uint64_t parse_u64(const char* argv0, const std::string& flag,
                        const std::string& v) {
  std::size_t pos = 0;
  unsigned long long out = 0;
  try {
    out = std::stoull(v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != v.size() || v.empty()) {
    usage(argv0, "--" + flag + " wants a non-negative integer, got '" + v +
                     "'");
  }
  return out;
}

unsigned parse_unsigned(const char* argv0, const std::string& flag,
                        const std::string& v, unsigned max_value = ~0u) {
  const auto out = parse_u64(argv0, flag, v);
  if (out > max_value) {
    usage(argv0, "--" + flag + " value " + v + " exceeds " +
                     std::to_string(max_value));
  }
  return static_cast<unsigned>(out);
}

double parse_seconds(const char* argv0, const std::string& flag,
                     const std::string& v) {
  std::size_t pos = 0;
  double out = 0.0;
  try {
    out = std::stod(v, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != v.size() || v.empty() || out < 0.0) {
    usage(argv0, "--" + flag + " wants non-negative seconds, got '" + v +
                     "'");
  }
  return out;
}

cli_options parse_cli(int argc, char** argv) {
  cli_options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const std::string& name) -> std::string {
      const std::string prefix = "--" + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.substr(prefix.size())
                                       : std::string{};
    };
    if (arg == "--pipe") {
      opts.pipe = true;
    } else if (auto v = value("socket"); !v.empty()) {
      opts.socket_path = v;
    } else if (auto v = value("listen"); !v.empty()) {
      opts.listen_spec = v;
    } else if (auto v = value("engine"); !v.empty()) {
      opts.engine = v;
    } else if (auto v = value("threads"); !v.empty()) {
      opts.threads = parse_unsigned(argv[0], "threads", v);
    } else if (auto v = value("timeout"); !v.empty()) {
      opts.timeout = parse_seconds(argv[0], "timeout", v);
    } else if (auto v = value("max-timeout"); !v.empty()) {
      opts.max_timeout = parse_seconds(argv[0], "max-timeout", v);
    } else if (auto v = value("drain-grace"); !v.empty()) {
      opts.drain_grace = parse_seconds(argv[0], "drain-grace", v);
    } else if (auto v = value("idle-timeout"); !v.empty()) {
      opts.idle_timeout = parse_seconds(argv[0], "idle-timeout", v);
    } else if (auto v = value("max-vars"); !v.empty()) {
      opts.max_vars = parse_unsigned(argv[0], "max-vars", v);
    } else if (auto v = value("max-pending"); !v.empty()) {
      opts.max_pending = parse_u64(argv[0], "max-pending", v);
    } else if (auto v = value("quota"); !v.empty()) {
      opts.quota = parse_u64(argv[0], "quota", v);
    } else if (auto v = value("retry-ms"); !v.empty()) {
      opts.retry_ms = parse_unsigned(argv[0], "retry-ms", v);
    } else if (auto v = value("warm"); !v.empty()) {
      opts.warm_path = v;
    } else if (auto v = value("persist"); !v.empty()) {
      opts.persist_path = v;
    } else {
      usage(argv[0], "unknown argument '" + arg + "'");
    }
  }
  const int transports = (opts.pipe ? 1 : 0) +
                         (opts.socket_path.empty() ? 0 : 1) +
                         (opts.listen_spec.empty() ? 0 : 1);
  if (transports != 1) {
    usage(argv[0],
          "pick exactly one of --socket, --listen, --pipe");
  }
  return opts;
}

stpes::server::stream_listener* g_listener = nullptr;

void on_signal(int) {
  if (g_listener != nullptr) {
    g_listener->stop();  // async-signal-safe: atomic + pipe write
  }
}

void install_signal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  // A client that disconnects mid-reply must cost one session, not the
  // daemon: with SIGPIPE ignored the write fails with EPIPE, the stream
  // goes bad, and the session winds down.
  struct sigaction ign{};
  ign.sa_handler = SIG_IGN;
  sigemptyset(&ign.sa_mask);
  sigaction(SIGPIPE, &ign, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stpes;

  const auto cli = parse_cli(argc, argv);

  server::server_options opts;
  try {
    opts.default_engine = core::engine_from_string(cli.engine);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  opts.default_timeout_seconds = cli.timeout;
  opts.max_timeout_seconds = cli.max_timeout;
  opts.num_threads = cli.threads;
  opts.drain_grace_seconds = cli.drain_grace;
  opts.idle_timeout_seconds = cli.idle_timeout;
  opts.limits.max_vars = cli.max_vars;
  opts.max_pending_jobs = cli.max_pending;
  opts.max_session_requests = cli.quota;
  opts.overload_retry_ms = cli.retry_ms;

  if (util::failpoints_compiled_in()) {
    const auto armed = util::failpoint_registry::instance().load_from_env();
    if (armed > 0) {
      std::cerr << "stpes-serve: armed " << armed
                << " failpoint(s) from STPES_FAILPOINTS\n";
    }
  }

  server::synthesis_server server{opts};

  if (!cli.warm_path.empty()) {
    try {
      const auto report = server.synthesizer().warm_cache_verbose(
          cli.warm_path);
      std::cerr << "stpes-serve: warmed " << report.loaded
                << " cache entries from " << cli.warm_path << " ("
                << report.skipped() << " skipped)\n";
    } catch (const std::exception& e) {
      std::cerr << "stpes-serve: corrupt cache file " << cli.warm_path
                << ": " << e.what() << "\n";
      return 1;
    }
  }

  if (cli.pipe) {
    std::cerr << "stpes-serve: pipe mode, engine=" << cli.engine << ", "
              << server.synthesizer().num_threads() << " threads\n";
    server.serve(std::cin, std::cout);
  } else if (!cli.listen_spec.empty()) {
    try {
      const auto spec = server::tcp_listen_spec::parse(cli.listen_spec);
      server::tcp_socket_server listener{server, spec};
      g_listener = &listener;
      install_signal_handlers();
      std::cerr << "stpes-serve: listening on " << spec.host << ":"
                << listener.port() << ", engine=" << cli.engine << ", "
                << server.synthesizer().num_threads() << " threads\n";
      listener.run();
      g_listener = nullptr;
    } catch (const std::exception& e) {
      std::cerr << "stpes-serve: " << e.what() << "\n";
      return 1;
    }
  } else {
    try {
      server::unix_socket_server listener{server, cli.socket_path};
      g_listener = &listener;
      install_signal_handlers();
      std::cerr << "stpes-serve: listening on " << cli.socket_path
                << ", engine=" << cli.engine << ", "
                << server.synthesizer().num_threads() << " threads\n";
      listener.run();
      g_listener = nullptr;
    } catch (const std::exception& e) {
      std::cerr << "stpes-serve: " << e.what() << "\n";
      return 1;
    }
  }

  if (!cli.persist_path.empty()) {
    try {
      const auto written = server.synthesizer().persist_cache(
          cli.persist_path);
      std::cerr << "stpes-serve: persisted " << written
                << " cache entries to " << cli.persist_path << "\n";
    } catch (const std::exception& e) {
      std::cerr << "stpes-serve: persist failed: " << e.what() << "\n";
      return 1;
    }
  }
  std::cerr << "stpes-serve: drained, exiting\n";
  return 0;
}
