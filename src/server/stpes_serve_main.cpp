/// \file stpes_serve_main.cpp
/// \brief The `stpes-serve` daemon binary.
///
/// Long-lived front-end over `service::batch_synthesizer`: external tools
/// (rewriting flows, mapper loops, SAT sweepers) connect over a Unix
/// socket, speak the line protocol, and share one warm NPN cache without
/// linking the library.
///
///     stpes-serve --socket=/tmp/stpes.sock [--engine=stp] [--threads=N]
///                 [--timeout=S] [--max-timeout=S] [--max-vars=N]
///                 [--drain-grace=S] [--warm=FILE] [--persist=FILE]
///                 [--max-pending=N] [--quota=N] [--retry-ms=MS]
///     stpes-serve --pipe ...    # one session over stdin/stdout (CI)
///
/// Overload protection: `--max-pending` bounds the admission queue (excess
/// requests get `BUSY retry-after <--retry-ms>`), `--quota` caps synthesis
/// requests per client session.  In chaos builds the `STPES_FAILPOINTS`
/// environment variable arms fault-injection points at startup (grammar in
/// `util/failpoint.hpp`).
///
/// SIGTERM/SIGINT drain gracefully: in-flight syntheses get
/// `--drain-grace` seconds to finish, anything still running is then
/// cooperatively cancelled, sessions close, the cache is persisted when
/// `--persist` is set, and the process exits 0.  A client `SHUTDOWN` does
/// the same.  All logging goes to stderr; in pipe mode stdout belongs to
/// the protocol.

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "server/server.hpp"
#include "server/socket_server.hpp"
#include "util/failpoint.hpp"

namespace {

struct cli_options {
  std::string socket_path;
  bool pipe = false;
  std::string engine = "stp";
  unsigned threads = 0;
  double timeout = 5.0;
  double max_timeout = 0.0;
  double drain_grace = 5.0;
  unsigned max_vars = 8;
  std::size_t max_pending = 0;
  std::uint64_t quota = 0;
  unsigned retry_ms = 100;
  std::string warm_path;
  std::string persist_path;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " (--socket=PATH | --pipe) [--engine=stp|bms|fen|cegar]"
               " [--threads=N] [--timeout=S] [--max-timeout=S]"
               " [--max-vars=N] [--drain-grace=S] [--warm=FILE]"
               " [--persist=FILE] [--max-pending=N] [--quota=N]"
               " [--retry-ms=MS]\n";
  std::exit(2);
}

cli_options parse_cli(int argc, char** argv) {
  cli_options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const std::string& name) -> std::string {
      const std::string prefix = "--" + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.substr(prefix.size())
                                       : std::string{};
    };
    if (arg == "--pipe") {
      opts.pipe = true;
    } else if (auto v = value("socket"); !v.empty()) {
      opts.socket_path = v;
    } else if (auto v = value("engine"); !v.empty()) {
      opts.engine = v;
    } else if (auto v = value("threads"); !v.empty()) {
      opts.threads = static_cast<unsigned>(std::stoul(v));
    } else if (auto v = value("timeout"); !v.empty()) {
      opts.timeout = std::stod(v);
    } else if (auto v = value("max-timeout"); !v.empty()) {
      opts.max_timeout = std::stod(v);
    } else if (auto v = value("drain-grace"); !v.empty()) {
      opts.drain_grace = std::stod(v);
    } else if (auto v = value("max-vars"); !v.empty()) {
      opts.max_vars = static_cast<unsigned>(std::stoul(v));
    } else if (auto v = value("max-pending"); !v.empty()) {
      opts.max_pending = std::stoul(v);
    } else if (auto v = value("quota"); !v.empty()) {
      opts.quota = std::stoull(v);
    } else if (auto v = value("retry-ms"); !v.empty()) {
      opts.retry_ms = static_cast<unsigned>(std::stoul(v));
    } else if (auto v = value("warm"); !v.empty()) {
      opts.warm_path = v;
    } else if (auto v = value("persist"); !v.empty()) {
      opts.persist_path = v;
    } else {
      usage(argv[0]);
    }
  }
  if (opts.pipe == !opts.socket_path.empty()) {
    // Exactly one transport must be selected.
    usage(argv[0]);
  }
  return opts;
}

stpes::server::unix_socket_server* g_socket_server = nullptr;

void on_signal(int) {
  if (g_socket_server != nullptr) {
    g_socket_server->stop();  // async-signal-safe: atomic + pipe write
  }
}

void install_signal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  // A client that disconnects mid-reply must cost one session, not the
  // daemon: with SIGPIPE ignored the write fails with EPIPE, the stream
  // goes bad, and the session winds down.
  struct sigaction ign{};
  ign.sa_handler = SIG_IGN;
  sigemptyset(&ign.sa_mask);
  sigaction(SIGPIPE, &ign, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stpes;

  const auto cli = parse_cli(argc, argv);

  server::server_options opts;
  try {
    opts.default_engine = core::engine_from_string(cli.engine);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  opts.default_timeout_seconds = cli.timeout;
  opts.max_timeout_seconds = cli.max_timeout;
  opts.num_threads = cli.threads;
  opts.drain_grace_seconds = cli.drain_grace;
  opts.limits.max_vars = cli.max_vars;
  opts.max_pending_jobs = cli.max_pending;
  opts.max_session_requests = cli.quota;
  opts.overload_retry_ms = cli.retry_ms;

  if (util::failpoints_compiled_in()) {
    const auto armed = util::failpoint_registry::instance().load_from_env();
    if (armed > 0) {
      std::cerr << "stpes-serve: armed " << armed
                << " failpoint(s) from STPES_FAILPOINTS\n";
    }
  }

  server::synthesis_server server{opts};

  if (!cli.warm_path.empty()) {
    try {
      const auto report = server.synthesizer().warm_cache_verbose(
          cli.warm_path);
      std::cerr << "stpes-serve: warmed " << report.loaded
                << " cache entries from " << cli.warm_path << " ("
                << report.skipped() << " skipped)\n";
    } catch (const std::exception& e) {
      std::cerr << "stpes-serve: corrupt cache file " << cli.warm_path
                << ": " << e.what() << "\n";
      return 1;
    }
  }

  if (cli.pipe) {
    std::cerr << "stpes-serve: pipe mode, engine=" << cli.engine << ", "
              << server.synthesizer().num_threads() << " threads\n";
    server.serve(std::cin, std::cout);
  } else {
    try {
      server::unix_socket_server listener{server, cli.socket_path};
      g_socket_server = &listener;
      install_signal_handlers();
      std::cerr << "stpes-serve: listening on " << cli.socket_path
                << ", engine=" << cli.engine << ", "
                << server.synthesizer().num_threads() << " threads\n";
      listener.run();
      g_socket_server = nullptr;
    } catch (const std::exception& e) {
      std::cerr << "stpes-serve: " << e.what() << "\n";
      return 1;
    }
  }

  if (!cli.persist_path.empty()) {
    try {
      const auto written = server.synthesizer().persist_cache(
          cli.persist_path);
      std::cerr << "stpes-serve: persisted " << written
                << " cache entries to " << cli.persist_path << "\n";
    } catch (const std::exception& e) {
      std::cerr << "stpes-serve: persist failed: " << e.what() << "\n";
      return 1;
    }
  }
  std::cerr << "stpes-serve: drained, exiting\n";
  return 0;
}
