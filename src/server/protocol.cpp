#include "server/protocol.hpp"

#include <ostream>
#include <sstream>

#include "service/chain_io.hpp"

namespace stpes::server {

namespace {

[[noreturn]] void reject(const std::string& what) {
  throw protocol_error{what};
}

/// Hex digits needed for an n-variable table (one digit covers n = 0..2).
std::size_t hex_digits_for(unsigned num_vars) {
  return num_vars < 2 ? 1 : (std::size_t{1} << (num_vars - 2));
}

}  // namespace

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::istringstream is{std::string{line}};
  std::string tok;
  while (is >> tok) {
    tokens.push_back(tok);
  }
  return tokens;
}

synth_args parse_synth_args(const std::vector<std::string>& tokens,
                            const request_limits& limits) {
  if (tokens.size() < 3 || tokens.size() > 4) {
    reject("want <engine> <n> <hex-tt> [timeout_s]");
  }
  synth_args args;
  try {
    args.engine = core::engine_from_string(tokens[0]);
  } catch (const std::exception&) {
    reject("unknown engine '" + tokens[0] + "' (want stp|bms|fen|cegar)");
  }

  unsigned num_vars = 0;
  {
    std::size_t pos = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(tokens[1], &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != tokens[1].size()) {
      reject("bad arity '" + tokens[1] + "'");
    }
    if (value > limits.max_vars) {
      reject("truth table too large: n=" + tokens[1] + ", max n=" +
             std::to_string(limits.max_vars));
    }
    num_vars = static_cast<unsigned>(value);
  }

  std::string hex = tokens[2];
  if (hex.rfind("0x", 0) == 0 || hex.rfind("0X", 0) == 0) {
    hex.erase(0, 2);
  }
  if (hex.size() != hex_digits_for(num_vars)) {
    reject("truth table payload is " + std::to_string(hex.size()) +
           " hex digits, n=" + std::to_string(num_vars) + " needs " +
           std::to_string(hex_digits_for(num_vars)));
  }
  try {
    args.function = tt::truth_table::from_hex(num_vars, hex);
  } catch (const std::exception& e) {
    reject(std::string{"bad truth table: "} + e.what());
  }

  if (tokens.size() == 4) {
    double timeout = 0.0;
    std::size_t pos = 0;
    try {
      timeout = std::stod(tokens[3], &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != tokens[3].size() || timeout < 0.0) {
      reject("bad timeout '" + tokens[3] + "'");
    }
    args.timeout_seconds = timeout;
  }
  return args;
}

void write_result_block(std::ostream& os, std::string_view head,
                        const synth::result& result) {
  os << head << " " << synth::to_string(result.outcome) << " "
     << result.optimum_gates << " " << result.chains.size() << " "
     << result.seconds << "\n";
  for (const auto& c : result.chains) {
    os << service::serialize_chain(c) << "\n";
  }
}

void write_error(std::ostream& os, std::string_view reason) {
  os << "ERR " << reason << "\n";
}

}  // namespace stpes::server
