#include "server/protocol.hpp"

#include <ostream>
#include <sstream>

#include "service/chain_io.hpp"

namespace stpes::server {

namespace {

[[noreturn]] void reject(const std::string& what) {
  throw protocol_error{what};
}

/// Hex digits needed for an n-variable table (one digit covers n = 0..2).
std::size_t hex_digits_for(unsigned num_vars) {
  return num_vars < 2 ? 1 : (std::size_t{1} << (num_vars - 2));
}

}  // namespace

line_status read_limited_line(std::istream& in, std::string& line,
                              std::size_t max_bytes) {
  line.clear();
  std::istream::int_type ci = 0;
  bool saw_any = false;
  bool over = false;
  while ((ci = in.get()) != std::char_traits<char>::eof()) {
    saw_any = true;
    const char c = static_cast<char>(ci);
    if (c == '\n') {
      break;
    }
    if (over) {
      continue;  // drain the oversized line without retaining it
    }
    if (line.size() >= max_bytes) {
      over = true;
      continue;
    }
    line.push_back(c);
  }
  if (!saw_any) {
    return line_status::eof;
  }
  if (over) {
    line.clear();
    return line_status::too_long;
  }
  if (!line.empty() && line.back() == '\r') {
    line.pop_back();
  }
  return line_status::ok;
}

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::istringstream is{std::string{line}};
  std::string tok;
  while (is >> tok) {
    tokens.push_back(tok);
  }
  return tokens;
}

synth_args parse_synth_args(const std::vector<std::string>& tokens,
                            const request_limits& limits) {
  if (tokens.size() < 3 || tokens.size() > 4) {
    reject("want <engine> <n> <hex-tt>[,<hex-tt>...] [timeout_s]");
  }
  synth_args args;
  try {
    args.engine = core::engine_from_string(tokens[0]);
  } catch (const std::exception&) {
    reject("unknown engine '" + tokens[0] + "' (want stp|bms|fen|cegar)");
  }

  unsigned num_vars = 0;
  {
    std::size_t pos = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(tokens[1], &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != tokens[1].size()) {
      reject("bad arity '" + tokens[1] + "'");
    }
    if (value > limits.max_vars) {
      reject("truth table too large: n=" + tokens[1] + ", max n=" +
             std::to_string(limits.max_vars));
    }
    num_vars = static_cast<unsigned>(value);
  }

  // The payload is a comma-separated hex list: one table per output.
  // Single-entry lists take the historical single-output path, so their
  // parse (and every ERR message it can produce) is unchanged.
  std::vector<std::string> hex_list;
  {
    const std::string& payload = tokens[2];
    std::size_t begin = 0;
    while (begin <= payload.size()) {
      const auto comma = payload.find(',', begin);
      hex_list.push_back(payload.substr(
          begin, comma == std::string::npos ? std::string::npos
                                            : comma - begin));
      if (comma == std::string::npos) {
        break;
      }
      begin = comma + 1;
    }
  }
  if (hex_list.size() > limits.max_outputs) {
    reject("too many outputs: " + std::to_string(hex_list.size()) +
           ", max " + std::to_string(limits.max_outputs));
  }
  std::vector<tt::truth_table> functions;
  functions.reserve(hex_list.size());
  for (auto& hex : hex_list) {
    if (hex.rfind("0x", 0) == 0 || hex.rfind("0X", 0) == 0) {
      hex.erase(0, 2);
    }
    if (hex.size() != hex_digits_for(num_vars)) {
      reject("truth table payload is " + std::to_string(hex.size()) +
             " hex digits, n=" + std::to_string(num_vars) + " needs " +
             std::to_string(hex_digits_for(num_vars)));
    }
    try {
      functions.push_back(tt::truth_table::from_hex(num_vars, hex));
    } catch (const std::exception& e) {
      reject(std::string{"bad truth table: "} + e.what());
    }
  }
  if (functions.size() == 1) {
    args.function = std::move(functions.front());
  } else {
    args.functions = std::move(functions);
  }

  if (tokens.size() == 4) {
    double timeout = 0.0;
    std::size_t pos = 0;
    try {
      timeout = std::stod(tokens[3], &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != tokens[3].size() || timeout < 0.0) {
      reject("bad timeout '" + tokens[3] + "'");
    }
    args.timeout_seconds = timeout;
  }
  return args;
}

void write_result_block(std::ostream& os, std::string_view head,
                        const synth::result& result,
                        std::uint64_t request_id,
                        std::size_t num_outputs) {
  os << head << " " << synth::to_string(result.outcome) << " "
     << result.optimum_gates << " " << result.chains.size() << " "
     << result.seconds;
  if (num_outputs >= 2) {
    os << " outputs=" << num_outputs;
  }
  if (request_id != 0) {
    os << " id=" << request_id;
  }
  os << "\n";
  for (const auto& c : result.chains) {
    os << service::serialize_chain(c) << "\n";
  }
}

void write_error(std::ostream& os, std::string_view reason) {
  os << "ERR " << reason << "\n";
}

void write_busy(std::ostream& os, unsigned retry_after_ms) {
  os << "BUSY retry-after " << retry_after_ms << "\n";
}

}  // namespace stpes::server
