/// \file server.hpp
/// \brief Transport-agnostic daemon core: sessions over any iostream pair.
///
/// `synthesis_server` owns one `service::batch_synthesizer` — one warm NPN
/// cache, one thread pool — and serves the line protocol of
/// `server/protocol.hpp` over arbitrary streams.  Transports plug in from
/// the outside: the Unix-socket listener hands every accepted connection to
/// `serve()` on its own thread, pipe mode (CI, tests) runs one session over
/// stdin/stdout, and the tests drive sessions over stringstreams.  Because
/// the synthesizer's `run()` is thread-safe with per-call completion, any
/// number of sessions can be in flight at once and still deduplicate work
/// through the shared single-flight cache.
///
/// Failure isolation is per request: a malformed line costs one `ERR`
/// reply, a synthesis that exceeds its budget costs one `ERR timeout`, and
/// the session (and daemon) keep serving.  `begin_drain()` flips the server
/// into shutdown mode — sessions finish their in-flight request, then
/// close — which is what the SIGTERM path and the `SHUTDOWN` command use.
///
/// Cancellation rides on the `core::run_context` every job runs under:
/// `CANCEL` (issued from any other connection, since the protocol is
/// synchronous per session) flips the cancel flag of every in-flight
/// synthesis, which the workers observe within their poll stride and
/// return `status::timeout`; `CANCEL <id>` targets one request by the id
/// its replies carry.  The SIGTERM drain does the same after
/// `drain_grace_seconds`, so a stuck request can never hold the daemon
/// hostage.
///
/// Overload protection: `max_pending_jobs` bounds the admission queue
/// (excess requests are shed with `BUSY retry-after <ms>` before any work
/// is scheduled), `max_session_requests` caps what one client connection
/// may consume, and oversized lines are rejected without ever being
/// buffered (`ERR line-too-long`).  The `FAILPOINT` verb drives the
/// `util::failpoint` registry in chaos builds and answers `ERR` when the
/// hooks are compiled out.

#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>

#include "server/protocol.hpp"
#include "server/session_host.hpp"
#include "service/batch_synthesizer.hpp"
#include "sweep/sweep.hpp"

namespace stpes::server {

struct server_options {
  core::engine default_engine = core::engine::stp;
  /// Budget applied when a request carries no timeout.  0 = unlimited.
  double default_timeout_seconds = 5.0;
  /// Cap on any per-request timeout (client values are clamped down to
  /// it, and 0 = "unlimited" requests are clamped to exactly it).
  /// 0 = no cap.
  double max_timeout_seconds = 0.0;
  unsigned num_threads = 0;  ///< 0 = hardware concurrency
  std::size_t cache_shards = 16;
  std::size_t cache_capacity_per_shard = 4096;
  /// How long the SIGTERM drain waits for in-flight requests before
  /// cooperatively cancelling them.  0 = cancel immediately.
  double drain_grace_seconds = 5.0;
  /// Per-connection idle read deadline applied by the socket transports:
  /// a client that sends no byte for this long (including one that
  /// connects and never writes) is shed with `ERR idle-timeout` and its
  /// session thread reclaimed.  0 = never.
  double idle_timeout_seconds = 0.0;
  /// Admission bound on queued + running synthesis jobs; a SYNTH/BATCH
  /// that would push past it is shed with `BUSY retry-after <ms>` instead
  /// of queueing.  0 = unbounded (no shedding).
  std::size_t max_pending_jobs = 0;
  /// The retry hint carried by BUSY replies.
  unsigned overload_retry_ms = 100;
  /// Per-session quota of synthesis requests (SYNTH counts 1, BATCH
  /// counts its body size); past it every further synthesis request on
  /// that session gets `ERR quota-exceeded`.  0 = unlimited.
  std::uint64_t max_session_requests = 0;
  request_limits limits;
};

/// Server-level counters (the synthesis-level ones live in
/// `service::metrics`); all surfaced through `STATS`.
struct server_counters {
  std::uint64_t sessions = 0;
  std::uint64_t commands = 0;      ///< protocol lines handled
  std::uint64_t parse_errors = 0;  ///< ERR replies for malformed input
  std::uint64_t timeouts = 0;      ///< ERR timeout replies
  std::uint64_t cancels = 0;       ///< CANCEL commands handled
  std::uint64_t busy = 0;          ///< BUSY load-shed replies
  std::uint64_t quota_rejections = 0;  ///< ERR quota-exceeded replies
  std::uint64_t sweeps = 0;        ///< SWEEP requests admitted
  std::uint64_t idle_timeouts = 0;  ///< sessions shed on the idle deadline
};

class synthesis_server : public session_host {
public:
  explicit synthesis_server(server_options opts = {});

  synthesis_server(const synthesis_server&) = delete;
  synthesis_server& operator=(const synthesis_server&) = delete;

  /// Runs one session: reads requests from `in`, writes replies to `out`,
  /// returns on EOF, QUIT, SHUTDOWN, or drain.  Safe to call from many
  /// threads at once (one per connection).
  void serve(std::istream& in, std::ostream& out) override;

  /// Stops all sessions after their in-flight request.  Idempotent.
  void begin_drain() override;
  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }
  /// True once a client issued SHUTDOWN (implies `draining()`); the
  /// transport layer uses this to stop accepting.
  [[nodiscard]] bool shutdown_requested() const override {
    return shutdown_.load(std::memory_order_acquire);
  }

  // session_host drain/idle plumbing (used by the socket transports).
  void cancel_inflight_jobs() override { synth_.cancel_inflight(); }
  [[nodiscard]] double drain_grace_seconds() const override {
    return options_.drain_grace_seconds;
  }
  [[nodiscard]] double idle_timeout_seconds() const override {
    return options_.idle_timeout_seconds;
  }
  void note_idle_timeout() override {
    idle_timeouts_.fetch_add(1, std::memory_order_relaxed);
  }

  /// STATS payloads: server counters + synthesis metrics + cache stats.
  [[nodiscard]] std::string stats_text() const;
  [[nodiscard]] std::string stats_json() const;

  [[nodiscard]] service::batch_synthesizer& synthesizer() { return synth_; }
  [[nodiscard]] const server_options& options() const { return options_; }
  [[nodiscard]] server_counters counters() const;

private:
  /// Handles one request line; returns false when the session should end.
  /// `session_requests` is the session's running synthesis-request count
  /// for the per-session quota.
  bool handle_line(const std::string& line, std::istream& in,
                   std::ostream& out, std::uint64_t& session_requests);
  void handle_synth(const std::vector<std::string>& tokens,
                    std::ostream& out, std::uint64_t& session_requests);
  /// Returns false when the client disconnected mid-block.
  bool handle_batch(std::istream& in, std::ostream& out,
                    std::uint64_t& session_requests);
  void handle_sweep(const std::vector<std::string>& tokens,
                    std::ostream& out, std::uint64_t& session_requests);
  void handle_stats(const std::vector<std::string>& tokens,
                    std::ostream& out);
  void handle_save(const std::vector<std::string>& tokens,
                   std::ostream& out);
  void handle_load(const std::vector<std::string>& tokens,
                   std::ostream& out);
  void handle_reload(const std::vector<std::string>& tokens,
                     std::ostream& out);
  void handle_cancel(const std::vector<std::string>& tokens,
                     std::ostream& out);
  void handle_failpoint(const std::vector<std::string>& tokens,
                        std::ostream& out);

  /// True (after writing the ERR) when admitting `incoming` more requests
  /// would exceed the session quota; otherwise charges them.
  bool quota_exceeded(std::uint64_t& session_requests, std::size_t incoming,
                      std::ostream& out);

  /// Applies the default / cap policy to a request's timeout.
  [[nodiscard]] double effective_timeout(
      const std::optional<double>& requested) const;

  server_options options_;
  service::batch_synthesizer synth_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> sessions_{0};
  std::atomic<std::uint64_t> commands_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> cancels_{0};
  std::atomic<std::uint64_t> busy_{0};
  std::atomic<std::uint64_t> quota_rejections_{0};
  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<std::uint64_t> idle_timeouts_{0};
  /// Server-assigned synthesis request ids (replies carry ` id=N`);
  /// starts at 1 so 0 stays the untagged sentinel.
  std::atomic<std::uint64_t> next_request_id_{1};
  /// Live progress of in-flight SWEEP jobs, keyed by request id.  The
  /// handler registers a stack-owned `sweep_progress` for the duration of
  /// its job; STATS renders the registry under `sweeps` in the JSON
  /// payload so an operator can watch (and target-cancel) a long sweep.
  mutable std::mutex sweeps_mutex_;
  std::map<std::uint64_t, const sweep::sweep_progress*> active_sweeps_;
};

}  // namespace stpes::server
