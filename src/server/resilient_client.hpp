/// \file resilient_client.hpp
/// \brief A client that turns transient faults into retries, not errors.
///
/// `line_client` (client.hpp) assumes a healthy transport: one broken read
/// throws and the session is gone.  `resilient_client` wraps it with the
/// machinery a caller facing a real network needs:
///
///   * endpoints: `unix:/path`, a bare `/path`, or `host:port` (TCP);
///   * bounded connects (non-blocking connect + poll) and bounded reads
///     (the `fd_stream` poll deadline), so a blackholed daemon costs
///     milliseconds, not forever;
///   * automatic reconnect with capped exponential backoff and
///     *deterministic* jitter: `backoff_ms(attempt)` is a pure function of
///     the policy seed and the attempt index, so tests assert the exact
///     schedule and two clients with different seeds never thundering-herd
///     in sync;
///   * `BUSY retry-after <ms>` honored as the backoff floor — the daemon's
///     hint can only lengthen a wait, never shorten it below the schedule;
///   * idempotent retry semantics: the daemon's verbs are either pure
///     reads (PING/STATS) or cache-convergent (a SYNTH retried after a
///     dropped reply re-derives the same chain from the warm cache), so a
///     request whose reply was lost is safe to re-send.  Every retry is
///     counted in `metrics()` — nothing loops silently.
///
/// When every attempt is exhausted the last failure surfaces as
/// `transport_error`; a BUSY reply that survives all retries is returned
/// as-is (shedding is an answer, not a fault).  The routing tier
/// (`route::router`) runs one of these per backend per session and adds
/// consistent-hash failover on top.

#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/client.hpp"
#include "server/fd_stream.hpp"
#include "util/rng.hpp"

namespace stpes::server {

/// A connect/read/write failure that survived every configured retry.
struct transport_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Where a daemon lives: a Unix-socket path or a TCP `host:port`.
struct endpoint {
  enum class kind { unix_socket, tcp };
  kind transport = kind::unix_socket;
  std::string host_or_path;  ///< socket path, or TCP host
  std::uint16_t port = 0;    ///< TCP only

  /// `unix:/path`, `/path` (leading slash or dot), or `host:port`.
  static endpoint parse(const std::string& spec) {
    endpoint ep;
    if (spec.rfind("unix:", 0) == 0) {
      ep.host_or_path = spec.substr(5);
      return ep;
    }
    const auto colon = spec.rfind(':');
    if (colon == std::string::npos || spec.empty() || spec[0] == '/' ||
        spec[0] == '.') {
      ep.host_or_path = spec;
      return ep;
    }
    const std::string port_str = spec.substr(colon + 1);
    std::size_t pos = 0;
    unsigned long port = 0;
    try {
      port = std::stoul(port_str, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != port_str.size() || port == 0 || port > 65535) {
      throw std::runtime_error{"bad endpoint '" + spec +
                               "' (want unix:/path, /path, or host:port)"};
    }
    ep.transport = kind::tcp;
    ep.host_or_path = spec.substr(0, colon);
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }

  [[nodiscard]] std::string to_string() const {
    return transport == kind::unix_socket
               ? host_or_path
               : host_or_path + ":" + std::to_string(port);
  }
};

/// Connects to `ep` within `timeout_ms` (non-blocking connect + poll);
/// returns a blocking fd.  Throws `transport_error` on failure.
inline int connect_endpoint(const endpoint& ep, unsigned timeout_ms) {
  int fd = -1;
  sockaddr_storage addr{};
  socklen_t addr_len = 0;
  if (ep.transport == endpoint::kind::unix_socket) {
    auto* un = reinterpret_cast<sockaddr_un*>(&addr);
    un->sun_family = AF_UNIX;
    if (ep.host_or_path.size() >= sizeof(un->sun_path)) {
      throw transport_error{"socket path too long: " + ep.host_or_path};
    }
    std::strncpy(un->sun_path, ep.host_or_path.c_str(),
                 sizeof(un->sun_path) - 1);
    addr_len = sizeof(sockaddr_un);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  } else {
    auto* in4 = reinterpret_cast<sockaddr_in*>(&addr);
    in4->sin_family = AF_INET;
    in4->sin_port = htons(ep.port);
    if (::inet_pton(AF_INET, ep.host_or_path.c_str(), &in4->sin_addr) !=
        1) {
      addrinfo hints{};
      hints.ai_family = AF_INET;
      hints.ai_socktype = SOCK_STREAM;
      addrinfo* res = nullptr;
      const int rc =
          ::getaddrinfo(ep.host_or_path.c_str(), nullptr, &hints, &res);
      if (rc != 0 || res == nullptr) {
        throw transport_error{"cannot resolve '" + ep.host_or_path +
                              "': " + ::gai_strerror(rc)};
      }
      in4->sin_addr =
          reinterpret_cast<const sockaddr_in*>(res->ai_addr)->sin_addr;
      ::freeaddrinfo(res);
    }
    addr_len = sizeof(sockaddr_in);
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
  }
  if (fd < 0) {
    throw transport_error{"socket: " + std::string{std::strerror(errno)}};
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     addr_len);
  if (rc < 0 && errno == EINPROGRESS) {
    pollfd p{fd, POLLOUT, 0};
    int ready = 0;
    do {
      ready = ::poll(&p, 1, static_cast<int>(timeout_ms));
    } while (ready < 0 && errno == EINTR);
    if (ready <= 0) {
      ::close(fd);
      throw transport_error{"connect " + ep.to_string() + ": timed out"};
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    rc = err == 0 ? 0 : -1;
    errno = err;
  }
  if (rc < 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw transport_error{"connect " + ep.to_string() + ": " + reason};
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking; reads poll explicitly
  if (ep.transport == endpoint::kind::tcp) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

/// Knobs for the retry/backoff loop.  Defaults suit a LAN daemon; tests
/// shrink everything to milliseconds.
struct retry_policy {
  /// Total tries per request (1 = no retry).
  unsigned max_attempts = 4;
  unsigned connect_timeout_ms = 2000;
  /// Per-reply read deadline; 0 = wait forever (not recommended — a
  /// blackholed daemon would pin the caller).
  unsigned io_timeout_ms = 30000;
  /// Backoff schedule: min(base << attempt, max) plus deterministic
  /// jitter of up to half that value, derived from `jitter_seed` and the
  /// attempt index only.
  unsigned base_backoff_ms = 10;
  unsigned max_backoff_ms = 2000;
  std::uint64_t jitter_seed = 0x5eedULL;
};

/// What the client did to get answers.  Plain counters — one owner
/// thread per client; the router aggregates snapshots across sessions.
struct client_metrics {
  std::uint64_t connects = 0;      ///< successful fresh connects
  std::uint64_t reconnects = 0;    ///< successful connects after a drop
  std::uint64_t retries = 0;       ///< requests re-sent after a fault
  std::uint64_t busy_backoffs = 0;  ///< BUSY replies waited out
  std::uint64_t io_timeouts = 0;   ///< reads cut by the poll deadline
  std::uint64_t failures = 0;      ///< requests that exhausted retries
  std::uint64_t backoff_ms_total = 0;  ///< total time spent backing off
};

class resilient_client {
public:
  explicit resilient_client(endpoint ep, retry_policy policy = {})
      : endpoint_(std::move(ep)), policy_(policy) {}

  ~resilient_client() { disconnect(); }

  resilient_client(const resilient_client&) = delete;
  resilient_client& operator=(const resilient_client&) = delete;

  /// The deterministic backoff before retry number `attempt` (0-based):
  /// exponential, capped, plus seeded jitter.  Pure function — exposed so
  /// tests pin the schedule and `retry_hint` computations reuse it.
  [[nodiscard]] unsigned backoff_ms(unsigned attempt) const {
    const unsigned shift = attempt < 16 ? attempt : 16;
    std::uint64_t base = static_cast<std::uint64_t>(policy_.base_backoff_ms)
                         << shift;
    if (base > policy_.max_backoff_ms) {
      base = policy_.max_backoff_ms;
    }
    util::rng jitter{policy_.jitter_seed ^
                     (0x9E3779B97F4A7C15ULL * (attempt + 1))};
    const std::uint64_t spread = base / 2;
    return static_cast<unsigned>(
        base + (spread > 0 ? jitter.next_below(spread + 1) : 0));
  }

  /// `SYNTH` with retry/reconnect/backoff; single- and multi-output.
  /// Throws `transport_error` only after every attempt failed.
  line_client::synth_reply synth(
      core::engine engine, const tt::truth_table& function,
      std::optional<double> timeout_seconds = std::nullopt) {
    return with_retry([&](line_client& c) {
      return c.synth(engine, function, timeout_seconds);
    });
  }
  line_client::synth_reply synth(
      core::engine engine, const std::vector<tt::truth_table>& functions,
      std::optional<double> timeout_seconds = std::nullopt) {
    return with_retry([&](line_client& c) {
      return c.synth(engine, functions, timeout_seconds);
    });
  }

  /// One raw request line, one `line_client`-parsed synth reply — the
  /// router's forwarding primitive (the request is already serialized).
  line_client::synth_reply forward_synth(const std::string& request_line) {
    return with_retry(
        [&](line_client& c) { return c.forward_synth(request_line); });
  }

  /// `PING` with retry; a shed (BUSY) ping backs off like any other
  /// request.  False only when attempts ran out.
  bool ping() {
    try {
      return with_retry([&](line_client& c) {
        line_client::synth_reply r;
        r.ok = c.ping();
        if (!r.ok) {
          const auto& raw = c.last_raw();
          if (raw.rfind("BUSY ", 0) == 0) {
            r.busy = true;
            std::istringstream is{raw};
            std::string kw;
            is >> kw >> kw;
            if (!(is >> r.retry_after_ms)) {
              r.retry_after_ms = 0;
            }
            return r;
          }
          // An unexpected reply line is a protocol fault, not a BUSY:
          // treat like a transport error so the retry loop reconnects.
          throw std::runtime_error{"unexpected ping reply"};
        }
        return r;
      }).ok;
    } catch (const transport_error&) {
      return false;
    }
  }

  /// `STATS JSON` with retry.
  std::string stats_json() {
    std::string payload;
    with_retry([&](line_client& c) {
      payload = c.stats_json();
      line_client::synth_reply r;
      r.ok = true;
      return r;
    });
    return payload;
  }

  [[nodiscard]] const client_metrics& metrics() const { return metrics_; }

  /// Raw bytes of the last complete reply on the current connection
  /// (empty when disconnected) — relays re-frame these verbatim.
  [[nodiscard]] const std::string& last_raw() const {
    static const std::string empty;
    return conn_ != nullptr ? conn_->client.last_raw() : empty;
  }

  [[nodiscard]] const endpoint& target() const { return endpoint_; }
  [[nodiscard]] bool connected() const { return conn_ != nullptr; }

  void disconnect() {
    conn_.reset();
  }

private:
  struct connection {
    explicit connection(int fd_in, unsigned io_timeout_ms)
        : fd(fd_in),
          io(fd_in, io_timeout_ms == 0 ? -1
                                       : static_cast<int>(io_timeout_ms)),
          client(io, io) {}
    ~connection() { ::close(fd); }
    connection(const connection&) = delete;
    connection& operator=(const connection&) = delete;

    int fd;
    fd_iostream io;
    line_client client;
  };

  void ensure_connected() {
    if (conn_ != nullptr) {
      return;
    }
    const int fd = connect_endpoint(endpoint_, policy_.connect_timeout_ms);
    conn_ = std::make_unique<connection>(fd, policy_.io_timeout_ms);
    if (ever_connected_) {
      ++metrics_.reconnects;
    } else {
      ++metrics_.connects;
      ever_connected_ = true;
    }
  }

  void backoff(unsigned attempt) {
    const unsigned ms = backoff_ms(attempt);
    metrics_.backoff_ms_total += ms;
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }

  /// BUSY honored as a floor: wait the *longer* of the daemon's hint and
  /// the schedule, so an overloaded daemon is never hammered faster than
  /// it asked for.
  void backoff_busy(unsigned attempt, unsigned retry_after_ms) {
    unsigned ms = backoff_ms(attempt);
    if (retry_after_ms > ms) {
      ms = retry_after_ms;
    }
    ++metrics_.busy_backoffs;
    metrics_.backoff_ms_total += ms;
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }

  template <typename Op>
  line_client::synth_reply with_retry(Op&& op) {
    std::string last_failure = "no attempts configured";
    line_client::synth_reply last_busy;
    bool saw_busy = false;
    const unsigned attempts = policy_.max_attempts == 0
                                  ? 1
                                  : policy_.max_attempts;
    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
      if (attempt > 0) {
        ++metrics_.retries;
      }
      try {
        ensure_connected();
        auto reply = op(conn_->client);
        if (reply.busy) {
          saw_busy = true;
          last_busy = reply;
          if (attempt + 1 < attempts) {
            backoff_busy(attempt, reply.retry_after_ms);
          }
          continue;
        }
        return reply;
      } catch (const std::exception& e) {
        // Any transport-layer failure (connect refused, EOF mid-reply,
        // read deadline) lands here: drop the connection, back off,
        // reconnect on the next attempt.  SYNTH is cache-convergent, so
        // re-sending after a dropped reply is safe by construction.
        if (conn_ != nullptr && conn_->io.timed_out()) {
          ++metrics_.io_timeouts;
          last_failure = std::string{"read timeout: "} + e.what();
        } else {
          last_failure = e.what();
        }
        disconnect();
        if (attempt + 1 < attempts) {
          backoff(attempt);
        }
      }
    }
    if (saw_busy) {
      // Every attempt was shed: surface the daemon's answer (with its
      // hint) instead of inventing an error — the caller decides whether
      // to degrade or fail over.
      return last_busy;
    }
    ++metrics_.failures;
    throw transport_error{endpoint_.to_string() + ": " + last_failure};
  }

  endpoint endpoint_;
  retry_policy policy_;
  client_metrics metrics_;
  std::unique_ptr<connection> conn_;
  bool ever_connected_ = false;
};

}  // namespace stpes::server
