/// \file tcp_socket_server.hpp
/// \brief TCP transport for any `session_host`.
///
/// The network half of the scale-out story: the same line protocol, quota
/// and shedding machinery, cancel verbs, and graceful drain as the Unix
/// listener, reachable over `host:port` so synthesis shards can live on
/// other machines.  All of the hardened accept/drain logic is inherited
/// from `stream_listener`; this class only creates the listening socket
/// (IPv4, `SO_REUSEADDR` so a restarted shard can rebind immediately —
/// the failover story depends on fast restarts) and applies
/// `TCP_NODELAY` to accepted connections (the protocol is small
/// request/reply lines; Nagle would add 40 ms to every reply).
///
/// Binding port 0 picks an ephemeral port, reported by `port()` — the
/// tests and the router chaos suite use that to run whole backend fleets
/// in one process without port collisions.
///
/// A stalled or half-open peer is bounded by the host's idle timeout
/// (see `stream_listener`): the read deadline starts at `accept()`, so a
/// SYN-scanner or a client that connects and never writes is shed with
/// `ERR idle-timeout` instead of pinning a session thread forever.

#pragma once

#include <cstdint>
#include <string>

#include "server/socket_server.hpp"

namespace stpes::server {

/// Parses `host:port` (host may be empty or `*` for INADDR_ANY).  Throws
/// `std::runtime_error` on a malformed spec or an unresolvable host.
struct tcp_listen_spec {
  std::string host;          ///< empty = all interfaces
  std::uint16_t port = 0;    ///< 0 = ephemeral
  static tcp_listen_spec parse(const std::string& spec);
};

class tcp_socket_server final : public stream_listener {
public:
  /// Binds and listens on `spec.host:spec.port`.  Throws
  /// `std::runtime_error` on resolve/bind failure.
  tcp_socket_server(session_host& host, const tcp_listen_spec& spec);

  /// The actually-bound port (resolves port 0 to the kernel's choice).
  [[nodiscard]] std::uint16_t port() const { return port_; }

protected:
  [[nodiscard]] const char* accept_failpoint_name() const override {
    return "tcp_server.accept";
  }
  void configure_accepted_fd(int fd) override;

private:
  std::uint16_t port_ = 0;
};

}  // namespace stpes::server
