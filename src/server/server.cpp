#include "server/server.hpp"

#include <algorithm>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>

#include "aig/aiger_io.hpp"
#include "util/failpoint.hpp"

namespace stpes::server {

namespace {

service::batch_options to_batch_options(const server_options& opts) {
  service::batch_options b;
  b.engine = opts.default_engine;
  b.timeout_seconds = opts.default_timeout_seconds;
  b.num_threads = opts.num_threads;
  b.cache_shards = opts.cache_shards;
  b.cache_capacity_per_shard = opts.cache_capacity_per_shard;
  b.max_pending_jobs = opts.max_pending_jobs;
  return b;
}

std::string cache_stats_json(const service::shard_cache_stats& s) {
  std::ostringstream os;
  os << "{\"hits\":" << s.hits << ",\"misses\":" << s.misses
     << ",\"inflight_waits\":" << s.inflight_waits
     << ",\"evictions\":" << s.evictions << ",\"size\":" << s.size << "}";
  return os.str();
}

}  // namespace

synthesis_server::synthesis_server(server_options opts)
    : options_(opts), synth_(to_batch_options(opts)) {}

void synthesis_server::serve(std::istream& in, std::ostream& out) {
  sessions_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t session_requests = 0;
  std::string line;
  while (!draining()) {
    const auto status =
        read_limited_line(in, line, options_.limits.max_line_bytes);
    if (status == line_status::eof) {
      break;
    }
    if (status == line_status::too_long) {
      // The oversized remainder was discarded by the bounded reader; the
      // session never buffers more than the limit.
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      write_error(out, "line-too-long (max " +
                           std::to_string(options_.limits.max_line_bytes) +
                           " bytes)");
      out.flush();
      continue;
    }
    if (line.empty()) {
      continue;
    }
    const bool keep_going = handle_line(line, in, out, session_requests);
    out.flush();
    if (!keep_going) {
      break;
    }
  }
}

bool synthesis_server::handle_line(const std::string& line, std::istream& in,
                                   std::ostream& out,
                                   std::uint64_t& session_requests) {
  const auto tokens = tokenize(line);
  if (tokens.empty()) {  // whitespace-only line
    return true;
  }
  commands_.fetch_add(1, std::memory_order_relaxed);
  const std::string& verb = tokens.front();

  if (verb == "PING") {
    out << "OK pong\n";
    return true;
  }
  if (verb == "SYNTH") {
    handle_synth(tokens, out, session_requests);
    return true;
  }
  if (verb == "BATCH") {
    return handle_batch(in, out, session_requests);
  }
  if (verb == "SWEEP") {
    handle_sweep(tokens, out, session_requests);
    return true;
  }
  if (verb == "STATS") {
    handle_stats(tokens, out);
    return true;
  }
  if (verb == "SAVE") {
    handle_save(tokens, out);
    return true;
  }
  if (verb == "LOAD") {
    handle_load(tokens, out);
    return true;
  }
  if (verb == "RELOAD") {
    handle_reload(tokens, out);
    return true;
  }
  if (verb == "CANCEL") {
    handle_cancel(tokens, out);
    return true;
  }
  if (verb == "FAILPOINT") {
    handle_failpoint(tokens, out);
    return true;
  }
  if (verb == "QUIT") {
    out << "OK bye\n";
    return false;
  }
  if (verb == "SHUTDOWN") {
    out << "OK shutting-down\n";
    shutdown_.store(true, std::memory_order_release);
    begin_drain();
    return false;
  }
  parse_errors_.fetch_add(1, std::memory_order_relaxed);
  write_error(out, "unknown command '" + verb + "'");
  return true;
}

bool synthesis_server::quota_exceeded(std::uint64_t& session_requests,
                                      std::size_t incoming,
                                      std::ostream& out) {
  if (options_.max_session_requests != 0 &&
      session_requests + incoming > options_.max_session_requests) {
    quota_rejections_.fetch_add(1, std::memory_order_relaxed);
    write_error(out, "quota-exceeded (max " +
                         std::to_string(options_.max_session_requests) +
                         " requests per session)");
    return true;
  }
  session_requests += incoming;
  return false;
}

void synthesis_server::handle_synth(const std::vector<std::string>& tokens,
                                    std::ostream& out,
                                    std::uint64_t& session_requests) {
  service::batch_request request;
  std::size_t num_outputs = 1;
  try {
    auto args = parse_synth_args(
        {tokens.begin() + 1, tokens.end()}, options_.limits);
    num_outputs = args.num_outputs();
    request.function = std::move(args.function);
    request.functions = std::move(args.functions);
    request.engine = args.engine;
    request.timeout_seconds = effective_timeout(args.timeout_seconds);
  } catch (const protocol_error& e) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    write_error(out, e.what());
    return;
  }
  if (quota_exceeded(session_requests, 1, out)) {
    return;
  }
  if (synth_.would_overload(1)) {
    busy_.fetch_add(1, std::memory_order_relaxed);
    write_busy(out, options_.overload_retry_ms);
    return;
  }
  const auto id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  const auto batch =
      synth_.run(std::vector<service::batch_request>{request}, id);
  const auto& result = batch.results.front();
  if (result.outcome == synth::status::timeout) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    write_error(out, "timeout");
    return;
  }
  write_result_block(out, "OK", result, id, num_outputs);
}

bool synthesis_server::handle_batch(std::istream& in, std::ostream& out,
                                    std::uint64_t& session_requests) {
  // Consume the whole block before replying, so a parse error mid-block
  // cannot desynchronize the session (later body lines must never be
  // re-interpreted as commands).
  std::vector<service::batch_request> requests;
  std::vector<std::size_t> request_outputs;  ///< per request, for the echo
  std::string first_error;
  std::size_t body_lines = 0;
  std::string line;
  bool terminated = false;
  while (true) {
    const auto status =
        read_limited_line(in, line, options_.limits.max_line_bytes);
    if (status == line_status::eof) {
      break;
    }
    if (status == line_status::too_long) {
      ++body_lines;
      if (first_error.empty()) {
        first_error = "batch line " + std::to_string(body_lines) +
                      " too long";
      }
      continue;  // keep consuming until END
    }
    if (line.empty()) {
      continue;
    }
    if (line == "END") {
      terminated = true;
      break;
    }
    ++body_lines;
    if (body_lines > options_.limits.max_batch_requests) {
      if (first_error.empty()) {
        first_error =
            "batch exceeds " +
            std::to_string(options_.limits.max_batch_requests) + " requests";
      }
      continue;  // keep consuming until END
    }
    if (!first_error.empty()) {
      continue;
    }
    try {
      auto args = parse_synth_args(tokenize(line), options_.limits);
      service::batch_request request;
      request_outputs.push_back(args.num_outputs());
      request.function = std::move(args.function);
      request.functions = std::move(args.functions);
      request.engine = args.engine;
      request.timeout_seconds = effective_timeout(args.timeout_seconds);
      requests.push_back(std::move(request));
    } catch (const protocol_error& e) {
      first_error =
          "batch line " + std::to_string(body_lines) + ": " + e.what();
    }
  }
  if (!terminated) {
    // Client went away mid-block; nothing sensible to reply to.
    return false;
  }
  if (!first_error.empty()) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    write_error(out, first_error);
    return true;
  }
  if (quota_exceeded(session_requests, requests.size(), out)) {
    return true;
  }
  if (synth_.would_overload(requests.size())) {
    busy_.fetch_add(1, std::memory_order_relaxed);
    write_busy(out, options_.overload_retry_ms);
    return true;
  }
  const auto id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  const auto batch = synth_.run(requests, id);
  out << "OK " << batch.results.size() << " id=" << id << "\n";
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    if (batch.results[i].outcome == synth::status::timeout) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    write_result_block(out, "RESULT " + std::to_string(i),
                       batch.results[i], 0, request_outputs[i]);
  }
  return true;
}

void synthesis_server::handle_sweep(const std::vector<std::string>& tokens,
                                    std::ostream& out,
                                    std::uint64_t& session_requests) {
  if (tokens.size() < 2 || tokens.size() > 4) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    write_error(out, "want SWEEP <path> [timeout_s] [cdcl|allsat]");
    return;
  }
  const std::string& path = tokens[1];
  std::optional<double> requested_timeout;
  if (tokens.size() >= 3) {
    double seconds = 0.0;
    std::size_t pos = 0;
    try {
      seconds = std::stod(tokens[2], &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != tokens[2].size() || seconds < 0.0) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      write_error(out, "bad timeout '" + tokens[2] + "'");
      return;
    }
    requested_timeout = seconds;
  }
  sweep::prover engine = sweep::prover::cdcl;
  if (tokens.size() == 4) {
    try {
      engine = sweep::prover_from_string(tokens[3]);
    } catch (const std::exception& e) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      write_error(out, e.what());
      return;
    }
  }
  if (quota_exceeded(session_requests, 1, out)) {
    return;
  }
  if (synth_.would_overload(1)) {
    busy_.fetch_add(1, std::memory_order_relaxed);
    write_busy(out, options_.overload_retry_ms);
    return;
  }
  sweeps_.fetch_add(1, std::memory_order_relaxed);
  const auto id = next_request_id_.fetch_add(1, std::memory_order_relaxed);

  // The progress sink lives on this stack frame; it is registered only
  // while the job is in flight, and `run_job` blocks until the job ended,
  // so STATS never reads a dangling pointer.
  sweep::sweep_progress progress;
  {
    std::lock_guard<std::mutex> lock{sweeps_mutex_};
    active_sweeps_.emplace(id, &progress);
  }
  sweep::sweep_result result;
  auto outcome = service::job_outcome::rejected;
  std::optional<std::string> failure;
  try {
    outcome = synth_.run_job(
        id, effective_timeout(requested_timeout),
        [&](core::run_context& ctx) {
          // Reading inside the job keeps the session thread shed-able and
          // lets a queued-then-cancelled SWEEP skip even the file I/O.
          auto network = aig::read_aiger_file(path);
          if (network.num_ands() > options_.limits.max_aig_ands) {
            throw protocol_error(
                "aig too large (" + std::to_string(network.num_ands()) +
                " ands, max " +
                std::to_string(options_.limits.max_aig_ands) + ")");
          }
          sweep::sweep_options sweep_opts;
          sweep_opts.engine = engine;
          sweep_opts.progress = &progress;
          result = sweep::sweep(network, sweep_opts, &ctx);
        });
  } catch (const std::exception& e) {
    failure = e.what();  // unreadable/malformed file, size cap, ...
  }
  {
    std::lock_guard<std::mutex> lock{sweeps_mutex_};
    active_sweeps_.erase(id);
  }
  if (failure.has_value()) {
    write_error(out, *failure);
    return;
  }
  if (outcome == service::job_outcome::rejected) {
    write_error(out, "rejected");
    return;
  }
  if (outcome == service::job_outcome::cancelled || !result.completed) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    write_error(out, "timeout");
    return;
  }
  out << "OK swept " << result.ands_before << " " << result.ands_after
      << " " << result.merged_nodes << " " << result.proofs << " "
      << result.refutations << " " << result.sim_rounds << " "
      << result.seconds << " id=" << id << "\n";
}

void synthesis_server::handle_cancel(const std::vector<std::string>& tokens,
                                     std::ostream& out) {
  // The protocol is synchronous per session, so CANCEL necessarily
  // arrives on a different connection than the synthesis it interrupts.
  // Bare CANCEL cancels every in-flight job; `CANCEL <id>` only the jobs
  // of that request (ids are in JSON STATS `active_ids`).  Interrupted
  // sessions reply `ERR timeout` to their own clients within the
  // engines' poll stride.
  if (tokens.size() > 2) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    write_error(out, "want CANCEL [id]");
    return;
  }
  cancels_.fetch_add(1, std::memory_order_relaxed);
  if (tokens.size() == 1) {
    out << "OK cancelled " << synth_.cancel_inflight() << "\n";
    return;
  }
  std::uint64_t id = 0;
  std::size_t pos = 0;
  try {
    id = std::stoull(tokens[1], &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != tokens[1].size() || id == 0) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    write_error(out, "bad request id '" + tokens[1] + "'");
    return;
  }
  out << "OK cancelled " << synth_.cancel_request(id) << " id=" << id
      << "\n";
}

void synthesis_server::handle_reload(const std::vector<std::string>& tokens,
                                     std::ostream& out) {
  if (tokens.size() != 2) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    write_error(out, "want RELOAD <path>");
    return;
  }
  try {
    const auto report = synth_.reload_cache(tokens[1]);
    out << "OK reloaded " << report.warm.loaded << " skipped "
        << report.warm.skipped() << " cleared " << report.cleared << "\n";
  } catch (const std::exception& e) {
    write_error(out, e.what());
  }
}

void synthesis_server::handle_failpoint(
    const std::vector<std::string>& tokens, std::ostream& out) {
  if (!util::failpoints_compiled_in()) {
    write_error(out, "failpoints not compiled in (build with "
                     "-DSTPES_FAILPOINTS=ON)");
    return;
  }
  auto& registry = util::failpoint_registry::instance();
  const std::string sub = tokens.size() > 1 ? tokens[1] : "";
  if (sub == "SET" && tokens.size() == 4) {
    if (registry.set(tokens[2], tokens[3])) {
      out << "OK failpoint " << tokens[2] << " " << tokens[3] << "\n";
    } else {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      write_error(out, "bad failpoint spec '" + tokens[3] + "'");
    }
    return;
  }
  if (sub == "CLEAR" && tokens.size() <= 3) {
    if (tokens.size() == 3) {
      registry.clear(tokens[2]);
    } else {
      registry.clear_all();
    }
    out << "OK failpoints cleared\n";
    return;
  }
  if (sub == "LIST" && tokens.size() == 2) {
    const auto points = registry.list();
    out << "OK " << points.size() << "\n";
    for (const auto& [name, spec] : points) {
      out << name << " " << spec << "\n";
    }
    return;
  }
  parse_errors_.fetch_add(1, std::memory_order_relaxed);
  write_error(out, "want FAILPOINT SET <name> <spec> | CLEAR [name] | LIST");
}

void synthesis_server::handle_stats(const std::vector<std::string>& tokens,
                                    std::ostream& out) {
  const std::string mode = tokens.size() > 1 ? tokens[1] : "TEXT";
  if (mode == "JSON") {
    out << "OK 1\n" << stats_json() << "\n";
    return;
  }
  if (mode != "TEXT") {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    write_error(out, "unknown STATS mode '" + mode + "' (want TEXT|JSON)");
    return;
  }
  const auto text = stats_text();
  const auto lines =
      static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n'));
  out << "OK " << lines << "\n" << text;
}

void synthesis_server::handle_save(const std::vector<std::string>& tokens,
                                   std::ostream& out) {
  if (tokens.size() != 2) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    write_error(out, "want SAVE <path>");
    return;
  }
  try {
    const auto written = synth_.persist_cache(tokens[1]);
    out << "OK saved " << written << "\n";
  } catch (const std::exception& e) {
    write_error(out, e.what());
  }
}

void synthesis_server::handle_load(const std::vector<std::string>& tokens,
                                   std::ostream& out) {
  if (tokens.size() != 2) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    write_error(out, "want LOAD <path>");
    return;
  }
  try {
    const auto report = synth_.warm_cache_verbose(tokens[1]);
    out << "OK loaded " << report.loaded << " skipped " << report.skipped()
        << "\n";
  } catch (const std::exception& e) {
    write_error(out, e.what());
  }
}

double synthesis_server::effective_timeout(
    const std::optional<double>& requested) const {
  double timeout = requested.value_or(options_.default_timeout_seconds);
  const double cap = options_.max_timeout_seconds;
  if (cap > 0.0 && (timeout == 0.0 || timeout > cap)) {
    timeout = cap;
  }
  return timeout;
}

server_counters synthesis_server::counters() const {
  server_counters c;
  c.sessions = sessions_.load(std::memory_order_relaxed);
  c.commands = commands_.load(std::memory_order_relaxed);
  c.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  c.timeouts = timeouts_.load(std::memory_order_relaxed);
  c.cancels = cancels_.load(std::memory_order_relaxed);
  c.busy = busy_.load(std::memory_order_relaxed);
  c.quota_rejections = quota_rejections_.load(std::memory_order_relaxed);
  c.sweeps = sweeps_.load(std::memory_order_relaxed);
  c.idle_timeouts = idle_timeouts_.load(std::memory_order_relaxed);
  return c;
}

std::string synthesis_server::stats_text() const {
  const auto c = counters();
  const auto cache = synth_.cache_stats();
  std::ostringstream os;
  os << "sessions          " << c.sessions << "\n"
     << "commands          " << c.commands << "\n"
     << "parse_errors      " << c.parse_errors << "\n"
     << "timeouts          " << c.timeouts << "\n"
     << "cancels           " << c.cancels << "\n"
     << "busy              " << c.busy << "\n"
     << "quota_rejections  " << c.quota_rejections << "\n"
     << "sweeps            " << c.sweeps << "\n"
     << "idle_timeouts     " << c.idle_timeouts << "\n"
     << "sweeps_active     " << [this] {
          std::lock_guard<std::mutex> lock{sweeps_mutex_};
          return active_sweeps_.size();
        }() << "\n"
     << "pending_jobs      " << synth_.pending_jobs() << "\n"
     << "draining          " << (draining() ? 1 : 0) << "\n"
     << synth_.current_metrics().to_text()  //
     << "cache_lookup_hits " << cache.hits << "\n"
     << "cache_misses_sf   " << cache.misses << "\n"
     << "cache_inflight    " << cache.inflight_waits << "\n"
     << "cache_evictions   " << cache.evictions << "\n"
     << "cache_size        " << cache.size << "\n";
  return os.str();
}

std::string synthesis_server::stats_json() const {
  const auto c = counters();
  std::ostringstream os;
  os << "{\"server\":{\"sessions\":" << c.sessions
     << ",\"commands\":" << c.commands
     << ",\"parse_errors\":" << c.parse_errors
     << ",\"timeouts\":" << c.timeouts << ",\"cancels\":" << c.cancels
     << ",\"busy\":" << c.busy
     << ",\"quota_rejections\":" << c.quota_rejections
     << ",\"idle_timeouts\":" << c.idle_timeouts
     << ",\"pending_jobs\":" << synth_.pending_jobs()
     << ",\"active_ids\":[";
  const auto ids = synth_.active_request_ids();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    os << (i == 0 ? "" : ",") << ids[i];
  }
  os << "],\"sweeps\":{\"admitted\":" << c.sweeps << ",\"active\":[";
  {
    std::lock_guard<std::mutex> lock{sweeps_mutex_};
    bool first = true;
    for (const auto& [id, progress] : active_sweeps_) {
      os << (first ? "" : ",") << "{\"id\":" << id << ",\"sim_rounds\":"
         << progress->sim_rounds.load(std::memory_order_relaxed)
         << ",\"candidates\":"
         << progress->candidates.load(std::memory_order_relaxed)
         << ",\"proofs\":"
         << progress->proofs.load(std::memory_order_relaxed)
         << ",\"refutations\":"
         << progress->refutations.load(std::memory_order_relaxed)
         << ",\"merged_nodes\":"
         << progress->merged_nodes.load(std::memory_order_relaxed) << "}";
      first = false;
    }
  }
  os << "]},\"draining\":" << (draining() ? "true" : "false") << "}"
     << ",\"synthesis\":" << synth_.current_metrics().to_json()
     << ",\"cache\":" << cache_stats_json(synth_.cache_stats()) << "}";
  return os.str();
}

void synthesis_server::begin_drain() {
  draining_.store(true, std::memory_order_release);
}

}  // namespace stpes::server
