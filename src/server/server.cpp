#include "server/server.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

namespace stpes::server {

namespace {

service::batch_options to_batch_options(const server_options& opts) {
  service::batch_options b;
  b.engine = opts.default_engine;
  b.timeout_seconds = opts.default_timeout_seconds;
  b.num_threads = opts.num_threads;
  b.cache_shards = opts.cache_shards;
  b.cache_capacity_per_shard = opts.cache_capacity_per_shard;
  return b;
}

/// Strips a trailing '\r' so netcat/CRLF clients work unchanged.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') {
    line.pop_back();
  }
}

std::string cache_stats_json(const service::shard_cache_stats& s) {
  std::ostringstream os;
  os << "{\"hits\":" << s.hits << ",\"misses\":" << s.misses
     << ",\"inflight_waits\":" << s.inflight_waits
     << ",\"evictions\":" << s.evictions << ",\"size\":" << s.size << "}";
  return os.str();
}

}  // namespace

synthesis_server::synthesis_server(server_options opts)
    : options_(opts), synth_(to_batch_options(opts)) {}

void synthesis_server::serve(std::istream& in, std::ostream& out) {
  sessions_.fetch_add(1, std::memory_order_relaxed);
  std::string line;
  while (!draining() && std::getline(in, line)) {
    strip_cr(line);
    if (line.empty()) {
      continue;
    }
    if (line.size() > options_.limits.max_line_bytes) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      write_error(out, "line too long (" + std::to_string(line.size()) +
                           " bytes, max " +
                           std::to_string(options_.limits.max_line_bytes) +
                           ")");
      out.flush();
      continue;
    }
    const bool keep_going = handle_line(line, in, out);
    out.flush();
    if (!keep_going) {
      break;
    }
  }
}

bool synthesis_server::handle_line(const std::string& line, std::istream& in,
                                   std::ostream& out) {
  const auto tokens = tokenize(line);
  if (tokens.empty()) {  // whitespace-only line
    return true;
  }
  commands_.fetch_add(1, std::memory_order_relaxed);
  const std::string& verb = tokens.front();

  if (verb == "PING") {
    out << "OK pong\n";
    return true;
  }
  if (verb == "SYNTH") {
    handle_synth(tokens, out);
    return true;
  }
  if (verb == "BATCH") {
    return handle_batch(in, out);
  }
  if (verb == "STATS") {
    handle_stats(tokens, out);
    return true;
  }
  if (verb == "SAVE") {
    handle_save(tokens, out);
    return true;
  }
  if (verb == "LOAD") {
    handle_load(tokens, out);
    return true;
  }
  if (verb == "CANCEL") {
    // The protocol is synchronous per session, so CANCEL necessarily
    // arrives on a different connection than the synthesis it interrupts.
    // It cancels every in-flight job; the interrupted sessions reply
    // `ERR timeout` to their own clients within the engines' poll stride.
    cancels_.fetch_add(1, std::memory_order_relaxed);
    const auto n = synth_.cancel_inflight();
    out << "OK cancelled " << n << "\n";
    return true;
  }
  if (verb == "QUIT") {
    out << "OK bye\n";
    return false;
  }
  if (verb == "SHUTDOWN") {
    out << "OK shutting-down\n";
    shutdown_.store(true, std::memory_order_release);
    begin_drain();
    return false;
  }
  parse_errors_.fetch_add(1, std::memory_order_relaxed);
  write_error(out, "unknown command '" + verb + "'");
  return true;
}

void synthesis_server::handle_synth(const std::vector<std::string>& tokens,
                                    std::ostream& out) {
  service::batch_request request;
  try {
    auto args = parse_synth_args(
        {tokens.begin() + 1, tokens.end()}, options_.limits);
    request.function = std::move(args.function);
    request.engine = args.engine;
    request.timeout_seconds = effective_timeout(args.timeout_seconds);
  } catch (const protocol_error& e) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    write_error(out, e.what());
    return;
  }
  const auto batch = synth_.run(std::vector<service::batch_request>{request});
  const auto& result = batch.results.front();
  if (result.outcome == synth::status::timeout) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    write_error(out, "timeout");
    return;
  }
  write_result_block(out, "OK", result);
}

bool synthesis_server::handle_batch(std::istream& in, std::ostream& out) {
  // Consume the whole block before replying, so a parse error mid-block
  // cannot desynchronize the session (later body lines must never be
  // re-interpreted as commands).
  std::vector<service::batch_request> requests;
  std::string first_error;
  std::size_t body_lines = 0;
  std::string line;
  bool terminated = false;
  while (std::getline(in, line)) {
    strip_cr(line);
    if (line.empty()) {
      continue;
    }
    if (line == "END") {
      terminated = true;
      break;
    }
    ++body_lines;
    if (line.size() > options_.limits.max_line_bytes ||
        body_lines > options_.limits.max_batch_requests) {
      if (first_error.empty()) {
        first_error = body_lines > options_.limits.max_batch_requests
                          ? "batch exceeds " +
                                std::to_string(
                                    options_.limits.max_batch_requests) +
                                " requests"
                          : "batch line " + std::to_string(body_lines) +
                                " too long";
      }
      continue;  // keep consuming until END
    }
    if (!first_error.empty()) {
      continue;
    }
    try {
      auto args = parse_synth_args(tokenize(line), options_.limits);
      service::batch_request request;
      request.function = std::move(args.function);
      request.engine = args.engine;
      request.timeout_seconds = effective_timeout(args.timeout_seconds);
      requests.push_back(std::move(request));
    } catch (const protocol_error& e) {
      first_error =
          "batch line " + std::to_string(body_lines) + ": " + e.what();
    }
  }
  if (!terminated) {
    // Client went away mid-block; nothing sensible to reply to.
    return false;
  }
  if (!first_error.empty()) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    write_error(out, first_error);
    return true;
  }
  const auto batch = synth_.run(requests);
  out << "OK " << batch.results.size() << "\n";
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    if (batch.results[i].outcome == synth::status::timeout) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    write_result_block(out, "RESULT " + std::to_string(i),
                       batch.results[i]);
  }
  return true;
}

void synthesis_server::handle_stats(const std::vector<std::string>& tokens,
                                    std::ostream& out) {
  const std::string mode = tokens.size() > 1 ? tokens[1] : "TEXT";
  if (mode == "JSON") {
    out << "OK 1\n" << stats_json() << "\n";
    return;
  }
  if (mode != "TEXT") {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    write_error(out, "unknown STATS mode '" + mode + "' (want TEXT|JSON)");
    return;
  }
  const auto text = stats_text();
  const auto lines =
      static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n'));
  out << "OK " << lines << "\n" << text;
}

void synthesis_server::handle_save(const std::vector<std::string>& tokens,
                                   std::ostream& out) {
  if (tokens.size() != 2) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    write_error(out, "want SAVE <path>");
    return;
  }
  try {
    const auto written = synth_.persist_cache(tokens[1]);
    out << "OK saved " << written << "\n";
  } catch (const std::exception& e) {
    write_error(out, e.what());
  }
}

void synthesis_server::handle_load(const std::vector<std::string>& tokens,
                                   std::ostream& out) {
  if (tokens.size() != 2) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    write_error(out, "want LOAD <path>");
    return;
  }
  try {
    const auto report = synth_.warm_cache_verbose(tokens[1]);
    out << "OK loaded " << report.loaded << " skipped " << report.skipped()
        << "\n";
  } catch (const std::exception& e) {
    write_error(out, e.what());
  }
}

double synthesis_server::effective_timeout(
    const std::optional<double>& requested) const {
  double timeout = requested.value_or(options_.default_timeout_seconds);
  const double cap = options_.max_timeout_seconds;
  if (cap > 0.0 && (timeout == 0.0 || timeout > cap)) {
    timeout = cap;
  }
  return timeout;
}

server_counters synthesis_server::counters() const {
  server_counters c;
  c.sessions = sessions_.load(std::memory_order_relaxed);
  c.commands = commands_.load(std::memory_order_relaxed);
  c.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  c.timeouts = timeouts_.load(std::memory_order_relaxed);
  c.cancels = cancels_.load(std::memory_order_relaxed);
  return c;
}

std::string synthesis_server::stats_text() const {
  const auto c = counters();
  const auto cache = synth_.cache_stats();
  std::ostringstream os;
  os << "sessions          " << c.sessions << "\n"
     << "commands          " << c.commands << "\n"
     << "parse_errors      " << c.parse_errors << "\n"
     << "timeouts          " << c.timeouts << "\n"
     << "cancels           " << c.cancels << "\n"
     << "draining          " << (draining() ? 1 : 0) << "\n"
     << synth_.current_metrics().to_text()  //
     << "cache_lookup_hits " << cache.hits << "\n"
     << "cache_misses_sf   " << cache.misses << "\n"
     << "cache_inflight    " << cache.inflight_waits << "\n"
     << "cache_evictions   " << cache.evictions << "\n"
     << "cache_size        " << cache.size << "\n";
  return os.str();
}

std::string synthesis_server::stats_json() const {
  const auto c = counters();
  std::ostringstream os;
  os << "{\"server\":{\"sessions\":" << c.sessions
     << ",\"commands\":" << c.commands
     << ",\"parse_errors\":" << c.parse_errors
     << ",\"timeouts\":" << c.timeouts << ",\"cancels\":" << c.cancels
     << ",\"draining\":" << (draining() ? "true" : "false") << "}"
     << ",\"synthesis\":" << synth_.current_metrics().to_json()
     << ",\"cache\":" << cache_stats_json(synth_.cache_stats()) << "}";
  return os.str();
}

void synthesis_server::begin_drain() {
  draining_.store(true, std::memory_order_release);
}

}  // namespace stpes::server
