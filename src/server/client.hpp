/// \file client.hpp
/// \brief Minimal C++ client for the stpes-serve line protocol.
///
/// Header-only on purpose: external tools can vendor this one file (plus
/// the protocol grammar it shares with `service::chain_io`) instead of
/// linking the library.  `line_client` drives any iostream pair — the
/// integration tests run it over stringstream transcripts and in-process
/// pipes — and `unix_client` owns a connected socket for the real daemon.
///
/// Every call returns the parsed reply *and* records the raw reply bytes
/// (`last_raw()`), which is how the tests assert byte-identical answers
/// across concurrent clients.

#pragma once

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "chain/boolean_chain.hpp"
#include "core/exact_synthesis.hpp"
#include "server/fd_stream.hpp"
#include "service/chain_io.hpp"
#include "synth/spec.hpp"
#include "tt/truth_table.hpp"

namespace stpes::server {

class line_client {
public:
  line_client(std::istream& in, std::ostream& out) : in_(in), out_(out) {}

  struct synth_reply {
    bool ok = false;
    bool busy = false;  ///< the daemon shed this request (overload)
    std::string error;  ///< ERR reason when !ok ("timeout", parse message)
    synth::status outcome = synth::status::failure;
    unsigned gates = 0;
    double seconds = 0.0;
    /// Server-assigned id carried by the reply head (0 when absent);
    /// `CANCEL <id>` from another connection targets exactly this request.
    std::uint64_t request_id = 0;
    /// BUSY retry hint in milliseconds (only meaningful when `busy`).
    unsigned retry_after_ms = 0;
    std::vector<chain::boolean_chain> chains;
  };

  /// `SYNTH`; throws only on a broken transport, not on ERR replies.
  synth_reply synth(core::engine engine, const tt::truth_table& function,
                    std::optional<double> timeout_seconds = std::nullopt) {
    std::ostringstream req;
    req << "SYNTH " << core::to_string(engine) << " "
        << function.num_vars() << " " << function.to_hex();
    if (timeout_seconds.has_value()) {
      req << " " << *timeout_seconds;
    }
    send(req.str());
    return read_result_reply("OK");
  }

  /// Multi-output `SYNTH`: one chain realizing every listed function over
  /// the same inputs, in order (a comma-separated hex list on the wire).
  /// The reply's chains are `mchain` lines; `simulate_output(k)` of any of
  /// them realizes `functions[k]`.
  synth_reply synth(core::engine engine,
                    const std::vector<tt::truth_table>& functions,
                    std::optional<double> timeout_seconds = std::nullopt) {
    if (functions.empty()) {
      throw std::invalid_argument{"line_client::synth: empty function list"};
    }
    std::ostringstream req;
    req << "SYNTH " << core::to_string(engine) << " "
        << functions.front().num_vars() << " ";
    for (std::size_t k = 0; k < functions.size(); ++k) {
      req << (k == 0 ? "" : ",") << functions[k].to_hex();
    }
    if (timeout_seconds.has_value()) {
      req << " " << *timeout_seconds;
    }
    send(req.str());
    return read_result_reply("OK");
  }

  /// Sends an already-serialized `SYNTH ...` request line verbatim and
  /// parses the reply.  The forwarding primitive of the routing tier: the
  /// router re-frames client requests without re-deriving them.
  synth_reply forward_synth(const std::string& request_line) {
    send(request_line);
    return read_result_reply("OK");
  }

  /// `BATCH ... END`; one reply per request, in request order.
  std::vector<synth_reply> batch(
      const std::vector<std::pair<core::engine, tt::truth_table>>&
          requests) {
    std::ostringstream req;
    req << "BATCH\n";
    for (const auto& [engine, function] : requests) {
      req << core::to_string(engine) << " " << function.num_vars() << " "
          << function.to_hex() << "\n";
    }
    req << "END";
    send(req.str());
    const auto head = read_line();
    std::vector<synth_reply> replies;
    if (head.rfind("ERR ", 0) == 0) {
      synth_reply r;
      r.error = head.substr(4);
      replies.assign(requests.size(), r);
      return replies;
    }
    if (head.rfind("BUSY ", 0) == 0) {
      replies.assign(requests.size(), parse_busy(head));
      return replies;
    }
    std::istringstream is{require_ok(head, "OK ")};
    std::size_t count = 0;
    is >> count;
    const auto id = parse_trailing_id(is);
    replies.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      auto r = parse_result_block(read_line(), "RESULT");
      r.request_id = id;
      replies.push_back(std::move(r));
    }
    return replies;
  }

  /// `STATS JSON`: the one-line JSON document.
  std::string stats_json() {
    send("STATS JSON");
    require_ok(read_line(), "OK ");
    return read_line();
  }

  /// `STATS` (text): the counter lines.
  std::vector<std::string> stats_text() {
    send("STATS");
    const auto count = std::stoul(require_ok(read_line(), "OK "));
    std::vector<std::string> lines;
    lines.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      lines.push_back(read_line());
    }
    return lines;
  }

  /// `SAVE <path>`: entries written.  Throws on ERR.
  std::size_t save(const std::string& path) {
    send("SAVE " + path);
    std::istringstream is{require_ok(read_line(), "OK saved ")};
    std::size_t written = 0;
    is >> written;
    return written;
  }

  /// `LOAD <path>`: {loaded, skipped}.  Throws on ERR.
  std::pair<std::size_t, std::size_t> load(const std::string& path) {
    send("LOAD " + path);
    std::istringstream is{require_ok(read_line(), "OK loaded ")};
    std::size_t loaded = 0;
    std::string skipped_kw;
    std::size_t skipped = 0;
    is >> loaded >> skipped_kw >> skipped;
    return {loaded, skipped};
  }

  struct sweep_reply {
    bool ok = false;
    bool busy = false;  ///< the daemon shed this request (overload)
    std::string error;  ///< ERR reason when !ok ("timeout", parse message)
    std::uint64_t ands_before = 0;
    std::uint64_t ands_after = 0;
    std::uint64_t merged = 0;
    std::uint64_t proofs = 0;
    std::uint64_t refutations = 0;
    std::uint64_t sim_rounds = 0;
    double seconds = 0.0;
    std::uint64_t request_id = 0;
    unsigned retry_after_ms = 0;  ///< BUSY retry hint (only when `busy`)
  };

  /// `SWEEP <path> [timeout_s] [prover]`; throws only on a broken
  /// transport, not on ERR replies.
  sweep_reply sweep(const std::string& path,
                    std::optional<double> timeout_seconds = std::nullopt,
                    const std::string& prover = "") {
    std::ostringstream req;
    req << "SWEEP " << path;
    if (timeout_seconds.has_value() || !prover.empty()) {
      req << " " << timeout_seconds.value_or(0.0);
    }
    if (!prover.empty()) {
      req << " " << prover;
    }
    send(req.str());
    const auto head = read_line();
    sweep_reply r;
    if (head.rfind("ERR ", 0) == 0) {
      r.error = head.substr(4);
      return r;
    }
    if (head.rfind("BUSY ", 0) == 0) {
      const auto busy = parse_busy(head);
      r.busy = true;
      r.error = busy.error;
      r.retry_after_ms = busy.retry_after_ms;
      return r;
    }
    std::istringstream is{require_ok(head, "OK swept ")};
    if (!(is >> r.ands_before >> r.ands_after >> r.merged >> r.proofs >>
          r.refutations >> r.sim_rounds >> r.seconds)) {
      throw std::runtime_error{"malformed sweep reply: " + head};
    }
    r.request_id = parse_trailing_id(is);
    r.ok = true;
    return r;
  }

  /// `CANCEL` / `CANCEL <id>`: cooperatively cancels every in-flight
  /// synthesis on the daemon, or only the request tagged `id`; returns the
  /// number of jobs signalled.  Issue it from a *separate* connection —
  /// the protocol is synchronous per session.
  std::size_t cancel(std::optional<std::uint64_t> id = std::nullopt) {
    send(id.has_value() ? "CANCEL " + std::to_string(*id) : "CANCEL");
    std::istringstream is{require_ok(read_line(), "OK cancelled ")};
    std::size_t n = 0;
    is >> n;
    return n;
  }

  /// `RELOAD <path>`: hot cache swap; {loaded, skipped, cleared}.
  /// Throws on ERR.
  struct reload_reply {
    std::size_t loaded = 0;
    std::size_t skipped = 0;
    std::size_t cleared = 0;
  };
  reload_reply reload(const std::string& path) {
    send("RELOAD " + path);
    std::istringstream is{require_ok(read_line(), "OK reloaded ")};
    reload_reply r;
    std::string kw;
    is >> r.loaded >> kw >> r.skipped >> kw >> r.cleared;
    return r;
  }

  /// `FAILPOINT SET <name> <spec>`: arms a fault-injection point on the
  /// daemon (chaos builds only).  Throws on ERR.
  void failpoint_set(const std::string& name, const std::string& spec) {
    send("FAILPOINT SET " + name + " " + spec);
    require_ok(read_line(), "OK failpoint ");
  }

  /// `FAILPOINT CLEAR [name]`.  Throws on ERR.
  void failpoint_clear(const std::string& name = "") {
    send(name.empty() ? "FAILPOINT CLEAR" : "FAILPOINT CLEAR " + name);
    require_ok(read_line(), "OK failpoints ");
  }

  bool ping() {
    send("PING");
    return read_line() == "OK pong";
  }

  void quit() {
    send("QUIT");
    read_line();
  }

  void shutdown() {
    send("SHUTDOWN");
    read_line();
  }

  /// Raw bytes of the last complete reply (head line + payload lines).
  [[nodiscard]] const std::string& last_raw() const { return last_raw_; }

private:
  void send(const std::string& request) {
    last_raw_.clear();
    out_ << request << "\n";
    out_.flush();
    if (!out_) {
      throw std::runtime_error{"line_client: transport write failed"};
    }
  }

  std::string read_line() {
    std::string line;
    if (!std::getline(in_, line)) {
      throw std::runtime_error{"line_client: connection closed"};
    }
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    last_raw_ += line;
    last_raw_ += '\n';
    return line;
  }

  /// Strips `prefix` from an OK head line; throws on ERR / junk.
  std::string require_ok(const std::string& line,
                         const std::string& prefix) {
    if (line.rfind("ERR ", 0) == 0) {
      throw std::runtime_error{"server error: " + line.substr(4)};
    }
    if (line.rfind(prefix, 0) != 0) {
      throw std::runtime_error{"unexpected reply: " + line};
    }
    return line.substr(prefix.size());
  }

  synth_reply read_result_reply(const std::string& head_keyword) {
    const auto head = read_line();
    if (head.rfind("ERR ", 0) == 0) {
      synth_reply r;
      r.error = head.substr(4);
      return r;
    }
    if (head.rfind("BUSY ", 0) == 0) {
      return parse_busy(head);
    }
    return parse_result_block(head, head_keyword);
  }

  /// Parses `BUSY retry-after <ms>` into a shed reply.  A missing or
  /// garbled ms field leaves the hint at 0 (callers fall back to their
  /// own backoff schedule) — a daemon bug must not take the client down.
  static synth_reply parse_busy(const std::string& head) {
    synth_reply r;
    r.busy = true;
    r.error = "busy";
    std::istringstream is{head};
    std::string kw;
    is >> kw >> kw;
    if (!(is >> r.retry_after_ms)) {
      r.retry_after_ms = 0;
    }
    return r;
  }

  /// Consumes a trailing ` id=<n>` token if present; 0 otherwise.
  static std::uint64_t parse_trailing_id(std::istringstream& is) {
    std::string tok;
    while (is >> tok) {
      if (tok.rfind("id=", 0) == 0) {
        try {
          return std::stoull(tok.substr(3));
        } catch (const std::exception&) {
          return 0;
        }
      }
    }
    return 0;
  }

  /// Parses `<kw> [index] <status> <gates> <num_chains> <seconds>` plus
  /// the chain lines that follow it.
  synth_reply parse_result_block(const std::string& head,
                                 const std::string& keyword) {
    std::istringstream is{head};
    std::string kw;
    is >> kw;
    if (kw != keyword) {
      throw std::runtime_error{"unexpected reply: " + head};
    }
    if (keyword == "RESULT") {
      std::size_t index = 0;
      is >> index;
    }
    std::string status;
    unsigned gates = 0;
    std::size_t num_chains = 0;
    double seconds = 0.0;
    if (!(is >> status >> gates >> num_chains >> seconds)) {
      throw std::runtime_error{"malformed result head: " + head};
    }
    synth_reply r;
    r.request_id = parse_trailing_id(is);
    r.ok = true;
    r.outcome = status == "success" ? synth::status::success
                : status == "timeout" ? synth::status::timeout
                                      : synth::status::failure;
    r.gates = gates;
    r.seconds = seconds;
    r.chains.reserve(num_chains);
    for (std::size_t i = 0; i < num_chains; ++i) {
      r.chains.push_back(service::parse_chain(read_line()));
    }
    return r;
  }

  std::istream& in_;
  std::ostream& out_;
  std::string last_raw_;
};

/// A `line_client` over a connected Unix-domain socket.
class unix_client {
public:
  explicit unix_client(const std::string& socket_path)
      : fd_(connect_or_throw(socket_path)),
        io_(fd_),
        client_(io_, io_) {}

  ~unix_client() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  unix_client(const unix_client&) = delete;
  unix_client& operator=(const unix_client&) = delete;

  [[nodiscard]] line_client& session() { return client_; }

private:
  static int connect_or_throw(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error{"socket path too long: " + path};
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw std::runtime_error{"socket: " + std::string{strerror(errno)}};
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      const std::string reason = strerror(errno);
      ::close(fd);
      throw std::runtime_error{"connect " + path + ": " + reason};
    }
    return fd;
  }

  int fd_;
  fd_iostream io_;
  line_client client_;
};

}  // namespace stpes::server
