/// \file truth_table.hpp
/// \brief Dynamic bit-vector truth tables for Boolean functions of up to 16
///        variables.
///
/// Bit `t` of a table holds `f(x)` for the input assignment where bit `i` of
/// the integer `t` is the value of variable `x_i` (variable 0 is the least
/// significant input).  This matches the convention of the `kitty` library
/// and of ABC, so hexadecimal strings printed here (`0x8ff8`, ...) are
/// directly comparable to the ones in the paper.
///
/// The class supports all Boolean connectives, cofactoring, support
/// computation, variable permutation/negation, and (de)serialization to hex
/// strings.  Functions of interest in this project have n <= 8 (<= 256 bits),
/// so all operations favour clarity over large-n tuning.

#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace stpes::tt {

/// Word storage with a small-buffer optimization: tables of up to 8
/// variables (4 words) live inline — the synthesis engines copy truth
/// tables in their innermost loops, and avoiding the heap there is a
/// measurable win.  Larger tables (9..16 variables) spill to the heap.
///
/// The inline buffer is 32-byte aligned so the SIMD kernel tiers can use
/// aligned 256-bit loads on it (heap spills keep the allocator's
/// alignment and go through unaligned loads).  The layout is packed to
/// exactly two 32-byte slots: the aligned word block, then the heap
/// vector, a 32-bit count, and one spare 32-bit `aux` word donated to the
/// owning class.  Without the donation any member the owner declares
/// after the storage would pad it to the next 32-byte boundary — a
/// measured ~15% synthesis slowdown from 96-byte truth tables.
class word_storage {
public:
  word_storage() = default;
  explicit word_storage(std::size_t count)
      : count_(static_cast<std::uint32_t>(count)) {
    if (count > kInline) {
      heap_.assign(count, 0);
    } else {
      inline_.fill(0);
    }
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::uint64_t* data() {
    return count_ > kInline ? heap_.data() : inline_.data();
  }
  [[nodiscard]] const std::uint64_t* data() const {
    return count_ > kInline ? heap_.data() : inline_.data();
  }
  std::uint64_t& operator[](std::size_t i) { return data()[i]; }
  const std::uint64_t& operator[](std::size_t i) const { return data()[i]; }
  [[nodiscard]] std::uint64_t* begin() { return data(); }
  [[nodiscard]] std::uint64_t* end() { return data() + count_; }
  [[nodiscard]] const std::uint64_t* begin() const { return data(); }
  [[nodiscard]] const std::uint64_t* end() const { return data() + count_; }

  /// The spare word in the alignment padding; owned by the containing
  /// class (truth_table keeps its variable count here), copied and moved
  /// with the storage, ignored by operator==.
  [[nodiscard]] std::uint32_t aux() const { return aux_; }
  void set_aux(std::uint32_t value) { aux_ = value; }

  bool operator==(const word_storage& other) const {
    return count_ == other.count_ &&
           std::memcmp(data(), other.data(), count_ * sizeof(std::uint64_t)) ==
               0;
  }

private:
  static constexpr std::size_t kInline = 4;
  alignas(32) std::array<std::uint64_t, kInline> inline_{};
  std::vector<std::uint64_t> heap_;
  std::uint32_t count_ = 0;
  std::uint32_t aux_ = 0;
};

static_assert(alignof(word_storage) >= 32,
              "inline truth-table words must be 32-byte aligned for the "
              "vector kernel tier");
static_assert(sizeof(word_storage) == 64,
              "word_storage must stay two 32-byte slots; padding here is "
              "copied in every truth-table move on the synthesis hot path");

/// A completely specified Boolean function of `num_vars()` inputs.
class truth_table {
public:
  /// Constant-false function of `num_vars` inputs (0 <= num_vars <= 16).
  explicit truth_table(unsigned num_vars = 0);

  /// Builds a table from the low `2^num_vars` bits of `bits` (num_vars <= 6).
  truth_table(unsigned num_vars, std::uint64_t bits);

  /// \name Basic observers
  /// @{
  [[nodiscard]] unsigned num_vars() const { return words_.aux(); }
  [[nodiscard]] std::uint64_t num_bits() const {
    return std::uint64_t{1} << words_.aux();
  }
  [[nodiscard]] bool get_bit(std::uint64_t index) const;
  void set_bit(std::uint64_t index, bool value);
  [[nodiscard]] std::uint64_t count_ones() const;
  [[nodiscard]] bool is_const0() const;
  [[nodiscard]] bool is_const1() const;
  /// Raw 64-bit words (little-endian in minterm order); internal layout.
  [[nodiscard]] const word_storage& words() const { return words_; }
  /// @}

  /// \name Factory functions
  /// @{
  /// The projection function `x_var` over `num_vars` inputs.
  static truth_table nth_var(unsigned num_vars, unsigned var,
                             bool complemented = false);
  /// Constant zero / one.
  static truth_table constant(unsigned num_vars, bool value);
  /// Parses a hex string such as "0x8ff8" (most significant minterm first).
  /// The string must contain exactly `2^num_vars / 4` hex digits for
  /// num_vars >= 2 (one digit encodes minterms for n = 2).
  static truth_table from_hex(unsigned num_vars, std::string_view hex);
  /// Parses a binary string of length 2^num_vars, most significant minterm
  /// (all-ones assignment) first.
  static truth_table from_binary(unsigned num_vars, std::string_view bits);
  /// Builds a table directly from `count` packed words (minterm order);
  /// `count` must equal `words().size()` for `num_vars`.  Excess bits are
  /// masked off.
  static truth_table from_words(unsigned num_vars, const std::uint64_t* words,
                                std::size_t count);
  /// @}

  /// \name Boolean connectives (operands must have equal num_vars)
  /// @{
  truth_table operator~() const;
  truth_table operator&(const truth_table& other) const;
  truth_table operator|(const truth_table& other) const;
  truth_table operator^(const truth_table& other) const;
  truth_table& operator&=(const truth_table& other);
  truth_table& operator|=(const truth_table& other);
  truth_table& operator^=(const truth_table& other);
  bool operator==(const truth_table& other) const;
  bool operator!=(const truth_table& other) const;
  /// Total order (by size, then lexicographic on words); used for
  /// canonical representatives and map keys.
  bool operator<(const truth_table& other) const;
  /// @}

  /// \name Structural operations
  /// @{
  /// Negative/positive cofactor with respect to variable `var`; the result
  /// keeps the same number of variables (the cofactored variable becomes
  /// irrelevant).
  [[nodiscard]] truth_table cofactor0(unsigned var) const;
  [[nodiscard]] truth_table cofactor1(unsigned var) const;
  /// True iff the function depends on variable `var`.
  [[nodiscard]] bool has_var(unsigned var) const;
  /// Bitmask of variables the function depends on.
  [[nodiscard]] std::uint32_t support_mask() const;
  /// Number of variables in the support.
  [[nodiscard]] unsigned support_size() const;
  /// Exchanges the roles of variables `a` and `b`.
  [[nodiscard]] truth_table swap_variables(unsigned a, unsigned b) const;
  /// Complements input variable `var` (i.e. f(..., ~x_var, ...)).
  [[nodiscard]] truth_table flip_variable(unsigned var) const;
  /// Applies an input permutation: new variable `i` plays the role of old
  /// variable `perm[i]`.  `perm` must be a permutation of [0, num_vars).
  [[nodiscard]] truth_table permute(const std::vector<unsigned>& perm) const;
  /// Re-expresses the function over `new_num_vars >= num_vars()` inputs
  /// (extra variables are irrelevant).
  [[nodiscard]] truth_table extend_to(unsigned new_num_vars) const;
  /// Removes irrelevant variables, compacting the support to the lowest
  /// indices while preserving their relative order.  `old_of_new`, when
  /// non-null, receives for each new variable the index of the original
  /// variable it represents.
  [[nodiscard]] truth_table shrink_to_support(
      std::vector<unsigned>* old_of_new = nullptr) const;
  /// Existential quantification of `var`: bit `t` of the result is
  /// `f(t[var:=0]) | f(t[var:=1])`, so the result no longer depends on
  /// `var` (the merged value is replicated along it).
  [[nodiscard]] truth_table smooth(unsigned var) const;
  /// Existential quantification over every variable in `var_mask` (bits
  /// at or above `num_vars()` are ignored).  The result is constant along
  /// the quantified variables — one word-parallel pass per variable.
  [[nodiscard]] truth_table smooth_over(std::uint32_t var_mask) const;
  /// @}

  /// \name Serialization
  /// @{
  [[nodiscard]] std::string to_hex() const;     ///< e.g. "0x8ff8"
  [[nodiscard]] std::string to_binary() const;  ///< MSB (all-ones row) first
  /// @}

  /// FNV-1a hash of the table contents (for unordered containers).
  [[nodiscard]] std::size_t hash() const;

private:
  void mask_excess_bits();
  void smooth_in_place(unsigned var);

  // The variable count lives in words_.aux(): keeping it outside the
  // storage would pad the 32-byte-aligned words to the next boundary,
  // growing every table copy by a third.
  word_storage words_;
};

/// Hash functor for unordered containers keyed by truth tables.
struct truth_table_hash {
  std::size_t operator()(const truth_table& tt) const { return tt.hash(); }
};

/// Applies a 2-input operator given by the low 4 bits of `op` to two
/// equal-arity operands: bit (b<<1|a) of `op` is the output for inputs
/// (a = first operand, b = second operand).
truth_table apply_binary_op(unsigned op, const truth_table& a,
                            const truth_table& b);

}  // namespace stpes::tt
