#include "tt/dsd.hpp"

#include <array>
#include <cassert>
#include <optional>
#include <vector>

namespace stpes::tt {

namespace {

/// Attempts to contract support variables (i, j) of `f` (which must be
/// shrunk to its support) into a single fresh variable.  On success returns
/// the contracted function, shrunk to its support again.
std::optional<truth_table> try_contract_pair(const truth_table& f, unsigned i,
                                             unsigned j) {
  const std::array<truth_table, 4> cof = {
      f.cofactor0(j).cofactor0(i), f.cofactor0(j).cofactor1(i),
      f.cofactor1(j).cofactor0(i), f.cofactor1(j).cofactor1(i)};
  // Collect distinct cofactors; more than two means (i, j) is not a block
  // (the "two unique quartering parts" test).
  int index_a = 0;
  int index_b = -1;
  for (int c = 1; c < 4; ++c) {
    if (cof[c] == cof[index_a]) {
      continue;
    }
    if (index_b < 0) {
      index_b = c;
    } else if (cof[c] != cof[index_b]) {
      return std::nullopt;
    }
  }
  if (index_b < 0) {
    // All four equal: f does not depend on i or j, impossible when f is
    // shrunk to its support.
    return std::nullopt;
  }

  // Substitute: z = 0 selects cofactor A, z = 1 selects cofactor B.  Build
  // g over the same variable space with x_i := z and x_j irrelevant, then
  // shrink.  g(t) = cof[B](t) if t_i else cof[A](t).
  truth_table g{f.num_vars()};
  for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
    const bool z = (t >> i) & 1;
    g.set_bit(t, z ? cof[static_cast<unsigned>(index_b)].get_bit(t)
                   : cof[static_cast<unsigned>(index_a)].get_bit(t));
  }
  return g.shrink_to_support();
}

/// Attempts to peel a single literal off the top of `f` (shrunk to
/// support): f = op(x_v, g) with op a 2-input operator.  This covers DSD
/// nodes whose second input is a larger block, which pair contraction
/// cannot see.  Returns the residual g, shrunk to its support.
std::optional<truth_table> try_peel_literal(const truth_table& f,
                                            unsigned v) {
  const truth_table f0 = f.cofactor0(v);
  const truth_table f1 = f.cofactor1(v);
  // f = x&g, x|g, !x&g, !x|g: one cofactor is constant.
  if (f0.is_const0() || f0.is_const1()) {
    return f1.shrink_to_support();
  }
  if (f1.is_const0() || f1.is_const1()) {
    return f0.shrink_to_support();
  }
  // f = x ^ g (or xnor): cofactors are complementary.
  if (f0 == ~f1) {
    return f0.shrink_to_support();
  }
  return std::nullopt;
}

}  // namespace

dsd_analysis analyze_dsd(const truth_table& function) {
  dsd_analysis result;
  truth_table f = function.shrink_to_support();
  result.original_support = f.num_vars();

  if (result.original_support == 0) {
    result.kind = dsd_kind::constant;
    result.residue = f;
    return result;
  }
  if (result.original_support == 1) {
    result.kind = dsd_kind::literal;
    result.residue = f;
    result.residue_support = 1;
    return result;
  }

  bool progressed = true;
  while (progressed && f.num_vars() > 2) {
    progressed = false;
    for (unsigned j = 1; j < f.num_vars() && !progressed; ++j) {
      for (unsigned i = 0; i < j && !progressed; ++i) {
        if (auto contracted = try_contract_pair(f, i, j)) {
          f = std::move(*contracted);
          ++result.contractions;
          progressed = true;
        }
      }
    }
    for (unsigned v = 0; v < f.num_vars() && !progressed; ++v) {
      if (auto peeled = try_peel_literal(f, v)) {
        f = std::move(*peeled);
        ++result.contractions;
        progressed = true;
      }
    }
  }

  result.residue = f;
  result.residue_support = f.num_vars();
  if (f.num_vars() <= 2) {
    // A residue of <= 2 variables is itself a 2-input block.
    result.kind = dsd_kind::full;
  } else if (result.contractions > 0) {
    result.kind = dsd_kind::partial;
  } else {
    result.kind = dsd_kind::none;
  }
  return result;
}

bool is_fully_dsd(const truth_table& function) {
  const auto analysis = analyze_dsd(function);
  return analysis.kind == dsd_kind::full ||
         analysis.kind == dsd_kind::literal ||
         analysis.kind == dsd_kind::constant;
}

bool is_prime(const truth_table& function) {
  return analyze_dsd(function).kind == dsd_kind::none;
}

const char* to_string(dsd_kind kind) {
  switch (kind) {
    case dsd_kind::constant:
      return "constant";
    case dsd_kind::literal:
      return "literal";
    case dsd_kind::full:
      return "full";
    case dsd_kind::partial:
      return "partial";
    case dsd_kind::none:
      return "none";
  }
  return "?";
}

}  // namespace stpes::tt
