/// \file isf.hpp
/// \brief Incompletely specified Boolean functions (on-set / care-set pairs).
///
/// The STP matrix-factorization step of the paper (Section III-B) produces
/// *partially constrained* requirements for the children of a DAG vertex:
/// the `x` entries that appear when the power-reducing matrix `M_r` is
/// factored out (Property 3/4) are don't-cares.  We model such requirements
/// as an `isf` — a function value for every minterm in the care set, and
/// freedom elsewhere — propagated top-down through candidate DAGs.

#pragma once

#include <cstdint>
#include <optional>

#include "tt/truth_table.hpp"

namespace stpes::tt {

/// An incompletely specified function over `num_vars()` inputs.
///
/// Invariant: `onset() & ~careset()` is empty (don't-care minterms carry a
/// zero in the on-set).
class isf {
public:
  /// Fully unconstrained function (empty care set).
  explicit isf(unsigned num_vars = 0);

  /// ISF with explicit on-set and care-set (onset is masked by careset).
  isf(truth_table onset, truth_table careset);

  /// Wraps a completely specified function.
  static isf from_function(const truth_table& function);

  [[nodiscard]] unsigned num_vars() const { return care_.num_vars(); }
  [[nodiscard]] const truth_table& onset() const { return on_; }
  [[nodiscard]] const truth_table& careset() const { return care_; }
  [[nodiscard]] truth_table offset() const { return ~on_ & care_; }

  [[nodiscard]] bool is_fully_specified() const { return care_.is_const1(); }
  /// True if every minterm is a don't-care.
  [[nodiscard]] bool is_unconstrained() const { return care_.is_const0(); }

  /// True iff the completely specified `candidate` agrees with this ISF on
  /// every care minterm.
  [[nodiscard]] bool accepts(const truth_table& candidate) const;

  /// The ISF describing the complemented requirement.
  [[nodiscard]] isf complement() const;

  /// Conjunction of two requirements over the same inputs; `nullopt` if they
  /// conflict (a minterm forced to 1 by one and to 0 by the other).  Used
  /// when a DAG vertex is reachable from several parents (reconvergence).
  [[nodiscard]] std::optional<isf> intersect(const isf& other) const;

  /// Restricts the requirement to functions that depend only on the
  /// variables in `var_mask`.  Minterms that agree on those variables are
  /// merged: if any is forced-1 the whole class becomes forced-1, etc.
  /// Returns `nullopt` when a class is forced both ways (no function of the
  /// cone can satisfy the requirement).
  [[nodiscard]] std::optional<isf> project_to_cone(
      std::uint32_t var_mask) const;

  /// A completely specified completion that depends only on `var_mask`
  /// (don't-care classes resolve to 0).  Precondition: `project_to_cone`
  /// succeeds for the same mask.
  [[nodiscard]] truth_table completion_in_cone(std::uint32_t var_mask) const;

  /// Number of care minterms.
  [[nodiscard]] std::uint64_t care_count() const { return care_.count_ones(); }

  /// Variables every completion must depend on: variable v is required iff
  /// two care minterms differing only in v carry different on-values.
  [[nodiscard]] std::uint32_t required_support_mask() const;

  bool operator==(const isf& other) const {
    return on_ == other.on_ && care_ == other.care_;
  }

  [[nodiscard]] std::size_t hash() const {
    return on_.hash() * 0x9E3779B97F4A7C15ull + care_.hash();
  }

private:
  truth_table on_;
  truth_table care_;
};

struct isf_hash {
  std::size_t operator()(const isf& f) const { return f.hash(); }
};

}  // namespace stpes::tt
