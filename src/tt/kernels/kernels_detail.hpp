/// \file kernels_detail.hpp
/// \brief Shared helpers for the kernel tier implementations.  Internal to
///        src/tt/kernels — not part of the public kernel API.

#pragma once

#include <cstdint>

#include "tt/kernels/kernels.hpp"

namespace stpes::tt::kernels {

/// Tier tables from the arch-flagged translation units; null when the
/// compiler did not build the tier (see tt/CMakeLists.txt).  Runtime CPU
/// support is checked separately by the dispatcher.
const kernel_ops* avx2_ops_or_null();
const kernel_ops* avx512_ops_or_null();

}  // namespace stpes::tt::kernels

namespace stpes::tt::kernels::detail {

/// Projection masks for variables 0..5 inside one 64-bit word (bit t is
/// set iff variable v is 1 in minterm t); mirrors truth_table.cpp.
inline constexpr std::uint64_t kProjection[6] = {
    0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
    0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull};

/// Reverses the bit order of one word: SWAR swaps up to nibble level, then
/// one byte swap.
inline std::uint64_t bit_reverse64(std::uint64_t x) {
  x = ((x & 0x5555555555555555ull) << 1) | ((x >> 1) & 0x5555555555555555ull);
  x = ((x & 0x3333333333333333ull) << 2) | ((x >> 2) & 0x3333333333333333ull);
  x = ((x & 0x0F0F0F0F0F0F0F0Full) << 4) | ((x >> 4) & 0x0F0F0F0F0F0F0F0Full);
  return __builtin_bswap64(x);
}

}  // namespace stpes::tt::kernels::detail
