/// \file kernels_avx512.cpp
/// \brief AVX-512 kernel tier (F/BW/VL/DQ).  Compiled with the matching
///        per-file arch flags; overrides the width-sensitive kernels with
///        512-bit versions and inherits the rest from the AVX2 tier (a CPU
///        reporting AVX-512 always has AVX2).

#include "tt/kernels/kernels.hpp"
#include "tt/kernels/kernels_detail.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__) && \
    defined(__AVX512DQ__) && (defined(__x86_64__) || defined(_M_X64))

#include <immintrin.h>

namespace stpes::tt::kernels {

namespace {

inline __m512i loadu(const std::uint64_t* p) {
  return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
}

inline void storeu(std::uint64_t* p, __m512i v) {
  _mm512_storeu_si512(reinterpret_cast<void*>(p), v);
}

void vec_and(std::uint64_t* dst, const std::uint64_t* a,
             const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    storeu(dst + i, _mm512_and_si512(loadu(a + i), loadu(b + i)));
  }
  for (; i < n; ++i) {
    dst[i] = a[i] & b[i];
  }
}

void vec_or(std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
            std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    storeu(dst + i, _mm512_or_si512(loadu(a + i), loadu(b + i)));
  }
  for (; i < n; ++i) {
    dst[i] = a[i] | b[i];
  }
}

void vec_xor(std::uint64_t* dst, const std::uint64_t* a,
             const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    storeu(dst + i, _mm512_xor_si512(loadu(a + i), loadu(b + i)));
  }
  for (; i < n; ++i) {
    dst[i] = a[i] ^ b[i];
  }
}

void vec_andnot(std::uint64_t* dst, const std::uint64_t* a,
                const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    storeu(dst + i, _mm512_andnot_si512(loadu(b + i), loadu(a + i)));
  }
  for (; i < n; ++i) {
    dst[i] = a[i] & ~b[i];
  }
}

bool any_and3(const std::uint64_t* a, const std::uint64_t* b,
              const std::uint64_t* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i ab = _mm512_and_si512(loadu(a + i), loadu(b + i));
    if (_mm512_test_epi64_mask(ab, loadu(c + i)) != 0) {
      return true;
    }
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i] & c[i]) != 0) {
      return true;
    }
  }
  return false;
}

bool accepts(const std::uint64_t* cand, const std::uint64_t* care,
             const std::uint64_t* on, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i masked = _mm512_and_si512(loadu(cand + i), loadu(care + i));
    if (_mm512_cmpneq_epi64_mask(masked, loadu(on + i)) != 0) {
      return false;
    }
  }
  for (; i < n; ++i) {
    if ((cand[i] & care[i]) != on[i]) {
      return false;
    }
  }
  return true;
}

bool isf_conflict(const std::uint64_t* a_on, const std::uint64_t* b_on,
                  const std::uint64_t* a_care, const std::uint64_t* b_care,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x =
        _mm512_and_si512(_mm512_xor_si512(loadu(a_on + i), loadu(b_on + i)),
                         loadu(a_care + i));
    if (_mm512_test_epi64_mask(x, loadu(b_care + i)) != 0) {
      return true;
    }
  }
  for (; i < n; ++i) {
    if (((a_on[i] ^ b_on[i]) & a_care[i] & b_care[i]) != 0) {
      return true;
    }
  }
  return false;
}

void smooth_var_w1_masked(std::uint64_t* lanes, const std::uint8_t* select,
                          std::size_t count, unsigned var) {
  const unsigned s = 1u << var;
  const std::uint64_t pv = detail::kProjection[var];
  const __m512i vpv = _mm512_set1_epi64(static_cast<long long>(pv));
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(s));
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m128i sel = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(select + i));  // 8 select bytes
    const __mmask8 mask = _mm_test_epi8_mask(sel, sel);
    const __m512i w = loadu(lanes + i);
    const __m512i merged =
        _mm512_or_si512(_mm512_andnot_si512(vpv, w),
                        _mm512_srl_epi64(_mm512_and_si512(vpv, w), shift));
    const __m512i smoothed =
        _mm512_or_si512(merged, _mm512_sll_epi64(merged, shift));
    storeu(lanes + i, _mm512_mask_mov_epi64(w, mask, smoothed));
  }
  for (; i < count; ++i) {
    if (select[i] != 0) {
      const std::uint64_t w = lanes[i];
      const std::uint64_t merged = (w & ~pv) | ((w & pv) >> s);
      lanes[i] = merged | (merged << s);
    }
  }
}

void and3_nonzero_w1(const std::uint64_t* a, const std::uint64_t* b,
                     const std::uint64_t* c, std::size_t count,
                     std::uint8_t* verdict) {
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m512i ab = _mm512_and_si512(loadu(a + i), loadu(b + i));
    const __mmask8 nz = _mm512_test_epi64_mask(ab, loadu(c + i));
    for (int k = 0; k < 8; ++k) {
      verdict[i + static_cast<std::size_t>(k)] =
          (static_cast<unsigned>(nz) >> k) & 1;
    }
  }
  for (; i < count; ++i) {
    verdict[i] = (a[i] & b[i] & c[i]) != 0 ? 1 : 0;
  }
}

}  // namespace

const kernel_ops* avx512_ops_or_null() {
  static const kernel_ops ops = [] {
    // Inherit the byte-shuffle kernels (reverse_table, cofactor_split,
    // vec_not_mask) from the widest lower tier the build provides.
    const kernel_ops* base = avx2_ops_or_null();
    kernel_ops o = base != nullptr ? *base : scalar_ops();
    o.tier = kernel_tier::avx512;
    o.vec_and = vec_and;
    o.vec_or = vec_or;
    o.vec_xor = vec_xor;
    o.vec_andnot = vec_andnot;
    o.any_and3 = any_and3;
    o.accepts = accepts;
    o.isf_conflict = isf_conflict;
    o.smooth_var_w1_masked = smooth_var_w1_masked;
    o.and3_nonzero_w1 = and3_nonzero_w1;
    return o;
  }();
  return &ops;
}

}  // namespace stpes::tt::kernels

#else  // no AVX-512 target support in this build

namespace stpes::tt::kernels {

const kernel_ops* avx512_ops_or_null() { return nullptr; }

}  // namespace stpes::tt::kernels

#endif
