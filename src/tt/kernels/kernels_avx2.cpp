/// \file kernels_avx2.cpp
/// \brief AVX2 kernel tier.  Compiled with -mavx2 (per-file flag); when the
///        compiler cannot target AVX2 this unit degrades to a null tier and
///        the dispatcher stays on scalar.  All loads/stores are unaligned —
///        inline `word_storage` buffers are 32-byte aligned, heap spills
///        are not.

#include "tt/kernels/kernels.hpp"
#include "tt/kernels/kernels_detail.hpp"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(_M_X64))

#include <immintrin.h>

#include <cstring>

namespace stpes::tt::kernels {

namespace {

inline __m256i loadu(const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void storeu(std::uint64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

void vec_and(std::uint64_t* dst, const std::uint64_t* a,
             const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    storeu(dst + i, _mm256_and_si256(loadu(a + i), loadu(b + i)));
  }
  for (; i < n; ++i) {
    dst[i] = a[i] & b[i];
  }
}

void vec_or(std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
            std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    storeu(dst + i, _mm256_or_si256(loadu(a + i), loadu(b + i)));
  }
  for (; i < n; ++i) {
    dst[i] = a[i] | b[i];
  }
}

void vec_xor(std::uint64_t* dst, const std::uint64_t* a,
             const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    storeu(dst + i, _mm256_xor_si256(loadu(a + i), loadu(b + i)));
  }
  for (; i < n; ++i) {
    dst[i] = a[i] ^ b[i];
  }
}

void vec_andnot(std::uint64_t* dst, const std::uint64_t* a,
                const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // andnot computes ~first & second.
    storeu(dst + i, _mm256_andnot_si256(loadu(b + i), loadu(a + i)));
  }
  for (; i < n; ++i) {
    dst[i] = a[i] & ~b[i];
  }
}

void vec_not_mask(std::uint64_t* dst, const std::uint64_t* a, std::size_t n,
                  std::uint64_t last_word_mask) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  std::size_t i = 0;
  for (; i + 4 <= n - 1; i += 4) {
    storeu(dst + i, _mm256_xor_si256(loadu(a + i), ones));
  }
  for (; i + 1 < n; ++i) {
    dst[i] = ~a[i];
  }
  dst[n - 1] = ~a[n - 1] & last_word_mask;
}

bool any_and3(const std::uint64_t* a, const std::uint64_t* b,
              const std::uint64_t* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x = _mm256_and_si256(
        _mm256_and_si256(loadu(a + i), loadu(b + i)), loadu(c + i));
    if (!_mm256_testz_si256(x, x)) {
      return true;
    }
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i] & c[i]) != 0) {
      return true;
    }
  }
  return false;
}

bool accepts(const std::uint64_t* cand, const std::uint64_t* care,
             const std::uint64_t* on, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i diff = _mm256_xor_si256(
        _mm256_and_si256(loadu(cand + i), loadu(care + i)), loadu(on + i));
    if (!_mm256_testz_si256(diff, diff)) {
      return false;
    }
  }
  for (; i < n; ++i) {
    if ((cand[i] & care[i]) != on[i]) {
      return false;
    }
  }
  return true;
}

bool isf_conflict(const std::uint64_t* a_on, const std::uint64_t* b_on,
                  const std::uint64_t* a_care, const std::uint64_t* b_care,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x = _mm256_and_si256(
        _mm256_and_si256(_mm256_xor_si256(loadu(a_on + i), loadu(b_on + i)),
                         loadu(a_care + i)),
        loadu(b_care + i));
    if (!_mm256_testz_si256(x, x)) {
      return true;
    }
  }
  for (; i < n; ++i) {
    if (((a_on[i] ^ b_on[i]) & a_care[i] & b_care[i]) != 0) {
      return true;
    }
  }
  return false;
}

void cofactor_split(const std::uint64_t* src, std::uint64_t* lo,
                    std::uint64_t* hi, std::size_t n, unsigned var) {
  const unsigned s = 1u << var;
  const std::uint64_t pv = detail::kProjection[var];
  const __m256i vpv = _mm256_set1_epi64x(static_cast<long long>(pv));
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(s));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i w = loadu(src + i);
    const __m256i l = _mm256_andnot_si256(vpv, w);
    const __m256i h = _mm256_and_si256(vpv, w);
    storeu(lo + i, _mm256_or_si256(l, _mm256_sll_epi64(l, shift)));
    storeu(hi + i, _mm256_or_si256(h, _mm256_srl_epi64(h, shift)));
  }
  for (; i < n; ++i) {
    const std::uint64_t l = src[i] & ~pv;
    const std::uint64_t h = src[i] & pv;
    lo[i] = l | (l << s);
    hi[i] = h | (h >> s);
  }
}

void smooth_var_w1_masked(std::uint64_t* lanes, const std::uint8_t* select,
                          std::size_t count, unsigned var) {
  const unsigned s = 1u << var;
  const std::uint64_t pv = detail::kProjection[var];
  const __m256i vpv = _mm256_set1_epi64x(static_cast<long long>(pv));
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(s));
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    std::int32_t sel32 = 0;
    std::memcpy(&sel32, select + i, 4);
    const __m256i sel =
        _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(sel32));  // 4 bytes -> lanes
    const __m256i mask = _mm256_cmpgt_epi64(sel, zero);
    const __m256i w = loadu(lanes + i);
    const __m256i merged =
        _mm256_or_si256(_mm256_andnot_si256(vpv, w),
                        _mm256_srl_epi64(_mm256_and_si256(vpv, w), shift));
    const __m256i smoothed =
        _mm256_or_si256(merged, _mm256_sll_epi64(merged, shift));
    storeu(lanes + i, _mm256_blendv_epi8(w, smoothed, mask));
  }
  for (; i < count; ++i) {
    if (select[i] != 0) {
      const std::uint64_t w = lanes[i];
      const std::uint64_t merged = (w & ~pv) | ((w & pv) >> s);
      lanes[i] = merged | (merged << s);
    }
  }
}

void and3_nonzero_w1(const std::uint64_t* a, const std::uint64_t* b,
                     const std::uint64_t* c, std::size_t count,
                     std::uint8_t* verdict) {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i x = _mm256_and_si256(
        _mm256_and_si256(loadu(a + i), loadu(b + i)), loadu(c + i));
    // Sign bit per 64-bit lane of the equals-zero compare: set = lane zero.
    const int zeros =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(x, zero)));
    for (int k = 0; k < 4; ++k) {
      verdict[i + static_cast<std::size_t>(k)] =
          ((zeros >> k) & 1) != 0 ? 0 : 1;
    }
  }
  for (; i < count; ++i) {
    verdict[i] = (a[i] & b[i] & c[i]) != 0 ? 1 : 0;
  }
}

/// Reverses the bit order inside every byte (two nibble look-ups), then the
/// byte order inside every 64-bit lane: together a per-word bit reversal.
inline __m256i reverse_bits_per_word(__m256i v) {
  const __m256i nib_mask = _mm256_set1_epi8(0x0F);
  // lut_lo[n] = bitrev(n), lut_hi[n] = bitrev(n) << 4, per 128-bit lane.
  const __m256i lut_lo = _mm256_setr_epi8(
      0x0, 0x8, 0x4, 0xC, 0x2, 0xA, 0x6, 0xE, 0x1, 0x9, 0x5, 0xD, 0x3, 0xB,
      0x7, 0xF, 0x0, 0x8, 0x4, 0xC, 0x2, 0xA, 0x6, 0xE, 0x1, 0x9, 0x5, 0xD,
      0x3, 0xB, 0x7, 0xF);
  const __m256i lut_hi = _mm256_setr_epi8(
      0x00, static_cast<char>(0x80), 0x40, static_cast<char>(0xC0), 0x20,
      static_cast<char>(0xA0), 0x60, static_cast<char>(0xE0), 0x10,
      static_cast<char>(0x90), 0x50, static_cast<char>(0xD0), 0x30,
      static_cast<char>(0xB0), 0x70, static_cast<char>(0xF0), 0x00,
      static_cast<char>(0x80), 0x40, static_cast<char>(0xC0), 0x20,
      static_cast<char>(0xA0), 0x60, static_cast<char>(0xE0), 0x10,
      static_cast<char>(0x90), 0x50, static_cast<char>(0xD0), 0x30,
      static_cast<char>(0xB0), 0x70, static_cast<char>(0xF0));
  const __m256i lo = _mm256_and_si256(v, nib_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nib_mask);
  const __m256i rev_bytes = _mm256_or_si256(_mm256_shuffle_epi8(lut_hi, lo),
                                            _mm256_shuffle_epi8(lut_lo, hi));
  const __m256i bswap64 = _mm256_setr_epi8(
      7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2,
      1, 0, 15, 14, 13, 12, 11, 10, 9, 8);
  return _mm256_shuffle_epi8(rev_bytes, bswap64);
}

void reverse_table(std::uint64_t* dst, const std::uint64_t* src,
                   unsigned num_vars) {
  if (num_vars <= 6) {
    const std::uint64_t bits = std::uint64_t{1} << num_vars;
    const std::uint64_t r = detail::bit_reverse64(src[0]);
    dst[0] = bits == 64 ? r : r >> (64 - bits);
    return;
  }
  const std::size_t n = std::size_t{1} << (num_vars - 6);
  if (n < 4) {
    for (std::size_t w = 0; w < n; ++w) {
      dst[w] = detail::bit_reverse64(src[n - 1 - w]);
    }
    return;
  }
  for (std::size_t i = 0; i < n; i += 4) {
    const __m256i rev = reverse_bits_per_word(loadu(src + i));
    // Reverse the four 64-bit lanes, then store the block mirrored.
    storeu(dst + (n - 4 - i),
           _mm256_permute4x64_epi64(rev, _MM_SHUFFLE(0, 1, 2, 3)));
  }
}

}  // namespace

const kernel_ops* avx2_ops_or_null() {
  static const kernel_ops ops = {
      kernel_tier::avx2,   vec_and,        vec_or,
      vec_xor,             vec_andnot,     vec_not_mask,
      any_and3,            accepts,        isf_conflict,
      cofactor_split,      smooth_var_w1_masked,
      and3_nonzero_w1,     reverse_table,
  };
  return &ops;
}

}  // namespace stpes::tt::kernels

#else  // !__AVX2__

namespace stpes::tt::kernels {

const kernel_ops* avx2_ops_or_null() { return nullptr; }

}  // namespace stpes::tt::kernels

#endif
