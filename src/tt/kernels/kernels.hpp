/// \file kernels.hpp
/// \brief Vector-kernel tier for the hot truth-table / ISF / logic-matrix
///        word primitives: one scalar-uint64 reference implementation plus
///        AVX2 and AVX-512 variants behind a function-pointer table that is
///        selected once at startup via runtime CPUID dispatch.
///
/// Every kernel is a pure function over flat `uint64_t` word arrays, so all
/// tiers are bit-identical by construction — the dispatched tier may only
/// change *how fast* an answer is produced, never the answer.  The unit
/// suite cross-checks every available tier against the scalar reference on
/// randomized inputs, and the end-to-end bit-identity suite replays whole
/// synthesis runs under forced-scalar vs. dispatched kernels.
///
/// Two call surfaces:
///
///   * The `bulk_*` / `words_*` inline wrappers below: used by
///     `truth_table` / `isf` for single-table operations.  Tables of up to
///     `kSmallWords` words (<= 8 variables — the NPN4/FDSD regime) stay in
///     the inlined scalar loop, because an indirect call per 1-word AND
///     costs more than the AND; larger tables go through the dispatched
///     table where SIMD width actually pays.
///   * `active()` directly: used by the batched factorization screen
///     (`synth::factor_requirement_batch`), which lays many single-word
///     queries out struct-of-arrays so even the n <= 6 regime fills whole
///     vectors, and by `stp::logic_matrix` row expansion.
///
/// Dispatch order: `STPES_FORCE_SCALAR` (any non-empty value other than
/// "0") pins the scalar tier; `STPES_KERNEL_TIER=scalar|avx2|avx512`
/// selects a specific tier (clamped to what the build and the CPU
/// support); otherwise the best runtime-supported tier wins.

#pragma once

#include <cstddef>
#include <cstdint>

namespace stpes::tt::kernels {

/// Instruction-set tiers, ascending.  A tier is usable only when both the
/// compiler built its translation unit (see tt/CMakeLists.txt per-file
/// arch flags) and the CPU reports the feature at runtime.
enum class kernel_tier : int { scalar = 0, avx2 = 1, avx512 = 2 };

/// The dispatched kernel table.  All pointers are non-null.  `dst` may
/// alias either source operand; `n` is the word count.
struct kernel_ops {
  kernel_tier tier = kernel_tier::scalar;

  // Boolean connectives over word arrays.
  void (*vec_and)(std::uint64_t* dst, const std::uint64_t* a,
                  const std::uint64_t* b, std::size_t n);
  void (*vec_or)(std::uint64_t* dst, const std::uint64_t* a,
                 const std::uint64_t* b, std::size_t n);
  void (*vec_xor)(std::uint64_t* dst, const std::uint64_t* a,
                  const std::uint64_t* b, std::size_t n);
  /// dst = a & ~b.
  void (*vec_andnot)(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, std::size_t n);
  /// NOT + normalize: dst = ~a with `last_word_mask` applied to the final
  /// word (the excess bits of a table with fewer than 64 minterms).
  void (*vec_not_mask)(std::uint64_t* dst, const std::uint64_t* a,
                       std::size_t n, std::uint64_t last_word_mask);

  /// True iff (a & b & c) has any set bit — the AND-family infeasibility
  /// test `off & u_one & v_one != 0`.
  bool (*any_and3)(const std::uint64_t* a, const std::uint64_t* b,
                   const std::uint64_t* c, std::size_t n);
  /// ISF cover check: true iff (cand & care) == on for every word.
  bool (*accepts)(const std::uint64_t* cand, const std::uint64_t* care,
                  const std::uint64_t* on, std::size_t n);
  /// ISF containment conflict: true iff some minterm is in both care sets
  /// with opposite polarity, ((a_on ^ b_on) & a_care & b_care) != 0.
  bool (*isf_conflict)(const std::uint64_t* a_on, const std::uint64_t* b_on,
                       const std::uint64_t* a_care,
                       const std::uint64_t* b_care, std::size_t n);

  /// Cofactor split with respect to an in-word variable (`var` < 6): one
  /// pass producing both cofactors, each replicated along `var` exactly as
  /// `truth_table::cofactor0/1` produce them.  Variables >= 6 are whole
  /// word moves and stay with the caller.
  void (*cofactor_split)(const std::uint64_t* src, std::uint64_t* lo,
                         std::uint64_t* hi, std::size_t n, unsigned var);

  /// Struct-of-arrays batch over single-word tables (num_vars <= 6):
  /// existentially quantifies `var` (< 6) in every lane whose `select`
  /// byte is non-zero, leaving the other lanes untouched.  Matches
  /// `truth_table::smooth` bit for bit.
  void (*smooth_var_w1_masked)(std::uint64_t* lanes,
                               const std::uint8_t* select, std::size_t count,
                               unsigned var);
  /// Batched verdicts: verdict[i] = (a[i] & b[i] & c[i]) != 0 ? 1 : 0.
  void (*and3_nonzero_w1)(const std::uint64_t* a, const std::uint64_t* b,
                          const std::uint64_t* c, std::size_t count,
                          std::uint8_t* verdict);

  /// STP semi-tensor row expansion: the logic-matrix column order is the
  /// complemented minterm order, so converting between a truth table and
  /// its canonical matrix form is a full bit-order reversal of the
  /// 2^num_vars-bit table.  dst must not alias src.
  void (*reverse_table)(std::uint64_t* dst, const std::uint64_t* src,
                        unsigned num_vars);
};

/// The scalar reference tier; always available.
const kernel_ops& scalar_ops();

/// True when `t` was both compiled in and is supported by this CPU.
bool tier_available(kernel_tier t);

/// The table for `t`, falling back to scalar when `t` is unavailable.
const kernel_ops& ops_for(kernel_tier t);

/// Best available tier after applying the environment overrides
/// (`STPES_FORCE_SCALAR`, `STPES_KERNEL_TIER`).
kernel_tier detect_best_tier();

/// Pure parser behind `STPES_KERNEL_TIER` (exposed for tests): accepts
/// "scalar" / "avx2" / "avx512"; anything else (including null) returns
/// `fallback`.
kernel_tier parse_tier(const char* value, kernel_tier fallback);

/// The active table: selected once on first use, cached for the process.
const kernel_ops& active();
kernel_tier active_tier();
const char* tier_name(kernel_tier t);

/// Test hook: replaces the active table with `t` (clamped to available
/// tiers) and returns the previously active tier.  The bit-identity suite
/// uses this to replay one synthesis in-process under several tiers;
/// production code must not call it.
kernel_tier force_tier(kernel_tier t);

/// Word-count at or below which the inlined scalar loop beats an indirect
/// dispatched call.  4 words = 8 variables, covering every function the
/// synthesis engines enumerate today; the dispatched tier serves larger
/// tables and the struct-of-arrays batch screens.
inline constexpr std::size_t kSmallWords = 4;

inline void bulk_and(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, std::size_t n) {
  if (n <= kSmallWords) {
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] = a[i] & b[i];
    }
    return;
  }
  active().vec_and(dst, a, b, n);
}

inline void bulk_or(std::uint64_t* dst, const std::uint64_t* a,
                    const std::uint64_t* b, std::size_t n) {
  if (n <= kSmallWords) {
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] = a[i] | b[i];
    }
    return;
  }
  active().vec_or(dst, a, b, n);
}

inline void bulk_xor(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, std::size_t n) {
  if (n <= kSmallWords) {
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] = a[i] ^ b[i];
    }
    return;
  }
  active().vec_xor(dst, a, b, n);
}

inline void bulk_not_mask(std::uint64_t* dst, const std::uint64_t* a,
                          std::size_t n, std::uint64_t last_word_mask) {
  if (n <= kSmallWords) {
    for (std::size_t i = 0; i + 1 < n; ++i) {
      dst[i] = ~a[i];
    }
    dst[n - 1] = ~a[n - 1] & last_word_mask;
    return;
  }
  active().vec_not_mask(dst, a, n, last_word_mask);
}

inline bool words_accept(const std::uint64_t* cand, const std::uint64_t* care,
                         const std::uint64_t* on, std::size_t n) {
  if (n <= kSmallWords) {
    for (std::size_t i = 0; i < n; ++i) {
      if ((cand[i] & care[i]) != on[i]) {
        return false;
      }
    }
    return true;
  }
  return active().accepts(cand, care, on, n);
}

inline bool words_conflict(const std::uint64_t* a_on,
                           const std::uint64_t* b_on,
                           const std::uint64_t* a_care,
                           const std::uint64_t* b_care, std::size_t n) {
  if (n <= kSmallWords) {
    for (std::size_t i = 0; i < n; ++i) {
      if (((a_on[i] ^ b_on[i]) & a_care[i] & b_care[i]) != 0) {
        return true;
      }
    }
    return false;
  }
  return active().isf_conflict(a_on, b_on, a_care, b_care, n);
}

inline bool words_any_and3(const std::uint64_t* a, const std::uint64_t* b,
                           const std::uint64_t* c, std::size_t n) {
  if (n <= kSmallWords) {
    for (std::size_t i = 0; i < n; ++i) {
      if ((a[i] & b[i] & c[i]) != 0) {
        return true;
      }
    }
    return false;
  }
  return active().any_and3(a, b, c, n);
}

}  // namespace stpes::tt::kernels
