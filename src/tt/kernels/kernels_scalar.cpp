/// \file kernels_scalar.cpp
/// \brief The scalar-uint64 reference tier.  Every other tier must match
///        these functions bit for bit on every input; the kernel unit suite
///        enforces that by cross-checking randomized buffers.

#include "tt/kernels/kernels.hpp"
#include "tt/kernels/kernels_detail.hpp"

namespace stpes::tt::kernels {

namespace {

void vec_and(std::uint64_t* dst, const std::uint64_t* a,
             const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = a[i] & b[i];
  }
}

void vec_or(std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = a[i] | b[i];
  }
}

void vec_xor(std::uint64_t* dst, const std::uint64_t* a,
             const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = a[i] ^ b[i];
  }
}

void vec_andnot(std::uint64_t* dst, const std::uint64_t* a,
                const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = a[i] & ~b[i];
  }
}

void vec_not_mask(std::uint64_t* dst, const std::uint64_t* a, std::size_t n,
                  std::uint64_t last_word_mask) {
  for (std::size_t i = 0; i + 1 < n; ++i) {
    dst[i] = ~a[i];
  }
  dst[n - 1] = ~a[n - 1] & last_word_mask;
}

bool any_and3(const std::uint64_t* a, const std::uint64_t* b,
              const std::uint64_t* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i] & c[i]) != 0) {
      return true;
    }
  }
  return false;
}

bool accepts(const std::uint64_t* cand, const std::uint64_t* care,
             const std::uint64_t* on, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((cand[i] & care[i]) != on[i]) {
      return false;
    }
  }
  return true;
}

bool isf_conflict(const std::uint64_t* a_on, const std::uint64_t* b_on,
                  const std::uint64_t* a_care, const std::uint64_t* b_care,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (((a_on[i] ^ b_on[i]) & a_care[i] & b_care[i]) != 0) {
      return true;
    }
  }
  return false;
}

void cofactor_split(const std::uint64_t* src, std::uint64_t* lo,
                    std::uint64_t* hi, std::size_t n, unsigned var) {
  const unsigned s = 1u << var;
  const std::uint64_t pv = detail::kProjection[var];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t l = src[i] & ~pv;
    const std::uint64_t h = src[i] & pv;
    lo[i] = l | (l << s);
    hi[i] = h | (h >> s);
  }
}

void smooth_var_w1_masked(std::uint64_t* lanes, const std::uint8_t* select,
                          std::size_t count, unsigned var) {
  const unsigned s = 1u << var;
  const std::uint64_t pv = detail::kProjection[var];
  for (std::size_t i = 0; i < count; ++i) {
    if (select[i] != 0) {
      const std::uint64_t w = lanes[i];
      const std::uint64_t merged = (w & ~pv) | ((w & pv) >> s);
      lanes[i] = merged | (merged << s);
    }
  }
}

void and3_nonzero_w1(const std::uint64_t* a, const std::uint64_t* b,
                     const std::uint64_t* c, std::size_t count,
                     std::uint8_t* verdict) {
  for (std::size_t i = 0; i < count; ++i) {
    verdict[i] = (a[i] & b[i] & c[i]) != 0 ? 1 : 0;
  }
}

void reverse_table(std::uint64_t* dst, const std::uint64_t* src,
                   unsigned num_vars) {
  if (num_vars <= 6) {
    const std::uint64_t bits = std::uint64_t{1} << num_vars;
    const std::uint64_t r = detail::bit_reverse64(src[0]);
    dst[0] = bits == 64 ? r : r >> (64 - bits);
    return;
  }
  const std::size_t n = std::size_t{1} << (num_vars - 6);
  for (std::size_t w = 0; w < n; ++w) {
    dst[w] = detail::bit_reverse64(src[n - 1 - w]);
  }
}

}  // namespace

const kernel_ops& scalar_ops() {
  static const kernel_ops ops = {
      kernel_tier::scalar, vec_and,        vec_or,
      vec_xor,             vec_andnot,     vec_not_mask,
      any_and3,            accepts,        isf_conflict,
      cofactor_split,      smooth_var_w1_masked,
      and3_nonzero_w1,     reverse_table,
  };
  return ops;
}

}  // namespace stpes::tt::kernels
