/// \file kernels.cpp
/// \brief Runtime CPUID dispatch for the kernel tier: picks the widest
///        tier that both the build and the CPU support, honouring the
///        `STPES_FORCE_SCALAR` / `STPES_KERNEL_TIER` overrides, once per
///        process.

#include "tt/kernels/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "tt/kernels/kernels_detail.hpp"

namespace stpes::tt::kernels {

namespace {

bool cpu_has_avx2() {
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0;
#else
  return false;
#endif
}

std::atomic<const kernel_ops*> g_active{nullptr};

}  // namespace

bool tier_available(kernel_tier t) {
  switch (t) {
    case kernel_tier::scalar:
      return true;
    case kernel_tier::avx2:
      return avx2_ops_or_null() != nullptr && cpu_has_avx2();
    case kernel_tier::avx512:
      return avx512_ops_or_null() != nullptr && cpu_has_avx512();
  }
  return false;
}

const kernel_ops& ops_for(kernel_tier t) {
  if (t == kernel_tier::avx512 && tier_available(kernel_tier::avx512)) {
    return *avx512_ops_or_null();
  }
  if (t == kernel_tier::avx2 && tier_available(kernel_tier::avx2)) {
    return *avx2_ops_or_null();
  }
  return scalar_ops();
}

kernel_tier parse_tier(const char* value, kernel_tier fallback) {
  if (value == nullptr) {
    return fallback;
  }
  if (std::strcmp(value, "scalar") == 0) {
    return kernel_tier::scalar;
  }
  if (std::strcmp(value, "avx2") == 0) {
    return kernel_tier::avx2;
  }
  if (std::strcmp(value, "avx512") == 0) {
    return kernel_tier::avx512;
  }
  return fallback;
}

kernel_tier detect_best_tier() {
  const char* force_scalar = std::getenv("STPES_FORCE_SCALAR");
  if (force_scalar != nullptr && force_scalar[0] != '\0' &&
      std::strcmp(force_scalar, "0") != 0) {
    return kernel_tier::scalar;
  }
  kernel_tier best = kernel_tier::scalar;
  if (tier_available(kernel_tier::avx2)) {
    best = kernel_tier::avx2;
  }
  if (tier_available(kernel_tier::avx512)) {
    best = kernel_tier::avx512;
  }
  const kernel_tier requested =
      parse_tier(std::getenv("STPES_KERNEL_TIER"), best);
  return tier_available(requested) ? requested : best;
}

const kernel_ops& active() {
  const kernel_ops* p = g_active.load(std::memory_order_acquire);
  if (p == nullptr) {
    // First use: selection is deterministic, so a racing duplicate store
    // writes the same pointer.
    p = &ops_for(detect_best_tier());
    g_active.store(p, std::memory_order_release);
  }
  return *p;
}

kernel_tier active_tier() { return active().tier; }

const char* tier_name(kernel_tier t) {
  switch (t) {
    case kernel_tier::scalar:
      return "scalar";
    case kernel_tier::avx2:
      return "avx2";
    case kernel_tier::avx512:
      return "avx512";
  }
  return "unknown";
}

kernel_tier force_tier(kernel_tier t) {
  const kernel_tier previous = active_tier();
  g_active.store(&ops_for(t), std::memory_order_release);
  return previous;
}

}  // namespace stpes::tt::kernels
