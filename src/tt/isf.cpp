#include "tt/isf.hpp"

#include <cassert>

#include "tt/kernels/kernels.hpp"

namespace stpes::tt {

isf::isf(unsigned num_vars)
    : on_(truth_table::constant(num_vars, false)),
      care_(truth_table::constant(num_vars, false)) {}

isf::isf(truth_table onset, truth_table careset)
    : on_(onset & careset), care_(std::move(careset)) {
  assert(on_.num_vars() == care_.num_vars());
}

isf isf::from_function(const truth_table& function) {
  return isf{function, truth_table::constant(function.num_vars(), true)};
}

bool isf::accepts(const truth_table& candidate) const {
  // Word-at-a-time cover check; no temporary tables.
  const auto& care = care_.words();
  return kernels::words_accept(candidate.words().data(), care.data(),
                               on_.words().data(), care.size());
}

isf isf::complement() const { return isf{~on_ & care_, care_}; }

std::optional<isf> isf::intersect(const isf& other) const {
  assert(num_vars() == other.num_vars());
  // Conflict: a minterm in both care sets with opposite polarity.
  const auto& a_care = care_.words();
  if (kernels::words_conflict(on_.words().data(), other.on_.words().data(),
                              a_care.data(), other.care_.words().data(),
                              a_care.size())) {
    return std::nullopt;
  }
  return isf{on_ | other.on_, care_ | other.care_};
}

std::uint32_t isf::required_support_mask() const {
  std::uint32_t mask = 0;
  for (unsigned v = 0; v < num_vars(); ++v) {
    const auto on0 = on_.cofactor0(v);
    const auto on1 = on_.cofactor1(v);
    const auto care_both = care_.cofactor0(v) & care_.cofactor1(v);
    if (((on0 ^ on1) & care_both) !=
        truth_table::constant(num_vars(), false)) {
      mask |= 1u << v;
    }
  }
  return mask;
}

std::optional<isf> isf::project_to_cone(std::uint32_t var_mask) const {
  // Minterms agreeing on the cone variables form one class; smoothing over
  // the complement of the cone replicates "any care minterm of the class
  // is on / off" across the whole class in a few word passes.
  const std::uint32_t outside = ~var_mask;
  const truth_table forced1 = on_.smooth_over(outside);
  const truth_table forced0 = offset().smooth_over(outside);
  if (!(forced1 & forced0).is_const0()) {
    return std::nullopt;  // some class is forced both ways
  }
  return isf{forced1, forced1 | forced0};
}

truth_table isf::completion_in_cone(std::uint32_t var_mask) const {
  // Classes with at least one on care minterm become 1; don't-care classes
  // resolve to 0 — exactly the smoothed on-set.
  return on_.smooth_over(~var_mask);
}

}  // namespace stpes::tt
