#include "tt/isf.hpp"

#include <cassert>
#include <vector>

namespace stpes::tt {

isf::isf(unsigned num_vars)
    : on_(truth_table::constant(num_vars, false)),
      care_(truth_table::constant(num_vars, false)) {}

isf::isf(truth_table onset, truth_table careset)
    : on_(onset & careset), care_(std::move(careset)) {
  assert(on_.num_vars() == care_.num_vars());
}

isf isf::from_function(const truth_table& function) {
  return isf{function, truth_table::constant(function.num_vars(), true)};
}

bool isf::accepts(const truth_table& candidate) const {
  return (candidate & care_) == on_;
}

isf isf::complement() const { return isf{~on_ & care_, care_}; }

std::optional<isf> isf::intersect(const isf& other) const {
  assert(num_vars() == other.num_vars());
  // Conflict: a minterm in both care sets with opposite polarity.
  const truth_table both_care = care_ & other.care_;
  if (((on_ ^ other.on_) & both_care) != truth_table::constant(num_vars(),
                                                               false)) {
    return std::nullopt;
  }
  return isf{on_ | other.on_, care_ | other.care_};
}

std::uint32_t isf::required_support_mask() const {
  std::uint32_t mask = 0;
  for (unsigned v = 0; v < num_vars(); ++v) {
    const auto on0 = on_.cofactor0(v);
    const auto on1 = on_.cofactor1(v);
    const auto care_both = care_.cofactor0(v) & care_.cofactor1(v);
    if (((on0 ^ on1) & care_both) !=
        truth_table::constant(num_vars(), false)) {
      mask |= 1u << v;
    }
  }
  return mask;
}

std::uint64_t isf::assignment_mask(std::uint32_t var_mask) const {
  std::uint64_t mask = 0;
  for (unsigned v = 0; v < num_vars(); ++v) {
    if ((var_mask >> v) & 1) {
      mask |= std::uint64_t{1} << v;
    }
  }
  return mask;
}

std::optional<isf> isf::project_to_cone(std::uint32_t var_mask) const {
  const std::uint64_t amask = assignment_mask(var_mask);
  const std::uint64_t bits = care_.num_bits();
  // Class value: 0 = unconstrained, 1 = forced one, 2 = forced zero.
  std::vector<std::uint8_t> cls(bits, 0);
  for (std::uint64_t t = 0; t < bits; ++t) {
    if (!care_.get_bit(t)) {
      continue;
    }
    const std::uint64_t key = t & amask;
    const std::uint8_t want = on_.get_bit(t) ? 1 : 2;
    if (cls[key] == 0) {
      cls[key] = want;
    } else if (cls[key] != want) {
      return std::nullopt;
    }
  }
  truth_table new_on{num_vars()};
  truth_table new_care{num_vars()};
  for (std::uint64_t t = 0; t < bits; ++t) {
    const std::uint8_t v = cls[t & amask];
    if (v != 0) {
      new_care.set_bit(t, true);
      if (v == 1) {
        new_on.set_bit(t, true);
      }
    }
  }
  return isf{new_on, new_care};
}

truth_table isf::completion_in_cone(std::uint32_t var_mask) const {
  const std::uint64_t amask = assignment_mask(var_mask);
  const std::uint64_t bits = care_.num_bits();
  std::vector<std::uint8_t> one(bits, 0);
  for (std::uint64_t t = 0; t < bits; ++t) {
    if (care_.get_bit(t) && on_.get_bit(t)) {
      one[t & amask] = 1;
    }
  }
  truth_table result{num_vars()};
  for (std::uint64_t t = 0; t < bits; ++t) {
    result.set_bit(t, one[t & amask] != 0);
  }
  return result;
}

}  // namespace stpes::tt
