#include "tt/truth_table.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "tt/kernels/kernels.hpp"

namespace stpes::tt {

namespace {

/// Projection masks for variables 0..5 inside one 64-bit word.
constexpr std::uint64_t kProjection[6] = {
    0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
    0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull};

std::size_t words_needed(unsigned num_vars) {
  return num_vars <= 6 ? 1 : (std::size_t{1} << (num_vars - 6));
}

int hex_digit_value(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

truth_table::truth_table(unsigned num_vars)
    : words_(words_needed(num_vars)) {
  if (num_vars > 16) {
    throw std::invalid_argument{"truth_table: more than 16 variables"};
  }
  words_.set_aux(num_vars);
}

truth_table::truth_table(unsigned num_vars, std::uint64_t bits)
    : truth_table(num_vars) {
  if (num_vars > 6) {
    throw std::invalid_argument{
        "truth_table: word constructor requires num_vars <= 6"};
  }
  words_[0] = bits;
  mask_excess_bits();
}

void truth_table::mask_excess_bits() {
  if (num_vars() < 6) {
    words_[0] &= (std::uint64_t{1} << num_bits()) - 1;
  }
}

bool truth_table::get_bit(std::uint64_t index) const {
  assert(index < num_bits());
  return ((words_[index >> 6] >> (index & 63)) & 1) != 0;
}

void truth_table::set_bit(std::uint64_t index, bool value) {
  assert(index < num_bits());
  const std::uint64_t mask = std::uint64_t{1} << (index & 63);
  if (value) {
    words_[index >> 6] |= mask;
  } else {
    words_[index >> 6] &= ~mask;
  }
}

std::uint64_t truth_table::count_ones() const {
  std::uint64_t total = 0;
  for (auto w : words_) {
    total += static_cast<std::uint64_t>(std::popcount(w));
  }
  return total;
}

bool truth_table::is_const0() const {
  return std::all_of(words_.begin(), words_.end(),
                     [](std::uint64_t w) { return w == 0; });
}

bool truth_table::is_const1() const { return count_ones() == num_bits(); }

truth_table truth_table::nth_var(unsigned num_vars, unsigned var,
                                 bool complemented) {
  assert(var < num_vars);
  truth_table result{num_vars};
  if (var < 6) {
    const std::uint64_t pattern =
        complemented ? ~kProjection[var] : kProjection[var];
    for (auto& w : result.words_) {
      w = pattern;
    }
  } else {
    // Variable >= 6 selects whole words: blocks of 2^(var-6) words alternate.
    const std::size_t block = std::size_t{1} << (var - 6);
    for (std::size_t w = 0; w < result.words_.size(); ++w) {
      const bool high = ((w / block) & 1) != 0;
      result.words_[w] = (high != complemented) ? ~std::uint64_t{0} : 0;
    }
  }
  result.mask_excess_bits();
  return result;
}

truth_table truth_table::constant(unsigned num_vars, bool value) {
  truth_table result{num_vars};
  if (value) {
    for (auto& w : result.words_) {
      w = ~std::uint64_t{0};
    }
    result.mask_excess_bits();
  }
  return result;
}

truth_table truth_table::from_hex(unsigned num_vars, std::string_view hex) {
  if (hex.substr(0, 2) == "0x" || hex.substr(0, 2) == "0X") {
    hex.remove_prefix(2);
  }
  truth_table result{num_vars};
  const std::uint64_t bits = result.num_bits();
  const std::size_t digits = bits >= 4 ? bits / 4 : 1;
  if (hex.size() != digits) {
    throw std::invalid_argument{"truth_table::from_hex: wrong digit count"};
  }
  // The first character encodes the most significant minterms.
  for (std::size_t d = 0; d < hex.size(); ++d) {
    const int value = hex_digit_value(hex[d]);
    if (value < 0) {
      throw std::invalid_argument{"truth_table::from_hex: bad hex digit"};
    }
    const std::size_t nibble = hex.size() - 1 - d;  // nibble index from LSB
    result.words_[nibble / 16] |= static_cast<std::uint64_t>(value)
                                  << (4 * (nibble % 16));
  }
  result.mask_excess_bits();
  return result;
}

truth_table truth_table::from_binary(unsigned num_vars,
                                     std::string_view bits) {
  truth_table result{num_vars};
  if (bits.size() != result.num_bits()) {
    throw std::invalid_argument{"truth_table::from_binary: wrong length"};
  }
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const char c = bits[bits.size() - 1 - i];
    if (c == '1') {
      result.set_bit(i, true);
    } else if (c != '0') {
      throw std::invalid_argument{"truth_table::from_binary: bad character"};
    }
  }
  return result;
}

truth_table truth_table::from_words(unsigned num_vars,
                                    const std::uint64_t* words,
                                    std::size_t count) {
  truth_table result{num_vars};
  assert(count == result.words_.size());
  std::memcpy(result.words_.data(), words, count * sizeof(std::uint64_t));
  result.mask_excess_bits();
  return result;
}

truth_table truth_table::operator~() const {
  truth_table result{*this};
  // NOT + normalize in one kernel pass: the last-word mask re-applies
  // mask_excess_bits for tables of fewer than 64 minterms.
  const std::uint64_t last_mask =
      num_vars() < 6 ? (std::uint64_t{1} << num_bits()) - 1 : ~std::uint64_t{0};
  kernels::bulk_not_mask(result.words_.data(), words_.data(), words_.size(),
                         last_mask);
  return result;
}

truth_table& truth_table::operator&=(const truth_table& other) {
  assert(num_vars() == other.num_vars());
  kernels::bulk_and(words_.data(), words_.data(), other.words_.data(),
                    words_.size());
  return *this;
}

truth_table& truth_table::operator|=(const truth_table& other) {
  assert(num_vars() == other.num_vars());
  kernels::bulk_or(words_.data(), words_.data(), other.words_.data(),
                   words_.size());
  return *this;
}

truth_table& truth_table::operator^=(const truth_table& other) {
  assert(num_vars() == other.num_vars());
  kernels::bulk_xor(words_.data(), words_.data(), other.words_.data(),
                    words_.size());
  return *this;
}

truth_table truth_table::operator&(const truth_table& other) const {
  truth_table result{*this};
  result &= other;
  return result;
}

truth_table truth_table::operator|(const truth_table& other) const {
  truth_table result{*this};
  result |= other;
  return result;
}

truth_table truth_table::operator^(const truth_table& other) const {
  truth_table result{*this};
  result ^= other;
  return result;
}

bool truth_table::operator==(const truth_table& other) const {
  return num_vars() == other.num_vars() && words_ == other.words_;
}

bool truth_table::operator!=(const truth_table& other) const {
  return !(*this == other);
}

bool truth_table::operator<(const truth_table& other) const {
  if (num_vars() != other.num_vars()) {
    return num_vars() < other.num_vars();
  }
  // Compare most significant words first for a natural numeric order.
  for (std::size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != other.words_[i]) {
      return words_[i] < other.words_[i];
    }
  }
  return false;
}

truth_table truth_table::cofactor0(unsigned var) const {
  assert(var < num_vars());
  truth_table result{*this};
  if (var < 6) {
    const unsigned shift = 1u << var;
    for (auto& w : result.words_) {
      const std::uint64_t lo = w & ~kProjection[var];
      w = lo | (lo << shift);
    }
  } else {
    const std::size_t block = std::size_t{1} << (var - 6);
    for (std::size_t w = 0; w < result.words_.size(); ++w) {
      if ((w / block) & 1) {
        result.words_[w] = result.words_[w - block];
      }
    }
  }
  return result;
}

truth_table truth_table::cofactor1(unsigned var) const {
  assert(var < num_vars());
  truth_table result{*this};
  if (var < 6) {
    const unsigned shift = 1u << var;
    for (auto& w : result.words_) {
      const std::uint64_t hi = w & kProjection[var];
      w = hi | (hi >> shift);
    }
  } else {
    const std::size_t block = std::size_t{1} << (var - 6);
    for (std::size_t w = 0; w < result.words_.size(); ++w) {
      if (((w / block) & 1) == 0) {
        result.words_[w] = result.words_[w + block];
      }
    }
  }
  return result;
}

bool truth_table::has_var(unsigned var) const {
  return cofactor0(var) != cofactor1(var);
}

std::uint32_t truth_table::support_mask() const {
  std::uint32_t mask = 0;
  for (unsigned v = 0; v < num_vars(); ++v) {
    if (has_var(v)) {
      mask |= 1u << v;
    }
  }
  return mask;
}

unsigned truth_table::support_size() const {
  return static_cast<unsigned>(std::popcount(support_mask()));
}

truth_table truth_table::swap_variables(unsigned a, unsigned b) const {
  assert(a < num_vars() && b < num_vars());
  if (a == b) {
    return *this;
  }
  if (a > b) {
    std::swap(a, b);
  }
  truth_table result{*this};
  if (b < 6) {
    // Delta-swap inside each word: a minterm with x_a=1, x_b=0 exchanges
    // with its partner `d` positions up (x_a=0, x_b=1).
    const unsigned d = (1u << b) - (1u << a);
    const std::uint64_t lower = kProjection[a] & ~kProjection[b];
    for (auto& w : result.words_) {
      const std::uint64_t t = ((w >> d) ^ w) & lower;
      w ^= t ^ (t << d);
    }
  } else if (a < 6) {
    // x_a lives inside a word, x_b selects word blocks of 2^(b-6) words:
    // exchange the x_a=1 half of each low-block word with the x_a=0 half
    // of its high-block partner.
    const std::size_t block = std::size_t{1} << (b - 6);
    const unsigned s = 1u << a;
    const std::uint64_t pa = kProjection[a];
    for (std::size_t w = 0; w < result.words_.size(); w += 2 * block) {
      for (std::size_t i = 0; i < block; ++i) {
        std::uint64_t& lo = result.words_[w + i];
        std::uint64_t& hi = result.words_[w + i + block];
        const std::uint64_t new_lo = (lo & ~pa) | ((hi & ~pa) << s);
        const std::uint64_t new_hi = (hi & pa) | ((lo & pa) >> s);
        lo = new_lo;
        hi = new_hi;
      }
    }
  } else {
    // Both variables select whole words: swap the (x_a=1, x_b=0) word with
    // its (x_a=0, x_b=1) partner.
    const std::size_t bit_a = std::size_t{1} << (a - 6);
    const std::size_t bit_b = std::size_t{1} << (b - 6);
    for (std::size_t w = 0; w < result.words_.size(); ++w) {
      if ((w & bit_a) != 0 && (w & bit_b) == 0) {
        std::swap(result.words_[w], result.words_[(w ^ bit_a) | bit_b]);
      }
    }
  }
  return result;
}

truth_table truth_table::flip_variable(unsigned var) const {
  assert(var < num_vars());
  truth_table result{*this};
  if (var < 6) {
    const unsigned s = 1u << var;
    const std::uint64_t pv = kProjection[var];
    for (auto& w : result.words_) {
      w = ((w & pv) >> s) | ((w & ~pv) << s);
    }
  } else {
    const std::size_t block = std::size_t{1} << (var - 6);
    for (std::size_t w = 0; w < result.words_.size(); w += 2 * block) {
      for (std::size_t i = 0; i < block; ++i) {
        std::swap(result.words_[w + i], result.words_[w + i + block]);
      }
    }
  }
  return result;
}

truth_table truth_table::permute(const std::vector<unsigned>& perm) const {
  assert(perm.size() == num_vars());
  // Decompose the permutation into at most n-1 transpositions, each one a
  // word-parallel swap: place original variable perm[i] at position i,
  // tracking where every variable currently sits.
  truth_table result{*this};
  std::vector<unsigned> where(num_vars());
  std::vector<unsigned> who(num_vars());
  for (unsigned v = 0; v < num_vars(); ++v) {
    where[v] = who[v] = v;
  }
  for (unsigned i = 0; i < num_vars(); ++i) {
    const unsigned v = perm[i];
    const unsigned j = where[v];
    if (j != i) {
      result = result.swap_variables(i, j);
      const unsigned displaced = who[i];
      who[i] = v;
      where[v] = i;
      who[j] = displaced;
      where[displaced] = j;
    }
  }
  return result;
}

truth_table truth_table::extend_to(unsigned new_num_vars) const {
  assert(new_num_vars >= num_vars());
  truth_table result{new_num_vars};
  if (num_vars() <= 6) {
    std::uint64_t pattern = words_[0];
    // Replicate the 2^n-bit pattern across a full word by doubling.
    for (std::uint64_t span = num_bits(); span < 64; span *= 2) {
      pattern |= pattern << span;
    }
    for (auto& w : result.words_) {
      w = pattern;
    }
  } else {
    // Word counts are powers of two, so replication is a wrapped copy.
    const std::size_t src_words = words_.size();
    for (std::size_t w = 0; w < result.words_.size(); ++w) {
      result.words_[w] = words_[w & (src_words - 1)];
    }
  }
  result.mask_excess_bits();
  return result;
}

truth_table truth_table::shrink_to_support(
    std::vector<unsigned>* old_of_new) const {
  std::vector<unsigned> support;
  for (unsigned v = 0; v < num_vars(); ++v) {
    if (has_var(v)) {
      support.push_back(v);
    }
  }
  const unsigned k = static_cast<unsigned>(support.size());
  // Compact the support down to positions [0, k) with word-parallel swaps
  // (tracking positions as in permute), then truncate: the remaining
  // variables are irrelevant, so the low 2^k bits are the shrunk function.
  truth_table compact{*this};
  std::vector<unsigned> where(num_vars());
  std::vector<unsigned> who(num_vars());
  for (unsigned v = 0; v < num_vars(); ++v) {
    where[v] = who[v] = v;
  }
  for (unsigned i = 0; i < k; ++i) {
    const unsigned v = support[i];
    const unsigned j = where[v];
    if (j != i) {
      compact = compact.swap_variables(i, j);
      const unsigned displaced = who[i];
      who[i] = v;
      where[v] = i;
      who[j] = displaced;
      where[displaced] = j;
    }
  }
  truth_table result{k};
  std::memcpy(result.words_.data(), compact.words_.data(),
              result.words_.size() * sizeof(std::uint64_t));
  result.mask_excess_bits();
  if (old_of_new != nullptr) {
    *old_of_new = std::move(support);
  }
  return result;
}

void truth_table::smooth_in_place(unsigned var) {
  assert(var < num_vars());
  if (var < 6) {
    const unsigned s = 1u << var;
    const std::uint64_t pv = kProjection[var];
    for (auto& w : words_) {
      const std::uint64_t merged = (w & ~pv) | ((w & pv) >> s);
      w = merged | (merged << s);
    }
  } else {
    const std::size_t block = std::size_t{1} << (var - 6);
    for (std::size_t w = 0; w < words_.size(); w += 2 * block) {
      for (std::size_t i = 0; i < block; ++i) {
        const std::uint64_t merged = words_[w + i] | words_[w + i + block];
        words_[w + i] = merged;
        words_[w + i + block] = merged;
      }
    }
  }
}

truth_table truth_table::smooth(unsigned var) const {
  truth_table result{*this};
  result.smooth_in_place(var);
  return result;
}

truth_table truth_table::smooth_over(std::uint32_t var_mask) const {
  truth_table result{*this};
  for (unsigned v = 0; v < num_vars(); ++v) {
    if ((var_mask >> v) & 1) {
      result.smooth_in_place(v);
    }
  }
  return result;
}

std::string truth_table::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  const std::uint64_t bits = num_bits();
  const std::size_t digits = bits >= 4 ? bits / 4 : 1;
  std::string out = "0x";
  for (std::size_t d = digits; d-- > 0;) {
    const std::uint64_t nibble = (words_[d / 16] >> (4 * (d % 16))) & 0xF;
    out += kDigits[nibble];
  }
  return out;
}

std::string truth_table::to_binary() const {
  std::string out;
  out.reserve(num_bits());
  for (std::uint64_t t = num_bits(); t-- > 0;) {
    out += get_bit(t) ? '1' : '0';
  }
  return out;
}

std::size_t truth_table::hash() const {
  std::size_t h = 0xcbf29ce484222325ull ^ num_vars();
  for (auto w : words_) {
    h ^= w;
    h *= 0x100000001b3ull;
  }
  return h;
}

truth_table apply_binary_op(unsigned op, const truth_table& a,
                            const truth_table& b) {
  assert(a.num_vars() == b.num_vars());
  truth_table result = truth_table::constant(a.num_vars(), false);
  const truth_table na = ~a;
  const truth_table nb = ~b;
  if (op & 0x1) {
    result |= na & nb;
  }
  if (op & 0x2) {
    result |= a & nb;
  }
  if (op & 0x4) {
    result |= na & b;
  }
  if (op & 0x8) {
    result |= a & b;
  }
  return result;
}

}  // namespace stpes::tt
