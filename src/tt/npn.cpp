#include "tt/npn.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace stpes::tt {

truth_table apply_npn_transform(const truth_table& function,
                                const npn_transform& transform) {
  truth_table result = function.permute(transform.perm);
  for (unsigned v = 0; v < function.num_vars(); ++v) {
    if ((transform.input_negation >> v) & 1) {
      result = result.flip_variable(v);
    }
  }
  if (transform.output_negation) {
    result = ~result;
  }
  return result;
}

std::vector<npn_transform> all_npn_transforms(unsigned num_vars) {
  std::vector<npn_transform> transforms;
  std::vector<unsigned> perm(num_vars);
  std::iota(perm.begin(), perm.end(), 0u);
  do {
    for (std::uint32_t neg = 0; neg < (1u << num_vars); ++neg) {
      transforms.push_back(npn_transform{perm, neg, false});
      transforms.push_back(npn_transform{perm, neg, true});
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return transforms;
}

npn_canonization exact_npn_canonize(const truth_table& function) {
  if (function.num_vars() > 5) {
    throw std::invalid_argument{
        "exact_npn_canonize: orbit enumeration limited to n <= 5"};
  }
  npn_canonization best{function, npn_transform{{}, 0, false}};
  best.transform.perm.resize(function.num_vars());
  std::iota(best.transform.perm.begin(), best.transform.perm.end(), 0u);
  bool first = true;
  for (const auto& t : all_npn_transforms(function.num_vars())) {
    truth_table candidate = apply_npn_transform(function, t);
    if (first || candidate < best.canonical) {
      best.canonical = std::move(candidate);
      best.transform = t;
      first = false;
    }
  }
  return best;
}

std::vector<truth_table> enumerate_npn_classes(unsigned num_vars) {
  if (num_vars > 4) {
    throw std::invalid_argument{
        "enumerate_npn_classes: exhaustive sweep limited to n <= 4"};
  }
  const std::uint64_t bits = std::uint64_t{1} << num_vars;
  const std::uint64_t total = std::uint64_t{1} << bits;
  const auto transforms = all_npn_transforms(num_vars);

  // Orbit sweep: walk all functions in increasing order; the first member of
  // each orbit encountered is numerically minimal, i.e. the canonical
  // representative.  Mark the whole orbit as seen.
  std::vector<bool> seen(total, false);
  std::vector<truth_table> classes;
  for (std::uint64_t value = 0; value < total; ++value) {
    if (seen[value]) {
      continue;
    }
    truth_table representative{num_vars, value};
    classes.push_back(representative);
    for (const auto& t : transforms) {
      const truth_table member = apply_npn_transform(representative, t);
      seen[member.words()[0]] = true;
    }
  }
  return classes;
}

}  // namespace stpes::tt
