/// \file npn.hpp
/// \brief Exact NPN (negation-permutation-negation) canonization and class
///        enumeration.
///
/// Two functions are NPN-equivalent if one can be obtained from the other by
/// permuting inputs, complementing inputs, and complementing the output
/// (Section III-A of the paper).  The paper uses NPN classification twice:
/// to reduce the set of valid DAG candidates and as the NPN4 benchmark
/// collection (all 222 classes of 4-input functions).
///
/// Canonization here is *exact* (the canonical form is the numerically
/// smallest table in the orbit) and intended for n <= 5; the complete orbit
/// is enumerated, which is the textbook algorithm and fast enough for the
/// sizes this project uses.

#pragma once

#include <cstdint>
#include <vector>

#include "tt/truth_table.hpp"

namespace stpes::tt {

/// One element of the NPN transformation group.
///
/// Application order: first permute (new variable `i` plays the role of old
/// variable `perm[i]`), then complement the new inputs selected by
/// `input_negation`, then complement the output if `output_negation`.
struct npn_transform {
  std::vector<unsigned> perm;
  std::uint32_t input_negation = 0;
  bool output_negation = false;
};

/// Applies `transform` to `function`.
truth_table apply_npn_transform(const truth_table& function,
                                const npn_transform& transform);

/// Result of exact canonization: the canonical representative and one
/// transform such that `apply_npn_transform(function, transform) ==
/// canonical`.
struct npn_canonization {
  truth_table canonical;
  npn_transform transform;
};

/// Exact NPN canonization by orbit enumeration (requires num_vars <= 5).
npn_canonization exact_npn_canonize(const truth_table& function);

/// Enumerates one canonical representative per NPN class of `num_vars`-input
/// functions, in increasing numeric order.  `num_vars <= 4` (the n = 4 case
/// yields the 222 NPN4 classes used in Table I).
std::vector<truth_table> enumerate_npn_classes(unsigned num_vars);

/// All `num_vars! * 2^(num_vars+1)` transforms of the NPN group.
std::vector<npn_transform> all_npn_transforms(unsigned num_vars);

}  // namespace stpes::tt
