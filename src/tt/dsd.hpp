/// \file dsd.hpp
/// \brief Disjoint-support decomposition (DSD) structure analysis.
///
/// The Table-I workloads are defined by their DSD structure: FDSD functions
/// are *fully* disjoint-support decomposable into 2-input blocks, PDSD
/// functions contain at least one prime (non-decomposable) block.  This
/// module classifies a function by greedily contracting 2-input disjoint
/// blocks:
///
///   * a pair of support variables (i, j) can be contracted into a fresh
///     variable z iff the four cofactors of f w.r.t. (i, j) take at most two
///     distinct values — exactly the paper's "two unique quartering parts"
///     condition read on a decomposition chart;
///   * contraction repeats until the support collapses to one variable
///     (fully DSD) or no pair is contractible (the residue is a prime
///     block).
///
/// For functions whose DSD tree uses only 2-input operators (which is what
/// exact synthesis over 2-LUTs cares about, and what our generators emit),
/// greedy contraction is a decision procedure: any contractible pair is part
/// of *some* DSD tree, so greedy choices never block later contractions.

#pragma once

#include "tt/truth_table.hpp"

namespace stpes::tt {

/// Classification outcome of `analyze_dsd`.
enum class dsd_kind {
  constant,  ///< no support
  literal,   ///< support of exactly one variable
  full,      ///< fully decomposable into 2-input disjoint blocks
  partial,   ///< some 2-input blocks exist, but a prime residue remains
  none       ///< no 2-input disjoint block at all (prime function)
};

/// Detailed result of the greedy DSD contraction.
struct dsd_analysis {
  dsd_kind kind = dsd_kind::constant;
  unsigned original_support = 0;  ///< support size of the input function
  unsigned residue_support = 0;   ///< support size of the prime residue
  unsigned contractions = 0;      ///< number of 2-input blocks contracted
  truth_table residue;            ///< the prime residue (shrunk to support)
};

/// Runs the greedy contraction described above.
dsd_analysis analyze_dsd(const truth_table& function);

/// Convenience wrappers over `analyze_dsd`.
bool is_fully_dsd(const truth_table& function);
/// True iff support >= 3 and no 2-input disjoint block exists.
bool is_prime(const truth_table& function);

/// Human-readable name of a `dsd_kind` value.
const char* to_string(dsd_kind kind);

}  // namespace stpes::tt
