#include "sat/dimacs.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "sat/solver.hpp"

namespace stpes::sat {

cnf parse_dimacs(std::istream& in) {
  cnf formula;
  std::size_t declared_clauses = 0;
  bool header_seen = false;
  std::string token;
  clause_lits current;
  while (in >> token) {
    if (token == "c" || token[0] == '%') {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (token == "p") {
      std::string kind;
      if (!(in >> kind >> formula.num_vars >> declared_clauses) ||
          kind != "cnf") {
        throw std::invalid_argument{"parse_dimacs: bad header"};
      }
      header_seen = true;
      continue;
    }
    long value = 0;
    try {
      value = std::stol(token);
    } catch (const std::exception&) {
      throw std::invalid_argument{"parse_dimacs: bad token '" + token + "'"};
    }
    if (!header_seen) {
      throw std::invalid_argument{"parse_dimacs: clause before header"};
    }
    if (value == 0) {
      formula.clauses.push_back(current);
      current.clear();
    } else {
      const auto v = static_cast<var>(std::labs(value) - 1);
      if (static_cast<std::size_t>(v) >= formula.num_vars) {
        throw std::invalid_argument{"parse_dimacs: variable out of range"};
      }
      current.push_back(lit{v, value < 0});
    }
  }
  if (!current.empty()) {
    throw std::invalid_argument{"parse_dimacs: unterminated clause"};
  }
  return formula;
}

cnf parse_dimacs_string(const std::string& text) {
  std::istringstream in{text};
  return parse_dimacs(in);
}

void write_dimacs(std::ostream& out, const cnf& formula) {
  out << "p cnf " << formula.num_vars << ' ' << formula.clauses.size()
      << '\n';
  for (const auto& clause : formula.clauses) {
    for (const lit p : clause) {
      out << (p.negated() ? -(p.variable() + 1) : (p.variable() + 1)) << ' ';
    }
    out << "0\n";
  }
}

bool load_into_solver(const cnf& formula, solver& s) {
  std::vector<var> vars;
  vars.reserve(formula.num_vars);
  for (std::size_t i = 0; i < formula.num_vars; ++i) {
    vars.push_back(s.new_var());
  }
  for (const auto& clause : formula.clauses) {
    clause_lits mapped;
    mapped.reserve(clause.size());
    for (const lit p : clause) {
      mapped.push_back(
          lit{vars[static_cast<std::size_t>(p.variable())], p.negated()});
    }
    if (!s.add_clause(std::move(mapped))) {
      return false;
    }
  }
  return true;
}

}  // namespace stpes::sat
