/// \file solver.hpp
/// \brief A from-scratch CDCL SAT solver.
///
/// This is the shared CNF reasoning substrate for the three baseline exact-
/// synthesis engines (BMS, FEN, and the CEGAR stand-in for ABC `lutexact`).
/// Using one solver for all baselines keeps the Table-I comparison about
/// *encodings and algorithms*, not solver maturity.
///
/// Feature set (MiniSat-style):
///   * two-watched-literal unit propagation,
///   * first-UIP conflict analysis with clause learning,
///   * VSIDS variable activities with an indexed binary max-heap,
///   * phase saving,
///   * Luby restarts,
///   * activity-driven learnt-clause database reduction,
///   * incremental solving under assumptions,
///   * cooperative conflict / wall-clock budgets (returns `unknown`).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sat/types.hpp"
#include "util/run_context.hpp"
#include "util/stopwatch.hpp"

namespace stpes::sat {

/// Outcome of a `solve` call.
enum class solve_result { sat, unsat, unknown };

/// Aggregate solver statistics (monotone across calls).
struct solver_stats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnt_clauses = 0;
  std::uint64_t removed_clauses = 0;
};

/// CDCL solver.  Typical use:
///
///     solver s;
///     auto a = s.new_var(); auto b = s.new_var();
///     s.add_clause({pos(a), neg(b)});
///     if (s.solve() == solve_result::sat) { ... s.model_value(a) ... }
class solver {
public:
  solver();
  ~solver();
  solver(const solver&) = delete;
  solver& operator=(const solver&) = delete;

  /// Creates a fresh variable and returns its index.
  var new_var();
  [[nodiscard]] std::size_t num_vars() const;
  [[nodiscard]] std::size_t num_clauses() const;

  /// Adds a clause over existing variables.  Returns false if the clause
  /// makes the formula trivially unsatisfiable (empty after root-level
  /// simplification); the solver is then permanently UNSAT.
  bool add_clause(clause_lits lits);

  /// Solves under the given assumptions.  `unknown` is returned when a
  /// budget expires.
  solve_result solve(const std::vector<lit>& assumptions = {});

  /// Model access after a `sat` answer.
  [[nodiscard]] bool model_value(var v) const;

  /// \name Budgets (apply to subsequent solve calls; 0 / default = none)
  /// @{
  void set_conflict_budget(std::uint64_t max_conflicts);
  /// Deprecated shim; prefer `set_run_context`.
  void set_time_budget(util::time_budget budget);
  /// Attaches the shared run context (not owned; may be nullptr to
  /// detach).  The deadline and cancel flag are polled every 256
  /// conflicts and every 4096 decisions; an observed stop returns
  /// `unknown`.  SAT decision/conflict/restart deltas of each solve call
  /// are added to `ctx->counters`.
  void set_run_context(core::run_context* ctx);
  /// @}

  [[nodiscard]] const solver_stats& stats() const;

private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

}  // namespace stpes::sat
