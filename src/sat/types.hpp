/// \file types.hpp
/// \brief Elementary SAT types: variables, literals, ternary values.
///
/// The conventions follow MiniSat: a variable is a non-negative integer, a
/// literal packs variable and sign into one integer (`2*var + sign`, sign 1
/// meaning negated), and assignments are ternary.

#pragma once

#include <cstdint>
#include <vector>

namespace stpes::sat {

using var = std::int32_t;

/// A literal: variable with polarity.
class lit {
public:
  lit() = default;
  lit(var v, bool negated) : code_(2 * v + (negated ? 1 : 0)) {}

  [[nodiscard]] var variable() const { return code_ >> 1; }
  [[nodiscard]] bool negated() const { return (code_ & 1) != 0; }
  [[nodiscard]] lit operator~() const { return from_code(code_ ^ 1); }
  /// Dense index for watch lists and seen arrays.
  [[nodiscard]] std::int32_t code() const { return code_; }

  bool operator==(const lit& other) const { return code_ == other.code_; }
  bool operator!=(const lit& other) const { return code_ != other.code_; }
  bool operator<(const lit& other) const { return code_ < other.code_; }

  static lit from_code(std::int32_t code) {
    lit l;
    l.code_ = code;
    return l;
  }

private:
  std::int32_t code_ = -2;
};

/// Positive / negative literal helpers.
inline lit pos(var v) { return lit{v, false}; }
inline lit neg(var v) { return lit{v, true}; }

/// Ternary assignment value.
enum class lbool : std::uint8_t { false_value, true_value, undef };

inline lbool to_lbool(bool b) {
  return b ? lbool::true_value : lbool::false_value;
}

/// Value of a literal under a variable assignment value.
inline lbool lit_value(lbool var_value, bool negated) {
  if (var_value == lbool::undef) {
    return lbool::undef;
  }
  const bool v = var_value == lbool::true_value;
  return to_lbool(v != negated);
}

using clause_lits = std::vector<lit>;

}  // namespace stpes::sat
