/// \file dimacs.hpp
/// \brief DIMACS CNF import/export for the CDCL solver.
///
/// Kept deliberately small: enough to dump the baseline encodings for
/// inspection with external tools and to load regression CNFs in tests.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace stpes::sat {

class solver;

/// A CNF formula in memory: clause list plus variable count.
struct cnf {
  std::size_t num_vars = 0;
  std::vector<clause_lits> clauses;
};

/// Parses DIMACS text ("p cnf V C" header, '%'-or-'c'-prefixed comments,
/// zero-terminated clauses).  Throws std::invalid_argument on malformed
/// input.
cnf parse_dimacs(std::istream& in);
cnf parse_dimacs_string(const std::string& text);

/// Writes `formula` in DIMACS format.
void write_dimacs(std::ostream& out, const cnf& formula);

/// Loads a formula into a fresh region of `s` (creates variables as
/// needed); returns false if the formula is trivially UNSAT on load.
bool load_into_solver(const cnf& formula, solver& s);

}  // namespace stpes::sat
