#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <memory>

namespace stpes::sat {

namespace {

/// Learnt/problem clause. Kept simple: a small header plus the literal
/// vector; ownership lives in the solver's clause arenas.
struct clause {
  std::vector<lit> lits;
  double activity = 0.0;
  bool learnt = false;

  [[nodiscard]] std::size_t size() const { return lits.size(); }
  lit& operator[](std::size_t i) { return lits[i]; }
  const lit& operator[](std::size_t i) const { return lits[i]; }
};

struct watcher {
  clause* c = nullptr;
  lit blocker;
};

/// Finite-subsequence generator for Luby restarts.
double luby(double y, std::uint64_t x) {
  std::uint64_t size = 1;
  std::uint64_t seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x = x % size;
  }
  return std::pow(y, static_cast<double>(seq));
}

/// Indexed binary max-heap over variable activities.
class var_heap {
public:
  explicit var_heap(const std::vector<double>& activity)
      : activity_(activity) {}

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] bool contains(var v) const {
    return v < static_cast<var>(index_.size()) && index_[v] >= 0;
  }

  void reserve_var(var v) {
    if (v >= static_cast<var>(index_.size())) {
      index_.resize(static_cast<std::size_t>(v) + 1, -1);
    }
  }

  void insert(var v) {
    reserve_var(v);
    if (contains(v)) {
      return;
    }
    index_[v] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    percolate_up(index_[v]);
  }

  var remove_max() {
    const var top = heap_[0];
    heap_[0] = heap_.back();
    index_[heap_[0]] = 0;
    heap_.pop_back();
    index_[top] = -1;
    if (!heap_.empty()) {
      percolate_down(0);
    }
    return top;
  }

  /// Activity of `v` increased: restore the heap property.
  void increased(var v) {
    if (contains(v)) {
      percolate_up(index_[v]);
    }
  }

private:
  [[nodiscard]] bool greater(var a, var b) const {
    return activity_[a] > activity_[b];
  }

  void percolate_up(int i) {
    const var v = heap_[i];
    while (i > 0) {
      const int parent = (i - 1) >> 1;
      if (!greater(v, heap_[parent])) {
        break;
      }
      heap_[i] = heap_[parent];
      index_[heap_[i]] = i;
      i = parent;
    }
    heap_[i] = v;
    index_[v] = i;
  }

  void percolate_down(int i) {
    const var v = heap_[i];
    const int n = static_cast<int>(heap_.size());
    while (true) {
      int child = 2 * i + 1;
      if (child >= n) {
        break;
      }
      if (child + 1 < n && greater(heap_[child + 1], heap_[child])) {
        ++child;
      }
      if (!greater(heap_[child], v)) {
        break;
      }
      heap_[i] = heap_[child];
      index_[heap_[i]] = i;
      i = child;
    }
    heap_[i] = v;
    index_[v] = i;
  }

  const std::vector<double>& activity_;
  std::vector<var> heap_;
  std::vector<int> index_;
};

}  // namespace

struct solver::impl {
  // Problem state -----------------------------------------------------
  std::deque<clause> clauses;  // stable addresses
  std::deque<clause> learnts_arena;
  std::vector<clause*> learnts;
  std::vector<std::vector<watcher>> watches;  // indexed by lit code
  std::vector<lbool> assigns;
  std::vector<bool> polarity;  // saved phases (true = last value was true)
  std::vector<double> activity;
  std::vector<int> level;
  std::vector<clause*> reason;
  std::vector<lit> trail;
  std::vector<std::size_t> trail_lim;
  std::size_t qhead = 0;
  bool ok = true;

  var_heap order{activity};
  std::vector<char> seen;
  double var_inc = 1.0;
  double cla_inc = 1.0;
  static constexpr double kVarDecay = 0.95;
  static constexpr double kClaDecay = 0.999;

  // Budgets and results ------------------------------------------------
  std::uint64_t conflict_budget = 0;  // 0 = unlimited
  util::time_budget time_budget;
  core::run_context* run_ctx = nullptr;  // shared; not owned
  std::uint64_t conflicts_at_solve_start = 0;

  /// Deadline (shim or shared) hit, or cancellation requested.
  [[nodiscard]] bool budget_stop() const {
    return time_budget.expired() ||
           (run_ctx != nullptr && run_ctx->should_stop());
  }
  std::vector<lbool> model;
  solver_stats stats;
  std::size_t reduce_count = 0;

  // Helpers -------------------------------------------------------------
  [[nodiscard]] lbool value(lit p) const {
    return lit_value(assigns[p.variable()], p.negated());
  }
  [[nodiscard]] int decision_level() const {
    return static_cast<int>(trail_lim.size());
  }

  void new_decision_level() { trail_lim.push_back(trail.size()); }

  void enqueue(lit p, clause* from) {
    const var v = p.variable();
    assigns[v] = to_lbool(!p.negated());
    level[v] = decision_level();
    reason[v] = from;
    trail.push_back(p);
  }

  void attach(clause* c) {
    watches[(~(*c)[0]).code()].push_back(watcher{c, (*c)[1]});
    watches[(~(*c)[1]).code()].push_back(watcher{c, (*c)[0]});
  }

  void detach(clause* c) {
    for (int i = 0; i < 2; ++i) {
      auto& ws = watches[(~(*c)[i]).code()];
      ws.erase(std::remove_if(ws.begin(), ws.end(),
                              [c](const watcher& w) { return w.c == c; }),
               ws.end());
    }
  }

  void var_bump(var v) {
    activity[v] += var_inc;
    if (activity[v] > 1e100) {
      for (auto& a : activity) {
        a *= 1e-100;
      }
      var_inc *= 1e-100;
    }
    order.increased(v);
  }

  void cla_bump(clause* c) {
    c->activity += cla_inc;
    if (c->activity > 1e20) {
      for (auto* learnt : learnts) {
        learnt->activity *= 1e-20;
      }
      cla_inc *= 1e-20;
    }
  }

  clause* propagate() {
    clause* conflict = nullptr;
    while (qhead < trail.size()) {
      const lit p = trail[qhead++];
      auto& ws = watches[p.code()];
      std::size_t keep = 0;
      std::size_t i = 0;
      for (; i < ws.size(); ++i) {
        ++stats.propagations;
        const watcher w = ws[i];
        if (value(w.blocker) == lbool::true_value) {
          ws[keep++] = w;
          continue;
        }
        clause& c = *w.c;
        // Normalize: the false literal ~p sits at position 1.
        if (c[0] == ~p) {
          std::swap(c[0], c[1]);
        }
        const lit first = c[0];
        if (first != w.blocker && value(first) == lbool::true_value) {
          ws[keep++] = watcher{w.c, first};
          continue;
        }
        bool moved = false;
        for (std::size_t k = 2; k < c.size(); ++k) {
          if (value(c[k]) != lbool::false_value) {
            std::swap(c[1], c[k]);
            watches[(~c[1]).code()].push_back(watcher{w.c, first});
            moved = true;
            break;
          }
        }
        if (moved) {
          continue;
        }
        // Unit or conflicting.
        ws[keep++] = watcher{w.c, first};
        if (value(first) == lbool::false_value) {
          conflict = w.c;
          qhead = trail.size();
          for (++i; i < ws.size(); ++i) {
            ws[keep++] = ws[i];
          }
          break;
        }
        enqueue(first, w.c);
      }
      ws.resize(keep);
      if (conflict != nullptr) {
        break;
      }
    }
    return conflict;
  }

  void backtrack_to(int target_level) {
    if (decision_level() <= target_level) {
      return;
    }
    const std::size_t bound = trail_lim[target_level];
    for (std::size_t i = trail.size(); i-- > bound;) {
      const var v = trail[i].variable();
      polarity[v] = assigns[v] == lbool::true_value;
      assigns[v] = lbool::undef;
      reason[v] = nullptr;
      order.insert(v);
    }
    trail.resize(bound);
    trail_lim.resize(static_cast<std::size_t>(target_level));
    qhead = trail.size();
  }

  /// First-UIP conflict analysis; fills `out_learnt` (asserting literal
  /// first) and returns the backtrack level.
  int analyze(clause* conflict, std::vector<lit>& out_learnt) {
    out_learnt.clear();
    out_learnt.push_back(lit{});  // placeholder for the asserting literal
    int path_count = 0;
    lit p;
    bool p_valid = false;
    std::size_t index = trail.size();

    clause* reason_clause = conflict;
    do {
      assert(reason_clause != nullptr);
      if (reason_clause->learnt) {
        cla_bump(reason_clause);
      }
      const std::size_t start = p_valid ? 1 : 0;
      for (std::size_t j = start; j < reason_clause->size(); ++j) {
        const lit q = (*reason_clause)[j];
        const var v = q.variable();
        if (seen[v] == 0 && level[v] > 0) {
          var_bump(v);
          seen[v] = 1;
          if (level[v] >= decision_level()) {
            ++path_count;
          } else {
            out_learnt.push_back(q);
          }
        }
      }
      while (seen[trail[index - 1].variable()] == 0) {
        --index;
      }
      p = trail[index - 1];
      p_valid = true;
      --index;
      reason_clause = reason[p.variable()];
      seen[p.variable()] = 0;
      --path_count;
    } while (path_count > 0);
    out_learnt[0] = ~p;

    // Cheap clause minimization: drop literals implied at level 0 already
    // excluded above; full recursive minimization is not needed for the
    // instance sizes of this project.
    int backtrack_level = 0;
    if (out_learnt.size() > 1) {
      std::size_t max_i = 1;
      for (std::size_t i = 2; i < out_learnt.size(); ++i) {
        if (level[out_learnt[i].variable()] >
            level[out_learnt[max_i].variable()]) {
          max_i = i;
        }
      }
      std::swap(out_learnt[1], out_learnt[max_i]);
      backtrack_level = level[out_learnt[1].variable()];
    }
    for (const lit q : out_learnt) {
      seen[q.variable()] = 0;
    }
    return backtrack_level;
  }

  void reduce_db() {
    std::sort(learnts.begin(), learnts.end(),
              [](const clause* a, const clause* b) {
                if ((a->size() > 2) != (b->size() > 2)) {
                  return a->size() > 2;  // long clauses first (worse)
                }
                return a->activity < b->activity;
              });
    const std::size_t target = learnts.size() / 2;
    std::size_t removed = 0;
    std::vector<clause*> kept;
    kept.reserve(learnts.size());
    for (std::size_t i = 0; i < learnts.size(); ++i) {
      clause* c = learnts[i];
      const bool locked = reason[(*c)[0].variable()] == c &&
                          value((*c)[0]) == lbool::true_value;
      if (removed < target && c->size() > 2 && !locked) {
        detach(c);
        c->lits.clear();  // mark dead; arena storage reclaimed lazily
        ++removed;
        ++stats.removed_clauses;
      } else {
        kept.push_back(c);
      }
    }
    learnts = std::move(kept);
  }

  /// Runs CDCL until a restart limit, a budget stop, or a definite answer.
  solve_result search(std::uint64_t conflicts_allowed,
                      const std::vector<lit>& assumptions) {
    std::uint64_t local_conflicts = 0;
    while (true) {
      clause* conflict = propagate();
      if (conflict != nullptr) {
        ++stats.conflicts;
        ++local_conflicts;
        if (decision_level() == 0) {
          ok = false;
          return solve_result::unsat;
        }
        // Conflicts involving assumption decisions resolve naturally: the
        // learnt clause asserts below the assumption prefix, and an
        // unsatisfiable assumption set eventually surfaces as a falsified
        // assumption at its decision step (or a level-0 conflict).
        std::vector<lit> learnt;
        const int bt_level = analyze(conflict, learnt);
        backtrack_to(bt_level);
        if (learnt.size() == 1) {
          if (decision_level() > 0) {
            // Asserting unit below current level: restart to level 0.
            backtrack_to(0);
          }
          if (value(learnt[0]) == lbool::undef) {
            enqueue(learnt[0], nullptr);
          } else if (value(learnt[0]) == lbool::false_value) {
            ok = false;
            return solve_result::unsat;
          }
        } else {
          learnts_arena.push_back(clause{learnt, cla_inc, true});
          clause* c = &learnts_arena.back();
          learnts.push_back(c);
          ++stats.learnt_clauses;
          attach(c);
          enqueue(learnt[0], c);
        }
        var_inc /= kVarDecay;
        cla_inc /= kClaDecay;
        if (conflict_budget != 0 &&
            stats.conflicts - conflicts_at_solve_start >= conflict_budget) {
          backtrack_to(0);
          return solve_result::unknown;
        }
        if ((local_conflicts & 0xFF) == 0 && budget_stop()) {
          backtrack_to(0);
          return solve_result::unknown;
        }
        if (local_conflicts >= conflicts_allowed) {
          backtrack_to(0);
          ++stats.restarts;
          return solve_result::unknown;  // caller restarts
        }
        if (learnts.size() > 4000 + 1000 * reduce_count) {
          ++reduce_count;
          reduce_db();
        }
        continue;
      }

      // No conflict: extend the assignment.
      if (decision_level() < static_cast<int>(assumptions.size())) {
        const lit p = assumptions[static_cast<std::size_t>(decision_level())];
        if (value(p) == lbool::true_value) {
          new_decision_level();
          continue;
        }
        if (value(p) == lbool::false_value) {
          return solve_result::unsat;  // conflicting assumptions
        }
        ++stats.decisions;
        new_decision_level();
        enqueue(p, nullptr);
        continue;
      }

      var next = -1;
      while (!order.empty()) {
        const var candidate = order.remove_max();
        if (assigns[candidate] == lbool::undef) {
          next = candidate;
          break;
        }
      }
      if (next < 0) {
        model = assigns;  // complete satisfying assignment
        return solve_result::sat;
      }
      ++stats.decisions;
      // Conflict-free stretches (easy instances, long propagation runs)
      // must still observe cancellation within a bounded stride.
      if ((stats.decisions & 0xFFF) == 0 && budget_stop()) {
        backtrack_to(0);
        return solve_result::unknown;
      }
      new_decision_level();
      enqueue(lit{next, !polarity[next]}, nullptr);
    }
  }
};

solver::solver() : impl_(std::make_unique<impl>()) {}
solver::~solver() = default;

var solver::new_var() {
  auto& s = *impl_;
  const var v = static_cast<var>(s.assigns.size());
  s.assigns.push_back(lbool::undef);
  s.polarity.push_back(false);
  s.activity.push_back(0.0);
  s.level.push_back(0);
  s.reason.push_back(nullptr);
  s.seen.push_back(0);
  s.watches.emplace_back();
  s.watches.emplace_back();
  s.order.reserve_var(v);
  s.order.insert(v);
  return v;
}

std::size_t solver::num_vars() const { return impl_->assigns.size(); }

std::size_t solver::num_clauses() const { return impl_->clauses.size(); }

bool solver::add_clause(clause_lits lits) {
  auto& s = *impl_;
  if (!s.ok) {
    return false;
  }
  assert(s.decision_level() == 0);
  std::sort(lits.begin(), lits.end());
  clause_lits simplified;
  lit previous;
  bool has_previous = false;
  for (const lit p : lits) {
    assert(p.variable() >= 0 &&
           p.variable() < static_cast<var>(s.assigns.size()));
    if (s.value(p) == lbool::true_value ||
        (has_previous && p == ~previous)) {
      return true;  // satisfied or tautological at root
    }
    if (s.value(p) == lbool::false_value ||
        (has_previous && p == previous)) {
      continue;  // falsified at root or duplicate
    }
    simplified.push_back(p);
    previous = p;
    has_previous = true;
  }
  if (simplified.empty()) {
    s.ok = false;
    return false;
  }
  if (simplified.size() == 1) {
    s.enqueue(simplified[0], nullptr);
    if (s.propagate() != nullptr) {
      s.ok = false;
      return false;
    }
    return true;
  }
  s.clauses.push_back(clause{std::move(simplified), 0.0, false});
  s.attach(&s.clauses.back());
  return true;
}

solve_result solver::solve(const std::vector<lit>& assumptions) {
  auto& s = *impl_;
  if (!s.ok) {
    return solve_result::unsat;
  }
  s.conflicts_at_solve_start = s.stats.conflicts;
  const solver_stats at_start = s.stats;
  std::uint64_t restart_round = 0;
  solve_result result = solve_result::unknown;
  while (result == solve_result::unknown) {
    if (s.budget_stop()) {
      break;
    }
    if (s.conflict_budget != 0 &&
        s.stats.conflicts - s.conflicts_at_solve_start >=
            s.conflict_budget) {
      break;
    }
    const auto limit = static_cast<std::uint64_t>(
        luby(2.0, restart_round) * 100.0);
    result = s.search(limit, assumptions);
    ++restart_round;
  }
  s.backtrack_to(0);
  if (s.run_ctx != nullptr) {
    auto& c = s.run_ctx->counters;
    c.sat_decisions += s.stats.decisions - at_start.decisions;
    c.sat_conflicts += s.stats.conflicts - at_start.conflicts;
    c.sat_restarts += s.stats.restarts - at_start.restarts;
  }
  return result;
}

bool solver::model_value(var v) const {
  const auto& model = impl_->model;
  assert(v >= 0 && static_cast<std::size_t>(v) < model.size());
  return model[static_cast<std::size_t>(v)] == lbool::true_value;
}

void solver::set_conflict_budget(std::uint64_t max_conflicts) {
  impl_->conflict_budget = max_conflicts;
}

void solver::set_time_budget(util::time_budget budget) {
  impl_->time_budget = budget;
}

void solver::set_run_context(core::run_context* ctx) {
  impl_->run_ctx = ctx;
}

const solver_stats& solver::stats() const { return impl_->stats; }

}  // namespace stpes::sat
