#include "synth/stp_synth.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "allsat/circuit_allsat.hpp"
#include "fence/dag.hpp"
#include "fence/fence.hpp"
#include "service/thread_pool.hpp"
#include "synth/factor_memo.hpp"
#include "util/flat_set64.hpp"

namespace stpes::synth {

namespace {

using fence::dag_topology;
using fence::kPiSlot;

/// Per-gate search state during the top-down factorization DFS.
struct gate_state {
  bool has_requirement = false;
  requirement req;
  /// Cached hash of (cone, func) — recomputed only when `req` changes.
  std::uint64_t req_hash = 0;
  bool decomposed = false;
  op_family family = op_family::and_like;
  bool complemented = false;
  /// Gate-child inversions folded into this gate's LUT when polarity
  /// normalization rewrites a child requirement to its normal complement.
  std::array<bool, 2> child_negated{false, false};
};

/// Per-PI-slot state: which input variable feeds the slot and with which
/// polarity (negative polarities are later folded into the gate LUT).
struct slot_state {
  int var = -1;
  bool negated = false;
};

/// Identifies the slot index of fanin position `pos` of gate `g` (slots
/// are numbered in gate order, matching dag_topology::pi_slot_capacity).
struct slot_index_map {
  std::vector<std::array<int, 2>> of_gate;

  explicit slot_index_map(const dag_topology& dag) {
    of_gate.assign(dag.gates.size(), {-1, -1});
    int next = 0;
    for (std::size_t g = 0; g < dag.gates.size(); ++g) {
      for (int pos = 0; pos < 2; ++pos) {
        if (dag.gates[g].fanin[static_cast<std::size_t>(pos)] == kPiSlot) {
          of_gate[g][static_cast<std::size_t>(pos)] = next++;
        }
      }
    }
  }
};

/// Cone splits resolved per batched factorization call.  A chunk
/// amortizes the per-batch costs (target complement/offset, distinct-cone
/// smooths, the vectorized screen) over many splits while bounding the
/// work thrown away when a freshly verified solution stops the search
/// mid-gate.  Fixed, so chunk boundaries — and therefore memo contents
/// and counters — are deterministic.
constexpr std::size_t kFactorChunk = 32;

struct search_context {
  const stp_options& options;
  const tt::isf& target;    // root requirement (complete or with DCs)
  std::uint32_t root_cone;  // variables the root may consume
  unsigned num_vars;
  /// Multi-output mode: the (shrunk) target list, in output order;
  /// nullptr = classic single-output search.  In multi mode `target` and
  /// `root_cone` are unused placeholders — every dangling DAG gate is
  /// seeded from one of these functions instead.
  const std::vector<tt::truth_table>* multi;
  core::run_context& rc;  // this task's deadline / cancel flag / counters
  stp_stats& stats;

  /// Two-level factorization memo: `shared_memo` holds everything learned
  /// before this level started (immutable while tasks run), `local_memo`
  /// collects this task's new entries for the post-join merge.  Same split
  /// for the fruitless-pending-state memo (keys include the structural
  /// suffix of the DAG, so they transfer across DAGs and levels).
  const factor_memo& shared_memo;
  factor_memo& local_memo;
  const util::flat_set64& shared_failed;
  util::flat_set64& local_failed;

  std::vector<chain::boolean_chain> solutions;
  util::flat_set64 solution_hashes;
  /// Per-DAG-position scratch for the splits a gate's partition
  /// enumeration collects before chunked factorization.  Indexed by
  /// position so the chunk loop can recurse into deeper gates without
  /// clobbering, and kept across DAGs so the innermost enumeration never
  /// touches the allocator once the capacities warm up.
  std::vector<std::vector<cone_split>> split_scratch;
  bool stop = false;  // cancelled, deadline expired, or solution cap hit
  std::uint64_t ticks = 0;

  void tick() {
    if ((++ticks & 0x3FF) == 0 && rc.should_stop()) {
      stop = true;
    }
  }

  [[nodiscard]] bool state_failed(std::uint64_t key) const {
    return shared_failed.contains(key) || local_failed.contains(key);
  }

  void record_failed(std::uint64_t key) {
    if (options.failed_memo_cap == 0 ||
        shared_failed.size() + local_failed.size() <
            options.failed_memo_cap) {
      local_failed.insert(key);
    }
  }

  /// Resolves the factorization lists of `r` for `count` (<= kFactorChunk)
  /// cone splits starting at `splits`: the memos are probed in split order
  /// first, then the misses are solved in one batched pipeline pass
  /// (`factor_requirement_batch`).  Keys are distinct within one gate's
  /// partition enumeration, so probing everything before solving leaves
  /// the hit/miss totals exactly what the split-at-a-time path counted.
  ///
  /// `resolved[i]` points at the list for `splits[i]`, owned either by a
  /// memo or by `keepalive[i]` (when the memo cap stopped the insert);
  /// both outlive the caller's use of the chunk.  Everything else is
  /// stack-buffered: this runs on the innermost enumeration path, once
  /// per chunk, and must not touch the allocator when every split hits.
  void factor_batch(
      const requirement& r, const cone_split* splits, std::size_t count,
      std::array<const std::vector<factorization>*, kFactorChunk>& resolved,
      std::array<std::shared_ptr<const std::vector<factorization>>,
                 kFactorChunk>& keepalive) {
    assert(count <= kFactorChunk);
    std::array<factor_key, kFactorChunk> miss_keys;
    std::array<cone_split, kFactorChunk> miss_splits;
    std::array<std::size_t, kFactorChunk> miss_of;
    std::size_t misses = 0;
    for (std::size_t i = 0; i < count; ++i) {
      factor_key key{r.cone, splits[i].a, splits[i].b, r.func.onset(),
                     r.func.careset()};
      if (const auto* hit = shared_memo.find(key)) {
        ++rc.counters.factor_memo_hits;
        resolved[i] = hit->get();
        continue;
      }
      if (const auto* hit = local_memo.find(key)) {
        ++rc.counters.factor_memo_hits;
        resolved[i] = hit->get();
        continue;
      }
      ++rc.counters.factor_memo_misses;
      miss_of[misses] = i;
      miss_keys[misses] = std::move(key);
      miss_splits[misses] = splits[i];
      ++misses;
    }
    if (misses == 0) {
      return;
    }
    auto solved = factor_requirement_batch(r, miss_splits.data(), misses,
                                           options.factor, &rc);
    for (std::size_t j = 0; j < misses; ++j) {
      auto result = std::make_shared<const std::vector<factorization>>(
          std::move(solved[j]));
      stats.factorizations += result->size();
      resolved[miss_of[j]] = result.get();
      // The cap is checked against the level-start snapshot plus this
      // task's own delta — both thread-count independent, so capped runs
      // stay deterministic.
      if (options.factor_memo_cap == 0 ||
          shared_memo.size() + local_memo.size() <
              options.factor_memo_cap) {
        local_memo.insert(std::move(miss_keys[j]), result);
      }
      keepalive[miss_of[j]] = std::move(result);
    }
  }
};

/// Search over one DAG topology.
class dag_search {
public:
  dag_search(search_context& ctx, const dag_topology& dag)
      : ctx_(ctx),
        dag_(dag),
        slots_(dag),
        capacity_(dag.pi_slot_capacity()),
        cone_gates_(dag.gates_in_cone()) {
    // Grown up front so enumerate_partitions can hold per-position
    // references across its recursion; capacities persist between DAGs.
    if (ctx_.split_scratch.size() < dag.gates.size()) {
      ctx_.split_scratch.resize(dag.gates.size());
    }
    // A cone of g gates depends on at most g + 1 distinct variables.
    for (std::size_t i = 0; i < capacity_.size(); ++i) {
      capacity_[i] = std::min(capacity_[i], cone_gates_[i] + 1);
    }
    // Canonical cone-subtree signatures: used to halve the partition
    // enumeration at gates whose two children have identical shapes.
    subtree_sig_.resize(dag.gates.size());
    for (std::size_t gi = 0; gi < dag.gates.size(); ++gi) {
      std::string a = dag.gates[gi].fanin[0] == kPiSlot
                          ? "*"
                          : subtree_sig_[static_cast<std::size_t>(
                                dag.gates[gi].fanin[0])];
      std::string b = dag.gates[gi].fanin[1] == kPiSlot
                          ? "*"
                          : subtree_sig_[static_cast<std::size_t>(
                                dag.gates[gi].fanin[1])];
      if (b < a) {
        std::swap(a, b);
      }
      subtree_sig_[gi] = "(" + a + b + ")";
    }
    // A gate whose two children are unshared, cone-disjoint gates of
    // identical shape produces every solution twice (mirrored); restrict
    // such gates to canonically ordered cone splits.
    std::vector<unsigned> fanout(dag.gates.size(), 0);
    std::vector<std::uint64_t> gate_reach(dag.gates.size(), 0);
    for (std::size_t gi = 0; gi < dag.gates.size(); ++gi) {
      gate_reach[gi] = std::uint64_t{1} << gi;
      for (const int fi : dag.gates[gi].fanin) {
        if (fi != kPiSlot) {
          ++fanout[static_cast<std::size_t>(fi)];
          gate_reach[gi] |= gate_reach[static_cast<std::size_t>(fi)];
        }
      }
    }
    symmetric_children_.assign(dag.gates.size(), false);
    for (std::size_t gi = 0; gi < dag.gates.size(); ++gi) {
      const int a = dag.gates[gi].fanin[0];
      const int b = dag.gates[gi].fanin[1];
      if (a != kPiSlot && b != kPiSlot &&
          subtree_sig_[static_cast<std::size_t>(a)] ==
              subtree_sig_[static_cast<std::size_t>(b)] &&
          fanout[static_cast<std::size_t>(a)] == 1 &&
          fanout[static_cast<std::size_t>(b)] == 1 &&
          (gate_reach[static_cast<std::size_t>(a)] &
           gate_reach[static_cast<std::size_t>(b)]) == 0) {
        symmetric_children_[gi] = true;
      }
    }
    // Processing order: parents strictly before children (requirements are
    // final when a gate is decomposed) and subtrees contiguous (a failed
    // subtree is re-recognized by the memo regardless of what happened in
    // sibling subtrees).  DFS from the root, releasing a gate once all its
    // parents are placed.
    std::vector<unsigned> parents_left(dag.gates.size(), 0);
    for (const auto& gt : dag.gates) {
      for (const int fi : gt.fanin) {
        if (fi != kPiSlot) {
          ++parents_left[static_cast<std::size_t>(fi)];
        }
      }
    }
    // Multi-output topologies have several fanout-free gates; seed the DFS
    // from all of them (ascending, so the highest — the classic root — is
    // processed first).  Single-output DAGs have roots() == {root()}, so
    // the order is unchanged there.
    std::vector<int> stack = dag.roots();
    order_.reserve(dag.gates.size());
    while (!stack.empty()) {
      const int g = stack.back();
      stack.pop_back();
      order_.push_back(g);
      for (const int fi : dag.gates[static_cast<std::size_t>(g)].fanin) {
        if (fi != kPiSlot &&
            --parents_left[static_cast<std::size_t>(fi)] == 0) {
          stack.push_back(fi);
        }
      }
    }
    // Per-position structural hash of the pending suffix (for the
    // cross-DAG failure memo).
    suffix_hash_.assign(order_.size() + 1, 0xcbf29ce484222325ull);
    for (std::size_t pos = order_.size(); pos-- > 0;) {
      std::uint64_t sh = suffix_hash_[pos + 1];
      auto smix = [&sh](std::uint64_t v) {
        sh ^= v;
        sh *= 0x100000001b3ull;
        sh ^= sh >> 29;
      };
      const int g = order_[pos];
      smix(static_cast<std::uint64_t>(g));
      smix(static_cast<std::uint64_t>(
          dag.gates[static_cast<std::size_t>(g)].fanin[0] + 2));
      smix(static_cast<std::uint64_t>(
          dag.gates[static_cast<std::size_t>(g)].fanin[1] + 2));
      suffix_hash_[pos] = sh;
    }
  }

  void run() {
    if (ctx_.multi != nullptr) {
      run_multi();
      return;
    }
    const auto root = static_cast<std::size_t>(dag_.root());
    if (capacity_[root] <
        static_cast<unsigned>(std::popcount(ctx_.root_cone))) {
      ++ctx_.rc.counters.dags_pruned;
      return;  // cannot reach all cone variables
    }
    gates_.assign(dag_.gates.size(), gate_state());
    slot_states_.assign(dag_.num_pi_slots(), slot_state{});
    gates_[root].has_requirement = true;
    gates_[root].req.cone = ctx_.root_cone;
    gates_[root].req.func = ctx_.target;
    gates_[root].req_hash = gates_[root].req.cone * 0x9E3779B97F4A7C15ull +
                            gates_[root].req.func.hash();
    descend(0);
  }

  /// Multi-output search: every fanout-free gate must carry one output
  /// (a dangling non-output gate contradicts optimality), so enumerate
  /// the injective assignments of fanout-free gates to target functions
  /// and run the factorization DFS once per assignment.  Root signals are
  /// canonically normal — the inversion rides on the output's complement
  /// flag, the same canonicalization the CNF encodings use; complementing
  /// a dangling gate's LUT yields an equivalent chain, so no optimum is
  /// lost.  Outputs not bound to a fanout-free gate are matched against
  /// interior signals when a complete candidate is assembled.
  void run_multi() {
    const auto& fs = *ctx_.multi;
    const auto roots = dag_.roots();
    const std::size_t m = fs.size();
    if (roots.size() > m) {
      ++ctx_.rc.counters.dags_pruned;
      return;  // some dangling gate could carry no output
    }
    std::vector<tt::isf> reqs;
    reqs.reserve(m);
    std::vector<std::uint32_t> cones(m);
    std::vector<bool> inverted(m);
    for (std::size_t h = 0; h < m; ++h) {
      auto fp = fs[h];
      inverted[h] = fp.get_bit(0);
      if (inverted[h]) {
        fp = ~fp;
      }
      cones[h] = fp.support_mask();
      reqs.push_back(tt::isf::from_function(fp));
    }
    std::vector<int> chosen(roots.size(), -1);
    std::vector<bool> used(m, false);
    const auto assign_roots = [&](auto&& self, std::size_t ri) -> void {
      if (ctx_.stop) {
        return;
      }
      if (ri == roots.size()) {
        gates_.assign(dag_.gates.size(), gate_state());
        slot_states_.assign(dag_.num_pi_slots(), slot_state{});
        root_of_output_.assign(m, -1);
        root_output_inverted_.assign(m, false);
        for (std::size_t i = 0; i < roots.size(); ++i) {
          const auto g = static_cast<std::size_t>(roots[i]);
          const auto h = static_cast<std::size_t>(chosen[i]);
          gates_[g].has_requirement = true;
          gates_[g].req.cone = cones[h];
          gates_[g].req.func = reqs[h];
          gates_[g].req_hash =
              gates_[g].req.cone * 0x9E3779B97F4A7C15ull +
              gates_[g].req.func.hash();
          root_of_output_[h] = roots[i];
          root_output_inverted_[h] = inverted[h];
        }
        descend(0);
        return;
      }
      const auto g = static_cast<std::size_t>(roots[ri]);
      for (std::size_t h = 0; h < m; ++h) {
        if (used[h] ||
            capacity_[g] <
                static_cast<unsigned>(std::popcount(cones[h]))) {
          continue;
        }
        used[h] = true;
        chosen[ri] = static_cast<int>(h);
        self(self, ri + 1);
        used[h] = false;
        chosen[ri] = -1;
      }
    };
    assign_roots(assign_roots, 0);
  }

private:
  /// Capacity of a fanin (gate or slot) in distinct variables.
  [[nodiscard]] unsigned fanin_capacity(int fanin) const {
    return fanin == kPiSlot
               ? 1u
               : capacity_[static_cast<std::size_t>(fanin)];
  }

  /// Hash of the pending work at processing position `pos`: the structure
  /// and current requirements of the gates not yet decomposed.  Feasibility
  /// of the rest of the search depends on nothing else, so sub-searches
  /// that produced no chain can be skipped when the same pending state
  /// recurs — under a different upstream branch or even a different DAG
  /// with the same pending structure.
  [[nodiscard]] std::uint64_t pending_state_key(std::size_t pos) const {
    std::uint64_t h = suffix_hash_[pos];
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ull;
      h ^= h >> 29;
    };
    for (std::size_t i = pos; i < order_.size(); ++i) {
      const auto& st = gates_[static_cast<std::size_t>(order_[i])];
      mix(st.has_requirement ? st.req_hash : 0x51ED270B);
    }
    return h;
  }

  /// Processes gates in the precomputed parents-first order.
  void descend(std::size_t pos) {
    if (ctx_.stop) {
      return;
    }
    ctx_.tick();
    if (pos == order_.size()) {
      emit();
      return;
    }
    const std::uint64_t key = pending_state_key(pos);
    if (ctx_.state_failed(key)) {
      return;
    }
    // Memoize only *structural* failures (no complete candidate assembled):
    // duplicate-solution bookkeeping must not poison the cache.
    const std::uint64_t candidates_before = ctx_.stats.candidates;
    const int g = order_[pos];
    auto& state = gates_[static_cast<std::size_t>(g)];
    assert(state.has_requirement);  // fanout >= 1 guarantees a parent set it
    const auto& topo_gate = dag_.gates[static_cast<std::size_t>(g)];
    enumerate_partitions(pos, g, topo_gate.fanin[0], topo_gate.fanin[1],
                         state.req);
    if (ctx_.stats.candidates == candidates_before && !ctx_.stop) {
      ctx_.record_failed(key);
    }
  }

  /// Enumerates cone splits (A, B) of the gate's cone, honouring cones
  /// already fixed on shared children, then factorizes the collected
  /// splits in chunked batches and recurses per split.
  void enumerate_partitions(std::size_t pos, int g, int child_a, int child_b,
                            const requirement& req) {
    const std::uint32_t cone = req.cone;
    const auto fixed_a = fixed_cone(child_a);
    const auto fixed_b = fixed_cone(child_b);

    std::vector<unsigned> vars;
    for (unsigned v = 0; v < ctx_.num_vars; ++v) {
      if ((cone >> v) & 1) {
        vars.push_back(v);
      }
    }

    // Recursive 3-way assignment (left / right / both) with fixed-cone and
    // capacity pruning.
    const unsigned cap_a = fanin_capacity(child_a);
    const unsigned cap_b = fanin_capacity(child_b);
    const bool both_slots = child_a == kPiSlot && child_b == kPiSlot;

    // Pre-sized to the gate count when the search started: growing it
    // here would invalidate the references outer recursion levels hold.
    auto& splits = ctx_.split_scratch[pos];
    splits.clear();
    auto assign = [&](auto&& self, std::size_t index, std::uint32_t a,
                      std::uint32_t b) -> void {
      if (ctx_.stop) {
        return;
      }
      if (index == vars.size()) {
        if (a == 0 || b == 0) {
          return;
        }
        if (fixed_a && *fixed_a != a) {
          return;
        }
        if (fixed_b && *fixed_b != b) {
          return;
        }
        if (both_slots) {
          // Unordered slot pair: canonical order, no twin variables.
          if (a >= b) {
            return;
          }
        }
        if (symmetric_children_[static_cast<std::size_t>(g)] && a > b) {
          return;  // mirrored split of identical subtrees
        }
        ++ctx_.stats.partitions_tried;
        splits.push_back(cone_split{a, b});
        return;
      }
      const std::uint32_t bit = 1u << vars[index];
      const auto in_fixed_a = !fixed_a || (*fixed_a & bit);
      const auto in_fixed_b = !fixed_b || (*fixed_b & bit);
      // left only
      if (in_fixed_a && (!fixed_b || !(*fixed_b & bit)) &&
          std::popcount(a | bit) <= static_cast<int>(cap_a)) {
        self(self, index + 1, a | bit, b);
      }
      // right only
      if (in_fixed_b && (!fixed_a || !(*fixed_a & bit)) &&
          std::popcount(b | bit) <= static_cast<int>(cap_b)) {
        self(self, index + 1, a, b | bit);
      }
      // both (the M_r sharing case)
      if (in_fixed_a && in_fixed_b &&
          std::popcount(a | bit) <= static_cast<int>(cap_a) &&
          std::popcount(b | bit) <= static_cast<int>(cap_b)) {
        self(self, index + 1, a | bit, b | bit);
      }
    };
    assign(assign, 0, 0, 0);
    for (std::size_t base = 0; base < splits.size(); base += kFactorChunk) {
      if (ctx_.stop) {
        return;
      }
      const std::size_t end = std::min(base + kFactorChunk, splits.size());
      std::array<const std::vector<factorization>*, kFactorChunk> resolved;
      std::array<std::shared_ptr<const std::vector<factorization>>,
                 kFactorChunk>
          keepalive;
      ctx_.factor_batch(req, splits.data() + base, end - base, resolved,
                        keepalive);
      for (std::size_t i = base; i < end; ++i) {
        // Poll here as well as in descend(): one descend can enumerate
        // tens of thousands of splits on wide cones, and each resolved
        // split costs a full child recursion — per-descend polling alone
        // lets a deadline slip by seconds.
        ctx_.tick();
        if (ctx_.stop) {
          return;
        }
        try_split(pos, g, child_a, child_b, *resolved[i - base]);
      }
    }
  }

  [[nodiscard]] std::optional<std::uint32_t> fixed_cone(int child) const {
    if (child == kPiSlot) {
      return std::nullopt;
    }
    const auto& st = gates_[static_cast<std::size_t>(child)];
    if (st.has_requirement) {
      return st.req.cone;
    }
    return std::nullopt;
  }

  /// Recurses into every factorization of one already-resolved split.
  void try_split(std::size_t pos, int g, int child_a, int child_b,
                 const std::vector<factorization>& factorizations) {
    const auto slot_ids = slots_.of_gate[static_cast<std::size_t>(g)];
    for (const auto& f : factorizations) {
      if (ctx_.stop) {
        return;
      }
      // Snapshot the state touched by this branch.
      auto& gate = gates_[static_cast<std::size_t>(g)];
      const gate_state saved_gate = gate;
      gate.decomposed = true;
      gate.family = f.family;
      gate.complemented = f.output_complemented;

      apply_child(g, 0, child_a, slot_ids[0], f.left, [&](bool ok_left) {
        if (!ok_left) {
          return;
        }
        apply_child(g, 1, child_b, slot_ids[1], f.right,
                    [&](bool ok_right) {
                      if (ok_right) {
                        descend(pos + 1);
                      }
                    });
      });
      gate = saved_gate;
    }
  }

  /// Applies a child requirement (branching over slot polarities when the
  /// child is a PI slot) and invokes `k(true)` for every viable variant;
  /// state changes are rolled back before returning.
  template <typename K>
  void apply_child(int g, int pos, int child, int slot_id,
                   const requirement& child_req, K&& k) {
    if (child == kPiSlot) {
      // The cone is a single variable; try both literal polarities.
      const std::uint32_t cone = child_req.cone;
      assert(std::popcount(cone) == 1);
      const unsigned v = static_cast<unsigned>(std::countr_zero(cone));
      const auto positive = tt::truth_table::nth_var(ctx_.num_vars, v);
      auto& slot = slot_states_[static_cast<std::size_t>(slot_id)];
      const slot_state saved = slot;
      bool any = false;
      if (child_req.func.accepts(positive)) {
        slot = slot_state{static_cast<int>(v), false};
        any = true;
        k(true);
      }
      if (ctx_.stop) {
        slot = saved;
        return;
      }
      if (child_req.func.accepts(~positive)) {
        slot = slot_state{static_cast<int>(v), true};
        any = true;
        k(true);
      }
      slot = saved;
      if (!any) {
        k(false);
      }
      return;
    }
    auto& st = gates_[static_cast<std::size_t>(child)];
    auto& parent = gates_[static_cast<std::size_t>(g)];
    const gate_state saved = st;
    const bool saved_neg = parent.child_negated[static_cast<std::size_t>(pos)];

    tt::isf incoming = child_req.func;
    if (ctx_.options.normalize_polarity) {
      // Canonical polarity: the child signal must be normal (0 on the
      // all-zeros row).  If the requirement forces a 1 there, demand the
      // complement instead and fold the inversion into this gate's LUT;
      // if the row is a don't-care, pin it to 0.
      const bool care0 = incoming.careset().get_bit(0);
      const bool on0 = incoming.onset().get_bit(0);
      if (care0 && on0) {
        incoming = incoming.complement();
        parent.child_negated[static_cast<std::size_t>(pos)] = true;
      } else if (!care0) {
        auto care = incoming.careset();
        care.set_bit(0, true);
        incoming = tt::isf{incoming.onset(), care};
      }
    }

    if (st.has_requirement) {
      assert(st.req.cone == child_req.cone);
      const auto merged = st.req.func.intersect(incoming);
      if (!merged) {
        parent.child_negated[static_cast<std::size_t>(pos)] = saved_neg;
        k(false);
        return;
      }
      st.req.func = *merged;
    } else {
      st.has_requirement = true;
      st.req = requirement{child_req.cone, incoming};
    }
    st.req_hash = st.req.cone * 0x9E3779B97F4A7C15ull + st.req.func.hash();
    k(true);
    st = saved;
    parent.child_negated[static_cast<std::size_t>(pos)] = saved_neg;
  }

  /// All gates decomposed: build the concrete chain, verify it with the
  /// circuit AllSAT solver + simulation, and record it.
  void emit() {
    ++ctx_.stats.candidates;
    chain::boolean_chain candidate{ctx_.num_vars};
    std::vector<std::uint32_t> signal_of_gate(dag_.gates.size());
    for (std::size_t g = 0; g < dag_.gates.size(); ++g) {
      const auto& topo_gate = dag_.gates[g];
      const auto slot_ids = slots_.of_gate[g];
      const auto& st = gates_[g];
      std::uint32_t fanin_signal[2];
      bool fanin_negated[2];
      for (int pos = 0; pos < 2; ++pos) {
        const int fi = topo_gate.fanin[static_cast<std::size_t>(pos)];
        if (fi == kPiSlot) {
          const auto& slot = slot_states_[static_cast<std::size_t>(
              slot_ids[static_cast<std::size_t>(pos)])];
          fanin_signal[pos] = static_cast<std::uint32_t>(slot.var);
          fanin_negated[pos] = slot.negated;
        } else {
          fanin_signal[pos] = signal_of_gate[static_cast<std::size_t>(fi)];
          fanin_negated[pos] =
              st.child_negated[static_cast<std::size_t>(pos)];
        }
      }
      unsigned op = 0;
      for (unsigned pattern = 0; pattern < 4; ++pattern) {
        const bool a = ((pattern & 1) != 0) != fanin_negated[0];
        const bool b = ((pattern >> 1) != 0) != fanin_negated[1];
        bool out = st.family == op_family::and_like ? (a && b) : (a != b);
        out = out != st.complemented;
        if (out) {
          op |= 1u << pattern;
        }
      }
      signal_of_gate[g] =
          candidate.add_step(op, fanin_signal[0], fanin_signal[1]);
    }
    if (ctx_.multi != nullptr) {
      emit_multi(candidate, signal_of_gate);
      return;
    }
    candidate.set_output(signal_of_gate.back());

    if (!solution_is_new(candidate)) {
      return;
    }
    // Section III-C judging: AllSAT over the candidate network, simulate
    // the solution set (f_s), and check it against the specification —
    // acceptance by the ISF generalizes the paper's equality test.
    const auto realized = candidate.simulate();
    if (!ctx_.target.accepts(realized)) {
      return;
    }
    const auto allsat_result = allsat::solve_all(candidate, true, &ctx_.rc);
    if (allsat::solutions_to_function(ctx_.num_vars,
                                      allsat_result.solutions) != realized) {
      return;
    }
    ++ctx_.stats.verified;
    ctx_.solutions.push_back(std::move(candidate));
    if (ctx_.options.max_solutions != 0 &&
        ctx_.solutions.size() >= ctx_.options.max_solutions) {
      ctx_.stop = true;
    }
  }

  /// Multi-output candidate: bind the assigned fanout-free gates, match
  /// the remaining targets against interior signals (smallest signal,
  /// exact before complemented — a deterministic canonical choice), then
  /// verify and record.  A candidate whose interior realizes no match for
  /// some output is simply not a solution of the multi-output spec.
  void emit_multi(chain::boolean_chain& candidate,
                  const std::vector<std::uint32_t>& signal_of_gate) {
    const auto& fs = *ctx_.multi;
    const auto sims = candidate.simulate_all();
    std::vector<chain::output_ref> outs(fs.size());
    for (std::size_t h = 0; h < fs.size(); ++h) {
      if (root_of_output_[h] >= 0) {
        const auto sig =
            signal_of_gate[static_cast<std::size_t>(root_of_output_[h])];
        const bool c = root_output_inverted_[h];
        if ((c ? ~sims[sig] : sims[sig]) != fs[h]) {
          return;  // factorization slack (ISF requirements): reject
        }
        outs[h] = chain::output_ref{sig, c};
        continue;
      }
      bool found = false;
      for (std::uint32_t sig = 0; sig < sims.size() && !found; ++sig) {
        if (sims[sig] == fs[h]) {
          outs[h] = chain::output_ref{sig, false};
          found = true;
        } else if (~sims[sig] == fs[h]) {
          outs[h] = chain::output_ref{sig, true};
          found = true;
        }
      }
      if (!found) {
        return;
      }
    }
    candidate.set_outputs(std::move(outs));
    if (!solution_is_new(candidate)) {
      return;
    }
    // Section III-C judging over the multi-output network: Algorithm 1's
    // PO loop drives every output to 1; the merged solution set must
    // simulate to the conjunction of the output functions.
    allsat::lut_network net;
    net.num_inputs = candidate.num_inputs();
    net.steps = candidate.steps();
    auto conjunction = tt::truth_table::constant(ctx_.num_vars, true);
    for (const auto& o : candidate.outputs()) {
      net.outputs.push_back(allsat::lut_network::output{o.signal,
                                                        o.complemented});
      conjunction =
          conjunction & (o.complemented ? ~sims[o.signal] : sims[o.signal]);
    }
    const auto allsat_result = allsat::solve_all(
        net, std::vector<bool>(net.outputs.size(), true), &ctx_.rc);
    if (allsat::solutions_to_function(
            ctx_.num_vars, allsat_result.solutions) != conjunction) {
      return;
    }
    ++ctx_.stats.verified;
    ctx_.solutions.push_back(std::move(candidate));
    if (ctx_.options.max_solutions != 0 &&
        ctx_.solutions.size() >= ctx_.options.max_solutions) {
      ctx_.stop = true;
    }
  }

  bool solution_is_new(const chain::boolean_chain& candidate) {
    return ctx_.solution_hashes.insert(candidate.hash());
  }

  search_context& ctx_;
  const dag_topology& dag_;
  slot_index_map slots_;
  std::vector<unsigned> capacity_;
  std::vector<unsigned> cone_gates_;
  std::vector<int> order_;
  std::vector<std::uint64_t> suffix_hash_;
  std::vector<std::string> subtree_sig_;
  std::vector<bool> symmetric_children_;
  std::vector<gate_state> gates_;
  std::vector<slot_state> slot_states_;
  /// Multi mode, per output: fanout-free gate bound to it (-1 = matched
  /// against interior signals at emit time) and the polarity inversion
  /// folded onto the output flag by root normalization.
  std::vector<int> root_of_output_;
  std::vector<bool> root_output_inverted_;
};

/// DAGs per worker task.  Fixed (thread-count independent) so the chunk
/// boundaries, the memo snapshots each task sees, and the task-order merge
/// are identical no matter how many workers execute the tasks.
constexpr std::size_t kLevelChunk = 64;

/// One worker task's private output, merged in task order after the join.
struct task_output {
  std::vector<chain::boolean_chain> solutions;
  stp_stats stats;
  core::stage_counters counters;
  factor_memo memo_delta;
  util::flat_set64 failed_delta;
  // Set when the task observed a cancel or deadline: factorizations abort
  // mid-enumeration under cancellation, so the deltas may record states as
  // "failed" (or memoize factor lists) that were never exhaustively
  // refuted — unsound to carry into later levels.
  bool tainted = false;
};

void accumulate(stp_stats& into, const stp_stats& from) {
  into.fences += from.fences;
  into.dags += from.dags;
  into.partitions_tried += from.partitions_tried;
  into.factorizations += from.factorizations;
  into.candidates += from.candidates;
  into.verified += from.verified;
}

/// Runs one gate-count level over the materialized candidate DAGs, fanning
/// fixed contiguous chunks across `pool` (or inline when null).
///
/// Determinism contract: every task reads only the level-start snapshot of
/// `memo` / `failed` plus its private delta, chunk boundaries depend only
/// on `dags.size()`, and solutions are committed strictly in task order
/// (deduplicated, capped) — so the returned solution list is bit-identical
/// at any thread count, and with `max_solutions == 0` the merged counters
/// are too.  The in-order commit runs concurrently with later tasks so a
/// solution-cap hit cancels the rest of the level early via `level_rc`.
std::vector<chain::boolean_chain> run_level(
    const stp_options& options, const tt::isf& target, std::uint32_t root_cone,
    unsigned num_vars, const std::vector<tt::truth_table>* multi,
    const std::vector<dag_topology>& dags, core::run_context& rc,
    stp_stats& stats, factor_memo& memo,
    util::flat_set64& failed, service::thread_pool* pool) {
  const std::size_t num_tasks = (dags.size() + kLevelChunk - 1) / kLevelChunk;
  std::vector<task_output> outputs(num_tasks);
  // Level-local cancel hub: a child of `rc`, so external cancels and the
  // deadline propagate down, while a solution-cap hit cancels only the
  // remainder of this level.
  core::run_context level_rc(&rc);

  std::mutex commit_mutex;
  std::condition_variable tasks_cv;
  std::size_t tasks_finished = 0;
  std::vector<char> task_done(num_tasks, 0);
  std::size_t committed = 0;
  util::flat_set64 merged_hashes;
  std::vector<chain::boolean_chain> merged;
  // Commits the ready in-order prefix of task solutions; caller holds the
  // commit mutex.
  const auto commit_ready = [&] {
    while (committed < num_tasks && task_done[committed] != 0) {
      for (auto& c : outputs[committed].solutions) {
        if (options.max_solutions != 0 &&
            merged.size() >= options.max_solutions) {
          break;
        }
        if (merged_hashes.insert(c.hash())) {
          merged.push_back(std::move(c));
          if (options.max_solutions != 0 &&
              merged.size() >= options.max_solutions) {
            level_rc.request_cancel();
          }
        }
      }
      outputs[committed].solutions.clear();
      ++committed;
    }
  };

  const auto run_task = [&](std::size_t task_idx) {
    task_output& out = outputs[task_idx];
    if (level_rc.should_stop()) {
      // Cap hit, external cancel, or deadline: skip the chunk entirely so
      // the level winds down without paying a tick stride per task.  The
      // slot still commits (empty) to keep the in-order merge moving.
      {
        const std::lock_guard<std::mutex> lock(commit_mutex);
        task_done[task_idx] = 1;
        commit_ready();
        ++tasks_finished;
      }
      tasks_cv.notify_all();
      return;
    }
    core::run_context task_rc(&level_rc);
    search_context ctx{options,        target,           root_cone,
                       num_vars,       multi,            task_rc,
                       out.stats,      memo,             out.memo_delta,
                       failed,         out.failed_delta, {},
                       {},             {}};
    const std::size_t begin = task_idx * kLevelChunk;
    const std::size_t end = std::min(begin + kLevelChunk, dags.size());
    for (std::size_t i = begin; i < end && !ctx.stop; ++i) {
      dag_search search{ctx, dags[i]};
      search.run();
    }
    out.solutions = std::move(ctx.solutions);
    out.counters = task_rc.counters;
    out.tainted = task_rc.should_stop();
    {
      const std::lock_guard<std::mutex> lock(commit_mutex);
      task_done[task_idx] = 1;
      commit_ready();
      ++tasks_finished;
    }
    tasks_cv.notify_all();
  };

  if (pool == nullptr) {
    for (std::size_t t = 0; t < num_tasks; ++t) {
      if (level_rc.should_stop()) {
        break;  // cap hit, external cancel, or deadline: skip the rest
      }
      run_task(t);
    }
  } else {
    for (std::size_t t = 0; t < num_tasks; ++t) {
      try {
        pool->submit([&run_task, t] { run_task(t); });
      } catch (const std::exception&) {
        run_task(t);  // pool rejected the task (shutdown/failpoint)
      }
    }
    // Wait on the level's own completion latch, not `pool->wait_idle()`:
    // in portfolio mode the pool also carries the concurrent lower-bound
    // probe task, whose lifetime this level must not block on.
    std::unique_lock<std::mutex> lock(commit_mutex);
    tasks_cv.wait(lock, [&] { return tasks_finished == num_tasks; });
  }

  // Fold the private deltas back in task order: stats and counters become
  // thread-count independent, and the memos carry over to the next level.
  for (auto& out : outputs) {
    accumulate(stats, out.stats);
    rc.counters += out.counters;
    if (out.tainted) {
      continue;  // cancelled mid-chunk: deltas may be truncated, drop them
    }
    memo.merge_from(std::move(out.memo_delta), options.factor_memo_cap);
    if (options.failed_memo_cap == 0 ||
        failed.size() + out.failed_delta.size() <= options.failed_memo_cap) {
      out.failed_delta.for_each(
          [&](std::uint64_t key) { failed.insert(key); });
    } else {
      out.failed_delta.for_each([&](std::uint64_t key) {
        if (failed.size() < options.failed_memo_cap) {
          failed.insert(key);
        }
      });
    }
  }
  return merged;
}

/// Materializes the candidate DAGs of one gate count, honouring the
/// per-size cap with the same accounting as the sequential sweep.
std::vector<dag_topology> materialize_level_dags(
    const stp_options& options, const fence::dag_options& dag_opts,
    const std::vector<fence::fence>& fences, core::run_context& rc,
    stp_stats& stats) {
  std::vector<dag_topology> level_dags;
  std::size_t dag_count = 0;
  for (const auto& fc : fences) {
    if (rc.should_stop()) {
      break;
    }
    for (auto& dag : fence::generate_dags(fc, dag_opts, &rc)) {
      ++stats.dags;
      ++dag_count;
      if (options.max_dags_per_size != 0 &&
          dag_count > options.max_dags_per_size) {
        break;
      }
      level_dags.push_back(std::move(dag));
    }
  }
  // Sweep order heuristic: the fence enumerator emits the narrow, deep
  // topologies first and the wide, high-PI-capacity shapes last, and on
  // hard instances the realizable topologies concentrate in the latter.
  // Reversing surfaces first optimum chains orders of magnitude sooner
  // (sub-second instead of 20s+ on the hard NPN4 classes) while leaving
  // the swept set — and therefore the complete solution set of a finished
  // level — unchanged.  The order is still a fixed permutation of the
  // generation order, so chunking and the merged results stay
  // deterministic and thread-count independent.
  if (options.reverse_dag_sweep) {
    std::reverse(level_dags.begin(), level_dags.end());
  }
  return level_dags;
}

/// Resolves the worker count: the spec override wins, 0 means one worker
/// per hardware thread.
unsigned resolve_threads(unsigned spec_threads, unsigned option_threads) {
  unsigned resolved = spec_threads != 0 ? spec_threads : option_threads;
  if (resolved == 0) {
    resolved = std::max(1u, std::thread::hardware_concurrency());
  }
  return resolved;
}

/// One portfolio level: the CNF probe races the STP sweep, first proof
/// wins, loser cancelled through its child run_context.
///
/// The probe runs as one pool task under `probe_rc`; the sweep runs on the
/// calling thread (fanning chunks over `sweep_pool` when non-null) under
/// `sweep_rc`.  A probe-infeasible verdict cancels `sweep_rc` — sound and
/// *result-preserving*, because infeasible levels have no solutions to
/// lose; the sweep finishing first just makes the probe's answer moot and
/// the probe is cancelled on the way out (observed within one solver poll
/// stride).  Either way both sides are joined before returning, so the
/// child counters merge race-free into `rc`.
std::vector<chain::boolean_chain> run_portfolio_level(
    const stp_options& options, const lower_bound_prober& prober,
    const tt::isf& target, std::uint32_t root_cone, unsigned num_vars,
    const std::vector<tt::truth_table>* multi, unsigned gates,
    const std::vector<dag_topology>& dags, core::run_context& rc,
    stp_stats& stats, factor_memo& memo,
    util::flat_set64& failed, service::thread_pool& pool,
    service::thread_pool* sweep_pool,
    std::optional<chain::boolean_chain>& witness) {
  core::run_context probe_rc(&rc);
  core::run_context sweep_rc(&rc);

  std::mutex race_mutex;
  std::condition_variable race_cv;
  bool probe_done = false;
  bool sweep_done = false;
  bool probe_won = false;
  probe_result probe_out;

  bool probe_running = true;
  try {
    pool.submit([&] {
      const auto verdict = multi != nullptr
                               ? prober.probe_multi(*multi, gates, &probe_rc)
                               : prober.probe(target, gates, &probe_rc);
      {
        const std::lock_guard<std::mutex> lock(race_mutex);
        probe_out = verdict;
        probe_done = true;
        if (verdict.verdict == probe_verdict::infeasible && !sweep_done) {
          probe_won = true;
          sweep_rc.request_cancel();
        }
        // Notify under the lock: the waiter owns this cv's stack frame and
        // destroys it as soon as the predicate holds, so an unlocked notify
        // could race the destructor.
        race_cv.notify_all();
      }
    });
  } catch (const std::exception&) {
    probe_running = false;  // pool rejected (shutdown/failpoint): sweep only
  }

  auto solutions = run_level(options, target, root_cone, num_vars, multi,
                             dags, sweep_rc, stats, memo, failed, sweep_pool);
  {
    const std::lock_guard<std::mutex> lock(race_mutex);
    sweep_done = true;
  }
  probe_rc.request_cancel();
  if (probe_running) {
    std::unique_lock<std::mutex> lock(race_mutex);
    race_cv.wait(lock, [&] { return probe_done; });
  }

  rc.counters += probe_rc.counters;
  rc.counters += sweep_rc.counters;
  if (probe_out.verdict == probe_verdict::feasible) {
    ++rc.counters.probe_sat_levels;
    witness = std::move(probe_out.witness);
  }
  if (probe_won) {
    ++rc.counters.probe_unsat_levels;
    ++rc.counters.portfolio_probe_wins;
  } else if (probe_running && !rc.should_stop()) {
    ++rc.counters.portfolio_sweep_wins;
  }
  return solutions;
}

/// The shared ascending-size sweep behind `run` and `run_with_dont_cares`:
/// per gate count, materialize the pruned topologies and decide the level
/// with the configured `stp_level_engine`.  Sets `out`'s outcome, optimum,
/// chains (un-lifted), and completeness flag.
void run_size_sweep(const stp_options& options, const tt::isf& target,
                    std::uint32_t root_cone, unsigned num_vars,
                    const std::vector<tt::truth_table>* multi,
                    unsigned start_gates, unsigned max_gates,
                    core::run_context& rc, stp_stats& stats,
                    service::thread_pool* pool,
                    service::thread_pool* sweep_pool, result& out) {
  const unsigned max_outputs =
      multi != nullptr ? static_cast<unsigned>(multi->size()) : 1;
  fence::dag_options dag_opts;
  dag_opts.allow_shared_gates = options.allow_shared_gates;
  dag_opts.limit = options.max_dags_per_size;
  dag_opts.max_outputs = max_outputs;

  // The factorization memo and the failure memo are sound across gate
  // counts (their keys are self-contained), so they persist over the
  // whole size sweep.
  factor_memo memo;
  util::flat_set64 failed_states;
  const lower_bound_prober prober{options.probe};

  for (unsigned gates = start_gates; gates <= max_gates; ++gates) {
    if (rc.should_stop()) {
      out.outcome = status::timeout;
      return;
    }
    std::optional<chain::boolean_chain> witness;
    if (options.engine == stp_level_engine::probe_sweep) {
      // Pre-sweep gate: one CNF call per pruned fence refutes the whole
      // level; `unknown` (budget/size cutoff) falls through to the sweep,
      // so the probe can only skip work, never change the result.
      auto pr = multi != nullptr ? prober.probe_multi(*multi, gates, &rc)
                                 : prober.probe(target, gates, &rc);
      if (pr.verdict == probe_verdict::infeasible) {
        ++rc.counters.probe_unsat_levels;
        continue;  // no DAG of this level is materialized or swept
      }
      if (pr.verdict == probe_verdict::feasible) {
        ++rc.counters.probe_sat_levels;
        witness = std::move(pr.witness);
      }
    }
    const auto fences =
        options.use_fence_pruning
            ? (multi != nullptr
                   ? fence::pruned_fences_multi(gates, max_outputs, &rc)
                   : fence::pruned_fences(gates, &rc))
            : fence::all_fences(gates, &rc);
    stats.fences += fences.size();
    const auto level_dags =
        materialize_level_dags(options, dag_opts, fences, rc, stats);
    auto solutions =
        options.engine == stp_level_engine::portfolio && pool != nullptr
            ? run_portfolio_level(options, prober, target, root_cone,
                                  num_vars, multi, gates, level_dags, rc,
                                  stats, memo, failed_states, *pool,
                                  sweep_pool, witness)
            : run_level(options, target, root_cone, num_vars, multi,
                        level_dags, rc, stats, memo, failed_states,
                        sweep_pool);

    // Reaching this level at all proves every smaller gate count was
    // exhausted without a solution, so any chain found here is optimum —
    // even when the deadline cut the level's sweep short.  A cut sweep
    // only makes the *set* partial, which `enumeration_complete = false`
    // records; this matches what single-solution CNF engines count as
    // solved.  Only a level interrupted before its first verified chain
    // is a genuine timeout.  (A solution-cap stop cancels only
    // `level_rc`, not `rc`, so capped runs report a complete
    // enumeration under their configured cap.)
    if (!solutions.empty()) {
      out.outcome = status::success;
      out.optimum_gates = gates;
      out.enumeration_complete = !rc.should_stop();
      out.chains = std::move(solutions);
      return;
    }
    if (rc.should_stop()) {
      // The deadline cut this level before the sweep surfaced a chain.
      // If the probe already answered `feasible`, its SAT model is a
      // chain of exactly `gates` steps; re-verified against the
      // requirement it salvages a proven-optimum partial success —
      // every smaller level was exhausted above, this level is realized.
      const auto witness_ok = [&] {
        if (!witness.has_value()) {
          return false;
        }
        if (multi == nullptr) {
          return ((witness->simulate() ^ target.onset()) & target.careset())
              .is_const0();
        }
        if (witness->num_outputs() != multi->size()) {
          return false;
        }
        const auto sims = witness->simulate_outputs();
        for (std::size_t h = 0; h < multi->size(); ++h) {
          if (sims[h] != (*multi)[h]) {
            return false;
          }
        }
        return true;
      };
      if (witness_ok()) {
        out.outcome = status::success;
        out.optimum_gates = gates;
        out.enumeration_complete = false;
        out.chains = {std::move(*witness)};
        return;
      }
      out.outcome = status::timeout;
      return;
    }
  }
  out.outcome = status::failure;
}

}  // namespace

stp_engine::stp_engine(stp_options options) : options_(options) {}

result stp_engine::run(const spec& s) {
  util::stopwatch watch;
  stats_ = stp_stats{};
  result out;

  core::run_context local_rc;
  core::run_context& rc = s.ctx != nullptr ? *s.ctx : local_rc;
  const core::stage_counters at_start = rc.counters;
  const auto finish = [&](result& r) -> result& {
    r.seconds = watch.elapsed_seconds();
    r.counters = rc.counters - at_start;
    return r;
  };

  const auto targets = s.targets();

  const unsigned threads = resolve_threads(s.num_threads, options_.num_threads);
  // Portfolio mode needs a pool even single-threaded (the probe task);
  // the sweep then runs inline so the probe is not queued behind it.
  std::optional<service::thread_pool> pool;
  if (threads > 1 || options_.engine == stp_level_engine::portfolio) {
    pool.emplace(threads);
  }
  service::thread_pool* sweep_pool = threads > 1 ? &*pool : nullptr;

  if (targets.size() >= 2) {
    // Multi-output sweep over the union support.  The caller (core
    // pre-pass) guarantees non-degenerate, pairwise-distinct targets.
    std::vector<unsigned> old_of_new;
    const auto fs = shrink_for_synthesis(targets, old_of_new);
    const unsigned n = fs.front().num_vars();
    // Placeholder root requirement: the multi path seeds every dangling
    // gate from `fs` instead, but the context holds a reference.
    const tt::isf target = tt::isf::from_function(fs.front());
    const std::uint32_t root_cone = (1u << n) - 1;
    run_size_sweep(options_, target, root_cone, n, &fs,
                   std::max(1u, trivial_lower_bound(fs)), s.max_gates, rc,
                   stats_, pool ? &*pool : nullptr, sweep_pool, out);
    for (auto& c : out.chains) {
      c = lift_chain_to_original(c, old_of_new, targets.front().num_vars());
    }
    return finish(out);
  }

  std::vector<unsigned> old_of_new;
  const auto f = shrink_for_synthesis(targets.front(), old_of_new);
  const unsigned n = f.num_vars();

  const tt::isf target = tt::isf::from_function(f);
  const std::uint32_t root_cone = (1u << n) - 1;
  run_size_sweep(options_, target, root_cone, n, nullptr,
                 std::max(1u, n - 1), s.max_gates, rc, stats_,
                 pool ? &*pool : nullptr, sweep_pool, out);
  for (auto& c : out.chains) {
    c = lift_chain_to_original(c, old_of_new, targets.front().num_vars());
  }
  return finish(out);
}

result stp_engine::run_with_dont_cares(const tt::isf& target,
                                       core::run_context* run_ctx,
                                       unsigned max_gates) {
  util::stopwatch watch;
  stats_ = stp_stats{};
  result out;
  const unsigned n = target.num_vars();

  core::run_context local_rc;
  core::run_context& rc = run_ctx != nullptr ? *run_ctx : local_rc;
  const core::stage_counters at_start = rc.counters;
  const auto finish = [&](result& r) -> result& {
    r.seconds = watch.elapsed_seconds();
    r.counters = rc.counters - at_start;
    return r;
  };

  // Degenerate acceptances first: constants and literals.
  for (const bool value : {false, true}) {
    if (target.accepts(tt::truth_table::constant(n, value))) {
      (void)synthesize_degenerate(tt::truth_table::constant(n, value), out);
      return finish(out);
    }
  }
  for (unsigned v = 0; v < n; ++v) {
    for (const bool complemented : {false, true}) {
      const auto literal = tt::truth_table::nth_var(n, v, complemented);
      if (target.accepts(literal)) {
        (void)synthesize_degenerate(literal, out);
        return finish(out);
      }
    }
  }

  // Root cone: the variables some completion needs.  If the requirement
  // projects onto its required support, that is the tightest sound cone;
  // otherwise (pairwise-consistent but jointly inconsistent) fall back to
  // all inputs.
  tt::isf root = target;
  std::uint32_t cone = (1u << n) - 1;
  const auto required = target.required_support_mask();
  if (required != 0) {
    if (const auto projected = target.project_to_cone(required)) {
      root = *projected;
      cone = required;
    }
  }

  const unsigned threads = resolve_threads(0, options_.num_threads);
  std::optional<service::thread_pool> pool;
  if (threads > 1 || options_.engine == stp_level_engine::portfolio) {
    pool.emplace(threads);
  }
  service::thread_pool* sweep_pool = threads > 1 ? &*pool : nullptr;

  // Every accepted completion depends on all *required* variables, so
  // |required| - 1 is a sound lower bound even when the cone fell back to
  // the full input set.
  const unsigned lower = static_cast<unsigned>(
      std::max(1, std::popcount(required) - 1));
  // The probe receives the same (cone-projected) requirement the sweep
  // decides: infeasibility of the k-gate question over all n inputs
  // subsumes the cone-restricted sweep, so a skipped level is sound.
  run_size_sweep(options_, root, cone, n, nullptr, lower, max_gates, rc,
                 stats_, pool ? &*pool : nullptr, sweep_pool, out);
  return finish(out);
}

result stp_synthesize(const spec& s) {
  stp_engine engine;
  return engine.run(s);
}

}  // namespace stpes::synth
