/// \file factor_memo.hpp
/// \brief Per-run memo of requirement factorizations.
///
/// The DAG search re-derives the same child requirements across thousands
/// of candidate topologies that share sub-structure; the memo caches the
/// complete answer of `factor_requirement` for every query it has seen —
/// including the empty list, which is a real UNSAT verdict for the split,
/// not a cache miss.  Keys are full (no lossy hashing): a collision could
/// silently drop solutions, and the key is a handful of inline words.
///
/// Concurrency model: during one gate-count level of the parallel sweep
/// the memo accumulated from previous levels is immutable and read by all
/// worker tasks; each task records its new entries in a private delta
/// memo, and the deltas are folded back in task order once the workers
/// have joined.  That keeps every lookup lock-free and the hit/miss
/// counters bit-identical at any thread count.

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "synth/factorize.hpp"
#include "tt/truth_table.hpp"

namespace stpes::synth {

/// Full key of one factorization query: the requirement (cone + ISF) and
/// the fixed child cone split.  Deliberately NOT canonicalized under
/// (cone_a, cone_b) exchange: the per-family branch caps truncate the
/// enumeration order-dependently, so a mirrored query can legitimately
/// yield a different surviving branch set.
struct factor_key {
  std::uint32_t cone = 0;
  std::uint32_t cone_a = 0;
  std::uint32_t cone_b = 0;
  tt::truth_table onset;
  tt::truth_table careset;

  bool operator==(const factor_key& other) const {
    return cone == other.cone && cone_a == other.cone_a &&
           cone_b == other.cone_b && onset == other.onset &&
           careset == other.careset;
  }
};

struct factor_key_hash {
  std::size_t operator()(const factor_key& k) const;
};

/// Maps factorization queries to their complete (possibly empty) branch
/// lists.  Values are shared_ptr so callers hold results alive for free
/// across rehashes and across the thread-pool merge.
class factor_memo {
public:
  using factorizations_ptr = std::shared_ptr<const std::vector<factorization>>;

  /// Looks up `key`; nullptr when the query was never solved.  A non-null
  /// result pointing at an empty vector is a cached UNSAT verdict.
  [[nodiscard]] const factorizations_ptr* find(const factor_key& key) const;

  /// Records the answer for `key`; an existing entry is kept (identical by
  /// construction — `factor_requirement` is a pure function of the key).
  void insert(factor_key key, factorizations_ptr value);

  /// Adopts entries of `delta` not already present, stopping once this
  /// memo holds `cap` entries (0 = unlimited).  Called once per worker
  /// task, in task order, after a parallel level has joined; the cap keeps
  /// the merged memo within the same bound the tasks honoured locally.
  void merge_from(factor_memo&& delta, std::size_t cap = 0);

  [[nodiscard]] std::size_t size() const { return map_.size(); }

private:
  std::unordered_map<factor_key, factorizations_ptr, factor_key_hash> map_;
};

}  // namespace stpes::synth
