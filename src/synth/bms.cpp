#include "synth/bms.hpp"

#include "synth/ssv_encoding.hpp"

namespace stpes::synth {

result bms_engine::run(const spec& s) {
  util::stopwatch watch;
  stats_ = bms_stats{};
  result out;

  core::run_context local_rc;
  core::run_context& rc = s.ctx != nullptr ? *s.ctx : local_rc;
  const core::stage_counters at_start = rc.counters;
  const auto finish = [&](result& r) -> result& {
    r.seconds = watch.elapsed_seconds();
    r.counters = rc.counters - at_start;
    return r;
  };

  const auto targets = s.targets();
  if (targets.size() >= 2) {
    // Multi-output path: union-support shrink, multi-output SSV encoding.
    // The caller (core pre-pass) guarantees every target is non-degenerate
    // and pairwise distinct modulo complement.
    std::vector<unsigned> old_of_new;
    const auto fs = shrink_for_synthesis(targets, old_of_new);
    for (unsigned gates = std::max(1u, trivial_lower_bound(fs));
         gates <= s.max_gates; ++gates) {
      if (rc.should_stop()) {
        out.outcome = status::timeout;
        return finish(out);
      }
      sat::solver solver;
      solver.set_run_context(&rc);
      ssv_encoding encoding{solver, fs, gates};
      encoding.encode_structure();
      encoding.encode_all_rows();
      ++stats_.solver_calls;
      const auto answer = solver.solve();
      stats_.conflicts += solver.stats().conflicts;
      if (answer == sat::solve_result::sat) {
        out.outcome = status::success;
        out.optimum_gates = gates;
        out.chains = {lift_chain_to_original(encoding.extract_chain(false),
                                             old_of_new,
                                             targets.front().num_vars())};
        return finish(out);
      }
      if (answer == sat::solve_result::unknown) {
        out.outcome = status::timeout;
        return finish(out);
      }
    }
    out.outcome = status::failure;
    return finish(out);
  }

  std::vector<unsigned> old_of_new;
  auto f = shrink_for_synthesis(targets.front(), old_of_new);
  const bool complemented = f.get_bit(0);
  if (complemented) {
    f = ~f;  // synthesize the normal complement
  }

  for (unsigned gates = std::max(1u, trivial_lower_bound(f));
       gates <= s.max_gates; ++gates) {
    if (rc.should_stop()) {
      out.outcome = status::timeout;
      return finish(out);
    }
    sat::solver solver;
    solver.set_run_context(&rc);
    ssv_encoding encoding{solver, f, gates};
    encoding.encode_structure();
    encoding.encode_all_rows();
    ++stats_.solver_calls;
    const auto answer = solver.solve();
    stats_.conflicts += solver.stats().conflicts;
    if (answer == sat::solve_result::sat) {
      out.outcome = status::success;
      out.optimum_gates = gates;
      out.chains = {lift_chain_to_original(encoding.extract_chain(complemented),
                                           old_of_new,
                                           targets.front().num_vars())};
      return finish(out);
    }
    if (answer == sat::solve_result::unknown) {
      out.outcome = status::timeout;
      return finish(out);
    }
  }
  out.outcome = status::failure;
  return finish(out);
}

result bms_synthesize(const spec& s) {
  bms_engine engine;
  return engine.run(s);
}

}  // namespace stpes::synth
