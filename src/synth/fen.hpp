/// \file fen.hpp
/// \brief FEN baseline: fence-constrained SSV exact synthesis.
///
/// The Table-I FEN column [3,4]: the SSV encoding is solved once per
/// pruned Boolean fence, with each step pinned to a fence level and fanin
/// pairs restricted so that every step takes at least one fanin from the
/// level directly below.  The added topological constraints shrink the
/// search space dramatically compared to BMS.

#pragma once

#include "synth/spec.hpp"

namespace stpes::synth {

struct fen_stats {
  std::uint64_t fences = 0;
  std::uint64_t solver_calls = 0;
  std::uint64_t conflicts = 0;
};

class fen_engine {
public:
  result run(const spec& s);
  [[nodiscard]] const fen_stats& stats() const { return stats_; }

private:
  fen_stats stats_;
};

result fen_synthesize(const spec& s);

}  // namespace stpes::synth
