#include "synth/factorize.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <numeric>
#include <utility>

#include "tt/kernels/kernels.hpp"

namespace stpes::synth {

namespace {

/// Expands a variable mask into a minterm-assignment mask.  Minterm bit v
/// is exactly the value of variable v, so this is the variable mask
/// restricted to the function's inputs.
std::uint64_t assignment_mask(std::uint32_t var_mask, unsigned num_vars) {
  return var_mask & ((std::uint64_t{1} << num_vars) - 1);
}

/// Builds a child ISF from its class-replicated forced-one set and a
/// forced-zero set that carries at least one representative bit per
/// forced-zero class: smoothing over the variables outside the cone
/// replicates every zero across its whole minterm class.
tt::isf child_isf(const tt::truth_table& one_full, const tt::truth_table& zero,
                  std::uint32_t cone) {
  const tt::truth_table zero_full = zero.smooth_over(~cone);
  return tt::isf{one_full, one_full | zero_full};
}

/// Calls `fn(m)` for every set minterm of `table`, in minterm order.
template <typename Fn>
void for_each_one(const tt::truth_table& table, Fn&& fn) {
  const auto& words = table.words();
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    for (std::uint64_t w = words[wi]; w != 0; w &= w - 1) {
      fn((std::uint64_t{wi} << 6) +
         static_cast<std::uint64_t>(std::countr_zero(w)));
    }
  }
}

struct and_solver {
  const factorize_options& options;
  core::run_context* ctx;
  std::uint32_t cone_a, cone_b;
  bool complemented;
  // Forced-one sets are class-replicated across the full input space;
  // forced-zero sets hold the replicated static zeros plus one
  // representative bit per branch choice (replicated again at emit).
  tt::truth_table u_one, v_one, u_zero, v_zero;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pending;
  std::vector<factorization>& out;
  std::size_t emitted = 0;

  void emit() {
    if (emitted >= options.max_branches_per_family) {
      return;
    }
    ++emitted;
    factorization f;
    f.family = op_family::and_like;
    f.output_complemented = complemented;
    f.left = requirement{cone_a, child_isf(u_one, u_zero, cone_a)};
    f.right = requirement{cone_b, child_isf(v_one, v_zero, cone_b)};
    out.push_back(std::move(f));
  }

  void branch(std::size_t next) {
    if (emitted >= options.max_branches_per_family) {
      return;
    }
    if (ctx != nullptr && ctx->cancel_requested()) {
      return;
    }
    while (next < pending.size()) {
      const auto [a, b] = pending[next];
      if (u_zero.get_bit(a) || v_zero.get_bit(b)) {
        ++next;  // already satisfied by an earlier choice
        continue;
      }
      // Neither side can be forced-one here (filtered during setup), so
      // both branches are open: a don't-care-driven case split.
      if (ctx != nullptr) {
        ++ctx->counters.dont_care_expansions;
      }
      u_zero.set_bit(a, true);
      branch(next + 1);
      u_zero.set_bit(a, false);
      v_zero.set_bit(b, true);
      branch(next + 1);
      v_zero.set_bit(b, false);
      return;
    }
    emit();
  }
};

/// AND-like solve for R' = u & v on the care set; appends all completions.
/// The batch driver has already complemented the target, computed its
/// offset and the class-replicated forced-one sets, and run the
/// feasibility screen (`off & u_one & v_one == 0`) across the whole
/// batch — this is the per-survivor branching tail.
void solve_and_family_prescreened(const tt::truth_table& off,
                                  const tt::truth_table& u_one,
                                  const tt::truth_table& v_one,
                                  bool complemented, std::uint32_t cone_a,
                                  std::uint32_t cone_b,
                                  const factorize_options& options,
                                  core::run_context* ctx,
                                  std::vector<factorization>& out) {
  const unsigned n = off.num_vars();
  const std::uint64_t amask = assignment_mask(cone_a, n);
  const std::uint64_t bmask = assignment_mask(cone_b, n);
  // An off-minterm with exactly one side forced one forces the other
  // side's class to zero (the smooth replicates across the class).
  const tt::truth_table v_zero = (off & u_one).smooth_over(~cone_b);
  const tt::truth_table u_zero = (off & v_one).smooth_over(~cone_a);
  // Everything left is a free binary choice for the brancher.
  const tt::truth_table open_set = off & ~u_one & ~v_one & ~u_zero & ~v_zero;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> open;
  for_each_one(open_set, [&](std::uint64_t m) {
    open.emplace_back(m & amask, m & bmask);
  });
  // Deduplicate identical constraints to keep branching shallow.
  std::sort(open.begin(), open.end());
  open.erase(std::unique(open.begin(), open.end()), open.end());

  and_solver solver{options, ctx,    cone_a, cone_b,          complemented,
                    u_one,   v_one,  u_zero, v_zero,          std::move(open),
                    out};
  solver.branch(0);
}

/// Parity union-find for the XOR-like solve.
struct parity_dsu {
  std::vector<std::uint32_t> parent;
  std::vector<std::uint8_t> parity;  // parity relative to parent

  explicit parity_dsu(std::size_t n) : parent(n), parity(n, 0) {
    std::iota(parent.begin(), parent.end(), 0u);
  }

  std::pair<std::uint32_t, std::uint8_t> find(std::uint32_t x) {
    // First pass: locate the root and the parity of x relative to it.
    std::uint8_t parity_to_root = 0;
    std::uint32_t root = x;
    while (parent[root] != root) {
      parity_to_root ^= parity[root];
      root = parent[root];
    }
    // Second pass: compress the path, re-rooting every node with its own
    // parity relative to the root.
    std::uint32_t walk = x;
    std::uint8_t walk_parity = parity_to_root;
    while (parent[walk] != root) {
      const std::uint32_t next = parent[walk];
      const std::uint8_t edge = parity[walk];
      parent[walk] = root;
      parity[walk] = walk_parity;
      walk_parity = static_cast<std::uint8_t>(walk_parity ^ edge);
      walk = next;
    }
    return {root, parity_to_root};
  }

  /// Unions with xor-relation `rel` between x and y; false on conflict.
  bool unite(std::uint32_t x, std::uint32_t y, std::uint8_t rel) {
    auto [rx, px] = find(x);
    auto [ry, py] = find(y);
    if (rx == ry) {
      return static_cast<std::uint8_t>(px ^ py) == rel;
    }
    parent[ry] = rx;
    parity[ry] = static_cast<std::uint8_t>(px ^ py ^ rel);
    return true;
  }
};

/// Representative-bit masks of one parity component, bucketed by side and
/// by the cell value under the identity (no-flip) assignment.  Flipping
/// the component swaps the one/zero roles.
struct component_masks {
  tt::truth_table u_one, u_zero, v_one, v_zero;
};

/// XOR-like solve for R' = u ^ v on the care set.  `target` is the
/// already-complemented requirement (computed once per batch polarity).
void solve_xor_family(const tt::isf& target, bool complemented,
                      std::uint32_t cone_a, std::uint32_t cone_b,
                      const factorize_options& options,
                      core::run_context* ctx,
                      std::vector<factorization>& out) {
  const unsigned n = target.num_vars();
  const std::uint64_t bits = std::uint64_t{1} << n;
  const std::uint64_t amask = assignment_mask(cone_a, n);
  const std::uint64_t bmask = assignment_mask(cone_b, n);

  // Cell ids: u-cell m|A -> (m & amask), v-cell m|B -> bits + (m & bmask).
  parity_dsu dsu(2 * bits);
  std::vector<char> touched(2 * bits, 0);
  const auto& on_words = target.onset().words();
  bool conflict = false;
  for_each_one(target.careset(), [&](std::uint64_t m) {
    if (conflict) {
      return;
    }
    const auto ua = static_cast<std::uint32_t>(m & amask);
    const auto vb = static_cast<std::uint32_t>(bits + (m & bmask));
    touched[ua] = 1;
    touched[vb] = 1;
    const auto rel =
        static_cast<std::uint8_t>((on_words[m >> 6] >> (m & 63)) & 1);
    conflict = !dsu.unite(ua, vb, rel);
  });
  if (conflict) {
    return;  // parity conflict: not XOR-decomposable on this split
  }

  // One pass over the cells: collect component roots in first-seen order
  // and bucket every cell's representative bit by (component, side,
  // no-flip value), so each flip pattern below is a handful of word ORs.
  std::vector<std::uint32_t> roots;
  std::vector<component_masks> comps;
  for (std::uint32_t c = 0; c < 2 * bits; ++c) {
    if (!touched[c]) {
      continue;
    }
    const auto [root, parity] = dsu.find(c);
    auto it = std::find(roots.begin(), roots.end(), root);
    if (it == roots.end()) {
      roots.push_back(root);
      comps.push_back(component_masks{tt::truth_table{n}, tt::truth_table{n},
                                      tt::truth_table{n}, tt::truth_table{n}});
      it = roots.end() - 1;
    }
    auto& cm = comps[static_cast<std::size_t>(it - roots.begin())];
    const bool is_u = c < bits;
    const std::uint64_t cls = is_u ? c : c - bits;
    tt::truth_table& mask = is_u ? (parity != 0 ? cm.u_one : cm.u_zero)
                                 : (parity != 0 ? cm.v_one : cm.v_zero);
    mask.set_bit(cls, true);
  }
  const unsigned flip_bits =
      std::min<unsigned>(static_cast<unsigned>(roots.size()),
                         options.max_xor_components);
  // Components beyond the flip budget keep the identity assignment.
  component_masks fixed{tt::truth_table{n}, tt::truth_table{n},
                        tt::truth_table{n}, tt::truth_table{n}};
  for (std::size_t k = flip_bits; k < comps.size(); ++k) {
    fixed.u_one |= comps[k].u_one;
    fixed.u_zero |= comps[k].u_zero;
    fixed.v_one |= comps[k].v_one;
    fixed.v_zero |= comps[k].v_zero;
  }

  std::size_t emitted = 0;
  for (std::uint64_t flips = 0; flips < (std::uint64_t{1} << flip_bits);
       ++flips) {
    if (emitted >= options.max_branches_per_family) {
      break;
    }
    if (ctx != nullptr && flips != 0) {
      // Each non-identity flip pattern exercises a don't-care freedom.
      ++ctx->counters.dont_care_expansions;
      if (ctx->cancel_requested()) {
        break;
      }
    }
    component_masks sel = fixed;
    for (unsigned k = 0; k < flip_bits; ++k) {
      const bool flip = ((flips >> k) & 1) != 0;
      sel.u_one |= flip ? comps[k].u_zero : comps[k].u_one;
      sel.u_zero |= flip ? comps[k].u_one : comps[k].u_zero;
      sel.v_one |= flip ? comps[k].v_zero : comps[k].v_one;
      sel.v_zero |= flip ? comps[k].v_one : comps[k].v_zero;
    }
    factorization f;
    f.family = op_family::xor_like;
    f.output_complemented = complemented;
    f.left = requirement{
        cone_a, child_isf(sel.u_one.smooth_over(~cone_a), sel.u_zero, cone_a)};
    f.right = requirement{
        cone_b, child_isf(sel.v_one.smooth_over(~cone_b), sel.v_zero, cone_b)};
    out.push_back(std::move(f));
    ++emitted;
  }
}

/// The AND-family branch enumeration can reach the same (u, v) pair along
/// several choice orders; duplicates multiply the downstream search.
std::vector<factorization> dedup_factorizations(
    std::vector<factorization>&& out) {
  std::vector<factorization> unique;
  unique.reserve(out.size());
  for (auto& f : out) {
    const bool duplicate = std::any_of(
        unique.begin(), unique.end(), [&f](const factorization& g) {
          return g.family == f.family &&
                 g.output_complemented == f.output_complemented &&
                 g.left.func == f.left.func && g.right.func == f.right.func;
        });
    if (!duplicate) {
      unique.push_back(std::move(f));
    }
  }
  return unique;
}

}  // namespace

std::vector<std::vector<factorization>> factor_requirement_batch(
    const requirement& r, const cone_split* splits, std::size_t count,
    const factorize_options& options, core::run_context* ctx) {
  std::vector<std::vector<factorization>> lists(count);
  if (count == 0) {
    return lists;
  }
  if (ctx != nullptr) {
    ctx->counters.factorization_attempts += count;
  }
  const unsigned n = r.func.num_vars();
  if (r.func.is_unconstrained()) {
    // Nothing to satisfy: children are unconstrained as well.
    for (std::size_t i = 0; i < count; ++i) {
      assert((splits[i].a | splits[i].b) == r.cone);
      factorization f;
      f.left = requirement{splits[i].a, tt::isf{n}};
      f.right = requirement{splits[i].b, tt::isf{n}};
      lists[i].push_back(std::move(f));
    }
    return lists;
  }
  if (ctx != nullptr) {
    ctx->counters.kernel_batch_queries += count;
  }

  // Per polarity (not per split): the complemented target and both
  // offsets, computed once per batch.
  const tt::isf complemented_target = r.func.complement();
  const tt::isf* const targets[2] = {&r.func, &complemented_target};
  const std::array<tt::truth_table, 2> offs{r.func.offset(),
                                            complemented_target.offset()};
  const std::size_t num_words = r.func.onset().words().size();
  const auto& ops = tt::kernels::active();

  // Fixed-stride blocks with stack-resident scratch: the synthesis path
  // batches at most a memo-miss chunk at a time, so the screen must not
  // pay an allocation per call (the enumeration makes tens of millions of
  // them per hard instance).
  constexpr std::size_t kStride = 32;
  bool stopped = false;
  for (std::size_t base = 0; base < count && !stopped; base += kStride) {
    const std::size_t block = std::min(kStride, count - base);
    const cone_split* const bs = splits + base;

    // The forced-one set of a cone depends only on (target onset, cone),
    // so each *distinct* cone is smoothed once per polarity no matter how
    // many splits share it.
    std::array<std::uint32_t, 2 * kStride> cones;
    std::size_t num_cones = 0;
    for (std::size_t i = 0; i < block; ++i) {
      assert((bs[i].a | bs[i].b) == r.cone);
      cones[num_cones++] = bs[i].a;
      cones[num_cones++] = bs[i].b;
    }
    std::sort(cones.begin(), cones.begin() + num_cones);
    num_cones = static_cast<std::size_t>(
        std::unique(cones.begin(), cones.begin() + num_cones) -
        cones.begin());
    const auto cone_index = [&](std::uint32_t c) {
      return static_cast<std::uint8_t>(
          std::lower_bound(cones.begin(), cones.begin() + num_cones, c) -
          cones.begin());
    };
    std::array<std::uint8_t, kStride> ia;
    std::array<std::uint8_t, kStride> ib;
    for (std::size_t i = 0; i < block; ++i) {
      ia[i] = cone_index(bs[i].a);
      ib[i] = cone_index(bs[i].b);
    }

    // Per polarity: forced-one sets per distinct cone, then the
    // AND-family feasibility screen (`off & u_one & v_one != 0` refutes
    // the polarity) across the whole block in one kernel pass.
    std::array<std::array<std::uint64_t, 2 * kStride>, 2> lanes;
    std::array<std::vector<tt::truth_table>, 2> cone_one;  // W > 1 only
    std::array<std::array<std::uint8_t, kStride>, 2> refuted{};
    for (int p = 0; p < 2; ++p) {
      if (num_words == 1) {
        // Single-word tables (n <= 6, the NPN4/FDSD regime): lay the
        // cones out struct-of-arrays so one masked-smooth kernel pass per
        // variable quantifies every distinct cone at once, and the
        // verdicts fall out of one batched AND3 pass.
        std::array<std::uint8_t, 2 * kStride> select;
        lanes[p].fill(targets[p]->onset().words()[0]);
        for (unsigned v = 0; v < n; ++v) {
          for (std::size_t c = 0; c < num_cones; ++c) {
            select[c] = ((cones[c] >> v) & 1) == 0 ? 1 : 0;
          }
          ops.smooth_var_w1_masked(lanes[p].data(), select.data(),
                                   num_cones, v);
        }
        std::array<std::uint64_t, kStride> off_lane;
        std::array<std::uint64_t, kStride> a_lane;
        std::array<std::uint64_t, kStride> b_lane;
        off_lane.fill(offs[p].words()[0]);
        for (std::size_t i = 0; i < block; ++i) {
          a_lane[i] = lanes[p][ia[i]];
          b_lane[i] = lanes[p][ib[i]];
        }
        ops.and3_nonzero_w1(off_lane.data(), a_lane.data(), b_lane.data(),
                            block, refuted[p].data());
      } else {
        cone_one[p].reserve(num_cones);
        for (std::size_t c = 0; c < num_cones; ++c) {
          cone_one[p].push_back(targets[p]->onset().smooth_over(~cones[c]));
        }
        for (std::size_t i = 0; i < block; ++i) {
          refuted[p][i] =
              tt::kernels::words_any_and3(offs[p].words().data(),
                                          cone_one[p][ia[i]].words().data(),
                                          cone_one[p][ib[i]].words().data(),
                                          num_words)
                  ? 1
                  : 0;
        }
      }
    }

    // Solve phase, in split order: the AND-family brancher runs only for
    // polarities that survived the screen; the XOR parity solve has no
    // batched screen and always runs.  Child forced-one tables are only
    // materialized for the surviving solver calls.
    for (std::size_t i = 0; i < block; ++i) {
      const std::size_t gi = base + i;
      if (ctx != nullptr && gi != 0 && (gi & 31) == 0 &&
          ctx->should_stop()) {
        stopped = true;  // remaining lists stay empty (and uncounted)
        break;
      }
      std::vector<factorization> out;
      bool survived = false;
      for (int p = 0; p < 2; ++p) {
        const bool complemented = p != 0;
        if (refuted[p][i] == 0) {
          survived = true;
          if (num_words == 1) {
            const auto u_one =
                tt::truth_table::from_words(n, &lanes[p][ia[i]], 1);
            const auto v_one =
                tt::truth_table::from_words(n, &lanes[p][ib[i]], 1);
            solve_and_family_prescreened(offs[p], u_one, v_one,
                                         complemented, bs[i].a, bs[i].b,
                                         options, ctx, out);
          } else {
            solve_and_family_prescreened(offs[p], cone_one[p][ia[i]],
                                         cone_one[p][ib[i]], complemented,
                                         bs[i].a, bs[i].b, options, ctx,
                                         out);
          }
        }
        solve_xor_family(*targets[p], complemented, bs[i].a, bs[i].b,
                         options, ctx, out);
      }
      if (ctx != nullptr) {
        ++(survived ? ctx->counters.kernel_batch_survivors
                    : ctx->counters.kernel_batch_screened);
      }
      lists[gi] = dedup_factorizations(std::move(out));
      if (ctx != nullptr && lists[gi].empty()) {
        ++ctx->counters.factorization_prunes;
      }
    }
  }
  return lists;
}

std::vector<factorization> factor_requirement(
    const requirement& r, std::uint32_t cone_a, std::uint32_t cone_b,
    const factorize_options& options, core::run_context* ctx) {
  const cone_split split{cone_a, cone_b};
  auto lists = factor_requirement_batch(r, &split, 1, options, ctx);
  return std::move(lists.front());
}

bool is_factorable(const requirement& r, std::uint32_t cone_a,
                   std::uint32_t cone_b) {
  factorize_options options;
  options.max_branches_per_family = 1;
  options.max_xor_components = 0;
  return !factor_requirement(r, cone_a, cone_b, options).empty();
}

}  // namespace stpes::synth
