#include "synth/factorize.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <numeric>

namespace stpes::synth {

namespace {

/// Expands a variable mask into a minterm-assignment mask.
std::uint64_t assignment_mask(std::uint32_t var_mask, unsigned num_vars) {
  std::uint64_t mask = 0;
  for (unsigned v = 0; v < num_vars; ++v) {
    if ((var_mask >> v) & 1) {
      mask |= std::uint64_t{1} << v;
    }
  }
  return mask;
}

/// Cell state for the AND-like solve.
enum : std::uint8_t { kUnknown = 0, kOne = 1, kZero = 2 };

/// Builds the global-space ISF of a child from per-cell states.
tt::isf isf_from_cells(const std::vector<std::uint8_t>& cells,
                       std::uint64_t amask, unsigned num_vars) {
  tt::truth_table on{num_vars};
  tt::truth_table care{num_vars};
  const std::uint64_t bits = std::uint64_t{1} << num_vars;
  for (std::uint64_t m = 0; m < bits; ++m) {
    switch (cells[m & amask]) {
      case kOne:
        on.set_bit(m, true);
        care.set_bit(m, true);
        break;
      case kZero:
        care.set_bit(m, true);
        break;
      default:
        break;
    }
  }
  return tt::isf{on, care};
}

struct and_solver {
  const factorize_options& options;
  core::run_context* ctx;
  unsigned num_vars;
  std::uint64_t amask, bmask;
  std::vector<std::uint8_t> u, v;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pending;
  std::vector<factorization>& out;
  bool complemented;
  std::uint32_t cone_a, cone_b;
  std::size_t emitted = 0;

  void emit() {
    if (emitted >= options.max_branches_per_family) {
      return;
    }
    ++emitted;
    factorization f;
    f.family = op_family::and_like;
    f.output_complemented = complemented;
    f.left = requirement{cone_a, isf_from_cells(u, amask, num_vars)};
    f.right = requirement{cone_b, isf_from_cells(v, bmask, num_vars)};
    out.push_back(std::move(f));
  }

  void branch(std::size_t next) {
    if (emitted >= options.max_branches_per_family) {
      return;
    }
    if (ctx != nullptr && ctx->cancel_requested()) {
      return;
    }
    while (next < pending.size()) {
      const auto [a, b] = pending[next];
      if (u[a] == kZero || v[b] == kZero) {
        ++next;  // already satisfied by an earlier choice
        continue;
      }
      // Neither side can be forced-one here (filtered during setup), so
      // both branches are open: a don't-care-driven case split.
      if (ctx != nullptr) {
        ++ctx->counters.dont_care_expansions;
      }
      const auto saved_u = u[a];
      u[a] = kZero;
      branch(next + 1);
      u[a] = saved_u;
      const auto saved_v = v[b];
      v[b] = kZero;
      branch(next + 1);
      v[b] = saved_v;
      return;
    }
    emit();
  }
};

/// AND-like solve for R' = u & v on the care set; appends all completions.
void solve_and_family(const requirement& r, bool complemented,
                      std::uint32_t cone_a, std::uint32_t cone_b,
                      const factorize_options& options,
                      core::run_context* ctx,
                      std::vector<factorization>& out) {
  const unsigned n = r.func.num_vars();
  const std::uint64_t bits = std::uint64_t{1} << n;
  const std::uint64_t amask = assignment_mask(cone_a, n);
  const std::uint64_t bmask = assignment_mask(cone_b, n);

  const tt::isf target = complemented ? r.func.complement() : r.func;
  std::vector<std::uint8_t> u(bits, kUnknown);
  std::vector<std::uint8_t> v(bits, kUnknown);

  // Forced assignments from on-minterms.
  for (std::uint64_t m = 0; m < bits; ++m) {
    if (!target.careset().get_bit(m) || !target.onset().get_bit(m)) {
      continue;
    }
    u[m & amask] = kOne;
    v[m & bmask] = kOne;
  }
  // Off-minterm constraints: propagate or collect choices.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pending;
  for (std::uint64_t m = 0; m < bits; ++m) {
    if (!target.careset().get_bit(m) || target.onset().get_bit(m)) {
      continue;
    }
    const std::uint64_t a = m & amask;
    const std::uint64_t b = m & bmask;
    if (u[a] == kOne && v[b] == kOne) {
      return;  // unsatisfiable split
    }
    if (u[a] == kOne) {
      v[b] = kZero;
    } else if (v[b] == kOne) {
      u[a] = kZero;
    } else {
      pending.emplace_back(a, b);
    }
  }
  // Re-check pending constraints against the forced zeros, then branch.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> open;
  for (const auto& [a, b] : pending) {
    if (u[a] == kZero || v[b] == kZero) {
      continue;
    }
    if (u[a] == kOne && v[b] == kOne) {
      return;
    }
    if (u[a] == kOne) {
      v[b] = kZero;
      continue;
    }
    if (v[b] == kOne) {
      u[a] = kZero;
      continue;
    }
    open.emplace_back(a, b);
  }
  // Deduplicate identical constraints to keep branching shallow.
  std::sort(open.begin(), open.end());
  open.erase(std::unique(open.begin(), open.end()), open.end());

  and_solver solver{options,      ctx,  n,   amask,        bmask,
                    std::move(u), std::move(v), open, out,
                    complemented, cone_a,       cone_b};
  solver.branch(0);
}

/// Parity union-find for the XOR-like solve.
struct parity_dsu {
  std::vector<std::uint32_t> parent;
  std::vector<std::uint8_t> parity;  // parity relative to parent

  explicit parity_dsu(std::size_t n) : parent(n), parity(n, 0) {
    std::iota(parent.begin(), parent.end(), 0u);
  }

  std::pair<std::uint32_t, std::uint8_t> find(std::uint32_t x) {
    // First pass: locate the root and the parity of x relative to it.
    std::uint8_t parity_to_root = 0;
    std::uint32_t root = x;
    while (parent[root] != root) {
      parity_to_root ^= parity[root];
      root = parent[root];
    }
    // Second pass: compress the path, re-rooting every node with its own
    // parity relative to the root.
    std::uint32_t walk = x;
    std::uint8_t walk_parity = parity_to_root;
    while (parent[walk] != root) {
      const std::uint32_t next = parent[walk];
      const std::uint8_t edge = parity[walk];
      parent[walk] = root;
      parity[walk] = walk_parity;
      walk_parity = static_cast<std::uint8_t>(walk_parity ^ edge);
      walk = next;
    }
    return {root, parity_to_root};
  }

  /// Unions with xor-relation `rel` between x and y; false on conflict.
  bool unite(std::uint32_t x, std::uint32_t y, std::uint8_t rel) {
    auto [rx, px] = find(x);
    auto [ry, py] = find(y);
    if (rx == ry) {
      return static_cast<std::uint8_t>(px ^ py) == rel;
    }
    parent[ry] = rx;
    parity[ry] = static_cast<std::uint8_t>(px ^ py ^ rel);
    return true;
  }
};

/// XOR-like solve for R' = u ^ v on the care set.
void solve_xor_family(const requirement& r, bool complemented,
                      std::uint32_t cone_a, std::uint32_t cone_b,
                      const factorize_options& options,
                      core::run_context* ctx,
                      std::vector<factorization>& out) {
  const unsigned n = r.func.num_vars();
  const std::uint64_t bits = std::uint64_t{1} << n;
  const std::uint64_t amask = assignment_mask(cone_a, n);
  const std::uint64_t bmask = assignment_mask(cone_b, n);
  const tt::isf target = complemented ? r.func.complement() : r.func;

  // Cell ids: u-cell m|A -> (m & amask), v-cell m|B -> bits + (m & bmask).
  parity_dsu dsu(2 * bits);
  std::vector<char> touched(2 * bits, 0);
  for (std::uint64_t m = 0; m < bits; ++m) {
    if (!target.careset().get_bit(m)) {
      continue;
    }
    const auto ua = static_cast<std::uint32_t>(m & amask);
    const auto vb = static_cast<std::uint32_t>(bits + (m & bmask));
    touched[ua] = 1;
    touched[vb] = 1;
    if (!dsu.unite(ua, vb,
                   target.onset().get_bit(m) ? std::uint8_t{1}
                                             : std::uint8_t{0})) {
      return;  // parity conflict: not XOR-decomposable on this split
    }
  }

  // Collect component roots of touched cells.
  std::vector<std::uint32_t> roots;
  for (std::uint32_t c = 0; c < 2 * bits; ++c) {
    if (!touched[c]) {
      continue;
    }
    const auto [root, parity] = dsu.find(c);
    (void)parity;
    if (std::find(roots.begin(), roots.end(), root) == roots.end()) {
      roots.push_back(root);
    }
  }
  const unsigned flip_bits =
      std::min<unsigned>(static_cast<unsigned>(roots.size()),
                         options.max_xor_components);
  std::size_t emitted = 0;
  for (std::uint64_t flips = 0; flips < (std::uint64_t{1} << flip_bits);
       ++flips) {
    if (emitted >= options.max_branches_per_family) {
      break;
    }
    if (ctx != nullptr && flips != 0) {
      // Each non-identity flip pattern exercises a don't-care freedom.
      ++ctx->counters.dont_care_expansions;
      if (ctx->cancel_requested()) {
        break;
      }
    }
    std::vector<std::uint8_t> u(bits, kUnknown);
    std::vector<std::uint8_t> v(bits, kUnknown);
    for (std::uint32_t c = 0; c < 2 * bits; ++c) {
      if (!touched[c]) {
        continue;
      }
      auto [root, parity] = dsu.find(c);
      const auto root_pos = static_cast<std::size_t>(
          std::find(roots.begin(), roots.end(), root) - roots.begin());
      std::uint8_t value = parity;
      if (root_pos < flip_bits && ((flips >> root_pos) & 1)) {
        value ^= 1;
      }
      auto& side = c < bits ? u : v;
      side[c < bits ? c : c - bits] = value ? kOne : kZero;
    }
    factorization f;
    f.family = op_family::xor_like;
    f.output_complemented = complemented;
    f.left = requirement{cone_a, isf_from_cells(u, amask, n)};
    f.right = requirement{cone_b, isf_from_cells(v, bmask, n)};
    out.push_back(std::move(f));
    ++emitted;
  }
}

}  // namespace

std::vector<factorization> factor_requirement(
    const requirement& r, std::uint32_t cone_a, std::uint32_t cone_b,
    const factorize_options& options, core::run_context* ctx) {
  assert((cone_a | cone_b) == r.cone);
  if (ctx != nullptr) {
    ++ctx->counters.factorization_attempts;
  }
  std::vector<factorization> out;
  if (r.func.is_unconstrained()) {
    // Nothing to satisfy: children are unconstrained as well.
    factorization f;
    f.left = requirement{cone_a, tt::isf{r.func.num_vars()}};
    f.right = requirement{cone_b, tt::isf{r.func.num_vars()}};
    out.push_back(f);
    return out;
  }
  for (const bool complemented : {false, true}) {
    solve_and_family(r, complemented, cone_a, cone_b, options, ctx, out);
    solve_xor_family(r, complemented, cone_a, cone_b, options, ctx, out);
  }
  // The AND-family branch enumeration can reach the same (u, v) pair along
  // several choice orders; duplicates multiply the downstream search.
  std::vector<factorization> unique;
  unique.reserve(out.size());
  for (auto& f : out) {
    const bool duplicate = std::any_of(
        unique.begin(), unique.end(), [&f](const factorization& g) {
          return g.family == f.family &&
                 g.output_complemented == f.output_complemented &&
                 g.left.func == f.left.func && g.right.func == f.right.func;
        });
    if (!duplicate) {
      unique.push_back(std::move(f));
    }
  }
  if (ctx != nullptr && unique.empty()) {
    ++ctx->counters.factorization_prunes;
  }
  return unique;
}

bool is_factorable(const requirement& r, std::uint32_t cone_a,
                   std::uint32_t cone_b) {
  factorize_options options;
  options.max_branches_per_family = 1;
  options.max_xor_components = 0;
  return !factor_requirement(r, cone_a, cone_b, options).empty();
}

}  // namespace stpes::synth
