#include "synth/cegar.hpp"

#include "synth/ssv_encoding.hpp"

namespace stpes::synth {

result cegar_engine::run(const spec& s) {
  util::stopwatch watch;
  stats_ = cegar_stats{};
  result out;

  core::run_context local_rc;
  core::run_context& rc = s.ctx != nullptr ? *s.ctx : local_rc;
  const core::stage_counters at_start = rc.counters;
  const auto finish = [&](result& r) -> result& {
    r.seconds = watch.elapsed_seconds();
    r.counters = rc.counters - at_start;
    return r;
  };

  if (synthesize_degenerate(s.function, out)) {
    return finish(out);
  }

  std::vector<unsigned> old_of_new;
  auto f = shrink_for_synthesis(s.function, old_of_new);
  const bool complemented = f.get_bit(0);
  if (complemented) {
    f = ~f;
  }

  for (unsigned gates = std::max(1u, trivial_lower_bound(f));
       gates <= s.max_gates; ++gates) {
    if (rc.should_stop()) {
      out.outcome = status::timeout;
      return finish(out);
    }
    sat::solver solver;
    solver.set_run_context(&rc);
    ssv_encoding encoding{solver, f, gates};
    encoding.encode_structure();
    // Seed with one informative row (the highest one keeps the output
    // constraint meaningful for non-trivial functions).
    encoding.encode_row(f.num_bits() - 1);

    bool size_done = false;
    while (!size_done) {
      // The refinement loop itself must observe cancellation: each
      // iteration can be cheap, so a long counterexample sequence would
      // otherwise outlive the deadline unnoticed.
      if (rc.should_stop()) {
        out.outcome = status::timeout;
        return finish(out);
      }
      ++stats_.solver_calls;
      const auto answer = solver.solve();
      stats_.conflicts = solver.stats().conflicts;
      if (answer == sat::solve_result::unknown) {
        out.outcome = status::timeout;
        return finish(out);
      }
      if (answer == sat::solve_result::unsat) {
        size_done = true;  // no chain of this size
        continue;
      }
      auto candidate = encoding.extract_chain(complemented);
      const auto realized = candidate.simulate();
      const auto target = complemented ? ~f : f;
      if (realized == target) {
        out.outcome = status::success;
        out.optimum_gates = gates;
        out.chains = {lift_chain_to_original(candidate, old_of_new,
                                             s.function.num_vars())};
        return finish(out);
      }
      // Add the first counterexample row.
      std::uint64_t counterexample = 0;
      for (std::uint64_t t = 1; t < f.num_bits(); ++t) {
        if (realized.get_bit(t) != target.get_bit(t)) {
          counterexample = t;
          break;
        }
      }
      // realized(0) == target(0) == 0 for normal chains, so a mismatch at a
      // row >= 1 must exist.
      encoding.encode_row(counterexample);
      ++stats_.refinements;
    }
  }
  out.outcome = status::failure;
  return finish(out);
}

result cegar_synthesize(const spec& s) {
  cegar_engine engine;
  return engine.run(s);
}

}  // namespace stpes::synth
