#include "synth/cegar.hpp"

#include "synth/ssv_encoding.hpp"

namespace stpes::synth {

result cegar_engine::run(const spec& s) {
  util::stopwatch watch;
  stats_ = cegar_stats{};
  result out;

  core::run_context local_rc;
  core::run_context& rc = s.ctx != nullptr ? *s.ctx : local_rc;
  const core::stage_counters at_start = rc.counters;
  const auto finish = [&](result& r) -> result& {
    r.seconds = watch.elapsed_seconds();
    r.counters = rc.counters - at_start;
    return r;
  };

  const auto targets = s.targets();
  if (targets.size() >= 2) {
    // Multi-output path: refinement adds the first row on which *any*
    // output disagrees with its target.  The caller (core pre-pass)
    // guarantees non-degenerate, pairwise-distinct targets.
    std::vector<unsigned> old_of_new;
    const auto fs = shrink_for_synthesis(targets, old_of_new);
    for (unsigned gates = std::max(1u, trivial_lower_bound(fs));
         gates <= s.max_gates; ++gates) {
      if (rc.should_stop()) {
        out.outcome = status::timeout;
        return finish(out);
      }
      sat::solver solver;
      solver.set_run_context(&rc);
      ssv_encoding encoding{solver, fs, gates};
      encoding.encode_structure();
      encoding.encode_row(fs.front().num_bits() - 1);

      bool size_done = false;
      while (!size_done) {
        if (rc.should_stop()) {
          out.outcome = status::timeout;
          return finish(out);
        }
        ++stats_.solver_calls;
        const auto answer = solver.solve();
        stats_.conflicts = solver.stats().conflicts;
        if (answer == sat::solve_result::unknown) {
          out.outcome = status::timeout;
          return finish(out);
        }
        if (answer == sat::solve_result::unsat) {
          size_done = true;  // no chain of this size
          continue;
        }
        auto candidate = encoding.extract_chain(false);
        const auto realized = candidate.simulate_outputs();
        std::uint64_t counterexample = 0;
        for (std::uint64_t t = 1;
             t < fs.front().num_bits() && counterexample == 0; ++t) {
          for (std::size_t h = 0; h < fs.size(); ++h) {
            if (realized[h].get_bit(t) != fs[h].get_bit(t)) {
              counterexample = t;
              break;
            }
          }
        }
        if (counterexample == 0) {
          // Outputs are normal-complement matched at row 0 by
          // construction, so no mismatch anywhere means success.
          out.outcome = status::success;
          out.optimum_gates = gates;
          out.chains = {lift_chain_to_original(candidate, old_of_new,
                                               targets.front().num_vars())};
          return finish(out);
        }
        encoding.encode_row(counterexample);
        ++stats_.refinements;
      }
    }
    out.outcome = status::failure;
    return finish(out);
  }

  std::vector<unsigned> old_of_new;
  auto f = shrink_for_synthesis(targets.front(), old_of_new);
  const bool complemented = f.get_bit(0);
  if (complemented) {
    f = ~f;
  }

  for (unsigned gates = std::max(1u, trivial_lower_bound(f));
       gates <= s.max_gates; ++gates) {
    if (rc.should_stop()) {
      out.outcome = status::timeout;
      return finish(out);
    }
    sat::solver solver;
    solver.set_run_context(&rc);
    ssv_encoding encoding{solver, f, gates};
    encoding.encode_structure();
    // Seed with one informative row (the highest one keeps the output
    // constraint meaningful for non-trivial functions).
    encoding.encode_row(f.num_bits() - 1);

    bool size_done = false;
    while (!size_done) {
      // The refinement loop itself must observe cancellation: each
      // iteration can be cheap, so a long counterexample sequence would
      // otherwise outlive the deadline unnoticed.
      if (rc.should_stop()) {
        out.outcome = status::timeout;
        return finish(out);
      }
      ++stats_.solver_calls;
      const auto answer = solver.solve();
      stats_.conflicts = solver.stats().conflicts;
      if (answer == sat::solve_result::unknown) {
        out.outcome = status::timeout;
        return finish(out);
      }
      if (answer == sat::solve_result::unsat) {
        size_done = true;  // no chain of this size
        continue;
      }
      auto candidate = encoding.extract_chain(complemented);
      const auto realized = candidate.simulate();
      const auto target = complemented ? ~f : f;
      if (realized == target) {
        out.outcome = status::success;
        out.optimum_gates = gates;
        out.chains = {lift_chain_to_original(candidate, old_of_new,
                                             targets.front().num_vars())};
        return finish(out);
      }
      // Add the first counterexample row.
      std::uint64_t counterexample = 0;
      for (std::uint64_t t = 1; t < f.num_bits(); ++t) {
        if (realized.get_bit(t) != target.get_bit(t)) {
          counterexample = t;
          break;
        }
      }
      // realized(0) == target(0) == 0 for normal chains, so a mismatch at a
      // row >= 1 must exist.
      encoding.encode_row(counterexample);
      ++stats_.refinements;
    }
  }
  out.outcome = status::failure;
  return finish(out);
}

result cegar_synthesize(const spec& s) {
  cegar_engine engine;
  return engine.run(s);
}

}  // namespace stpes::synth
