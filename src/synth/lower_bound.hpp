/// \file lower_bound.hpp
/// \brief CNF infeasibility probe: "no k-gate 2-LUT chain computes this ISF".
///
/// The STP sweep enumerates *all* optimum chains of a level, but proving
/// that a level has *no* chain at all is cheaper as a single CNF call per
/// pruned fence: one UNSAT answer refutes the whole DAG family that the
/// sweep would otherwise factorize topology by topology.  This is percy's
/// partial-DAG idea (Haaswijk et al.) on our own CDCL solver, at fence
/// granularity — `fence_fanin_pairs` restricts every step's fanins to
/// fence-compatible levels, so refuting every pruned fence of k gates
/// refutes gate count k outright.
///
/// On top of the plain SSV encoding the probe layers the four percy
/// symmetry-break clause families, each sound for *existence* questions in
/// the engine's ascending level loop (levels < k already refuted):
///
///   * **colex** — consecutive steps on the same fence level are
///     interchangeable (their allowed pair lists coincide and later steps
///     cannot distinguish them), so their fanin pairs may be required to
///     be colexicographically non-decreasing;
///   * **noreapply** — a step consuming step i *and* one of i's own fanins
///     computes a two-variable function of i's fanins, so a repaired chain
///     with the same gate count (or, via the already-refuted smaller
///     levels, a contradiction) exists; the repair strictly shrinks the
///     fanin-index sum, so it terminates;
///   * **symvar** — if the ISF is invariant under swapping inputs p < q
///     (on-set *and* care-set), any chain using q first can be relabelled
///     into one using p first;
///   * **alonce** — every non-output step must fan out (an unused step
///     would yield a chain at an already-refuted smaller level).  This one
///     is the encoder's own `use_all_steps` option.
///
/// The probe answers `feasible` / `infeasible` / `unknown`; `unknown`
/// (conflict budget or deadline hit, or the instance is above
/// `max_vars`) must be treated as *feasible* by callers — the sweep then
/// decides the level exactly, so the probe can only ever skip work, never
/// change results.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "chain/boolean_chain.hpp"
#include "tt/isf.hpp"
#include "util/run_context.hpp"

namespace stpes::synth {

/// Probe tuning knobs.
struct lower_bound_options {
  /// Symmetry-break clause families (percy names).
  bool colex_clauses = true;
  bool noreapply_clauses = true;
  bool symvar_clauses = true;
  bool alonce_clauses = true;
  /// Per-solver-call conflict cutoff (0 = unbounded).  Conflicts are
  /// machine-independent, so a budget cutoff keeps the probe's verdicts —
  /// and hence the `probe_*` counters in probe_sweep mode — deterministic.
  std::uint64_t conflict_budget = 100000;
  /// Skip the probe (verdict `unknown`) above this support size; the CNF
  /// grows with 2^n rows and stops paying for itself.
  unsigned max_vars = 6;
};

/// Probe verdict for one (ISF, gate count) question.
enum class probe_verdict {
  feasible,    ///< some pruned fence admits a k-gate chain (SAT witness)
  infeasible,  ///< every pruned fence of k gates refuted (UNSAT proofs)
  unknown      ///< budget/deadline/size cutoff — treat as feasible
};

/// Outcome of one probe call.
struct probe_result {
  probe_verdict verdict = probe_verdict::unknown;
  /// CNF solver calls made (== pruned fences attempted).
  std::uint64_t solver_calls = 0;
  /// On `feasible`: the chain decoded from the SAT model.  A deadline-cut
  /// sweep of the winning level can fall back on it — the smaller levels
  /// are refuted, so this single chain already proves the optimum.
  std::optional<chain::boolean_chain> witness;
};

/// The probe.  Stateless between calls apart from options; cheap to
/// construct per use.
class lower_bound_prober {
public:
  explicit lower_bound_prober(lower_bound_options options = {})
      : options_(options) {}

  /// Decides whether any `num_gates`-gate chain satisfies `target`.
  /// Sound for the ascending level loop: `infeasible` is only
  /// trustworthy when every smaller gate count was already refuted
  /// (the symmetry-break repairs may move a chain to a smaller level).
  /// `ctx` (optional) supplies deadline/cancel polling and receives
  /// `probe_calls` and SAT-stage counters.
  [[nodiscard]] probe_result probe(const tt::isf& target, unsigned num_gates,
                                   core::run_context* ctx = nullptr) const;

  /// Multi-output variant: decides whether any `num_gates`-gate chain
  /// computes *all* of `functions` (each output possibly complemented).
  /// Uses the multi-output fence family and the per-output
  /// output-selection SSV encoding; the symvar break applies to an input
  /// pair only when *every* function is symmetric in it.  Soundness
  /// contract matches `probe`.
  [[nodiscard]] probe_result probe_multi(
      const std::vector<tt::truth_table>& functions, unsigned num_gates,
      core::run_context* ctx = nullptr) const;

  [[nodiscard]] const lower_bound_options& options() const {
    return options_;
  }

private:
  lower_bound_options options_;
};

}  // namespace stpes::synth
