#include "synth/factor_memo.hpp"

#include <utility>

namespace stpes::synth {

std::size_t factor_key_hash::operator()(const factor_key& k) const {
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 12) + (h >> 21);
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
    return h;
  };
  std::uint64_t h = 0x2545F4914F6CDD1Dull;
  h = mix(h, k.cone);
  h = mix(h, (static_cast<std::uint64_t>(k.cone_a) << 32) | k.cone_b);
  h = mix(h, k.onset.hash());
  h = mix(h, k.careset.hash());
  return static_cast<std::size_t>(h);
}

const factor_memo::factorizations_ptr* factor_memo::find(
    const factor_key& key) const {
  const auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

void factor_memo::insert(factor_key key, factorizations_ptr value) {
  map_.try_emplace(std::move(key), std::move(value));
}

void factor_memo::merge_from(factor_memo&& delta, std::size_t cap) {
  if (map_.empty() && (cap == 0 || delta.map_.size() <= cap)) {
    map_ = std::move(delta.map_);
    return;
  }
  if (cap == 0 || map_.size() + delta.map_.size() <= cap) {
    // Node splice: no per-entry allocation; existing entries win, same as
    // try_emplace.
    map_.merge(delta.map_);
  } else {
    for (auto& [key, value] : delta.map_) {
      if (map_.size() >= cap) {
        break;
      }
      map_.try_emplace(key, std::move(value));
    }
  }
  delta.map_.clear();
}

}  // namespace stpes::synth
