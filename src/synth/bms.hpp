/// \file bms.hpp
/// \brief BMS baseline: plain SSV SAT-based exact synthesis.
///
/// This is the "busy man's synthesis" style baseline of the paper's Table I
/// [17]: for increasing step counts the full SSV encoding is solved with no
/// topological information; the first satisfiable size is the optimum and
/// one chain is extracted.

#pragma once

#include "synth/spec.hpp"

namespace stpes::synth {

/// Statistics of the last BMS run.
struct bms_stats {
  std::uint64_t solver_calls = 0;
  std::uint64_t conflicts = 0;
};

class bms_engine {
public:
  result run(const spec& s);
  [[nodiscard]] const bms_stats& stats() const { return stats_; }

private:
  bms_stats stats_;
};

result bms_synthesize(const spec& s);

}  // namespace stpes::synth
