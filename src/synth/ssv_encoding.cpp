#include "synth/ssv_encoding.hpp"

#include <array>
#include <cassert>

namespace stpes::synth {

using sat::lit;
using sat::neg;
using sat::pos;
using sat::var;

std::vector<std::vector<std::pair<unsigned, unsigned>>> all_fanin_pairs(
    unsigned num_inputs, unsigned num_steps) {
  std::vector<std::vector<std::pair<unsigned, unsigned>>> pairs(num_steps);
  for (unsigned i = 0; i < num_steps; ++i) {
    for (unsigned k = 1; k < num_inputs + i; ++k) {
      for (unsigned j = 0; j < k; ++j) {
        pairs[i].emplace_back(j, k);
      }
    }
  }
  return pairs;
}

std::vector<unsigned> fence_level_of_step(const fence::fence& fc) {
  std::vector<unsigned> level_of_step;
  level_of_step.reserve(fc.num_nodes());
  for (unsigned l = 0; l < fc.num_levels(); ++l) {
    for (unsigned c = 0; c < fc.widths[l]; ++c) {
      level_of_step.push_back(l);
    }
  }
  return level_of_step;
}

std::vector<std::vector<std::pair<unsigned, unsigned>>> fence_fanin_pairs(
    const fence::fence& fc, unsigned num_inputs) {
  const auto level_of_step = fence_level_of_step(fc);
  const unsigned num_steps = fc.num_nodes();
  // Signal level: inputs are below level 0.
  auto signal_level = [&](unsigned signal) -> int {
    return signal < num_inputs
               ? -1
               : static_cast<int>(level_of_step[signal - num_inputs]);
  };
  std::vector<std::vector<std::pair<unsigned, unsigned>>> pairs(num_steps);
  for (unsigned i = 0; i < num_steps; ++i) {
    const int level = static_cast<int>(level_of_step[i]);
    for (unsigned k = 1; k < num_inputs + i; ++k) {
      for (unsigned j = 0; j < k; ++j) {
        const int lj = signal_level(j);
        const int lk = signal_level(k);
        if (lj >= level || lk >= level) {
          continue;  // fanins strictly below
        }
        if (lj != level - 1 && lk != level - 1) {
          continue;  // at least one fanin from the level directly below
        }
        pairs[i].emplace_back(j, k);
      }
    }
  }
  return pairs;
}

ssv_encoding::ssv_encoding(
    sat::solver& solver, const tt::truth_table& function, unsigned num_steps,
    std::optional<std::vector<std::vector<std::pair<unsigned, unsigned>>>>
        allowed_pairs,
    ssv_options options)
    : solver_(solver),
      function_(function),
      num_inputs_(function.num_vars()),
      num_steps_(num_steps),
      options_(options),
      pairs_(allowed_pairs ? std::move(*allowed_pairs)
                           : all_fanin_pairs(function.num_vars(), num_steps)),
      row_encoded_(function.num_bits(), false) {
  assert(!function_.get_bit(0) && "SSV encoding requires a normal target");
  assert(pairs_.size() == num_steps_);
  // Allocate variables: selection, operator, and row values.
  select_.resize(num_steps_);
  op_.resize(num_steps_);
  value_.resize(num_steps_);
  const std::uint64_t rows = function_.num_bits() - 1;
  for (unsigned i = 0; i < num_steps_; ++i) {
    for (std::size_t p = 0; p < pairs_[i].size(); ++p) {
      select_[i].push_back(solver_.new_var());
    }
    for (auto& v : op_[i]) {
      v = solver_.new_var();
    }
    value_[i].resize(rows);
    for (auto& v : value_[i]) {
      v = solver_.new_var();
    }
  }
}

ssv_encoding::ssv_encoding(
    sat::solver& solver, std::vector<tt::truth_table> functions,
    unsigned num_steps,
    std::optional<std::vector<std::vector<std::pair<unsigned, unsigned>>>>
        allowed_pairs,
    ssv_options options)
    : solver_(solver),
      num_inputs_(functions.at(0).num_vars()),
      num_steps_(num_steps),
      options_(options),
      pairs_(allowed_pairs
                 ? std::move(*allowed_pairs)
                 : all_fanin_pairs(functions.at(0).num_vars(), num_steps)),
      row_encoded_(functions.at(0).num_bits(), false) {
  // Normal chains force every step to 0 on the all-zeros row, so a target
  // with f(0...0) == 1 is synthesized as its complement and the inversion
  // is restored on the extracted output flag.
  functions_.reserve(functions.size());
  output_complements_.reserve(functions.size());
  for (auto& f : functions) {
    assert(f.num_vars() == num_inputs_);
    const bool complemented = f.get_bit(0);
    functions_.push_back(complemented ? ~f : std::move(f));
    output_complements_.push_back(complemented);
  }
  function_ = functions_[0];
  assert(pairs_.size() == num_steps_);
  select_.resize(num_steps_);
  op_.resize(num_steps_);
  value_.resize(num_steps_);
  const std::uint64_t rows = function_.num_bits() - 1;
  for (unsigned i = 0; i < num_steps_; ++i) {
    for (std::size_t p = 0; p < pairs_[i].size(); ++p) {
      select_[i].push_back(solver_.new_var());
    }
    for (auto& v : op_[i]) {
      v = solver_.new_var();
    }
    value_[i].resize(rows);
    for (auto& v : value_[i]) {
      v = solver_.new_var();
    }
  }
  out_sel_.resize(functions_.size());
  for (auto& sel : out_sel_) {
    sel.resize(num_steps_);
    for (auto& v : sel) {
      v = solver_.new_var();
    }
  }
}

var ssv_encoding::x(unsigned step, std::uint64_t row) const {
  assert(row >= 1);
  return value_[step][row - 1];
}

var ssv_encoding::g(unsigned step, unsigned pattern) const {
  assert(pattern >= 1 && pattern <= 3);
  return op_[step][pattern - 1];
}

std::optional<bool> ssv_encoding::input_value(unsigned signal,
                                              std::uint64_t row) const {
  if (signal < num_inputs_) {
    return ((row >> signal) & 1) != 0;
  }
  return std::nullopt;
}

void ssv_encoding::set_output_care(tt::truth_table care) {
  assert(care.num_vars() == num_inputs_);
  output_care_ = std::move(care);
}

void ssv_encoding::encode_structure() {
  for (unsigned i = 0; i < num_steps_; ++i) {
    // At least one fanin pair.
    sat::clause_lits alo;
    alo.reserve(select_[i].size());
    for (const auto s : select_[i]) {
      alo.push_back(pos(s));
    }
    solver_.add_clause(alo);
    // At most one (pairwise).
    if (options_.pairwise_at_most_one_select) {
      for (std::size_t a = 0; a < select_[i].size(); ++a) {
        for (std::size_t b = a + 1; b < select_[i].size(); ++b) {
          solver_.add_clause({neg(select_[i][a]), neg(select_[i][b])});
        }
      }
    }
    if (options_.nontrivial_operators) {
      // Exclude constant 0: some pattern output is 1.
      solver_.add_clause(
          {pos(g(i, 1)), pos(g(i, 2)), pos(g(i, 3))});
      // Exclude projections onto either fanin:
      // first fanin:  (g1,g2,g3) = (1,0,1); second fanin: (0,1,1).
      solver_.add_clause({neg(g(i, 1)), pos(g(i, 2)), neg(g(i, 3))});
      solver_.add_clause({pos(g(i, 1)), neg(g(i, 2)), neg(g(i, 3))});
    }
  }
  if (options_.use_all_steps) {
    // Single-output: the last step is the output, every earlier step must
    // feed a later one.  Multi-output: no step is pinned, so *every* step
    // must either feed a later step or carry some output.
    for (unsigned i = 0; i < num_steps_; ++i) {
      if (!multi_mode() && i + 1 == num_steps_) {
        break;
      }
      sat::clause_lits used;
      const unsigned signal = num_inputs_ + i;
      for (unsigned i2 = i + 1; i2 < num_steps_; ++i2) {
        for (std::size_t p = 0; p < pairs_[i2].size(); ++p) {
          if (pairs_[i2][p].first == signal ||
              pairs_[i2][p].second == signal) {
            used.push_back(pos(select_[i2][p]));
          }
        }
      }
      for (const auto& sel : out_sel_) {
        used.push_back(pos(sel[i]));
      }
      solver_.add_clause(used);  // empty list -> trivially UNSAT, intended
    }
  }
  // Every output binds to at least one step.
  for (const auto& sel : out_sel_) {
    sat::clause_lits alo;
    alo.reserve(sel.size());
    for (const auto v : sel) {
      alo.push_back(pos(v));
    }
    solver_.add_clause(alo);
  }
}

void ssv_encoding::encode_row(std::uint64_t t) {
  assert(t >= 1 && t < function_.num_bits());
  if (row_encoded_[t]) {
    return;
  }
  row_encoded_[t] = true;

  for (unsigned i = 0; i < num_steps_; ++i) {
    for (std::size_t p = 0; p < pairs_[i].size(); ++p) {
      const auto [j, k] = pairs_[i][p];
      const auto jv = input_value(j, t);
      const auto kv = input_value(k, t);
      // For every combination of values (a = step value, b = fanin j,
      // c = fanin k): ~s | (x_it != a) | (j != b) | (k != c) | g(i, cb) = a.
      for (unsigned a = 0; a <= 1; ++a) {
        for (unsigned b = 0; b <= 1; ++b) {
          if (jv && *jv != static_cast<bool>(b)) {
            continue;  // literal (j != b) is true: clause satisfied-free
          }
          for (unsigned c = 0; c <= 1; ++c) {
            if (kv && *kv != static_cast<bool>(c)) {
              continue;
            }
            const unsigned pattern = (c << 1) | b;
            sat::clause_lits clause;
            clause.push_back(neg(select_[i][p]));
            clause.push_back(a ? neg(x(i, t)) : pos(x(i, t)));
            if (!jv && j >= num_inputs_) {
              clause.push_back(b ? neg(x(j - num_inputs_, t))
                                 : pos(x(j - num_inputs_, t)));
            }
            if (!kv && k >= num_inputs_) {
              clause.push_back(c ? neg(x(k - num_inputs_, t))
                                 : pos(x(k - num_inputs_, t)));
            }
            if (pattern == 0) {
              // Normal operators: g(i, 00) == 0, so requiring output a == 1
              // is impossible (keep clause as-is to forbid it); a == 0 is
              // trivially satisfied.
              if (a == 0) {
                continue;
              }
            } else {
              clause.push_back(a ? pos(this->g(i, pattern))
                                 : neg(this->g(i, pattern)));
            }
            solver_.add_clause(clause);
          }
        }
      }
    }
  }
  if (multi_mode()) {
    // Output-selection constraints: o(h, i) -> x(i, t) == f_h(t).
    assert(!output_care_ && "care sets are single-output only");
    for (std::size_t h = 0; h < functions_.size(); ++h) {
      for (unsigned i = 0; i < num_steps_; ++i) {
        solver_.add_clause({neg(out_sel_[h][i]),
                            functions_[h].get_bit(t) ? pos(x(i, t))
                                                     : neg(x(i, t))});
      }
    }
    return;
  }
  // Output constraint on the last step (care rows only).
  if (!output_care_ || output_care_->get_bit(t)) {
    solver_.add_clause({function_.get_bit(t) ? pos(x(num_steps_ - 1, t))
                                             : neg(x(num_steps_ - 1, t))});
  }
}

void ssv_encoding::encode_all_rows() {
  for (std::uint64_t t = 1; t < function_.num_bits(); ++t) {
    encode_row(t);
  }
}

chain::boolean_chain ssv_encoding::extract_chain(
    bool output_complemented) const {
  chain::boolean_chain out{num_inputs_};
  for (unsigned i = 0; i < num_steps_; ++i) {
    std::pair<unsigned, unsigned> fanin{0, 0};
    bool found = false;
    for (std::size_t p = 0; p < pairs_[i].size(); ++p) {
      if (solver_.model_value(select_[i][p])) {
        fanin = pairs_[i][p];
        found = true;
        break;
      }
    }
    assert(found);
    (void)found;
    unsigned op = 0;
    // Pattern p = (c<<1)|b with b = fanin j value, c = fanin k value; the
    // chain LUT convention indexes with (second<<1)|first, which matches.
    for (unsigned pattern = 1; pattern <= 3; ++pattern) {
      if (solver_.model_value(g(i, pattern))) {
        op |= 1u << pattern;
      }
    }
    out.add_step(op, fanin.first, fanin.second);
  }
  if (multi_mode()) {
    std::vector<chain::output_ref> outputs;
    outputs.reserve(functions_.size());
    for (std::size_t h = 0; h < functions_.size(); ++h) {
      bool bound = false;
      for (unsigned i = 0; i < num_steps_; ++i) {
        if (solver_.model_value(out_sel_[h][i])) {
          outputs.push_back(
              {num_inputs_ + i, output_complements_[h]});
          bound = true;
          break;
        }
      }
      assert(bound);
      (void)bound;
    }
    out.set_outputs(std::move(outputs));
    return out;
  }
  out.set_output(num_inputs_ + num_steps_ - 1, output_complemented);
  return out;
}

}  // namespace stpes::synth
