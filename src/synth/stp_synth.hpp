/// \file stp_synth.hpp
/// \brief The paper's exact-synthesis algorithm (Section III).
///
/// For increasing gate counts r (starting from the paper's bound: number of
/// support variables minus one) the engine
///
///   1. generates the pruned DAG topology families of r gates from Boolean
///      fences (Section III-A, `fence/`),
///   2. top-down factors the specification's canonical form over each DAG:
///      every vertex enumerates cone splits for its children (the `M_w`
///      reorderings and `M_r` sharings of Properties 3/4) and STP-factors
///      its requirement into child requirements (`factorize.hpp`),
///      pruning DAGs that cannot realize the function (Section III-B),
///   3. verifies every complete candidate with the STP circuit AllSAT
///      solver plus simulation (Section III-C) and collects *all* optimum
///      chains of the first feasible r.
///
/// Under a wall-clock budget the first feasible level may be cut short
/// after some optimum chains were already verified; the engine then still
/// reports success (the optimum size is proven — every smaller level was
/// exhausted) with `result::enumeration_complete = false` marking the
/// possibly-partial chain set.
///
/// Solutions are plain 2-LUT `boolean_chain`s; `core/selector.hpp` picks
/// among them by arbitrary cost functions, which is the flexibility the
/// paper advertises over single-solution CNF-based engines.

#pragma once

#include <cstdint>

#include "synth/factorize.hpp"
#include "synth/lower_bound.hpp"
#include "synth/spec.hpp"

namespace stpes::synth {

/// How each gate-count level is decided before/while the STP sweep runs.
///
/// The sweep *enumerates all* optimum chains; the CNF lower-bound probe
/// (`synth/lower_bound.hpp`) only decides *existence*, but refutes a whole
/// level orders of magnitude faster on the hard instances.  Combining the
/// two keeps the paper's all-optima semantics while killing the sweep's
/// worst case (exhausting the last infeasible level).
enum class stp_level_engine {
  /// Sweep every level (the paper's baseline; ablation reference).
  sweep,
  /// Run the probe first: UNSAT skips the level's sweep entirely, SAT or
  /// unknown falls through to the sweep.  Sequential, deterministic.
  probe_sweep,
  /// Race the probe against the sweep on the thread pool; the first
  /// proof wins and cancels the loser through `core::run_context`.  The
  /// solution set is still bit-identical to `sweep` (the probe can only
  /// cancel solution-free levels); effort counters become race-dependent.
  portfolio,
};

/// Tuning knobs; the defaults reproduce the paper's configuration, the
/// toggles exist for the ablation benchmarks.
struct stp_options {
  /// Generate DAGs with shared internal gates (reconvergence).  Turning
  /// this off restricts the search to fanout-free topologies.
  bool allow_shared_gates = true;
  /// Use the paper's pruned fence family; off = raw F_k (ablation).
  bool use_fence_pruning = true;
  /// Canonicalize internal polarities: every internal signal is required
  /// to be *normal* (0 on the all-zeros input row), with inversions folded
  /// into the consuming LUT — the same canonicalization CNF encodings use.
  /// Kills an up-to-2^r duplication of every solution under polarity
  /// redistribution; the solution set becomes "all optimum normal chains".
  bool normalize_polarity = true;
  /// Stop after this many optimum chains (0 = enumerate all).
  std::size_t max_solutions = 0;
  /// Sweep each gate count's candidate DAGs in *reverse* generation
  /// order.  The fence enumerator emits narrow, deep topologies first;
  /// on hard instances the realizable shapes concentrate at the end, so
  /// the reverse sweep finds first optimum chains orders of magnitude
  /// sooner (sub-second instead of 20s+ on the hard NPN4 classes) under
  /// a wall-clock budget.  The swept set, and thus the complete solution
  /// set of a finished level, is identical either way; off = generation
  /// order (ablation).
  bool reverse_dag_sweep = true;
  /// Cap on DAG topologies per gate count (0 = unlimited).
  std::size_t max_dags_per_size = 0;
  /// Worker threads for the intra-instance DAG sweep: candidate DAGs of
  /// the current gate count are fanned out in fixed contiguous chunks.
  /// 1 = sequential (default), 0 = one per hardware thread.  The solution
  /// set is bit-identical at any thread count (chunking, memo snapshots
  /// and the merge order are all thread-count independent); with
  /// `max_solutions == 0` the effort counters are identical too.
  unsigned num_threads = 1;
  /// Entry cap of the per-run factorization memo (0 = unlimited).  Hard
  /// 6-input instances otherwise grow the memo into millions of entries
  /// (gigabytes, plus seconds of merge/teardown past the deadline); the
  /// cap bounds memory while keeping the hit rate of the small, hot keys.
  /// Applied deterministically, so capped runs stay thread-count
  /// independent.
  std::size_t factor_memo_cap = 1u << 19;
  /// Entry cap of the fruitless-pending-state memo (0 = unlimited), for
  /// the same memory/teardown reasons as `factor_memo_cap`.
  std::size_t failed_memo_cap = 2u << 20;
  /// Per-level engine: lower-bound probe gating (default), plain sweep,
  /// or the probe-vs-sweep portfolio race.
  stp_level_engine engine = stp_level_engine::probe_sweep;
  /// Knobs of the lower-bound probe (budget, clause families, size cap).
  lower_bound_options probe;
  /// Branch caps of the per-vertex factorization.
  factorize_options factor;
};

/// Search statistics of the last `run`.
struct stp_stats {
  std::uint64_t fences = 0;
  std::uint64_t dags = 0;
  std::uint64_t partitions_tried = 0;
  std::uint64_t factorizations = 0;
  std::uint64_t candidates = 0;  ///< complete chains assembled
  std::uint64_t verified = 0;    ///< candidates passing AllSAT + simulation
};

/// The STP exact-synthesis engine.
class stp_engine {
public:
  explicit stp_engine(stp_options options = {});

  /// Synthesizes all optimum chains for `s.function`.
  result run(const spec& s);

  /// Don't-care-aware synthesis: all minimum chains whose function is
  /// *accepted* by `target` (agrees on every care minterm).  A natural
  /// extension of the paper: the factorization engine already propagates
  /// incompletely specified requirements, so an ISF at the root costs
  /// nothing extra — CNF encodings would need per-row relaxation instead.
  /// `ctx` follows the `spec::ctx` contract (may be nullptr).
  result run_with_dont_cares(const tt::isf& target,
                             core::run_context* ctx = nullptr,
                             unsigned max_gates = 24);

  [[nodiscard]] const stp_stats& stats() const { return stats_; }

private:
  stp_options options_;
  stp_stats stats_;
};

/// Convenience wrapper: run the engine with default options.
result stp_synthesize(const spec& s);

}  // namespace stpes::synth
