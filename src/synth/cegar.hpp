/// \file cegar.hpp
/// \brief CEGAR SSV exact synthesis — the stand-in for ABC `lutexact`.
///
/// Substitution note (see DESIGN.md §4): the paper's third baseline is
/// ABC's `lutexact` command.  Vendoring ABC is out of scope, so this engine
/// reproduces the algorithmic trait that makes mature CNF engines fast on
/// these instances: truth-table row constraints are added lazily.  Solve a
/// relaxation with only a few rows, simulate the extracted chain, add the
/// first mismatching row as a counterexample, repeat; UNSAT of the
/// relaxation proves UNSAT of the full encoding for that step count.

#pragma once

#include "synth/spec.hpp"

namespace stpes::synth {

struct cegar_stats {
  std::uint64_t solver_calls = 0;
  std::uint64_t refinements = 0;
  std::uint64_t conflicts = 0;
};

class cegar_engine {
public:
  result run(const spec& s);
  [[nodiscard]] const cegar_stats& stats() const { return stats_; }

private:
  cegar_stats stats_;
};

result cegar_synthesize(const spec& s);

}  // namespace stpes::synth
