#include "synth/fen.hpp"

#include "fence/fence.hpp"
#include "synth/ssv_encoding.hpp"

namespace stpes::synth {

result fen_engine::run(const spec& s) {
  util::stopwatch watch;
  stats_ = fen_stats{};
  result out;

  core::run_context local_rc;
  core::run_context& rc = s.ctx != nullptr ? *s.ctx : local_rc;
  const core::stage_counters at_start = rc.counters;
  const auto finish = [&](result& r) -> result& {
    r.seconds = watch.elapsed_seconds();
    r.counters = rc.counters - at_start;
    return r;
  };

  const auto targets = s.targets();
  if (targets.size() >= 2) {
    // Multi-output path: the single-top fence family is incomplete for
    // m >= 2 (disjoint-support outputs need several dangling gates), so
    // iterate the multi-output pruned family instead.  The caller (core
    // pre-pass) guarantees non-degenerate, pairwise-distinct targets.
    std::vector<unsigned> old_of_new;
    const auto fs = shrink_for_synthesis(targets, old_of_new);
    const auto max_outputs = static_cast<unsigned>(fs.size());
    bool multi_timed_out = false;
    for (unsigned gates = std::max(1u, trivial_lower_bound(fs));
         gates <= s.max_gates; ++gates) {
      for (const auto& fc :
           fence::pruned_fences_multi(gates, max_outputs, &rc)) {
        if (rc.should_stop()) {
          out.outcome = status::timeout;
          return finish(out);
        }
        ++stats_.fences;
        sat::solver solver;
        solver.set_run_context(&rc);
        ssv_encoding encoding{solver, fs, gates,
                              fence_fanin_pairs(fc, fs.front().num_vars())};
        encoding.encode_structure();
        encoding.encode_all_rows();
        ++stats_.solver_calls;
        const auto answer = solver.solve();
        stats_.conflicts += solver.stats().conflicts;
        if (answer == sat::solve_result::sat) {
          out.outcome = status::success;
          out.optimum_gates = gates;
          out.chains = {lift_chain_to_original(encoding.extract_chain(false),
                                               old_of_new,
                                               targets.front().num_vars())};
          return finish(out);
        }
        if (answer == sat::solve_result::unknown) {
          multi_timed_out = true;
          break;
        }
      }
      if (multi_timed_out) {
        break;
      }
    }
    out.outcome = multi_timed_out ? status::timeout : status::failure;
    return finish(out);
  }

  std::vector<unsigned> old_of_new;
  auto f = shrink_for_synthesis(targets.front(), old_of_new);
  const bool complemented = f.get_bit(0);
  if (complemented) {
    f = ~f;
  }

  bool timed_out = false;
  for (unsigned gates = std::max(1u, trivial_lower_bound(f));
       gates <= s.max_gates; ++gates) {
    for (const auto& fc : fence::pruned_fences(gates, &rc)) {
      if (rc.should_stop()) {
        out.outcome = status::timeout;
        return finish(out);
      }
      ++stats_.fences;
      sat::solver solver;
      solver.set_run_context(&rc);
      ssv_encoding encoding{solver, f, gates,
                            fence_fanin_pairs(fc, f.num_vars())};
      encoding.encode_structure();
      encoding.encode_all_rows();
      ++stats_.solver_calls;
      const auto answer = solver.solve();
      stats_.conflicts += solver.stats().conflicts;
      if (answer == sat::solve_result::sat) {
        out.outcome = status::success;
        out.optimum_gates = gates;
        out.chains = {lift_chain_to_original(
            encoding.extract_chain(complemented), old_of_new,
            targets.front().num_vars())};
        return finish(out);
      }
      if (answer == sat::solve_result::unknown) {
        timed_out = true;
        break;
      }
    }
    if (timed_out) {
      break;
    }
  }
  out.outcome = timed_out ? status::timeout : status::failure;
  return finish(out);
}

result fen_synthesize(const spec& s) {
  fen_engine engine;
  return engine.run(s);
}

}  // namespace stpes::synth
