/// \file spec.hpp
/// \brief Common specification / result types shared by every exact-
///        synthesis engine (STP, BMS, FEN, CEGAR).
///
/// All engines answer the same question: given a single-output Boolean
/// function, find (an) optimum Boolean chain(s) — minimum number of 2-input
/// steps.  They differ in how the search is run; the types here keep the
/// Table-I harness engine-agnostic.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "chain/boolean_chain.hpp"
#include "tt/truth_table.hpp"
#include "util/run_context.hpp"

namespace stpes::synth {

/// A synthesis problem instance.
struct spec {
  tt::truth_table function;
  /// Shared deadline / cancel flag / counters of this run (not owned).
  /// Null means free-running: no deadline, not cancellable, counters
  /// discarded.  Engines poll `ctx->should_stop()` at bounded strides and
  /// return `timeout` when it trips.
  core::run_context* ctx = nullptr;
  /// Upper bound on chain size before giving up as unrealizable.
  unsigned max_gates = 24;
  /// Worker threads for engines with an intra-instance parallel search
  /// (currently the STP DAG sweep): 0 = keep the engine's configured
  /// default, 1 = force sequential, N = fan out over N workers.
  unsigned num_threads = 0;
};

enum class status { success, timeout, failure };

const char* to_string(status s);

/// Result of one synthesis call.
struct result {
  status outcome = status::failure;
  /// All optimum chains found (baseline engines report exactly one; the
  /// STP engine reports the complete set under its topology constraints).
  std::vector<chain::boolean_chain> chains;
  /// Optimum step count (valid when outcome == success).
  unsigned optimum_gates = 0;
  /// True when `chains` is the engine's complete solution set under its
  /// configured caps.  False when the deadline (or an external cancel)
  /// cut the optimum level's sweep after at least one optimum chain was
  /// verified: `optimum_gates` is still the proven minimum — every
  /// smaller gate count was exhausted before the level started — but
  /// `chains` may be a strict subset of the complete set.  This is the
  /// same notion of "solved" that single-solution CNF engines report;
  /// those engines always set it to true.
  bool enumeration_complete = true;
  /// Wall-clock seconds spent.
  double seconds = 0.0;
  /// Per-stage effort spent on this call (delta, not cumulative).
  core::stage_counters counters;

  [[nodiscard]] bool ok() const { return outcome == status::success; }

  /// First (representative) chain.  Throws when the result carries no
  /// chain at all — e.g. a timeout or cancellation before any optimum was
  /// found — so callers must check `ok()` / `chains.empty()` first.
  [[nodiscard]] const chain::boolean_chain& best() const {
    if (chains.empty()) {
      throw std::logic_error(
          "synth::result::best(): no chains (outcome: " +
          std::string(to_string(outcome)) + ")");
    }
    return chains.front();
  }
};

/// Handles the degenerate targets every engine treats identically:
/// constants (one const-LUT step) and literals (zero steps).  Returns true
/// and fills `out` when `f` is degenerate.
bool synthesize_degenerate(const tt::truth_table& f, result& out);

/// Shrinks `f` to its support and returns the shrunk function; `old_of_new`
/// receives the original variable of each shrunk variable.  Chains
/// synthesized for the shrunk function are lifted back with
/// `lift_chain_to_original`.
tt::truth_table shrink_for_synthesis(const tt::truth_table& f,
                                     std::vector<unsigned>& old_of_new);

/// Re-expresses a chain over the shrunk support as a chain over the
/// original `num_original_inputs` inputs.
chain::boolean_chain lift_chain_to_original(
    const chain::boolean_chain& shrunk_chain,
    const std::vector<unsigned>& old_of_new, unsigned num_original_inputs);

/// Lower bound on the number of 2-input steps: a function depending on s
/// variables needs at least s-1 steps.
unsigned trivial_lower_bound(const tt::truth_table& f);

}  // namespace stpes::synth
