/// \file spec.hpp
/// \brief Common specification / result types shared by every exact-
///        synthesis engine (STP, BMS, FEN, CEGAR).
///
/// All engines answer the same question: given a vector of Boolean
/// functions over shared inputs, find (an) optimum Boolean chain(s) — a
/// single chain with one output per function and the minimum number of
/// 2-input steps.  The classic single-output problem is the m = 1 case.
/// They differ in how the search is run; the types here keep the Table-I
/// harness engine-agnostic.
///
/// Degenerate outputs (constants, literals, duplicates, complements of
/// another output) are classified once by `analyze_outputs` — the shared
/// pre-pass `core::exact_synthesis` runs before any engine — so engines
/// only ever see pairwise-distinct (modulo complement) functions with
/// support >= 2.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "chain/boolean_chain.hpp"
#include "tt/truth_table.hpp"
#include "util/run_context.hpp"

namespace stpes::synth {

/// A synthesis problem instance.
struct spec {
  tt::truth_table function;
  /// Multi-output target: when non-empty, the chain must realize all of
  /// these functions (over the same variable count) and `function` is
  /// ignored.  Leave empty for the classic single-output problem.
  std::vector<tt::truth_table> functions;
  /// The effective target list: `functions` when non-empty, else
  /// `{function}`.
  [[nodiscard]] std::vector<tt::truth_table> targets() const {
    return functions.empty() ? std::vector<tt::truth_table>{function}
                             : functions;
  }
  /// Shared deadline / cancel flag / counters of this run (not owned).
  /// Null means free-running: no deadline, not cancellable, counters
  /// discarded.  Engines poll `ctx->should_stop()` at bounded strides and
  /// return `timeout` when it trips.
  core::run_context* ctx = nullptr;
  /// Upper bound on chain size before giving up as unrealizable.
  unsigned max_gates = 24;
  /// Worker threads for engines with an intra-instance parallel search
  /// (currently the STP DAG sweep): 0 = keep the engine's configured
  /// default, 1 = force sequential, N = fan out over N workers.
  unsigned num_threads = 0;
};

enum class status { success, timeout, failure };

const char* to_string(status s);

/// Result of one synthesis call.
struct result {
  status outcome = status::failure;
  /// All optimum chains found (baseline engines report exactly one; the
  /// STP engine reports the complete set under its topology constraints).
  std::vector<chain::boolean_chain> chains;
  /// Optimum step count (valid when outcome == success).
  unsigned optimum_gates = 0;
  /// True when `chains` is the engine's complete solution set under its
  /// configured caps.  False when the deadline (or an external cancel)
  /// cut the optimum level's sweep after at least one optimum chain was
  /// verified: `optimum_gates` is still the proven minimum — every
  /// smaller gate count was exhausted before the level started — but
  /// `chains` may be a strict subset of the complete set.  This is the
  /// same notion of "solved" that single-solution CNF engines report;
  /// those engines always set it to true.
  bool enumeration_complete = true;
  /// Wall-clock seconds spent.
  double seconds = 0.0;
  /// Per-stage effort spent on this call (delta, not cumulative).
  core::stage_counters counters;

  [[nodiscard]] bool ok() const { return outcome == status::success; }

  /// First (representative) chain.  Throws when the result carries no
  /// chain at all — e.g. a timeout or cancellation before any optimum was
  /// found — so callers must check `ok()` / `chains.empty()` first.
  [[nodiscard]] const chain::boolean_chain& best() const {
    if (chains.empty()) {
      throw std::logic_error(
          "synth::result::best(): no chains (outcome: " +
          std::string(to_string(outcome)) + ")");
    }
    return chains.front();
  }

  /// The representative chain's realization of spec output `index` — the
  /// explicit output-aware accessor.  `best().simulate()` only reads
  /// output 0; multi-output callers must address outputs by index.
  [[nodiscard]] tt::truth_table best_output(unsigned index) const {
    return best().simulate_output(index);
  }
};

/// Handles the degenerate targets every engine treats identically:
/// constants (one const-LUT step) and literals (zero steps).  Returns true
/// and fills `out` when `f` is degenerate.
bool synthesize_degenerate(const tt::truth_table& f, result& out);

/// Percy-style per-output classification of an m-output target list: the
/// shared pre-pass that keeps degenerate outputs out of every engine's
/// search.
struct output_plan {
  enum class kind {
    constant,  ///< const 0 (complemented = false) or const 1 (true)
    literal,   ///< input `var`, complemented or not
    synth,     ///< `distinct[synth_index]`, complemented or not
  };
  struct entry {
    kind what = kind::synth;
    bool complemented = false;
    unsigned var = 0;             ///< literal only
    std::size_t synth_index = 0;  ///< synth only
  };
  /// One entry per requested output, in request order.
  std::vector<entry> outputs;
  /// The pairwise-distinct (also modulo complement) non-degenerate
  /// functions that actually enter the search, in first-seen order.
  std::vector<tt::truth_table> distinct;
  /// True when some output is constant (costs one shared const-0 step).
  bool needs_constant = false;

  [[nodiscard]] bool all_degenerate() const { return distinct.empty(); }
};

/// Classifies every output of `targets` (all over the same variable
/// count).  Throws on an empty list or mismatched variable counts.
output_plan analyze_outputs(const std::vector<tt::truth_table>& targets);

/// Builds the final m-output chain for `plan` from a chain realizing
/// `plan.distinct` (one output per distinct function, in order); pass an
/// empty chain template when `plan.all_degenerate()`.  Appends the shared
/// const-0 step when needed and binds every requested output.
chain::boolean_chain bind_plan_outputs(const output_plan& plan,
                                       chain::boolean_chain chain);

/// Shrinks `f` to its support and returns the shrunk function; `old_of_new`
/// receives the original variable of each shrunk variable.  Chains
/// synthesized for the shrunk function are lifted back with
/// `lift_chain_to_original`.
tt::truth_table shrink_for_synthesis(const tt::truth_table& f,
                                     std::vector<unsigned>& old_of_new);

/// Union-support variant: shrinks every function of `fs` to the union of
/// their supports under one shared variable mapping, so an m-output chain
/// for the shrunk list lifts back with the same `old_of_new`.
std::vector<tt::truth_table> shrink_for_synthesis(
    const std::vector<tt::truth_table>& fs,
    std::vector<unsigned>& old_of_new);

/// Re-expresses a chain over the shrunk support as a chain over the
/// original `num_original_inputs` inputs.
chain::boolean_chain lift_chain_to_original(
    const chain::boolean_chain& shrunk_chain,
    const std::vector<unsigned>& old_of_new, unsigned num_original_inputs);

/// Lower bound on the number of 2-input steps: a function depending on s
/// variables needs at least s-1 steps.
unsigned trivial_lower_bound(const tt::truth_table& f);

/// Multi-output lower bound for pairwise-distinct (modulo complement)
/// non-degenerate functions: every function needs its own step, and each
/// needs at least support-1 steps on its own.
unsigned trivial_lower_bound(const std::vector<tt::truth_table>& fs);

}  // namespace stpes::synth
