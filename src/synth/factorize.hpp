/// \file factorize.hpp
/// \brief STP matrix factorization of node requirements (Section III-B).
///
/// The paper factors the canonical form `M_Phi` of a requirement into a
/// structural matrix for the DAG vertex and canonical forms for its
/// children, pruning vertices whose matrix has more than "two unique
/// quartering parts".  Shared variables are handled by factoring out the
/// power-reducing matrix `M_r`, which introduces `x` (don't-care) entries
/// (Properties 3 and 4); variable reorderings correspond to `M_w` factors.
///
/// In truth-table form the same computation is a constrained two-block
/// decomposition: given a requirement R (an ISF over the global inputs) and
/// fixed child cones A and B, find all (op, u, v) with
///
///     R(m) = op(u(m|A), v(m|B))   for every care minterm m,
///
/// where u and v are ISFs classed on their cones (the don't-cares are
/// exactly the paper's `x` entries).  Two operator families span all
/// non-degenerate 2-input operators once child complementation and
/// PI-polarity absorption are taken into account:
///
///   * AND-like: R^pol = u & v.  On-minterms force u and v cells to 1;
///     every off-minterm is a binary choice (u-cell 0 or v-cell 0) —
///     branching enumerates the complete solution set, capped.
///   * XOR-like: R^pol = u ^ v.  A parity union-find over cells decides
///     feasibility; every connected component can be flipped, enumerated up
///     to a cap.

#pragma once

#include <cstdint>
#include <vector>

#include "tt/isf.hpp"
#include "tt/truth_table.hpp"
#include "util/run_context.hpp"

namespace stpes::synth {

/// Operator family assigned to a DAG vertex by factorization.
enum class op_family : std::uint8_t { and_like, xor_like };

/// A requirement attached to a DAG vertex: the variables it may use and
/// the (incompletely specified) function it must realize, kept in the
/// global input space.
struct requirement {
  std::uint32_t cone = 0;
  tt::isf func;
};

/// One factorization branch at a vertex: the vertex computes
/// `(left AND right) ^ output_complemented` or
/// `(left XOR right) ^ output_complemented` where the children satisfy the
/// attached requirements.
struct factorization {
  op_family family = op_family::and_like;
  bool output_complemented = false;
  requirement left;
  requirement right;
};

/// Caps keeping the all-solutions enumeration bounded.
struct factorize_options {
  /// Maximum (u, v) completions returned per (family, polarity).
  std::size_t max_branches_per_family = 32;
  /// Maximum XOR components enumerated exhaustively (2^c flip patterns).
  unsigned max_xor_components = 5;
};

/// All decompositions of `r` for the fixed cone split (cone_a, cone_b).
/// Both cones must be subsets of `r.cone` and their union must cover it.
/// When `ctx` is given the recursion observes its cancel flag between
/// branches and reports effort into its counters: one factorization
/// attempt per call, a prune when no decomposition survives, and one
/// don't-care expansion per case split forced by an unconstrained cell
/// (AND-family off-minterm choice or XOR-component flip).
std::vector<factorization> factor_requirement(
    const requirement& r, std::uint32_t cone_a, std::uint32_t cone_b,
    const factorize_options& options = {}, core::run_context* ctx = nullptr);

/// True iff the requirement admits at least one decomposition for the
/// split — the paper's prune test ("can this DAG realize f?") without
/// enumerating completions.
bool is_factorable(const requirement& r, std::uint32_t cone_a,
                   std::uint32_t cone_b);

}  // namespace stpes::synth
