/// \file factorize.hpp
/// \brief STP matrix factorization of node requirements (Section III-B).
///
/// The paper factors the canonical form `M_Phi` of a requirement into a
/// structural matrix for the DAG vertex and canonical forms for its
/// children, pruning vertices whose matrix has more than "two unique
/// quartering parts".  Shared variables are handled by factoring out the
/// power-reducing matrix `M_r`, which introduces `x` (don't-care) entries
/// (Properties 3 and 4); variable reorderings correspond to `M_w` factors.
///
/// In truth-table form the same computation is a constrained two-block
/// decomposition: given a requirement R (an ISF over the global inputs) and
/// fixed child cones A and B, find all (op, u, v) with
///
///     R(m) = op(u(m|A), v(m|B))   for every care minterm m,
///
/// where u and v are ISFs classed on their cones (the don't-cares are
/// exactly the paper's `x` entries).  Two operator families span all
/// non-degenerate 2-input operators once child complementation and
/// PI-polarity absorption are taken into account:
///
///   * AND-like: R^pol = u & v.  On-minterms force u and v cells to 1;
///     every off-minterm is a binary choice (u-cell 0 or v-cell 0) —
///     branching enumerates the complete solution set, capped.
///   * XOR-like: R^pol = u ^ v.  A parity union-find over cells decides
///     feasibility; every connected component can be flipped, enumerated up
///     to a cap.

#pragma once

#include <cstdint>
#include <vector>

#include "tt/isf.hpp"
#include "tt/truth_table.hpp"
#include "util/run_context.hpp"

namespace stpes::synth {

/// Operator family assigned to a DAG vertex by factorization.
enum class op_family : std::uint8_t { and_like, xor_like };

/// A requirement attached to a DAG vertex: the variables it may use and
/// the (incompletely specified) function it must realize, kept in the
/// global input space.
struct requirement {
  std::uint32_t cone = 0;
  tt::isf func;
};

/// One factorization branch at a vertex: the vertex computes
/// `(left AND right) ^ output_complemented` or
/// `(left XOR right) ^ output_complemented` where the children satisfy the
/// attached requirements.
struct factorization {
  op_family family = op_family::and_like;
  bool output_complemented = false;
  requirement left;
  requirement right;
};

/// Caps keeping the all-solutions enumeration bounded.
struct factorize_options {
  /// Maximum (u, v) completions returned per (family, polarity).
  std::size_t max_branches_per_family = 32;
  /// Maximum XOR components enumerated exhaustively (2^c flip patterns).
  unsigned max_xor_components = 5;
};

/// One candidate cone split of a requirement's cone: the left child may
/// consume the variables of `a`, the right child those of `b`.
struct cone_split {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// All decompositions of `r` for the fixed cone split (cone_a, cone_b).
/// Both cones must be subsets of `r.cone` and their union must cover it.
/// When `ctx` is given the recursion observes its cancel flag between
/// branches and reports effort into its counters: one factorization
/// attempt per call, a prune when no decomposition survives, and one
/// don't-care expansion per case split forced by an unconstrained cell
/// (AND-family off-minterm choice or XOR-component flip).
std::vector<factorization> factor_requirement(
    const requirement& r, std::uint32_t cone_a, std::uint32_t cone_b,
    const factorize_options& options = {}, core::run_context* ctx = nullptr);

/// Batched form: decomposes `r` for every split in `splits` (result `i`
/// corresponds to `splits[i]`) and returns lists identical to calling
/// `factor_requirement` once per split.  The batch is where the vector
/// kernel tier earns its keep: the target polarity complements/offsets are
/// computed once per batch instead of once per split, the class-replicated
/// forced-one sets are deduplicated per *distinct cone* and smoothed
/// struct-of-arrays through the dispatched kernels, and the AND-family
/// feasibility screen runs across the whole batch in one pass — only the
/// surviving (split, polarity) queries reach the per-candidate branching
/// solver.  Effort lands in `ctx->counters.kernel_batch_*`.
///
/// When `ctx` reports a stop mid-batch the remaining splits come back as
/// empty lists (without a prune count), matching what the caller's own
/// cancellation polling would have skipped.
std::vector<std::vector<factorization>> factor_requirement_batch(
    const requirement& r, const cone_split* splits, std::size_t count,
    const factorize_options& options = {}, core::run_context* ctx = nullptr);

/// Convenience overload over a materialized split vector.
inline std::vector<std::vector<factorization>> factor_requirement_batch(
    const requirement& r, const std::vector<cone_split>& splits,
    const factorize_options& options = {}, core::run_context* ctx = nullptr) {
  return factor_requirement_batch(r, splits.data(), splits.size(), options,
                                  ctx);
}

/// True iff the requirement admits at least one decomposition for the
/// split — the paper's prune test ("can this DAG realize f?") without
/// enumerating completions.
bool is_factorable(const requirement& r, std::uint32_t cone_a,
                   std::uint32_t cone_b);

}  // namespace stpes::synth
