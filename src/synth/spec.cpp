#include "synth/spec.hpp"

#include <cassert>

namespace stpes::synth {

const char* to_string(status s) {
  switch (s) {
    case status::success:
      return "success";
    case status::timeout:
      return "timeout";
    case status::failure:
      return "failure";
  }
  return "?";
}

bool synthesize_degenerate(const tt::truth_table& f, result& out) {
  const auto support = f.support_mask();
  if (support == 0) {
    // Constant: a single const-LUT step (op 0x0 / 0xF).  Knuth's formal
    // model has a dedicated constant-zero input; we spend one step instead
    // so that chains stay self-contained.
    chain::boolean_chain c{f.num_vars()};
    if (f.num_vars() == 0) {
      out.outcome = status::failure;  // no signals at all
      return true;
    }
    const auto s = c.add_step(f.is_const1() ? 0xF : 0x0, 0, 0);
    c.set_output(s);
    out.outcome = status::success;
    out.chains = {std::move(c)};
    out.optimum_gates = 1;
    return true;
  }
  if ((support & (support - 1)) == 0) {
    // Literal: zero steps, output is the input (possibly complemented).
    unsigned v = 0;
    while (((support >> v) & 1) == 0) {
      ++v;
    }
    chain::boolean_chain c{f.num_vars()};
    const bool complemented = !f.cofactor1(v).is_const1();
    c.set_output(v, complemented);
    out.outcome = status::success;
    out.chains = {std::move(c)};
    out.optimum_gates = 0;
    return true;
  }
  return false;
}

tt::truth_table shrink_for_synthesis(const tt::truth_table& f,
                                     std::vector<unsigned>& old_of_new) {
  return f.shrink_to_support(&old_of_new);
}

chain::boolean_chain lift_chain_to_original(
    const chain::boolean_chain& shrunk_chain,
    const std::vector<unsigned>& old_of_new,
    unsigned num_original_inputs) {
  chain::boolean_chain lifted{num_original_inputs};
  const unsigned shrunk_inputs = shrunk_chain.num_inputs();
  auto map_signal = [&](std::uint32_t s) -> std::uint32_t {
    if (s < shrunk_inputs) {
      return old_of_new[s];
    }
    return num_original_inputs + (s - shrunk_inputs);
  };
  for (const auto& st : shrunk_chain.steps()) {
    lifted.add_step(st.op, map_signal(st.fanin[0]), map_signal(st.fanin[1]));
  }
  lifted.set_output(map_signal(shrunk_chain.output()),
                    shrunk_chain.output_complemented());
  return lifted;
}

unsigned trivial_lower_bound(const tt::truth_table& f) {
  const unsigned s = f.support_size();
  return s <= 1 ? 0 : s - 1;
}

}  // namespace stpes::synth
