#include "synth/spec.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace stpes::synth {

const char* to_string(status s) {
  switch (s) {
    case status::success:
      return "success";
    case status::timeout:
      return "timeout";
    case status::failure:
      return "failure";
  }
  return "?";
}

bool synthesize_degenerate(const tt::truth_table& f, result& out) {
  const auto support = f.support_mask();
  if (support == 0) {
    // Constant: a single const-LUT step (op 0x0 / 0xF).  Knuth's formal
    // model has a dedicated constant-zero input; we spend one step instead
    // so that chains stay self-contained.
    chain::boolean_chain c{f.num_vars()};
    if (f.num_vars() == 0) {
      out.outcome = status::failure;  // no signals at all
      return true;
    }
    const auto s = c.add_step(f.is_const1() ? 0xF : 0x0, 0, 0);
    c.set_output(s);
    out.outcome = status::success;
    out.chains = {std::move(c)};
    out.optimum_gates = 1;
    return true;
  }
  if ((support & (support - 1)) == 0) {
    // Literal: zero steps, output is the input (possibly complemented).
    unsigned v = 0;
    while (((support >> v) & 1) == 0) {
      ++v;
    }
    chain::boolean_chain c{f.num_vars()};
    const bool complemented = !f.cofactor1(v).is_const1();
    c.set_output(v, complemented);
    out.outcome = status::success;
    out.chains = {std::move(c)};
    out.optimum_gates = 0;
    return true;
  }
  return false;
}

output_plan analyze_outputs(const std::vector<tt::truth_table>& targets) {
  if (targets.empty()) {
    throw std::invalid_argument{"analyze_outputs: empty target list"};
  }
  const unsigned n = targets[0].num_vars();
  output_plan plan;
  plan.outputs.reserve(targets.size());
  for (const auto& f : targets) {
    if (f.num_vars() != n) {
      throw std::invalid_argument{
          "analyze_outputs: outputs over different variable counts"};
    }
    output_plan::entry e;
    const auto support = f.support_mask();
    if (support == 0) {
      e.what = output_plan::kind::constant;
      e.complemented = f.is_const1();
      plan.needs_constant = true;
    } else if ((support & (support - 1)) == 0) {
      e.what = output_plan::kind::literal;
      e.var = static_cast<unsigned>(std::countr_zero(support));
      e.complemented = !f.cofactor1(e.var).is_const1();
    } else {
      e.what = output_plan::kind::synth;
      bool found = false;
      for (std::size_t i = 0; i < plan.distinct.size(); ++i) {
        if (plan.distinct[i] == f) {
          e.synth_index = i;
          found = true;
          break;
        }
        if (~plan.distinct[i] == f) {
          e.synth_index = i;
          e.complemented = true;
          found = true;
          break;
        }
      }
      if (!found) {
        e.synth_index = plan.distinct.size();
        plan.distinct.push_back(f);
      }
    }
    plan.outputs.push_back(e);
  }
  return plan;
}

chain::boolean_chain bind_plan_outputs(const output_plan& plan,
                                       chain::boolean_chain chain) {
  assert(chain.num_outputs() == plan.distinct.size() ||
         plan.all_degenerate());
  std::uint32_t const_signal = 0;
  if (plan.needs_constant) {
    // One shared const-0 step; const-1 outputs complement it.
    const_signal = chain.add_step(0x0, 0, 0);
  }
  const auto synth_outputs = chain.outputs();  // copy: rebinding below
  std::vector<chain::output_ref> bound;
  bound.reserve(plan.outputs.size());
  for (const auto& e : plan.outputs) {
    switch (e.what) {
      case output_plan::kind::constant:
        bound.push_back({const_signal, e.complemented});
        break;
      case output_plan::kind::literal:
        bound.push_back({e.var, e.complemented});
        break;
      case output_plan::kind::synth: {
        auto o = synth_outputs[e.synth_index];
        o.complemented = o.complemented != e.complemented;
        bound.push_back(o);
        break;
      }
    }
  }
  chain.set_outputs(std::move(bound));
  return chain;
}

tt::truth_table shrink_for_synthesis(const tt::truth_table& f,
                                     std::vector<unsigned>& old_of_new) {
  return f.shrink_to_support(&old_of_new);
}

std::vector<tt::truth_table> shrink_for_synthesis(
    const std::vector<tt::truth_table>& fs,
    std::vector<unsigned>& old_of_new) {
  assert(!fs.empty());
  std::uint32_t union_mask = 0;
  for (const auto& f : fs) {
    union_mask |= f.support_mask();
  }
  old_of_new.clear();
  const unsigned n = fs[0].num_vars();
  for (unsigned v = 0; v < n; ++v) {
    if ((union_mask >> v) & 1) {
      old_of_new.push_back(v);
    }
  }
  const unsigned k = static_cast<unsigned>(old_of_new.size());
  std::vector<tt::truth_table> shrunk;
  shrunk.reserve(fs.size());
  for (const auto& f : fs) {
    tt::truth_table g{k};
    for (std::uint64_t t = 0; t < g.num_bits(); ++t) {
      std::uint64_t row = 0;
      for (unsigned v = 0; v < k; ++v) {
        row |= ((t >> v) & 1) << old_of_new[v];
      }
      g.set_bit(t, f.get_bit(row));
    }
    shrunk.push_back(std::move(g));
  }
  return shrunk;
}

chain::boolean_chain lift_chain_to_original(
    const chain::boolean_chain& shrunk_chain,
    const std::vector<unsigned>& old_of_new,
    unsigned num_original_inputs) {
  chain::boolean_chain lifted{num_original_inputs};
  const unsigned shrunk_inputs = shrunk_chain.num_inputs();
  auto map_signal = [&](std::uint32_t s) -> std::uint32_t {
    if (s < shrunk_inputs) {
      return old_of_new[s];
    }
    return num_original_inputs + (s - shrunk_inputs);
  };
  for (const auto& st : shrunk_chain.steps()) {
    lifted.add_step(st.op, map_signal(st.fanin[0]), map_signal(st.fanin[1]));
  }
  std::vector<chain::output_ref> outputs = shrunk_chain.outputs();
  for (auto& o : outputs) {
    o.signal = map_signal(o.signal);
  }
  lifted.set_outputs(std::move(outputs));
  return lifted;
}

unsigned trivial_lower_bound(const tt::truth_table& f) {
  const unsigned s = f.support_size();
  return s <= 1 ? 0 : s - 1;
}

unsigned trivial_lower_bound(const std::vector<tt::truth_table>& fs) {
  unsigned bound = static_cast<unsigned>(fs.size());
  for (const auto& f : fs) {
    bound = std::max(bound, trivial_lower_bound(f));
  }
  return bound;
}

}  // namespace stpes::synth
