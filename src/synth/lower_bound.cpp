#include "synth/lower_bound.hpp"

#include <utility>
#include <vector>

#include "fence/fence.hpp"
#include "sat/solver.hpp"
#include "synth/ssv_encoding.hpp"

namespace stpes::synth {

namespace {

using sat::neg;
using sat::pos;

/// Colexicographic order on fanin pairs (j < k per pair): compare by the
/// larger fanin first.  Matches percy's pair ordering.
bool colex_less(const std::pair<unsigned, unsigned>& a,
                const std::pair<unsigned, unsigned>& b) {
  return a.second < b.second ||
         (a.second == b.second && a.first < b.first);
}

bool pair_contains(const std::pair<unsigned, unsigned>& p, unsigned signal) {
  return p.first == signal || p.second == signal;
}

/// colex: for consecutive steps on the same fence level, forbid the later
/// step from selecting a colexicographically smaller pair.  Same-level
/// steps have identical allowed-pair lists (fanins come from strictly
/// lower levels only), and swapping them — renaming their output signals
/// in every later step, which is closed under the same-level pair lists —
/// maps chains to chains, so one order suffices.
void add_colex(sat::solver& solver, const ssv_encoding& enc,
               const std::vector<unsigned>& level_of_step) {
  for (unsigned i = 0; i + 1 < enc.num_steps(); ++i) {
    if (level_of_step[i] != level_of_step[i + 1]) {
      continue;
    }
    const auto& pi = enc.fanin_pairs(i);
    const auto& pn = enc.fanin_pairs(i + 1);
    for (std::size_t p = 0; p < pi.size(); ++p) {
      for (std::size_t q = 0; q < pn.size(); ++q) {
        if (colex_less(pn[q], pi[p])) {
          solver.add_clause(
              {neg(enc.select_var(i, p)), neg(enc.select_var(i + 1, q))});
        }
      }
    }
  }
}

/// noreapply: forbid step i' from pairing step i's output with one of
/// step i's own fanins.  Such a step computes a two-variable function of
/// i's fanins and can be rewired to consume them directly; the rewrite
/// strictly decreases the fanin-index sum, so iterating it terminates in
/// a chain at this or an already-refuted smaller gate count.
void add_noreapply(sat::solver& solver, const ssv_encoding& enc,
                   unsigned num_inputs) {
  for (unsigned i = 0; i < enc.num_steps(); ++i) {
    const unsigned out_signal = num_inputs + i;
    const auto& pi = enc.fanin_pairs(i);
    for (unsigned i2 = i + 1; i2 < enc.num_steps(); ++i2) {
      const auto& p2 = enc.fanin_pairs(i2);
      for (std::size_t q = 0; q < p2.size(); ++q) {
        if (!pair_contains(p2[q], out_signal)) {
          continue;
        }
        const unsigned other =
            p2[q].first == out_signal ? p2[q].second : p2[q].first;
        for (std::size_t p = 0; p < pi.size(); ++p) {
          if (pair_contains(pi[p], other)) {
            solver.add_clause(
                {neg(enc.select_var(i, p)), neg(enc.select_var(i2, q))});
          }
        }
      }
    }
  }
}

/// symvar: for every input pair p < q the ISF is symmetric in (on-set and
/// care-set both invariant under the swap), a step may use q only if an
/// earlier step uses p — otherwise relabelling p <-> q (inputs all sit
/// below level 0, so fence pair lists are closed under it) yields an
/// equivalent chain that the constraint admits.
void add_symvar(sat::solver& solver, const ssv_encoding& enc,
                const tt::isf& target) {
  const unsigned n = target.num_vars();
  for (unsigned p = 0; p < n; ++p) {
    for (unsigned q = p + 1; q < n; ++q) {
      if (target.onset().swap_variables(p, q) != target.onset() ||
          target.careset().swap_variables(p, q) != target.careset()) {
        continue;
      }
      for (unsigned i = 0; i < enc.num_steps(); ++i) {
        const auto& pairs = enc.fanin_pairs(i);
        for (std::size_t idx = 0; idx < pairs.size(); ++idx) {
          if (!pair_contains(pairs[idx], q) ||
              pair_contains(pairs[idx], p)) {
            continue;
          }
          sat::clause_lits clause{neg(enc.select_var(i, idx))};
          for (unsigned i2 = 0; i2 < i; ++i2) {
            const auto& earlier = enc.fanin_pairs(i2);
            for (std::size_t e = 0; e < earlier.size(); ++e) {
              if (pair_contains(earlier[e], p)) {
                clause.push_back(pos(enc.select_var(i2, e)));
              }
            }
          }
          solver.add_clause(clause);
        }
      }
    }
  }
}

/// symvar for multi-output targets: the relabelling argument needs the
/// *whole* specification to be invariant under the swap, so the break
/// applies to a pair (p, q) only when every output function is symmetric
/// in it.  (Complementing an output preserves symmetry, so checking the
/// raw functions also covers the encoder's normalized forms.)
void add_symvar_multi(sat::solver& solver, const ssv_encoding& enc,
                      const std::vector<tt::truth_table>& functions) {
  const unsigned n = functions.front().num_vars();
  for (unsigned p = 0; p < n; ++p) {
    for (unsigned q = p + 1; q < n; ++q) {
      bool symmetric = true;
      for (const auto& f : functions) {
        if (f.swap_variables(p, q) != f) {
          symmetric = false;
          break;
        }
      }
      if (!symmetric) {
        continue;
      }
      for (unsigned i = 0; i < enc.num_steps(); ++i) {
        const auto& pairs = enc.fanin_pairs(i);
        for (std::size_t idx = 0; idx < pairs.size(); ++idx) {
          if (!pair_contains(pairs[idx], q) ||
              pair_contains(pairs[idx], p)) {
            continue;
          }
          sat::clause_lits clause{neg(enc.select_var(i, idx))};
          for (unsigned i2 = 0; i2 < i; ++i2) {
            const auto& earlier = enc.fanin_pairs(i2);
            for (std::size_t e = 0; e < earlier.size(); ++e) {
              if (pair_contains(earlier[e], p)) {
                clause.push_back(pos(enc.select_var(i2, e)));
              }
            }
          }
          solver.add_clause(clause);
        }
      }
    }
  }
}

}  // namespace

probe_result lower_bound_prober::probe(const tt::isf& target,
                                       unsigned num_gates,
                                       core::run_context* ctx) const {
  probe_result out;
  if (num_gates == 0 || target.num_vars() > options_.max_vars) {
    return out;  // unknown
  }

  // The SSV encoding requires a normal target (row 0 = 0).  A care row 0
  // forced to 1 is existence-equivalent to the complemented ISF (same
  // chains, output inverted); a don't-care row 0 already satisfies the
  // invariant (the on-set is masked by the care set).
  tt::isf t = target;
  const bool complemented = t.careset().get_bit(0) && t.onset().get_bit(0);
  if (complemented) {
    t = t.complement();
  }
  const unsigned n = t.num_vars();
  const bool restricted_care = !t.careset().is_const1();

  ssv_options enc_options;
  enc_options.use_all_steps = options_.alonce_clauses;

  bool any_unknown = false;
  for (const auto& fc : fence::pruned_fences(num_gates)) {
    if (ctx != nullptr && ctx->should_stop()) {
      out.verdict = probe_verdict::unknown;
      return out;
    }
    sat::solver solver;
    if (ctx != nullptr) {
      solver.set_run_context(ctx);
    }
    if (options_.conflict_budget != 0) {
      solver.set_conflict_budget(options_.conflict_budget);
    }
    ssv_encoding enc{solver, t.onset(), num_gates, fence_fanin_pairs(fc, n),
                     enc_options};
    if (restricted_care) {
      enc.set_output_care(t.careset());
    }
    enc.encode_structure();
    const auto level_of_step = fence_level_of_step(fc);
    if (options_.colex_clauses) {
      add_colex(solver, enc, level_of_step);
    }
    if (options_.noreapply_clauses) {
      add_noreapply(solver, enc, n);
    }
    if (options_.symvar_clauses) {
      add_symvar(solver, enc, t);
    }
    // Row encoding dominates the build at larger n (2^n rows of clauses
    // per fence), so poll cancellation between rows: an in-flight probe
    // must honour the cancel flag within the documented latency bound even
    // before the solver starts.
    bool build_cancelled = false;
    for (std::uint64_t row = 1; row < t.onset().num_bits(); ++row) {
      if ((row & 0xF) == 0 && ctx != nullptr && ctx->should_stop()) {
        build_cancelled = true;
        break;
      }
      enc.encode_row(row);
    }
    if (build_cancelled) {
      out.verdict = probe_verdict::unknown;
      return out;
    }
    ++out.solver_calls;
    if (ctx != nullptr) {
      ++ctx->counters.probe_calls;
    }
    switch (solver.solve()) {
      case sat::solve_result::sat:
        out.verdict = probe_verdict::feasible;
        out.witness = enc.extract_chain(complemented);
        return out;
      case sat::solve_result::unknown:
        any_unknown = true;
        break;
      case sat::solve_result::unsat:
        break;
    }
  }
  out.verdict =
      any_unknown ? probe_verdict::unknown : probe_verdict::infeasible;
  return out;
}

probe_result lower_bound_prober::probe_multi(
    const std::vector<tt::truth_table>& functions, unsigned num_gates,
    core::run_context* ctx) const {
  probe_result out;
  if (functions.empty() || num_gates == 0 ||
      functions.front().num_vars() > options_.max_vars) {
    return out;  // unknown
  }
  const unsigned n = functions.front().num_vars();
  const auto max_outputs = static_cast<unsigned>(functions.size());

  ssv_options enc_options;
  enc_options.use_all_steps = options_.alonce_clauses;

  // The multi-output encoding normalizes each function's polarity
  // internally, so no pre-complementation is needed here.
  bool any_unknown = false;
  for (const auto& fc : fence::pruned_fences_multi(num_gates, max_outputs)) {
    if (ctx != nullptr && ctx->should_stop()) {
      out.verdict = probe_verdict::unknown;
      return out;
    }
    sat::solver solver;
    if (ctx != nullptr) {
      solver.set_run_context(ctx);
    }
    if (options_.conflict_budget != 0) {
      solver.set_conflict_budget(options_.conflict_budget);
    }
    ssv_encoding enc{solver, functions, num_gates,
                     fence_fanin_pairs(fc, n), enc_options};
    enc.encode_structure();
    const auto level_of_step = fence_level_of_step(fc);
    if (options_.colex_clauses) {
      add_colex(solver, enc, level_of_step);
    }
    if (options_.noreapply_clauses) {
      add_noreapply(solver, enc, n);
    }
    if (options_.symvar_clauses) {
      add_symvar_multi(solver, enc, functions);
    }
    bool build_cancelled = false;
    for (std::uint64_t row = 1; row < functions.front().num_bits(); ++row) {
      if ((row & 0xF) == 0 && ctx != nullptr && ctx->should_stop()) {
        build_cancelled = true;
        break;
      }
      enc.encode_row(row);
    }
    if (build_cancelled) {
      out.verdict = probe_verdict::unknown;
      return out;
    }
    ++out.solver_calls;
    if (ctx != nullptr) {
      ++ctx->counters.probe_calls;
    }
    switch (solver.solve()) {
      case sat::solve_result::sat:
        out.verdict = probe_verdict::feasible;
        out.witness = enc.extract_chain(false);
        return out;
      case sat::solve_result::unknown:
        any_unknown = true;
        break;
      case sat::solve_result::unsat:
        break;
    }
  }
  out.verdict =
      any_unknown ? probe_verdict::unknown : probe_verdict::infeasible;
  return out;
}

}  // namespace stpes::synth
