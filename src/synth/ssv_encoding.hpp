/// \file ssv_encoding.hpp
/// \brief Single-selection-variable (SSV) CNF encoding of exact synthesis.
///
/// The classic encoding behind SAT-based exact synthesis (Knuth; Soeken et
/// al.; Haaswijk et al., percy): for r *normal* steps over n inputs,
///
///   * x(i, t)   — value of step i on truth-table row t (t >= 1; row 0 is 0
///                 for normal chains),
///   * s(i, j, k) — step i selects fanins (j, k), j < k < n + i,
///   * g(i, p)   — step i's operator output for fanin pattern p in {01,10,11}
///                 (pattern 00 yields 0: normality).
///
/// The main clauses tie the four together for every row and value
/// combination; the last step is constrained to the (normalized) target.
/// A non-normal target is synthesized as its complement with the output
/// complemented flag set on the extracted chain.
///
/// The encoder supports
///   * restricting the allowed fanin pairs per step (the FEN engine passes
///     fence-level-compatible pairs),
///   * adding row constraints lazily (the CEGAR engine adds rows driven by
///     counterexamples).

#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "chain/boolean_chain.hpp"
#include "fence/fence.hpp"
#include "sat/solver.hpp"
#include "tt/truth_table.hpp"

namespace stpes::synth {

/// Encoder options.
struct ssv_options {
  bool pairwise_at_most_one_select = true;
  /// Forbid constant-0 and projection operators (trivial steps).
  bool nontrivial_operators = true;
  /// Every non-output step must fan out somewhere.
  bool use_all_steps = true;
};

/// One SSV encoding instance bound to a solver.
class ssv_encoding {
public:
  /// `function` must be normal (f(0...0) == 0) and depend on all of its
  /// variables.  `allowed_pairs`, when given, restricts each step's fanin
  /// pairs (signals numbered 0..n-1 for inputs, n+i for steps).
  ssv_encoding(sat::solver& solver, const tt::truth_table& function,
               unsigned num_steps,
               std::optional<std::vector<
                   std::vector<std::pair<unsigned, unsigned>>>>
                   allowed_pairs = std::nullopt,
               ssv_options options = {});

  /// Multi-output variant (percy's ssv multi-output encoding): each
  /// function of `functions` gets output-selection variables o(h, i)
  /// binding it to some step; no step is pinned to any particular output.
  /// Non-normal functions are complement-normalized internally and the
  /// inversion is restored on the extracted chain's output flag, so the
  /// list may mix polarities freely.  `use_all_steps` then means: every
  /// step feeds a later step or carries an output.
  ssv_encoding(sat::solver& solver, std::vector<tt::truth_table> functions,
               unsigned num_steps,
               std::optional<std::vector<
                   std::vector<std::pair<unsigned, unsigned>>>>
                   allowed_pairs = std::nullopt,
               ssv_options options = {});

  /// Restricts the output constraint to the rows set in `care` (same
  /// width as the target): rows outside the care set get full value
  /// propagation but no output pin, which encodes an incompletely
  /// specified target.  Call before the rows are encoded.  Default: all
  /// rows are care rows.
  void set_output_care(tt::truth_table care);

  /// Emits selection/operator constraints (call once).
  void encode_structure();

  /// Emits the main clauses and the output constraint for row `t` (>= 1).
  /// Idempotent per row.
  void encode_row(std::uint64_t t);

  /// Emits every row (1 .. 2^n - 1).
  void encode_all_rows();

  /// Extracts the chain from the solver's model after a SAT answer.
  /// In multi-output mode every output is read from its selection
  /// variables (with the normalization complement folded back in) and
  /// `output_complemented` is ignored.
  [[nodiscard]] chain::boolean_chain extract_chain(
      bool output_complemented) const;

  [[nodiscard]] unsigned num_steps() const { return num_steps_; }
  /// Number of outputs (1 for the single-output constructor).
  [[nodiscard]] unsigned num_outputs() const {
    return multi_mode() ? static_cast<unsigned>(functions_.size()) : 1;
  }

  /// \name Selection-variable access for symmetry-break layers
  ///
  /// The lower-bound probe (`synth/lower_bound`) emits percy-style
  /// symmetry-break clause families (colex, noreapply, symvar) *on top*
  /// of this encoding; those clauses only mention selection variables, so
  /// exposing them keeps the break logic out of the core encoder.
  /// @{
  [[nodiscard]] sat::var select_var(unsigned step,
                                    std::size_t pair_index) const {
    return select_[step][pair_index];
  }
  [[nodiscard]] const std::vector<std::pair<unsigned, unsigned>>&
  fanin_pairs(unsigned step) const {
    return pairs_[step];
  }
  /// @}

  /// True when built by the multi-output constructor.
  [[nodiscard]] bool multi_mode() const { return !functions_.empty(); }

private:
  [[nodiscard]] sat::var x(unsigned step, std::uint64_t row) const;
  [[nodiscard]] sat::var g(unsigned step, unsigned pattern) const;

  /// Value of signal `j` on row `t` if it is an input, otherwise nullopt.
  [[nodiscard]] std::optional<bool> input_value(unsigned signal,
                                                std::uint64_t row) const;

  sat::solver& solver_;
  tt::truth_table function_;  ///< single-output target (multi: functions_[0])
  /// Multi-output mode: complement-normalized targets + their inversion
  /// flags.  Empty in single-output mode.
  std::vector<tt::truth_table> functions_;
  std::vector<bool> output_complements_;
  unsigned num_inputs_;
  unsigned num_steps_;
  ssv_options options_;

  std::vector<std::vector<std::pair<unsigned, unsigned>>> pairs_;  // per step
  std::vector<std::vector<sat::var>> select_;  // select_[i][pair index]
  std::vector<std::array<sat::var, 3>> op_;    // op_[i][pattern-1]
  std::vector<std::vector<sat::var>> value_;   // value_[i][row-1]
  std::vector<std::vector<sat::var>> out_sel_;  // out_sel_[h][i], multi only
  std::vector<bool> row_encoded_;
  std::optional<tt::truth_table> output_care_;
};

/// Builds the unrestricted fanin pair list for `num_steps` steps over
/// `num_inputs` inputs.
std::vector<std::vector<std::pair<unsigned, unsigned>>> all_fanin_pairs(
    unsigned num_inputs, unsigned num_steps);

/// Builds the fence-restricted fanin pair list: step i sits on its fence
/// level; fanins come from strictly lower levels (or inputs), at least one
/// from the level directly below.  Shared by the FEN engine and the
/// lower-bound probe (both attack one fence family per CNF call).
std::vector<std::vector<std::pair<unsigned, unsigned>>> fence_fanin_pairs(
    const fence::fence& fc, unsigned num_inputs);

/// Fence level of every step of `fc`, in step order (level 0 first).
std::vector<unsigned> fence_level_of_step(const fence::fence& fc);

}  // namespace stpes::synth
