/// \file chain_io.hpp
/// \brief Compact line-based (de)serialization of Boolean chains and NPN
///        cache entries.
///
/// The shard cache holds every optimum chain per canonical class; those are
/// expensive to recompute and cheap to store, so the service can persist the
/// cache at shutdown and warm it at startup.  The format is a plain text
/// file meant to be diffable and greppable:
///
///     stpes-chains v1
///     entry 0x8ff8 4 success 3 0.0421 2
///     meta engine=stp budget=5
///     chain 4 3 6 0 8 0 1 6 2 3 14 4 5
///     chain 4 3 5 1 6 0 1 14 1 2 8 4 5
///
/// `entry <hex> <num_vars> <status> <optimum_gates> <seconds> <num_chains>`
/// is followed by an optional `meta` line and then exactly `num_chains`
/// chain lines.  A chain line is
/// `chain <num_inputs> <num_steps> <output> <out_compl> (<op> <f0> <f1>)*`.
/// Loading re-verifies every chain by simulation against the entry's truth
/// table and rejects the file on any mismatch — a cache file can never
/// inject a wrong circuit.
///
/// The `meta` line records provenance as `key=value` tokens: `engine=<name>`
/// names the synthesis engine the entry was computed with, `budget=<s>`
/// the wall-clock budget it ran under (0 = unlimited).  Files written
/// before the meta line existed load fine (the line is optional), and
/// unknown `key=value` tokens are ignored so future fields stay within
/// header v1.  Consumers use the metadata to decide trust: a warmed entry
/// from a different engine, or a failure recorded under a smaller budget,
/// can be skipped instead of served blindly.
///
/// Format versioning policy (v1 -> v2 and beyond): the header line is the
/// contract.  A loader reads *exactly* the versions it knows — a file
/// whose header names any other `stpes-chains vN` is rejected with an
/// error that states the unknown version; it is never silently migrated,
/// down-converted, or partially read.  Cache entries are cheap to
/// regenerate and dangerous to misread (a wrong "optimum" poisons every
/// rewrite that consumes it), so the failure mode is loud by design.
/// Additive evolution that does not change the meaning of existing lines
/// (new meta keys, new optional line kinds ignored by old readers) stays
/// within v1; anything a v1 reader would misinterpret requires bumping
/// the header to v2 and teaching the loader both versions explicitly.

#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "chain/boolean_chain.hpp"
#include "synth/spec.hpp"
#include "tt/truth_table.hpp"

namespace stpes::service {

/// Provenance of a persisted entry (the optional `meta` line).
struct entry_meta {
  /// Engine name as printed by `core::to_string` ("stp", "bms", ...);
  /// empty when the file predates metadata.
  std::string engine;
  /// Wall-clock budget the result was computed under; 0 = unlimited.
  double budget_seconds = 0.0;
};

/// One persisted cache entry: a function and its full synthesis result.
struct cache_entry {
  tt::truth_table function;
  synth::result result;
  std::optional<entry_meta> meta;
};

/// Serializes a chain to one `chain ...` line (no trailing newline).
[[nodiscard]] std::string serialize_chain(const chain::boolean_chain& c);

/// Parses a `chain ...` line.  Throws `std::runtime_error` on malformed
/// input (wrong token count, non-numeric fields, fanin violating
/// topological order, bad output signal).
[[nodiscard]] chain::boolean_chain parse_chain(std::string_view line);

/// Writes the versioned header and all entries.
void save_cache(std::ostream& os, const std::vector<cache_entry>& entries);

/// Parses a cache file, re-simulating every chain against its entry's
/// function.  Throws `std::runtime_error` on version mismatch, malformed
/// lines, or a chain that does not realize its function.
[[nodiscard]] std::vector<cache_entry> load_cache(std::istream& is);

/// Convenience file wrappers; `load_cache_file` returns an empty vector if
/// the file does not exist (a cold cache is not an error).
void save_cache_file(const std::string& path,
                     const std::vector<cache_entry>& entries);
[[nodiscard]] std::vector<cache_entry> load_cache_file(
    const std::string& path);

}  // namespace stpes::service
