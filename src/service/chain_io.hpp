/// \file chain_io.hpp
/// \brief Compact line-based (de)serialization of Boolean chains and
///        synthesis cache entries, with per-entry checksums and crash-safe
///        saving.
///
/// The shard cache holds every optimum chain per cached class; those are
/// expensive to recompute and cheap to store, so the service can persist the
/// cache at shutdown and warm it at startup.  The format is a plain text
/// file meant to be diffable and greppable:
///
///     stpes-chains v3
///     entry 0x8ff8 4 success 3 0.0421 2
///     meta engine=stp budget=5
///     chain 4 3 6 0 8 0 1 6 2 3 14 4 5
///     chain 4 3 5 1 6 0 1 14 1 2 8 4 5
///     crc 5f3a9c01
///     entry 0x96,0xe8 3 success 5 0.0087 1
///     mchain 3 5 7 0 5 1 6 0 1 ...
///     crc 90211c7e
///
/// `entry <hex>[,<hex>...] <num_vars> <status> <optimum_gates> <seconds>
/// <num_chains>` is followed by an optional `meta` line, exactly
/// `num_chains` chain lines, and (in v2/v3) a `crc <hex32>` line holding
/// the CRC-32 of every preceding line of the entry block, newlines
/// included.  The hex field is the comma-separated target list: one truth
/// table per output, in output order (no comma for the classic
/// single-output entry — byte-identical to v2 there).  A single-output
/// chain line is
/// `chain <num_inputs> <num_steps> <output> <out_compl> (<op> <f0> <f1>)*`;
/// an m-output chain (m >= 2, v3 only) is
/// `mchain <num_inputs> <num_steps> <m> (<output> <out_compl>)^m
/// (<op> <f0> <f1>)*`.
/// Loading re-verifies every chain by simulation, output for output,
/// against the entry's truth tables and rejects any mismatch — a cache
/// file can never inject a wrong circuit; the checksum additionally
/// catches torn writes and bit flips in fields that simulation cannot see
/// (seconds, gate counts, metadata).
///
/// The `meta` line records provenance as `key=value` tokens: `engine=<name>`
/// names the synthesis engine the entry was computed with, `budget=<s>`
/// the wall-clock budget it ran under (0 = unlimited).  Unknown `key=value`
/// tokens are ignored so future fields stay within the version.
///
/// Two load modes:
///
///   * **Strict** (`load_cache`): the first malformed line, checksum
///     mismatch, or failed verification throws.  For contexts where a
///     damaged file means a damaged pipeline and silence would hide it.
///   * **Lenient** (`load_cache_lenient`): damage is contained to the
///     entry it occurs in.  The parser records a `load_skip` naming the
///     line and reason, resynchronizes at the next `entry` line, and keeps
///     loading — a crash-truncated or partially corrupted cache file warms
///     every entry that survived intact.  This is the daemon's LOAD/RELOAD
///     path.  The single exception: an unsupported `stpes-chains vN`
///     header still throws in both modes (see the versioning policy
///     below) — a whole file from a different format generation must fail
///     loudly, not load as zero entries.
///
/// Format versioning policy (unchanged from v1): the header line is the
/// contract.  The loader reads exactly the versions it knows — v1 (no
/// `crc` lines), v2, and v3 (multi-output entries) — and a file whose
/// header names any other `stpes-chains vN` is rejected with an error
/// stating the version; it is never silently migrated, down-converted, or
/// partially read.  v1/v2 files load read-only as before; a multi-output
/// entry or `mchain` line inside a pre-v3 file is damage, not data.
/// Writers always emit v3.
///
/// `save_cache_file` is crash-safe: it writes to a temporary file in the
/// same directory, fsyncs it, and atomically renames it over the target,
/// so a reader observes either the complete old file or the complete new
/// one — never a torn mixture.  Failpoints (`chain_io.save.open`,
/// `chain_io.save.write`, `chain_io.save.fsync`, `chain_io.save.rename`,
/// `chain_io.load.read`) let tests inject a crash at every stage.

#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "chain/boolean_chain.hpp"
#include "synth/spec.hpp"
#include "tt/truth_table.hpp"

namespace stpes::service {

/// Provenance of a persisted entry (the optional `meta` line).
struct entry_meta {
  /// Engine name as printed by `core::to_string` ("stp", "bms", ...);
  /// empty when the file predates metadata.
  std::string engine;
  /// Wall-clock budget the result was computed under; 0 = unlimited.
  double budget_seconds = 0.0;
  /// True when the recorded success carries a budget-truncated
  /// (incomplete) chain enumeration — `result::enumeration_complete` was
  /// false when the entry was persisted.  Like a recorded timeout, such
  /// an entry is only trusted under a budget no larger than the one it
  /// was computed with.
  bool partial = false;
};

/// One persisted cache entry: the target function(s) and the full
/// synthesis result.
struct cache_entry {
  tt::truth_table function;
  /// Multi-output entries: when non-empty, the entry's key is this
  /// ordered function list and `function` is ignored (the same
  /// `function` / `functions` convention as `synth::spec`).
  std::vector<tt::truth_table> functions;
  /// The effective target list: `functions` when non-empty, else
  /// `{function}`.
  [[nodiscard]] std::vector<tt::truth_table> targets() const {
    return functions.empty() ? std::vector<tt::truth_table>{function}
                             : functions;
  }
  synth::result result;
  std::optional<entry_meta> meta;
};

/// One entry (or stray line) the lenient loader refused, and why.
struct load_skip {
  std::size_t line = 0;  ///< 1-based line number in the file
  std::string reason;
};

/// What a lenient load salvaged and what it had to drop.
struct load_report {
  std::vector<cache_entry> entries;
  std::vector<load_skip> skipped;
};

/// Serializes a chain to one `chain ...` line (single-output, the v2
/// grammar byte for byte) or one `mchain ...` line (m >= 2 outputs).  No
/// trailing newline.
[[nodiscard]] std::string serialize_chain(const chain::boolean_chain& c);

/// Parses a `chain ...` or `mchain ...` line.  Throws `std::runtime_error`
/// on malformed input (wrong token count, non-numeric fields, fanin
/// violating topological order, bad output signal).
[[nodiscard]] chain::boolean_chain parse_chain(std::string_view line);

/// Writes the versioned v3 header and all entries with per-entry CRCs.
void save_cache(std::ostream& os, const std::vector<cache_entry>& entries);

/// Strict load: parses a v1, v2, or v3 cache file, re-simulating every
/// chain output against its entry's functions and (v2/v3) verifying every
/// checksum.  Throws `std::runtime_error` on version mismatch, malformed
/// lines, checksum mismatch, or a chain that does not realize its
/// functions.
[[nodiscard]] std::vector<cache_entry> load_cache(std::istream& is);

/// Lenient load: damaged entries are skipped and reported, intact entries
/// load.  Throws only on an unsupported `stpes-chains vN` header.
[[nodiscard]] load_report load_cache_lenient(std::istream& is);

/// Crash-safe file save: temp file + fsync + atomic rename.  Throws
/// `std::runtime_error` (leaving any existing file untouched) when any
/// stage fails; the temporary is removed on failure.
void save_cache_file(const std::string& path,
                     const std::vector<cache_entry>& entries);

/// Strict file load; returns an empty vector if the file does not exist
/// (a cold cache is not an error).
[[nodiscard]] std::vector<cache_entry> load_cache_file(
    const std::string& path);

/// Lenient file load; an absent file is an empty report, not an error.
[[nodiscard]] load_report load_cache_file_lenient(const std::string& path);

}  // namespace stpes::service
