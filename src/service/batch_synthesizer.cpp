#include "service/batch_synthesizer.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "chain/transform.hpp"
#include "service/thread_pool.hpp"
#include "tt/npn.hpp"
#include "util/stopwatch.hpp"

namespace stpes::service {

namespace {

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

/// Canonical lowercase engine name for file metadata (the display name
/// from `core::to_string` is uppercase).
const char* wire_engine_name(core::engine e) {
  switch (e) {
    case core::engine::stp:
      return "stp";
    case core::engine::bms:
      return "bms";
    case core::engine::fen:
      return "fen";
    case core::engine::cegar:
      return "cegar";
    case core::engine::portfolio:
      return "portfolio";
  }
  return "?";
}

/// Case-tolerant match of a metadata engine name against an engine; an
/// unparseable name never matches (the entry is not trusted).
bool engine_name_matches(const std::string& name, core::engine e) {
  try {
    return core::engine_from_string(name) == e;
  } catch (const std::exception&) {
    return false;
  }
}

/// Thrown out of a cache compute callback when the run was cancelled:
/// the in-flight entry is abandoned instead of caching a result that
/// only reflects how early the cancel arrived, so the class can be
/// retried at full budget later.
struct job_cancelled {
  synth::result result;
};

/// Per-`run()` completion latch.  Waiting on the pool's global quiescence
/// would couple overlapping runs (a 1 ms request stuck behind another
/// caller's minute-long batch); counting down per call keeps concurrent
/// server sessions independent.
struct completion_latch {
  std::mutex mutex;
  std::condition_variable done;
  std::size_t pending = 0;

  void arrive() {
    std::lock_guard<std::mutex> lock{mutex};
    if (--pending == 0) {
      done.notify_all();
    }
  }

  void wait() {
    std::unique_lock<std::mutex> lock{mutex};
    done.wait(lock, [this] { return pending == 0; });
  }
};

}  // namespace

batch_synthesizer::batch_synthesizer(batch_options opts)
    : options_(opts) {
  caches_.reserve(kNumEngines);
  for (std::size_t i = 0; i < kNumEngines; ++i) {
    caches_.push_back(std::make_unique<shard_cache>(shard_cache::options{
        options_.cache_shards, options_.cache_capacity_per_shard}));
  }
  pool_ = std::make_unique<thread_pool>(
      resolve_threads(options_.num_threads));
}

batch_synthesizer::~batch_synthesizer() {
  // Shutdown must not wait out long syntheses: flip every in-flight
  // cancel flag and invalidate the queue before the pool joins.
  cancel_inflight();
}

shard_cache& batch_synthesizer::cache_for(core::engine e) {
  return *caches_[static_cast<std::size_t>(e)];
}

const shard_cache& batch_synthesizer::cache_for(core::engine e) const {
  return *caches_[static_cast<std::size_t>(e)];
}

batch_result batch_synthesizer::run(
    const std::vector<batch_request>& requests, std::uint64_t request_id) {
  util::stopwatch timer;
  batch_result out;
  out.results.resize(requests.size());

  // Group cacheable requests by (engine, cache key).  A std::map keyed by
  // the key's function list keeps submission order deterministic.  Single-
  // output requests (n <= 5) canonize first, so the key is the NPN class
  // representative; multi-output requests key on the exact function list
  // (no NPN for m >= 2) and skip the rewrite step.
  struct member {
    std::size_t index;
    tt::npn_transform transform;  ///< canonized groups only
  };
  struct group {
    core::engine engine{};
    cache_key key;
    bool canonized = false;  ///< rewrite members through the inverse NPN
    double timeout = 0.0;    ///< max over members; no request gets less
    std::vector<member> members;
  };
  std::map<std::pair<int, std::vector<tt::truth_table>>, group> groups;
  std::vector<std::size_t> bypass;  ///< single-output indices with n > 5

  for (std::size_t i = 0; i < requests.size(); ++i) {
    metrics_.on_request();
    const auto& req = requests[i];
    const bool multi = req.functions.size() >= 2;
    if (!multi && req.targets().front().num_vars() > 5) {
      bypass.push_back(i);
      continue;
    }
    const auto engine = req.engine.value_or(options_.engine);
    const auto timeout =
        req.timeout_seconds.value_or(options_.timeout_seconds);
    member m{i, {}};
    cache_key key;
    if (multi) {
      key.functions = req.functions;
    } else {
      auto canon = tt::exact_npn_canonize(req.targets().front());
      key.functions = {canon.canonical};
      m.transform = std::move(canon.transform);
    }
    const std::pair<int, std::vector<tt::truth_table>> map_key{
        static_cast<int>(engine), key.functions};
    auto it = groups.find(map_key);
    if (it == groups.end()) {
      group g;
      g.engine = engine;
      g.key = std::move(key);
      g.canonized = !multi;
      g.timeout = timeout;
      g.members.push_back(std::move(m));
      groups.emplace(map_key, std::move(g));
    } else {
      it->second.timeout = std::max(it->second.timeout, timeout);
      it->second.members.push_back(std::move(m));
    }
  }
  out.unique_classes = groups.size();

  // One task per unique class: synthesize-or-wait through the cache, then
  // rewrite the canonical chains for every member.  Distinct tasks write
  // distinct result slots, so `out.results` needs no lock.  The latch is
  // shared-owned by the tasks: every task arrives exactly once, even when
  // the engine throws.  The cancel epoch is captured now: a later
  // `cancel_inflight()` invalidates every task queued under this epoch.
  const std::uint64_t epoch = current_cancel_epoch();
  auto latch = std::make_shared<completion_latch>();
  latch->pending = groups.size() + bypass.size();

  for (auto& [key, g] : groups) {
    group* gp = &g;
    auto task = [this, gp, &out, latch, epoch, request_id] {
      try {
        bool computed = false;
        const auto canonical_result = cache_for(gp->engine).get_or_compute(
            gp->key, [this, gp, epoch, request_id, &computed] {
              computed = true;
              return run_cancellable(gp->key.functions, gp->engine,
                                     gp->timeout, epoch, request_id);
            });
        if (computed) {
          metrics_.on_cache_miss();
        } else {
          metrics_.on_cache_hit();
        }
        for (const auto& m : gp->members) {
          auto& slot = out.results[m.index];
          slot.outcome = canonical_result.outcome;
          slot.optimum_gates = canonical_result.optimum_gates;
          slot.enumeration_complete = canonical_result.enumeration_complete;
          slot.seconds = canonical_result.seconds;
          if (!canonical_result.ok()) {
            continue;  // timeout/failure propagates, as in the serial path
          }
          slot.chains.reserve(canonical_result.chains.size());
          for (const auto& c : canonical_result.chains) {
            // Exact-key (multi-output) groups cached the requested
            // functions verbatim; only canonized groups rewrite.
            slot.chains.push_back(
                gp->canonized
                    ? chain::apply_inverse_npn_to_chain(c, m.transform)
                    : c);
          }
        }
      } catch (const job_cancelled& c) {
        // The cache entry was abandoned; every member reports the
        // cancelled (timeout-shaped) result.
        for (const auto& m : gp->members) {
          auto& slot = out.results[m.index];
          slot.outcome = c.result.outcome;
          slot.seconds = c.result.seconds;
          slot.counters = c.result.counters;
        }
      } catch (...) {
        // Members keep their default-constructed failure results.
      }
      latch->arrive();
    };
    try {
      pool_->submit(std::move(task));
    } catch (...) {
      // Submission itself failed (pool shut down, or the
      // `thread_pool.submit` failpoint fired): the task will never run, so
      // arrive for it here — otherwise the latch waits forever.  Members
      // keep their default-constructed failure results.
      latch->arrive();
    }
  }

  for (const auto index : bypass) {
    const auto& req = requests[index];
    const auto engine = req.engine.value_or(options_.engine);
    const auto timeout =
        req.timeout_seconds.value_or(options_.timeout_seconds);
    auto task = [this, index, engine, timeout, epoch, request_id, &requests,
                 &out, latch] {
      try {
        metrics_.on_bypass();
        out.results[index] = run_cancellable(requests[index].targets(),
                                             engine, timeout, epoch,
                                             request_id);
      } catch (const job_cancelled& c) {
        out.results[index] = c.result;
      } catch (...) {
        // The slot keeps its default-constructed failure result.
      }
      latch->arrive();
    };
    try {
      pool_->submit(std::move(task));
    } catch (...) {
      latch->arrive();  // same never-runs accounting as above
    }
  }

  latch->wait();

  if (request_id != 0) {
    // The call is over; a CANCEL that raced with completion must not leak
    // a blacklist entry that would kill an unrelated future id reuse.
    std::lock_guard<std::mutex> lock{active_mutex_};
    cancelled_ids_.erase(request_id);
  }

  out.metrics = metrics_.snapshot();
  out.cache = cache_stats();
  out.wall_seconds = timer.elapsed_seconds();
  return out;
}

batch_result batch_synthesizer::run(
    const std::vector<tt::truth_table>& functions) {
  std::vector<batch_request> requests;
  requests.reserve(functions.size());
  for (const auto& f : functions) {
    requests.push_back(batch_request{f, {}, std::nullopt, std::nullopt});
  }
  return run(requests);
}

job_outcome batch_synthesizer::run_job(
    std::uint64_t request_id, double timeout_seconds,
    const std::function<void(core::run_context&)>& body) {
  const std::uint64_t epoch = current_cancel_epoch();
  auto latch = std::make_shared<completion_latch>();
  latch->pending = 1;
  // The caller blocks on the latch, so these locals outlive the task.
  job_outcome outcome = job_outcome::rejected;
  std::exception_ptr error;

  auto task = [this, epoch, request_id, timeout_seconds, latch, &body,
               &outcome, &error] {
    core::run_context ctx{timeout_seconds};
    {
      std::lock_guard<std::mutex> lock{active_mutex_};
      if (cancel_epoch_ != epoch ||
          (request_id != 0 && cancelled_ids_.count(request_id) != 0)) {
        // Cancelled while still queued: never start the body.
        metrics_.on_cancelled();
        outcome = job_outcome::cancelled;
        latch->arrive();
        return;
      }
      active_.emplace(&ctx, request_id);
    }
    try {
      body(ctx);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock{active_mutex_};
      active_.erase(&ctx);
    }
    metrics_.on_counters(ctx.counters);
    if (ctx.cancel_requested()) {
      metrics_.on_cancelled();
      outcome = job_outcome::cancelled;
    } else if (error == nullptr) {
      outcome = job_outcome::completed;
    }
    latch->arrive();
  };
  try {
    pool_->submit(std::move(task));
  } catch (...) {
    latch->arrive();  // the task will never run; outcome stays `rejected`
  }
  latch->wait();

  if (request_id != 0) {
    // Same blacklist hygiene as `run()`: a CANCEL racing with completion
    // must not poison an unrelated reuse of the id.
    std::lock_guard<std::mutex> lock{active_mutex_};
    cancelled_ids_.erase(request_id);
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
  return outcome;
}

std::size_t batch_synthesizer::warm_cache(const std::string& path) {
  return warm_cache_verbose(path).loaded;
}

warm_report batch_synthesizer::warm_cache_verbose(const std::string& path) {
  const auto loaded = load_cache_file_lenient(path);
  warm_report report;
  report.skipped_corrupt = loaded.skipped.size();
  warm_entries(loaded.entries, report);
  return report;
}

void batch_synthesizer::warm_entries(const std::vector<cache_entry>& entries,
                                     warm_report& report) {
  const double budget = options_.timeout_seconds;
  auto& cache = cache_for(options_.engine);
  for (const auto& e : entries) {
    if (e.meta.has_value() && !e.meta->engine.empty() &&
        !engine_name_matches(e.meta->engine, options_.engine)) {
      ++report.skipped_engine;
      continue;
    }
    if ((!e.result.ok() || !e.result.enumeration_complete) &&
        e.meta.has_value() && e.meta->budget_seconds != 0.0 &&
        (budget == 0.0 || e.meta->budget_seconds < budget)) {
      // Recorded under a smaller budget than we now have: a timeout there
      // might be a success here, and a budget-truncated (partial) chain
      // enumeration might be completed here, so let it re-run.
      ++report.skipped_budget;
      continue;
    }
    if (cache.insert(cache_key{e.targets()}, e.result)) {
      ++report.loaded;
    } else {
      ++report.duplicates;
    }
  }
}

reload_report batch_synthesizer::reload_cache(const std::string& path) {
  // Parse first: only after the file is known readable does the resident
  // cache get dropped, so a bad path never leaves the daemon cold.
  const auto loaded = load_cache_file_lenient(path);
  reload_report report;
  report.cleared = cache_for(options_.engine).clear();
  report.warm.skipped_corrupt = loaded.skipped.size();
  warm_entries(loaded.entries, report.warm);
  return report;
}

std::size_t batch_synthesizer::persist_cache(const std::string& path) const {
  auto dumped = cache_for(options_.engine).dump();
  // Deterministic file order regardless of shard/hash layout.
  std::sort(dumped.begin(), dumped.end(), [](const auto& a, const auto& b) {
    return a.first.functions < b.first.functions;
  });
  std::vector<cache_entry> entries;
  entries.reserve(dumped.size());
  const entry_meta meta{wire_engine_name(options_.engine),
                        options_.timeout_seconds};
  for (auto& [key, result] : dumped) {
    cache_entry e;
    if (key.functions.size() == 1) {
      e.function = key.functions.front();
    } else {
      e.functions = key.functions;
    }
    e.result = std::move(result);
    e.meta = meta;
    e.meta->partial = !e.result.enumeration_complete;
    entries.push_back(std::move(e));
  }
  save_cache_file(path, entries);
  return entries.size();
}

synth::result batch_synthesizer::run_cancellable(
    const std::vector<tt::truth_table>& functions, core::engine engine,
    double timeout, std::uint64_t cancel_epoch, std::uint64_t request_id) {
  core::run_context ctx{timeout};
  {
    std::lock_guard<std::mutex> lock{active_mutex_};
    if (cancel_epoch_ != cancel_epoch ||
        (request_id != 0 && cancelled_ids_.count(request_id) != 0)) {
      // Cancelled while still queued (daemon-wide epoch bump, or this
      // specific request id was cancelled): never start the engine.
      metrics_.on_cancelled();
      synth::result r;
      r.outcome = synth::status::timeout;
      throw job_cancelled{std::move(r)};
    }
    active_.emplace(&ctx, request_id);
  }
  util::stopwatch sw;
  synth::result r;
  try {
    synth::spec s;
    if (functions.size() == 1) {
      s.function = functions.front();
    } else {
      s.functions = functions;
    }
    s.ctx = &ctx;
    r = core::exact_synthesis(s, engine);
  } catch (...) {
    std::lock_guard<std::mutex> lock{active_mutex_};
    active_.erase(&ctx);
    throw;
  }
  {
    std::lock_guard<std::mutex> lock{active_mutex_};
    active_.erase(&ctx);
  }
  // The engine did run (possibly partially), so its effort is recorded
  // either way; a cancelled run is additionally thrown as `job_cancelled`
  // so the cache never keeps its truncated result.
  metrics_.on_synth_run(sw.elapsed_seconds(), r.ok());
  metrics_.on_counters(r.counters);
  if (ctx.cancel_requested()) {
    metrics_.on_cancelled();
    // An explicit cancel beats partial progress: even when the cut run
    // salvaged optimum chains (success with an incomplete enumeration),
    // the caller asked for the request to die, so the reply stays
    // timeout-shaped and the salvage is discarded.
    r.outcome = synth::status::timeout;
    r.chains.clear();
    throw job_cancelled{std::move(r)};
  }
  return r;
}

std::uint64_t batch_synthesizer::current_cancel_epoch() const {
  std::lock_guard<std::mutex> lock{active_mutex_};
  return cancel_epoch_;
}

std::size_t batch_synthesizer::cancel_inflight() {
  std::lock_guard<std::mutex> lock{active_mutex_};
  ++cancel_epoch_;
  for (auto& [ctx, id] : active_) {
    ctx->request_cancel();
  }
  return active_.size();
}

std::size_t batch_synthesizer::cancel_request(std::uint64_t request_id) {
  if (request_id == 0) {
    return 0;  // 0 is the untagged sentinel, never a real request
  }
  std::lock_guard<std::mutex> lock{active_mutex_};
  cancelled_ids_.insert(request_id);
  std::size_t signalled = 0;
  for (auto& [ctx, id] : active_) {
    if (id == request_id) {
      ctx->request_cancel();
      ++signalled;
    }
  }
  return signalled;
}

std::vector<std::uint64_t> batch_synthesizer::active_request_ids() const {
  std::vector<std::uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock{active_mutex_};
    ids.reserve(active_.size());
    for (const auto& [ctx, id] : active_) {
      if (id != 0) {
        ids.push_back(id);
      }
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

bool batch_synthesizer::would_overload(std::size_t incoming) const {
  if (options_.max_pending_jobs == 0) {
    return false;
  }
  return pool_->pending() + incoming > options_.max_pending_jobs;
}

std::size_t batch_synthesizer::pending_jobs() const {
  return pool_->pending();
}

unsigned batch_synthesizer::num_threads() const {
  return static_cast<unsigned>(pool_->num_threads());
}

shard_cache_stats batch_synthesizer::cache_stats() const {
  shard_cache_stats total;
  for (const auto& c : caches_) {
    const auto s = c->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.inflight_waits += s.inflight_waits;
    total.evictions += s.evictions;
    total.size += s.size;
  }
  return total;
}

}  // namespace stpes::service
