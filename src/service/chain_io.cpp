#include "service/chain_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/crc32.hpp"
#include "util/failpoint.hpp"

namespace stpes::service {

namespace {

constexpr const char* kHeaderV1 = "stpes-chains v1";
constexpr const char* kHeaderV2 = "stpes-chains v2";
constexpr const char* kHeaderV3 = "stpes-chains v3";

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error{"chain_io: " + what};
}

/// Reads every whitespace-separated token after the leading keyword.
std::vector<std::string> tokens_after(std::string_view line,
                                      std::string_view keyword) {
  std::istringstream is{std::string{line}};
  std::string first;
  if (!(is >> first) || first != keyword) {
    fail("expected '" + std::string{keyword} + "' line, got: " +
         std::string{line});
  }
  std::vector<std::string> out;
  std::string tok;
  while (is >> tok) {
    out.push_back(tok);
  }
  return out;
}

unsigned parse_unsigned(const std::string& tok, const char* what) {
  std::size_t pos = 0;
  unsigned long value = 0;
  try {
    value = std::stoul(tok, &pos);
  } catch (const std::exception&) {
    fail(std::string{"bad "} + what + ": " + tok);
  }
  if (pos != tok.size()) {
    fail(std::string{"bad "} + what + ": " + tok);
  }
  return static_cast<unsigned>(value);
}

/// Parses the optional `meta` line: `key=value` tokens, unknown keys are
/// ignored (forward compatibility within a format version), tokens
/// without '=' are rejected.
entry_meta parse_meta(std::string_view line) {
  entry_meta meta;
  for (const auto& tok : tokens_after(line, "meta")) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      fail("bad meta token (want key=value): " + tok);
    }
    const auto key = tok.substr(0, eq);
    const auto value = tok.substr(eq + 1);
    if (key == "engine") {
      meta.engine = value;
    } else if (key == "budget") {
      try {
        meta.budget_seconds = std::stod(value);
      } catch (const std::exception&) {
        fail("bad meta budget: " + value);
      }
      if (meta.budget_seconds < 0.0) {
        fail("bad meta budget: " + value);
      }
    } else if (key == "partial") {
      meta.partial = value != "0";
    }
    // Unknown keys: tolerated, so future writers can extend the meta line
    // without bumping the header version.
  }
  return meta;
}

synth::status parse_status(const std::string& tok) {
  if (tok == "success") {
    return synth::status::success;
  }
  if (tok == "timeout") {
    return synth::status::timeout;
  }
  if (tok == "failure") {
    return synth::status::failure;
  }
  fail("bad status: " + tok);
}

std::string crc_hex(std::uint32_t crc) {
  std::ostringstream os;
  os << std::hex << std::setw(8) << std::setfill('0') << crc;
  return os.str();
}

/// The entry block (entry + meta + chain lines, each newline-terminated)
/// exactly as written to disk — the bytes the CRC covers.
std::string serialize_entry(const cache_entry& e) {
  const auto fs = e.targets();
  std::ostringstream os;
  os << "entry ";
  for (std::size_t k = 0; k < fs.size(); ++k) {
    os << (k == 0 ? "" : ",") << fs[k].to_hex();
  }
  os << " " << fs.front().num_vars() << " "
     << synth::to_string(e.result.outcome) << " "
     << e.result.optimum_gates << " " << e.result.seconds << " "
     << e.result.chains.size() << "\n";
  if (e.meta.has_value()) {
    os << "meta";
    if (!e.meta->engine.empty()) {
      os << " engine=" << e.meta->engine;
    }
    os << " budget=" << e.meta->budget_seconds;
    if (e.meta->partial) {
      os << " partial=1";
    }
    os << "\n";
  }
  for (const auto& c : e.result.chains) {
    os << serialize_chain(c) << "\n";
  }
  return os.str();
}

/// Parses one entry starting at `lines[i]` (which must be an `entry`
/// line).  `version` is the file's declared format generation (1..3).
/// Returns the entry and the index of the first line after its block.
/// Throws `std::runtime_error` on any damage; the caller decides whether
/// that aborts the load (strict) or skips the entry (lenient).
std::pair<cache_entry, std::size_t> parse_entry(
    const std::vector<std::string>& lines, std::size_t i, int version) {
  const std::size_t block_begin = i;
  const auto toks = tokens_after(lines[i], "entry");
  if (toks.size() != 6) {
    fail("entry line needs 6 fields: " + lines[i]);
  }
  cache_entry e;
  const unsigned num_vars = parse_unsigned(toks[1], "num_vars");
  if (num_vars > 16) {
    fail("num_vars out of range: " + toks[1]);
  }
  // The first field is a comma-separated target list (one truth table per
  // output); a pre-v3 file must only ever contain single-function entries.
  std::vector<tt::truth_table> functions;
  {
    std::size_t begin = 0;
    const std::string& list = toks[0];
    while (begin <= list.size()) {
      const auto comma = list.find(',', begin);
      const auto piece = list.substr(
          begin, comma == std::string::npos ? std::string::npos
                                            : comma - begin);
      try {
        functions.push_back(tt::truth_table::from_hex(num_vars, piece));
      } catch (const std::exception& ex) {
        fail(std::string{"bad truth table: "} + ex.what());
      }
      if (comma == std::string::npos) {
        break;
      }
      begin = comma + 1;
    }
  }
  if (functions.size() > 1 && version < 3) {
    fail("multi-output entry in a v" + std::to_string(version) +
         " file (needs v3): " + toks[0]);
  }
  if (functions.size() == 1) {
    e.function = functions.front();
  } else {
    e.functions = functions;
  }
  e.result.outcome = parse_status(toks[2]);
  e.result.optimum_gates = parse_unsigned(toks[3], "optimum_gates");
  try {
    e.result.seconds = std::stod(toks[4]);
  } catch (const std::exception&) {
    fail("bad seconds: " + toks[4]);
  }
  const unsigned num_chains = parse_unsigned(toks[5], "num_chains");
  ++i;
  // Optional `meta` line between the entry header and its chains.
  if (i < lines.size() && lines[i].rfind("meta", 0) == 0) {
    e.meta = parse_meta(lines[i]);
    if (e.meta->partial) {
      e.result.enumeration_complete = false;
    }
    ++i;
  }
  e.result.chains.reserve(num_chains);
  for (unsigned j = 0; j < num_chains; ++j) {
    if (i >= lines.size()) {
      fail("truncated file: entry " + toks[0] + " promises " + toks[5] +
           " chains");
    }
    auto c = parse_chain(lines[i]);
    if (c.num_inputs() != num_vars) {
      fail("chain arity " + std::to_string(c.num_inputs()) +
           " does not match entry arity " + std::to_string(num_vars));
    }
    if (c.num_outputs() != functions.size()) {
      fail("chain has " + std::to_string(c.num_outputs()) +
           " outputs, entry lists " + std::to_string(functions.size()) +
           " functions");
    }
    for (std::size_t k = 0; k < functions.size(); ++k) {
      if (c.simulate_output(static_cast<unsigned>(k)) != functions[k]) {
        fail("verification failed: chain output " + std::to_string(k) +
             " does not realize " + toks[0]);
      }
    }
    e.result.chains.push_back(std::move(c));
    ++i;
  }
  if (version >= 2) {
    if (i >= lines.size() || lines[i].rfind("crc ", 0) != 0) {
      fail("missing crc line for entry " + toks[0]);
    }
    std::string block;
    for (std::size_t k = block_begin; k < i; ++k) {
      block += lines[k];
      block += '\n';
    }
    if (lines[i].substr(4) != crc_hex(util::crc32(block))) {
      fail("crc mismatch for entry " + toks[0]);
    }
    ++i;
  }
  return {std::move(e), i};
}

std::vector<std::string> read_lines(std::istream& is) {
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

/// The one parser behind both load modes.  `lenient` turns per-entry
/// exceptions into skip reports and resynchronizes at the next `entry`
/// line; an unsupported format version throws in both modes.
load_report load_lines(const std::vector<std::string>& lines,
                       bool lenient) {
  load_report report;
  std::size_t i = 0;
  while (i < lines.size() && (lines[i].empty() || lines[i][0] == '#')) {
    ++i;
  }
  int version = 1;
  if (i >= lines.size()) {
    if (!lenient) {
      fail("missing header (want '" + std::string{kHeaderV3} + "')");
    }
    report.skipped.push_back({1, "missing header (empty file)"});
    return report;
  }
  if (lines[i] == kHeaderV1) {
    ++i;
  } else if (lines[i] == kHeaderV2) {
    version = 2;
    ++i;
  } else if (lines[i] == kHeaderV3) {
    version = 3;
    ++i;
  } else if (lines[i].rfind("stpes-chains ", 0) == 0) {
    // A *known-unsupported* version is rejected loudly in both modes:
    // loading zero entries from a newer-generation file would read as "the
    // cache was cold" when the truth is "this binary cannot read it".
    fail("unsupported format version '" + lines[i].substr(13) +
         "' (this build reads '" + std::string{kHeaderV1} + "' through '" +
         std::string{kHeaderV3} + "' only; regenerate the file or upgrade)");
  } else {
    if (!lenient) {
      fail("missing or unsupported header (want '" +
           std::string{kHeaderV3} + "')");
    }
    // Possibly a torn header write; every entry re-verifies by simulation
    // (and simulation is the integrity check v1 relies on), so salvage
    // what parses instead of rejecting wholesale.
    report.skipped.push_back({i + 1, "missing header (not a header line)"});
  }
  while (i < lines.size()) {
    const auto& line = lines[i];
    if (line.empty() || line[0] == '#') {
      ++i;
      continue;
    }
    if (line.rfind("entry ", 0) != 0) {
      if (!lenient) {
        fail("expected 'entry' line, got: " + line);
      }
      const bool dup_header = line.rfind("stpes-chains ", 0) == 0;
      report.skipped.push_back(
          {i + 1, dup_header ? "duplicate header" : "stray line: " + line});
      ++i;
      continue;
    }
    const std::size_t entry_line = i;
    try {
      auto [entry, next] = parse_entry(lines, i, version);
      report.entries.push_back(std::move(entry));
      i = next;
    } catch (const std::runtime_error& ex) {
      if (!lenient) {
        throw;
      }
      report.skipped.push_back({entry_line + 1, ex.what()});
      ++i;
      while (i < lines.size() && lines[i].rfind("entry ", 0) != 0) {
        ++i;
      }
    }
  }
  return report;
}

/// fsync a path (best effort is NOT enough here: persistence is the
/// crash-safety contract, so a failed fsync fails the save).
void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    fail("cannot reopen for fsync: " + path + ": " + std::strerror(errno));
  }
  int err = STPES_FAILPOINT_ERRNO("chain_io.save.fsync");
  if (err == 0 && ::fsync(fd) != 0) {
    err = errno;
  }
  ::close(fd);
  if (err != 0) {
    fail("fsync " + path + ": " + std::strerror(err));
  }
}

/// fsync the directory containing `path` so the rename itself is durable.
/// Best effort: some filesystems refuse directory fsync, and by this point
/// the data file is already safely renamed.
void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

std::string serialize_chain(const chain::boolean_chain& c) {
  std::ostringstream os;
  if (c.num_outputs() <= 1) {
    // The historical v2 grammar, byte for byte: single-output chain lines
    // (and thus single-output SYNTH replies) are unchanged across the
    // format generations.
    os << "chain " << c.num_inputs() << " " << c.num_steps() << " "
       << c.output() << " " << (c.output_complemented() ? 1 : 0);
  } else {
    os << "mchain " << c.num_inputs() << " " << c.num_steps() << " "
       << c.num_outputs();
    for (const auto& o : c.outputs()) {
      os << " " << o.signal << " " << (o.complemented ? 1 : 0);
    }
  }
  for (const auto& s : c.steps()) {
    os << " " << s.op << " " << s.fanin[0] << " " << s.fanin[1];
  }
  return os.str();
}

namespace {

/// Parses the m-output `mchain` grammar:
/// `mchain <ni> <ns> <m> (<output> <compl>)^m (<op> <f0> <f1>)*`.
chain::boolean_chain parse_mchain(const std::vector<std::string>& toks,
                                  std::string_view line) {
  if (toks.size() < 5) {
    fail("mchain line too short: " + std::string{line});
  }
  const unsigned num_inputs = parse_unsigned(toks[0], "num_inputs");
  const unsigned num_steps = parse_unsigned(toks[1], "num_steps");
  const unsigned num_outputs = parse_unsigned(toks[2], "num_outputs");
  if (num_outputs < 2) {
    fail("mchain needs >= 2 outputs (single-output lines use 'chain')");
  }
  const std::size_t expected = 3 + 2 * static_cast<std::size_t>(num_outputs) +
                               3 * static_cast<std::size_t>(num_steps);
  if (toks.size() != expected) {
    fail("mchain line has " + std::to_string(toks.size()) +
         " tokens, expected " + std::to_string(expected));
  }
  chain::boolean_chain c{num_inputs};
  const std::size_t steps_at = 3 + 2 * static_cast<std::size_t>(num_outputs);
  for (unsigned j = 0; j < num_steps; ++j) {
    const unsigned op = parse_unsigned(toks[steps_at + 3 * j], "op");
    if (op > 0xF) {
      fail("op out of range: " + toks[steps_at + 3 * j]);
    }
    const unsigned f0 = parse_unsigned(toks[steps_at + 3 * j + 1], "fanin");
    const unsigned f1 = parse_unsigned(toks[steps_at + 3 * j + 2], "fanin");
    try {
      c.add_step(op, f0, f1);
    } catch (const std::invalid_argument& e) {
      fail(e.what());
    }
  }
  for (unsigned k = 0; k < num_outputs; ++k) {
    const unsigned signal = parse_unsigned(toks[3 + 2 * k], "output");
    const unsigned compl_flag =
        parse_unsigned(toks[4 + 2 * k], "output_complemented");
    if (compl_flag > 1) {
      fail("output_complemented must be 0 or 1");
    }
    try {
      if (k == 0) {
        c.set_output(signal, compl_flag == 1);
      } else {
        c.add_output(signal, compl_flag == 1);
      }
    } catch (const std::invalid_argument& e) {
      fail(e.what());
    }
  }
  return c;
}

}  // namespace

chain::boolean_chain parse_chain(std::string_view line) {
  if (line.rfind("mchain", 0) == 0) {
    return parse_mchain(tokens_after(line, "mchain"), line);
  }
  const auto toks = tokens_after(line, "chain");
  if (toks.size() < 4) {
    fail("chain line too short: " + std::string{line});
  }
  const unsigned num_inputs = parse_unsigned(toks[0], "num_inputs");
  const unsigned num_steps = parse_unsigned(toks[1], "num_steps");
  const unsigned output = parse_unsigned(toks[2], "output");
  const unsigned compl_flag = parse_unsigned(toks[3], "output_complemented");
  if (compl_flag > 1) {
    fail("output_complemented must be 0 or 1");
  }
  if (toks.size() != 4 + 3 * static_cast<std::size_t>(num_steps)) {
    fail("chain line has " + std::to_string(toks.size() - 4) +
         " step tokens, expected " + std::to_string(3 * num_steps));
  }
  chain::boolean_chain c{num_inputs};
  for (unsigned j = 0; j < num_steps; ++j) {
    const unsigned op = parse_unsigned(toks[4 + 3 * j], "op");
    if (op > 0xF) {
      fail("op out of range: " + toks[4 + 3 * j]);
    }
    const unsigned f0 = parse_unsigned(toks[5 + 3 * j], "fanin");
    const unsigned f1 = parse_unsigned(toks[6 + 3 * j], "fanin");
    try {
      c.add_step(op, f0, f1);
    } catch (const std::invalid_argument& e) {
      fail(e.what());
    }
  }
  try {
    c.set_output(output, compl_flag == 1);
  } catch (const std::invalid_argument& e) {
    fail(e.what());
  }
  return c;
}

void save_cache(std::ostream& os, const std::vector<cache_entry>& entries) {
  os << kHeaderV3 << "\n";
  for (const auto& e : entries) {
    const auto block = serialize_entry(e);
    os << block << "crc " << crc_hex(util::crc32(block)) << "\n";
  }
}

std::vector<cache_entry> load_cache(std::istream& is) {
  return load_lines(read_lines(is), /*lenient=*/false).entries;
}

load_report load_cache_lenient(std::istream& is) {
  return load_lines(read_lines(is), /*lenient=*/true);
}

void save_cache_file(const std::string& path,
                     const std::vector<cache_entry>& entries) {
  // Unique temp name: concurrent SAVEs to one path must not clobber each
  // other's scratch file (last rename wins, both files stay whole).
  static std::atomic<std::uint64_t> save_seq{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) +
                          "." + std::to_string(++save_seq);
  try {
    {
      std::ofstream os{tmp, std::ios::trunc};
      STPES_FAILPOINT("chain_io.save.open");
      if (!os) {
        fail("cannot open for writing: " + tmp);
      }
      save_cache(os, entries);
      STPES_FAILPOINT("chain_io.save.write");
      os.flush();
      if (!os) {
        fail("write failed: " + tmp);
      }
    }
    fsync_path(tmp);
    STPES_FAILPOINT("chain_io.save.rename");
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      fail("rename " + tmp + " -> " + path + ": " + std::strerror(errno));
    }
    fsync_parent_dir(path);
  } catch (...) {
    // The target was never touched; drop the scratch file and report.
    ::unlink(tmp.c_str());
    throw;
  }
}

std::vector<cache_entry> load_cache_file(const std::string& path) {
  std::ifstream is{path};
  if (!is) {
    return {};
  }
  STPES_FAILPOINT("chain_io.load.read");
  return load_cache(is);
}

load_report load_cache_file_lenient(const std::string& path) {
  std::ifstream is{path};
  if (!is) {
    return {};
  }
  STPES_FAILPOINT("chain_io.load.read");
  return load_cache_lenient(is);
}

}  // namespace stpes::service
