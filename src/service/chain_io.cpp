#include "service/chain_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace stpes::service {

namespace {

constexpr const char* kHeader = "stpes-chains v1";

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error{"chain_io: " + what};
}

/// Reads every whitespace-separated token after the leading keyword.
std::vector<std::string> tokens_after(std::string_view line,
                                      std::string_view keyword) {
  std::istringstream is{std::string{line}};
  std::string first;
  if (!(is >> first) || first != keyword) {
    fail("expected '" + std::string{keyword} + "' line, got: " +
         std::string{line});
  }
  std::vector<std::string> out;
  std::string tok;
  while (is >> tok) {
    out.push_back(tok);
  }
  return out;
}

unsigned parse_unsigned(const std::string& tok, const char* what) {
  std::size_t pos = 0;
  unsigned long value = 0;
  try {
    value = std::stoul(tok, &pos);
  } catch (const std::exception&) {
    fail(std::string{"bad "} + what + ": " + tok);
  }
  if (pos != tok.size()) {
    fail(std::string{"bad "} + what + ": " + tok);
  }
  return static_cast<unsigned>(value);
}

/// Parses the optional `meta` line: `key=value` tokens, unknown keys are
/// ignored (forward compatibility within header v1), tokens without '='
/// are rejected.
entry_meta parse_meta(std::string_view line) {
  entry_meta meta;
  for (const auto& tok : tokens_after(line, "meta")) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      fail("bad meta token (want key=value): " + tok);
    }
    const auto key = tok.substr(0, eq);
    const auto value = tok.substr(eq + 1);
    if (key == "engine") {
      meta.engine = value;
    } else if (key == "budget") {
      try {
        meta.budget_seconds = std::stod(value);
      } catch (const std::exception&) {
        fail("bad meta budget: " + value);
      }
      if (meta.budget_seconds < 0.0) {
        fail("bad meta budget: " + value);
      }
    }
    // Unknown keys: tolerated, so future writers can extend the meta line
    // without bumping the header version.
  }
  return meta;
}

synth::status parse_status(const std::string& tok) {
  if (tok == "success") {
    return synth::status::success;
  }
  if (tok == "timeout") {
    return synth::status::timeout;
  }
  if (tok == "failure") {
    return synth::status::failure;
  }
  fail("bad status: " + tok);
}

}  // namespace

std::string serialize_chain(const chain::boolean_chain& c) {
  std::ostringstream os;
  os << "chain " << c.num_inputs() << " " << c.num_steps() << " "
     << c.output() << " " << (c.output_complemented() ? 1 : 0);
  for (const auto& s : c.steps()) {
    os << " " << s.op << " " << s.fanin[0] << " " << s.fanin[1];
  }
  return os.str();
}

chain::boolean_chain parse_chain(std::string_view line) {
  const auto toks = tokens_after(line, "chain");
  if (toks.size() < 4) {
    fail("chain line too short: " + std::string{line});
  }
  const unsigned num_inputs = parse_unsigned(toks[0], "num_inputs");
  const unsigned num_steps = parse_unsigned(toks[1], "num_steps");
  const unsigned output = parse_unsigned(toks[2], "output");
  const unsigned compl_flag = parse_unsigned(toks[3], "output_complemented");
  if (compl_flag > 1) {
    fail("output_complemented must be 0 or 1");
  }
  if (toks.size() != 4 + 3 * static_cast<std::size_t>(num_steps)) {
    fail("chain line has " + std::to_string(toks.size() - 4) +
         " step tokens, expected " + std::to_string(3 * num_steps));
  }
  chain::boolean_chain c{num_inputs};
  for (unsigned j = 0; j < num_steps; ++j) {
    const unsigned op = parse_unsigned(toks[4 + 3 * j], "op");
    if (op > 0xF) {
      fail("op out of range: " + toks[4 + 3 * j]);
    }
    const unsigned f0 = parse_unsigned(toks[5 + 3 * j], "fanin");
    const unsigned f1 = parse_unsigned(toks[6 + 3 * j], "fanin");
    try {
      c.add_step(op, f0, f1);
    } catch (const std::invalid_argument& e) {
      fail(e.what());
    }
  }
  try {
    c.set_output(output, compl_flag == 1);
  } catch (const std::invalid_argument& e) {
    fail(e.what());
  }
  return c;
}

void save_cache(std::ostream& os, const std::vector<cache_entry>& entries) {
  os << kHeader << "\n";
  for (const auto& e : entries) {
    os << "entry " << e.function.to_hex() << " " << e.function.num_vars()
       << " " << synth::to_string(e.result.outcome) << " "
       << e.result.optimum_gates << " " << e.result.seconds << " "
       << e.result.chains.size() << "\n";
    if (e.meta.has_value()) {
      os << "meta";
      if (!e.meta->engine.empty()) {
        os << " engine=" << e.meta->engine;
      }
      os << " budget=" << e.meta->budget_seconds << "\n";
    }
    for (const auto& c : e.result.chains) {
      os << serialize_chain(c) << "\n";
    }
  }
}

std::vector<cache_entry> load_cache(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    fail("missing header (want '" + std::string{kHeader} + "')");
  }
  if (line != kHeader) {
    // Distinguish "newer/unknown format version" from "not a chain file
    // at all": the former gets a precise message naming the version, so
    // a user running an old binary against a new cache knows what to do.
    // Policy: unknown versions are always rejected, never migrated (see
    // chain_io.hpp).
    if (line.rfind("stpes-chains ", 0) == 0) {
      fail("unsupported format version '" + line.substr(13) +
           "' (this build reads '" + std::string{kHeader} +
           "' only; regenerate the file or upgrade)");
    }
    fail("missing or unsupported header (want '" + std::string{kHeader} +
         "')");
  }
  std::vector<cache_entry> entries;
  // One line of lookahead: detecting the optional `meta` line after an
  // entry header requires reading one line too many when it is absent.
  bool have_lookahead = false;
  while (have_lookahead || std::getline(is, line)) {
    have_lookahead = false;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const auto toks = tokens_after(line, "entry");
    if (toks.size() != 6) {
      fail("entry line needs 6 fields: " + line);
    }
    cache_entry e;
    const unsigned num_vars = parse_unsigned(toks[1], "num_vars");
    if (num_vars > 16) {
      fail("num_vars out of range: " + toks[1]);
    }
    try {
      e.function = tt::truth_table::from_hex(num_vars, toks[0]);
    } catch (const std::exception& ex) {
      fail(std::string{"bad truth table: "} + ex.what());
    }
    e.result.outcome = parse_status(toks[2]);
    e.result.optimum_gates = parse_unsigned(toks[3], "optimum_gates");
    try {
      e.result.seconds = std::stod(toks[4]);
    } catch (const std::exception&) {
      fail("bad seconds: " + toks[4]);
    }
    const unsigned num_chains = parse_unsigned(toks[5], "num_chains");
    // Optional `meta` line between the entry header and its chains.
    if (std::getline(is, line)) {
      if (line.rfind("meta", 0) == 0) {
        e.meta = parse_meta(line);
      } else {
        have_lookahead = true;  // first chain line (or the next entry)
      }
    }
    e.result.chains.reserve(num_chains);
    for (unsigned i = 0; i < num_chains; ++i) {
      if (!have_lookahead && !std::getline(is, line)) {
        fail("truncated file: entry " + toks[0] + " promises " +
             toks[5] + " chains");
      }
      have_lookahead = false;
      auto c = parse_chain(line);
      if (c.num_inputs() != num_vars) {
        fail("chain arity " + std::to_string(c.num_inputs()) +
             " does not match entry arity " + std::to_string(num_vars));
      }
      if (c.simulate() != e.function) {
        fail("verification failed: chain does not realize " + toks[0]);
      }
      e.result.chains.push_back(std::move(c));
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

void save_cache_file(const std::string& path,
                     const std::vector<cache_entry>& entries) {
  std::ofstream os{path};
  if (!os) {
    fail("cannot open for writing: " + path);
  }
  save_cache(os, entries);
}

std::vector<cache_entry> load_cache_file(const std::string& path) {
  std::ifstream is{path};
  if (!is) {
    return {};
  }
  return load_cache(is);
}

}  // namespace stpes::service
