/// \file thread_pool.hpp
/// \brief Fixed-size worker pool with an MPMC task queue.
///
/// The batch synthesis service schedules one exact-synthesis run per unique
/// NPN class; those runs are embarrassingly parallel and coarse-grained
/// (milliseconds to minutes each), so a simple mutex-guarded queue with a
/// condition variable is the right tool — queue overhead is noise next to
/// one SAT call.  The pool is deliberately minimal: submit closures, wait
/// for quiescence, destruction drains and joins.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace stpes::service {

/// A fixed-size pool of worker threads consuming a shared task queue.
///
/// Tasks are `void()` closures and may be submitted from any thread,
/// including from inside a running task.  Exceptions escaping a task are
/// swallowed (tasks are expected to report failure through their own
/// channels, e.g. a `synth::result`); the worker survives.
class thread_pool {
public:
  /// Spawns `num_threads` workers (at least one; 0 is clamped to 1).
  explicit thread_pool(unsigned num_threads);

  /// Drains the queue, then stops and joins all workers.
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Enqueues a task.  Throws `std::runtime_error` after `shutdown()` or
  /// when the `thread_pool.submit` failpoint fires (chaos tests); callers
  /// own the failure accounting for a task that was never queued.
  void submit(std::function<void()> task);

  /// Tasks queued plus tasks currently running — the admission-control
  /// load signal.  A racy snapshot by nature; overload shedding only needs
  /// "roughly how far behind are we".
  [[nodiscard]] std::size_t pending() const;

  /// Blocks until the queue is empty and every worker is idle.  Tasks
  /// submitted while waiting extend the wait.
  void wait_idle();

  /// Stops accepting tasks, finishes everything queued, joins workers.
  /// Idempotent; also called by the destructor.
  void shutdown();

  [[nodiscard]] std::size_t num_threads() const { return workers_.size(); }

  /// Tasks executed since construction (for tests/metrics).
  [[nodiscard]] std::size_t tasks_executed() const;

private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;          ///< tasks currently running
  std::size_t executed_ = 0;        ///< tasks finished
  bool stopping_ = false;
};

}  // namespace stpes::service
