/// \file shard_cache.hpp
/// \brief Sharded, bounded, thread-safe synthesis-result cache with
///        single-flight semantics.
///
/// Keys are ordered target-function lists (`cache_key`).  Single-output
/// entries hold the NPN-canonical truth table (the output of
/// `tt::exact_npn_canonize`); multi-output entries hold the raw m-output
/// function list and match exactly on the concatenation of the tables'
/// words — NPN class algebra is only defined per function, so for m >= 2
/// the cache falls back to exact-key identity.  Values are complete
/// `synth::result`s for the key.  The table is split into N
/// independently-locked shards so concurrent workers rarely contend; each
/// shard is a bounded LRU.  `get_or_compute` guarantees *single flight*:
/// when two workers ask for the same missing key, exactly one runs the
/// (expensive) synthesis while the other blocks on the in-flight entry —
/// the same contract as Go's singleflight or a memoizing future.
///
/// Failure results (timeout / unrealizable) are cached like successes,
/// matching the serial `core::npn_cached_synthesizer` semantics: retrying a
/// timed-out class with the same budget would only burn the budget again.
/// In-flight entries are pinned (never evicted); eviction applies LRU order
/// over ready entries only.

#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include <condition_variable>

#include "synth/spec.hpp"
#include "tt/truth_table.hpp"

namespace stpes::service {

/// One cache key: the ordered target-function list of a synthesis problem.
/// m = 1 keys carry the NPN-canonical representative; m >= 2 keys carry
/// the raw functions and compare exactly, word for word, output for
/// output (order matters: {f, g} and {g, f} are different problems).
struct cache_key {
  std::vector<tt::truth_table> functions;

  friend bool operator==(const cache_key& a, const cache_key& b) {
    return a.functions == b.functions;
  }
};

/// Hash over the concatenated per-function hashes (which in turn cover
/// every word of every table), so two keys collide only when the whole
/// concatenated word sequence does.
struct cache_key_hash {
  std::size_t operator()(const cache_key& k) const {
    std::size_t h = k.functions.size();
    const tt::truth_table_hash hash_one;
    for (const auto& f : k.functions) {
      h ^= hash_one(f) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// Aggregated counters across all shards.
struct shard_cache_stats {
  std::size_t hits = 0;            ///< entry was ready
  std::size_t misses = 0;          ///< caller became the computing owner
  std::size_t inflight_waits = 0;  ///< waited for another caller's compute
  std::size_t evictions = 0;       ///< ready entries dropped by LRU
  std::size_t size = 0;            ///< resident entries (ready + in-flight)
};

class shard_cache {
public:
  struct options {
    std::size_t num_shards = 16;
    /// Per-shard entry bound; 0 means unbounded.
    std::size_t capacity_per_shard = 4096;
  };

  using compute_fn = std::function<synth::result()>;

  // GCC 12 cannot evaluate nested-aggregate NSDMIs in a default argument,
  // hence the delegating default constructor instead of `opts = {}`.
  shard_cache() : shard_cache(options{}) {}
  explicit shard_cache(options opts);

  /// Returns the cached result for `key`, computing it (at most once across
  /// all concurrent callers) via `compute` on a miss.  `compute` runs
  /// outside any shard lock, so it may be arbitrarily slow.  If `compute`
  /// throws, the in-flight entry is abandoned (waiters receive a failure
  /// result) and the exception propagates to the computing caller.
  synth::result get_or_compute(const cache_key& key,
                               const compute_fn& compute);

  /// Single-output convenience: wraps `key` into a one-function cache key.
  synth::result get_or_compute(const tt::truth_table& key,
                               const compute_fn& compute) {
    return get_or_compute(cache_key{{key}}, compute);
  }

  /// Inserts a ready entry (cache warming).  Returns false when the key is
  /// already resident (the existing entry wins).  The `shard_cache.insert`
  /// failpoint throws here in chaos builds.
  bool insert(const cache_key& key, synth::result value);

  /// Single-output convenience overload.
  bool insert(const tt::truth_table& key, synth::result value) {
    return insert(cache_key{{key}}, std::move(value));
  }

  /// Drops every *ready* entry; in-flight entries stay pinned so their
  /// single-flight waiters are untouched.  Returns entries dropped.  The
  /// seam behind hot cache reload (daemon RELOAD).
  std::size_t clear();

  /// Copies out every ready entry (for persistence).  Entries still in
  /// flight are skipped.
  [[nodiscard]] std::vector<std::pair<cache_key, synth::result>> dump()
      const;

  [[nodiscard]] shard_cache_stats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }

private:
  struct entry {
    synth::result value;
    bool ready = false;
  };
  using entry_ptr = std::shared_ptr<entry>;

  struct shard {
    mutable std::mutex mutex;
    std::condition_variable ready_cv;  ///< signaled when any entry readies
    std::unordered_map<cache_key, entry_ptr, cache_key_hash> map;
    /// LRU order over *ready* keys, most recent at the front.
    std::list<cache_key> lru;
    std::unordered_map<cache_key, std::list<cache_key>::iterator,
                       cache_key_hash>
        lru_pos;
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t inflight_waits = 0;
    std::size_t evictions = 0;
  };

  shard& shard_for(const cache_key& key);
  /// Marks `key` ready, links it into the LRU, and evicts beyond capacity.
  /// Caller must hold the shard lock.
  void finish_entry(shard& s, const cache_key& key,
                    const entry_ptr& e, synth::result value);
  void touch(shard& s, const cache_key& key);
  void evict_excess(shard& s);

  std::size_t capacity_per_shard_;
  std::vector<std::unique_ptr<shard>> shards_;
};

}  // namespace stpes::service
