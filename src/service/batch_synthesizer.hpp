/// \file batch_synthesizer.hpp
/// \brief Parallel batch exact synthesis over the NPN shard cache.
///
/// This is the service entry point for rewriting-style flows: hand it a
/// vector of truth tables (e.g. all cuts of a network) and it returns one
/// `synth::result` per input, computed as follows:
///
///  1. NPN-canonize every request (n <= 5) and group requests by
///     (engine, canonical class) — duplicate work collapses up front.
///  2. Schedule exactly one exact-synthesis run per unique class on the
///     thread pool; the sharded cache's single-flight guarantee keeps this
///     true even across overlapping `run()` calls sharing one synthesizer.
///  3. Rewrite the cached canonical chains back through
///     `chain::apply_inverse_npn_to_chain` per request.
///
/// Results are bitwise identical to the serial
/// `core::npn_cached_synthesizer` path: same canonical run, same structural
/// rewrite, same chain order.  Functions with n > 5 bypass the cache and
/// are synthesized directly (still in parallel).
///
/// The cache can be warmed from / persisted to a `chain_io` file, carrying
/// synthesis effort across process runs.

#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/exact_synthesis.hpp"
#include "service/chain_io.hpp"
#include "service/metrics.hpp"
#include "service/shard_cache.hpp"
#include "synth/spec.hpp"
#include "tt/truth_table.hpp"

namespace stpes::service {

/// Batch-wide defaults; every field can be overridden per request.
struct batch_options {
  core::engine engine = core::engine::stp;
  double timeout_seconds = 0.0;  ///< 0 = unlimited
  unsigned num_threads = 0;      ///< 0 = hardware concurrency
  std::size_t cache_shards = 16;
  std::size_t cache_capacity_per_shard = 4096;  ///< 0 = unbounded
};

/// One synthesis request: a function plus optional per-request overrides of
/// the batch defaults.
struct batch_request {
  tt::truth_table function;
  std::optional<core::engine> engine;
  std::optional<double> timeout_seconds;
};

/// The outcome of one `run()` call.
struct batch_result {
  /// One result per request, in request order.
  std::vector<synth::result> results;
  metrics_snapshot metrics;
  shard_cache_stats cache;
  std::size_t unique_classes = 0;  ///< distinct (engine, class) groups
  double wall_seconds = 0.0;
};

/// What `warm_cache_verbose` did with each file entry.
struct warm_report {
  std::size_t loaded = 0;
  /// Entry meta names a different engine than the batch default; serving
  /// it would cross engine boundaries, so it is skipped.
  std::size_t skipped_engine = 0;
  /// Non-success entry recorded under a smaller budget than the current
  /// one: retrying with more budget could succeed, so it is skipped.
  std::size_t skipped_budget = 0;
  /// Key already resident (the existing entry wins).
  std::size_t duplicates = 0;

  [[nodiscard]] std::size_t skipped() const {
    return skipped_engine + skipped_budget;
  }
};

class batch_synthesizer {
public:
  explicit batch_synthesizer(batch_options opts = {});
  ~batch_synthesizer();

  batch_synthesizer(const batch_synthesizer&) = delete;
  batch_synthesizer& operator=(const batch_synthesizer&) = delete;

  /// Synthesizes every request across the worker pool.  Thread-safe:
  /// overlapping `run()` calls share the pool and the caches, the
  /// single-flight guarantee holds across them, and each call waits only
  /// for its own requests (server front-ends call this from one thread
  /// per connection).
  batch_result run(const std::vector<batch_request>& requests);

  /// Convenience overload: plain functions, batch-default options.
  batch_result run(const std::vector<tt::truth_table>& functions);

  /// Pre-populates the cache of the batch-default engine from a `chain_io`
  /// file.  Returns the number of entries loaded (0 when the file does not
  /// exist).  Throws `std::runtime_error` on a corrupt file.
  std::size_t warm_cache(const std::string& path);

  /// Like `warm_cache`, but reports what was skipped and why.  Entries
  /// whose `meta` names a different engine are not loaded (a chain optimum
  /// under one engine's constraints is not trusted under another's), and
  /// timeout/failure entries recorded under a smaller budget than
  /// `options().timeout_seconds` are dropped so they can be retried.
  /// Entries without metadata (pre-meta files) load as before.
  warm_report warm_cache_verbose(const std::string& path);

  /// Persists the batch-default engine's cache; returns entries written.
  std::size_t persist_cache(const std::string& path) const;

  /// Cooperatively cancels every synthesis job: flips the cancel flag of
  /// all *in-flight* run contexts (workers observe it within their poll
  /// stride and return `status::timeout`) and marks all *queued* jobs so
  /// they complete as timeouts without running the engine at all.  Safe
  /// from any thread — this is the seam behind the daemon's CANCEL verb
  /// and the SIGTERM drain grace period.  Returns the number of in-flight
  /// jobs signalled.
  std::size_t cancel_inflight();

  [[nodiscard]] const batch_options& options() const { return options_; }
  /// Resolved worker count (after the 0 = hardware-concurrency default).
  [[nodiscard]] unsigned num_threads() const;
  [[nodiscard]] metrics_snapshot current_metrics() const {
    return metrics_.snapshot();
  }
  /// Aggregated stats over the per-engine caches.
  [[nodiscard]] shard_cache_stats cache_stats() const;

private:
  static constexpr std::size_t kNumEngines = 4;

  shard_cache& cache_for(core::engine e);
  const shard_cache& cache_for(core::engine e) const;

  /// Runs the engine for `function` under a registered, cancellable run
  /// context; `cancel_epoch` is the epoch observed when the job was
  /// queued (a newer epoch means the job was cancelled while queued).
  synth::result run_cancellable(const tt::truth_table& function,
                                core::engine engine, double timeout,
                                std::uint64_t cancel_epoch);
  [[nodiscard]] std::uint64_t current_cancel_epoch() const;

  batch_options options_;
  /// In-flight run contexts plus the queued-job cancellation epoch;
  /// `cancel_inflight()` flips every registered flag and bumps the epoch.
  mutable std::mutex active_mutex_;
  std::unordered_set<core::run_context*> active_;
  std::uint64_t cancel_epoch_ = 0;
  /// One cache per engine: chain sets differ across engines, so results
  /// must never cross engine boundaries.
  std::vector<std::unique_ptr<shard_cache>> caches_;
  metrics metrics_;
  std::unique_ptr<class thread_pool> pool_;
};

}  // namespace stpes::service
