/// \file batch_synthesizer.hpp
/// \brief Parallel batch exact synthesis over the NPN shard cache.
///
/// This is the service entry point for rewriting-style flows: hand it a
/// vector of truth tables (e.g. all cuts of a network) and it returns one
/// `synth::result` per input, computed as follows:
///
///  1. NPN-canonize every single-output request (n <= 5) and group
///     requests by (engine, canonical class) — duplicate work collapses up
///     front.  Multi-output requests (m >= 2) have no NPN class algebra;
///     they group by (engine, exact function list) and hit the cache's
///     exact-key path instead (keyed on the concatenated truth-table
///     words, see `service::cache_key`).
///  2. Schedule exactly one exact-synthesis run per unique key on the
///     thread pool; the sharded cache's single-flight guarantee keeps this
///     true even across overlapping `run()` calls sharing one synthesizer.
///  3. Rewrite the cached canonical chains back through
///     `chain::apply_inverse_npn_to_chain` per request (single-output
///     groups only — exact-key results are returned as cached).
///
/// Single-output results are bitwise identical to the serial
/// `core::npn_cached_synthesizer` path: same canonical run, same structural
/// rewrite, same chain order.  Single-output functions with n > 5 bypass
/// the cache and are synthesized directly (still in parallel).
///
/// The cache can be warmed from / persisted to a `chain_io` file, carrying
/// synthesis effort across process runs.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/exact_synthesis.hpp"
#include "service/chain_io.hpp"
#include "service/metrics.hpp"
#include "service/shard_cache.hpp"
#include "synth/spec.hpp"
#include "tt/truth_table.hpp"

namespace stpes::service {

/// Batch-wide defaults; every field can be overridden per request.
struct batch_options {
  core::engine engine = core::engine::stp;
  double timeout_seconds = 0.0;  ///< 0 = unlimited
  unsigned num_threads = 0;      ///< 0 = hardware concurrency
  std::size_t cache_shards = 16;
  std::size_t cache_capacity_per_shard = 4096;  ///< 0 = unbounded
  /// Admission bound: when queued + running pool jobs would exceed this,
  /// `would_overload()` tells callers to shed instead of enqueue.
  /// 0 = unbounded (accept everything, the pre-overload-control behavior).
  std::size_t max_pending_jobs = 0;
};

/// One synthesis request: a function (or an ordered m-output function
/// list) plus optional per-request overrides of the batch defaults.
struct batch_request {
  tt::truth_table function;
  /// Multi-output request: when non-empty, one chain must realize all of
  /// these functions in order and `function` is ignored (the same
  /// convention as `synth::spec`).
  std::vector<tt::truth_table> functions;
  /// The effective target list: `functions` when non-empty, else
  /// `{function}`.
  [[nodiscard]] std::vector<tt::truth_table> targets() const {
    return functions.empty() ? std::vector<tt::truth_table>{function}
                             : functions;
  }
  std::optional<core::engine> engine;
  std::optional<double> timeout_seconds;
};

/// The outcome of one `run()` call.
struct batch_result {
  /// One result per request, in request order.
  std::vector<synth::result> results;
  metrics_snapshot metrics;
  shard_cache_stats cache;
  std::size_t unique_classes = 0;  ///< distinct (engine, class) groups
  double wall_seconds = 0.0;
};

/// What `warm_cache_verbose` did with each file entry.
struct warm_report {
  std::size_t loaded = 0;
  /// Entry meta names a different engine than the batch default; serving
  /// it would cross engine boundaries, so it is skipped.
  std::size_t skipped_engine = 0;
  /// Non-success entry recorded under a smaller budget than the current
  /// one: retrying with more budget could succeed, so it is skipped.
  std::size_t skipped_budget = 0;
  /// Entries the lenient loader dropped (torn write, checksum mismatch,
  /// parse damage); the rest of the file loaded anyway.
  std::size_t skipped_corrupt = 0;
  /// Key already resident (the existing entry wins).
  std::size_t duplicates = 0;

  [[nodiscard]] std::size_t skipped() const {
    return skipped_engine + skipped_budget + skipped_corrupt;
  }
};

/// What a `reload_cache` swap did.
struct reload_report {
  std::size_t cleared = 0;  ///< resident entries dropped before warming
  warm_report warm;
};

/// How a generic `run_job` call ended.
enum class job_outcome {
  completed,  ///< the body ran to the end without an observed cancel
  cancelled,  ///< cancelled (queued or in flight) / deadline may have cut it
  rejected,   ///< never ran: pool shut down or submission failpoint fired
};

class batch_synthesizer {
public:
  explicit batch_synthesizer(batch_options opts = {});
  ~batch_synthesizer();

  batch_synthesizer(const batch_synthesizer&) = delete;
  batch_synthesizer& operator=(const batch_synthesizer&) = delete;

  /// Synthesizes every request across the worker pool.  Thread-safe:
  /// overlapping `run()` calls share the pool and the caches, the
  /// single-flight guarantee holds across them, and each call waits only
  /// for its own requests (server front-ends call this from one thread
  /// per connection).  `request_id` tags every job of this call in the
  /// active registry so `cancel_request(id)` can cancel exactly this call;
  /// 0 = untagged (cancellable only daemon-wide).
  batch_result run(const std::vector<batch_request>& requests,
                   std::uint64_t request_id = 0);

  /// Convenience overload: plain functions, batch-default options.
  batch_result run(const std::vector<tt::truth_table>& functions);

  /// Runs an arbitrary `body` as one pool job under a registered,
  /// cancellable run context — the generic seam behind non-synthesis
  /// workloads (the daemon's SWEEP verb).  The context carries the
  /// `timeout_seconds` deadline and is registered in the same active-jobs
  /// table as synthesis runs, so `cancel_inflight()`, `cancel_request(id)`,
  /// the SIGTERM drain, and `active_request_ids()` all apply unchanged.
  /// Blocks until the job finished (or was rejected).  The body's stage
  /// counters are folded into the service metrics; an exception thrown by
  /// the body is rethrown here after deregistration.
  job_outcome run_job(std::uint64_t request_id, double timeout_seconds,
                      const std::function<void(core::run_context&)>& body);

  /// Admission check for load shedding: true when accepting `incoming`
  /// more jobs would push the pool past `options().max_pending_jobs`.
  /// Always false when the bound is 0 (unbounded).  Racy by design — a
  /// shed decision needs "roughly at capacity", not a linearizable count.
  [[nodiscard]] bool would_overload(std::size_t incoming) const;

  /// Queued plus running pool jobs right now (the shedding signal).
  [[nodiscard]] std::size_t pending_jobs() const;

  /// Pre-populates the cache of the batch-default engine from a `chain_io`
  /// file.  Returns the number of entries loaded (0 when the file does not
  /// exist).  Throws `std::runtime_error` on an unreadable file.
  std::size_t warm_cache(const std::string& path);

  /// Like `warm_cache`, but reports what was skipped and why.  Entries
  /// whose `meta` names a different engine are not loaded (a chain optimum
  /// under one engine's constraints is not trusted under another's), and
  /// timeout/failure entries recorded under a smaller budget than
  /// `options().timeout_seconds` are dropped so they can be retried.
  /// Entries without metadata (pre-meta files) load as before.  Loading is
  /// *lenient*: corrupted entries are counted in `skipped_corrupt` and the
  /// intact remainder still warms (graceful degradation); only an
  /// unsupported format version throws.
  warm_report warm_cache_verbose(const std::string& path);

  /// Hot cache swap (daemon RELOAD): parses `path` first, and only when it
  /// is readable clears every ready entry of the default engine's cache
  /// and warms from the file — an unreadable file aborts the reload with
  /// the resident cache untouched.  In-flight computations are unaffected.
  reload_report reload_cache(const std::string& path);

  /// Persists the batch-default engine's cache; returns entries written.
  std::size_t persist_cache(const std::string& path) const;

  /// Cooperatively cancels every synthesis job: flips the cancel flag of
  /// all *in-flight* run contexts (workers observe it within their poll
  /// stride and return `status::timeout`) and marks all *queued* jobs so
  /// they complete as timeouts without running the engine at all.  Safe
  /// from any thread — this is the seam behind the daemon's CANCEL verb
  /// and the SIGTERM drain grace period.  Returns the number of in-flight
  /// jobs signalled.
  std::size_t cancel_inflight();

  /// Cancels only the jobs tagged with `request_id` (in-flight flags
  /// flipped, queued jobs of that id die unstarted); every other request
  /// keeps running.  Returns in-flight jobs signalled; id 0 is a no-op.
  /// The seam behind the daemon's `CANCEL <id>` verb.
  std::size_t cancel_request(std::uint64_t request_id);

  /// Ids of every request with at least one registered in-flight job,
  /// sorted ascending (untagged id-0 jobs are omitted).  Surfaced through
  /// STATS so an operator can target `CANCEL <id>`.
  [[nodiscard]] std::vector<std::uint64_t> active_request_ids() const;

  [[nodiscard]] const batch_options& options() const { return options_; }
  /// Resolved worker count (after the 0 = hardware-concurrency default).
  [[nodiscard]] unsigned num_threads() const;
  [[nodiscard]] metrics_snapshot current_metrics() const {
    return metrics_.snapshot();
  }
  /// Aggregated stats over the per-engine caches.
  [[nodiscard]] shard_cache_stats cache_stats() const;

private:
  static constexpr std::size_t kNumEngines = 5;

  shard_cache& cache_for(core::engine e);
  const shard_cache& cache_for(core::engine e) const;

  /// Runs the engine for the target list (size 1 = classic single-output)
  /// under a registered, cancellable run context; `cancel_epoch` is the
  /// epoch observed when the job was queued (a newer epoch means the job
  /// was cancelled while queued) and `request_id` tags the context for
  /// per-request cancellation.
  synth::result run_cancellable(const std::vector<tt::truth_table>& functions,
                                core::engine engine, double timeout,
                                std::uint64_t cancel_epoch,
                                std::uint64_t request_id);
  [[nodiscard]] std::uint64_t current_cancel_epoch() const;

  /// Shared insert loop behind `warm_cache_verbose` / `reload_cache`:
  /// applies the engine/budget skip policy and counts into `report`.
  void warm_entries(const std::vector<cache_entry>& entries,
                    warm_report& report);

  batch_options options_;
  /// In-flight run contexts (tagged with their request id) plus the
  /// queued-job cancellation epoch; `cancel_inflight()` flips every
  /// registered flag and bumps the epoch, `cancel_request(id)` flips only
  /// matching tags and blacklists the id for still-queued jobs.
  mutable std::mutex active_mutex_;
  std::unordered_map<core::run_context*, std::uint64_t> active_;
  std::unordered_set<std::uint64_t> cancelled_ids_;
  std::uint64_t cancel_epoch_ = 0;
  /// One cache per engine: chain sets differ across engines, so results
  /// must never cross engine boundaries.
  std::vector<std::unique_ptr<shard_cache>> caches_;
  metrics metrics_;
  std::unique_ptr<class thread_pool> pool_;
};

}  // namespace stpes::service
