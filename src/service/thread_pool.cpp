#include "service/thread_pool.hpp"

#include <stdexcept>
#include <utility>

#include "util/failpoint.hpp"

namespace stpes::service {

thread_pool::thread_pool(unsigned num_threads) {
  const unsigned count = num_threads == 0 ? 1u : num_threads;
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() { shutdown(); }

void thread_pool::submit(std::function<void()> task) {
  STPES_FAILPOINT("thread_pool.submit");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error{"thread_pool: submit after shutdown"};
    }
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void thread_pool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void thread_pool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
}

std::size_t thread_pool::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + active_;
}

std::size_t thread_pool::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return executed_;
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      // Tasks report failures through their own result channels; a worker
      // must outlive any single bad task.
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      ++executed_;
      if (queue_.empty() && active_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

}  // namespace stpes::service
