#include "service/shard_cache.hpp"

#include "util/failpoint.hpp"

namespace stpes::service {

shard_cache::shard_cache(options opts)
    : capacity_per_shard_(opts.capacity_per_shard) {
  const std::size_t count = opts.num_shards == 0 ? 1 : opts.num_shards;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<shard>());
  }
}

shard_cache::shard& shard_cache::shard_for(const cache_key& key) {
  return *shards_[cache_key_hash{}(key) % shards_.size()];
}

void shard_cache::touch(shard& s, const cache_key& key) {
  auto pos = s.lru_pos.find(key);
  if (pos != s.lru_pos.end()) {
    s.lru.splice(s.lru.begin(), s.lru, pos->second);
  } else {
    s.lru.push_front(key);
    s.lru_pos.emplace(key, s.lru.begin());
  }
}

void shard_cache::evict_excess(shard& s) {
  if (capacity_per_shard_ == 0) {
    return;
  }
  // Only ready entries are in the LRU list; in-flight entries are pinned,
  // so `map.size()` may transiently exceed capacity while computes run.
  while (s.lru.size() > 0 && s.map.size() > capacity_per_shard_) {
    const cache_key victim = s.lru.back();
    s.lru.pop_back();
    s.lru_pos.erase(victim);
    s.map.erase(victim);
    ++s.evictions;
  }
}

void shard_cache::finish_entry(shard& s, const cache_key& key,
                               const entry_ptr& e, synth::result value) {
  e->value = std::move(value);
  e->ready = true;
  // The entry may have raced with nothing (it was pinned), so it is still
  // in the map; link it into LRU order and trim.
  touch(s, key);
  evict_excess(s);
  s.ready_cv.notify_all();
}

synth::result shard_cache::get_or_compute(const cache_key& key,
                                          const compute_fn& compute) {
  shard& s = shard_for(key);
  entry_ptr e;
  {
    std::unique_lock<std::mutex> lock(s.mutex);
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      e = it->second;
      if (e->ready) {
        ++s.hits;
        touch(s, key);
        return e->value;
      }
      // Another caller is computing this key right now: wait for it.  The
      // entry_ptr keeps the entry alive even if it is evicted meanwhile.
      ++s.inflight_waits;
      s.ready_cv.wait(lock, [&] { return e->ready; });
      return e->value;
    }
    ++s.misses;
    e = std::make_shared<entry>();
    s.map.emplace(key, e);
  }

  // Compute outside the lock; we are the single flight for this key.
  try {
    synth::result value = compute();
    std::lock_guard<std::mutex> lock(s.mutex);
    finish_entry(s, key, e, std::move(value));
    return e->value;
  } catch (...) {
    // Release waiters with a failure result, drop the poisoned entry so a
    // later call retries, and let the exception reach our caller.
    std::lock_guard<std::mutex> lock(s.mutex);
    e->value = synth::result{};  // status::failure, no chains
    e->ready = true;
    auto pos = s.lru_pos.find(key);
    if (pos != s.lru_pos.end()) {
      s.lru.erase(pos->second);
      s.lru_pos.erase(pos);
    }
    s.map.erase(key);
    s.ready_cv.notify_all();
    throw;
  }
}

bool shard_cache::insert(const cache_key& key, synth::result value) {
  STPES_FAILPOINT("shard_cache.insert");
  shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.map.find(key);
  if (it != s.map.end()) {
    return false;
  }
  auto e = std::make_shared<entry>();
  e->value = std::move(value);
  e->ready = true;
  s.map.emplace(key, e);
  touch(s, key);
  evict_excess(s);
  return true;
}

std::size_t shard_cache::clear() {
  std::size_t dropped = 0;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    // Only ready keys live in the LRU list, so walking it leaves every
    // pinned in-flight entry (and its waiters) alone.
    for (const auto& key : sp->lru) {
      sp->map.erase(key);
      ++dropped;
    }
    sp->lru.clear();
    sp->lru_pos.clear();
  }
  return dropped;
}

std::vector<std::pair<cache_key, synth::result>> shard_cache::dump()
    const {
  std::vector<std::pair<cache_key, synth::result>> out;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    for (const auto& [key, e] : sp->map) {
      if (e->ready) {
        out.emplace_back(key, e->value);
      }
    }
  }
  return out;
}

shard_cache_stats shard_cache::stats() const {
  shard_cache_stats total;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    total.hits += sp->hits;
    total.misses += sp->misses;
    total.inflight_waits += sp->inflight_waits;
    total.evictions += sp->evictions;
    total.size += sp->map.size();
  }
  return total;
}

std::size_t shard_cache::size() const {
  std::size_t total = 0;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    total += sp->map.size();
  }
  return total;
}

}  // namespace stpes::service
