/// \file metrics.hpp
/// \brief Lock-free service metrics: atomic counters and a latency
///        histogram with log2 buckets.
///
/// The batch path increments these from every worker; reads produce a
/// consistent-enough `snapshot()` (counters are individually atomic, not
/// mutually — fine for operational metrics).  Rendering is text for humans
/// and JSON for scrapers, so the example driver doubles as a poor man's
/// metrics endpoint.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "util/run_context.hpp"

namespace stpes::service {

/// Atomic mirror of `core::stage_counters`: workers fold the per-run
/// deltas in after each synthesis call, scrapers read a plain copy.
struct atomic_stage_counters {
  std::atomic<std::uint64_t> fences_enumerated{0};
  std::atomic<std::uint64_t> dags_generated{0};
  std::atomic<std::uint64_t> dags_pruned{0};
  std::atomic<std::uint64_t> factorization_attempts{0};
  std::atomic<std::uint64_t> factorization_prunes{0};
  std::atomic<std::uint64_t> dont_care_expansions{0};
  std::atomic<std::uint64_t> factor_memo_hits{0};
  std::atomic<std::uint64_t> factor_memo_misses{0};
  std::atomic<std::uint64_t> allsat_propagations{0};
  std::atomic<std::uint64_t> allsat_merges{0};
  std::atomic<std::uint64_t> sat_decisions{0};
  std::atomic<std::uint64_t> sat_conflicts{0};
  std::atomic<std::uint64_t> sat_restarts{0};
  std::atomic<std::uint64_t> sweep_sim_rounds{0};
  std::atomic<std::uint64_t> sweep_candidates{0};
  std::atomic<std::uint64_t> sweep_proofs{0};
  std::atomic<std::uint64_t> sweep_refutations{0};
  std::atomic<std::uint64_t> sweep_merged_nodes{0};
  std::atomic<std::uint64_t> probe_calls{0};
  std::atomic<std::uint64_t> probe_unsat_levels{0};
  std::atomic<std::uint64_t> probe_sat_levels{0};
  std::atomic<std::uint64_t> portfolio_probe_wins{0};
  std::atomic<std::uint64_t> portfolio_sweep_wins{0};
  std::atomic<std::uint64_t> kernel_batch_queries{0};
  std::atomic<std::uint64_t> kernel_batch_screened{0};
  std::atomic<std::uint64_t> kernel_batch_survivors{0};

  void add(const core::stage_counters& c) {
    fences_enumerated.fetch_add(c.fences_enumerated,
                                std::memory_order_relaxed);
    dags_generated.fetch_add(c.dags_generated, std::memory_order_relaxed);
    dags_pruned.fetch_add(c.dags_pruned, std::memory_order_relaxed);
    factorization_attempts.fetch_add(c.factorization_attempts,
                                     std::memory_order_relaxed);
    factorization_prunes.fetch_add(c.factorization_prunes,
                                   std::memory_order_relaxed);
    dont_care_expansions.fetch_add(c.dont_care_expansions,
                                   std::memory_order_relaxed);
    factor_memo_hits.fetch_add(c.factor_memo_hits,
                               std::memory_order_relaxed);
    factor_memo_misses.fetch_add(c.factor_memo_misses,
                                 std::memory_order_relaxed);
    allsat_propagations.fetch_add(c.allsat_propagations,
                                  std::memory_order_relaxed);
    allsat_merges.fetch_add(c.allsat_merges, std::memory_order_relaxed);
    sat_decisions.fetch_add(c.sat_decisions, std::memory_order_relaxed);
    sat_conflicts.fetch_add(c.sat_conflicts, std::memory_order_relaxed);
    sat_restarts.fetch_add(c.sat_restarts, std::memory_order_relaxed);
    sweep_sim_rounds.fetch_add(c.sweep_sim_rounds,
                               std::memory_order_relaxed);
    sweep_candidates.fetch_add(c.sweep_candidates,
                               std::memory_order_relaxed);
    sweep_proofs.fetch_add(c.sweep_proofs, std::memory_order_relaxed);
    sweep_refutations.fetch_add(c.sweep_refutations,
                                std::memory_order_relaxed);
    sweep_merged_nodes.fetch_add(c.sweep_merged_nodes,
                                 std::memory_order_relaxed);
    probe_calls.fetch_add(c.probe_calls, std::memory_order_relaxed);
    probe_unsat_levels.fetch_add(c.probe_unsat_levels,
                                 std::memory_order_relaxed);
    probe_sat_levels.fetch_add(c.probe_sat_levels,
                               std::memory_order_relaxed);
    portfolio_probe_wins.fetch_add(c.portfolio_probe_wins,
                                   std::memory_order_relaxed);
    portfolio_sweep_wins.fetch_add(c.portfolio_sweep_wins,
                                   std::memory_order_relaxed);
    kernel_batch_queries.fetch_add(c.kernel_batch_queries,
                                   std::memory_order_relaxed);
    kernel_batch_screened.fetch_add(c.kernel_batch_screened,
                                    std::memory_order_relaxed);
    kernel_batch_survivors.fetch_add(c.kernel_batch_survivors,
                                     std::memory_order_relaxed);
  }

  [[nodiscard]] core::stage_counters load() const {
    core::stage_counters c;
    c.fences_enumerated = fences_enumerated.load(std::memory_order_relaxed);
    c.dags_generated = dags_generated.load(std::memory_order_relaxed);
    c.dags_pruned = dags_pruned.load(std::memory_order_relaxed);
    c.factorization_attempts =
        factorization_attempts.load(std::memory_order_relaxed);
    c.factorization_prunes =
        factorization_prunes.load(std::memory_order_relaxed);
    c.dont_care_expansions =
        dont_care_expansions.load(std::memory_order_relaxed);
    c.factor_memo_hits = factor_memo_hits.load(std::memory_order_relaxed);
    c.factor_memo_misses =
        factor_memo_misses.load(std::memory_order_relaxed);
    c.allsat_propagations =
        allsat_propagations.load(std::memory_order_relaxed);
    c.allsat_merges = allsat_merges.load(std::memory_order_relaxed);
    c.sat_decisions = sat_decisions.load(std::memory_order_relaxed);
    c.sat_conflicts = sat_conflicts.load(std::memory_order_relaxed);
    c.sat_restarts = sat_restarts.load(std::memory_order_relaxed);
    c.sweep_sim_rounds = sweep_sim_rounds.load(std::memory_order_relaxed);
    c.sweep_candidates = sweep_candidates.load(std::memory_order_relaxed);
    c.sweep_proofs = sweep_proofs.load(std::memory_order_relaxed);
    c.sweep_refutations =
        sweep_refutations.load(std::memory_order_relaxed);
    c.sweep_merged_nodes =
        sweep_merged_nodes.load(std::memory_order_relaxed);
    c.probe_calls = probe_calls.load(std::memory_order_relaxed);
    c.probe_unsat_levels =
        probe_unsat_levels.load(std::memory_order_relaxed);
    c.probe_sat_levels = probe_sat_levels.load(std::memory_order_relaxed);
    c.portfolio_probe_wins =
        portfolio_probe_wins.load(std::memory_order_relaxed);
    c.portfolio_sweep_wins =
        portfolio_sweep_wins.load(std::memory_order_relaxed);
    c.kernel_batch_queries =
        kernel_batch_queries.load(std::memory_order_relaxed);
    c.kernel_batch_screened =
        kernel_batch_screened.load(std::memory_order_relaxed);
    c.kernel_batch_survivors =
        kernel_batch_survivors.load(std::memory_order_relaxed);
    return c;
  }
};

/// Histogram of latencies with power-of-two microsecond buckets: bucket i
/// counts samples in [2^i, 2^(i+1)) µs (bucket 0 additionally catches
/// sub-microsecond samples).
class latency_histogram {
public:
  static constexpr std::size_t kBuckets = 32;

  void record_seconds(double seconds) {
    double us = seconds * 1e6;
    std::size_t bucket = 0;
    while (bucket + 1 < kBuckets && us >= 2.0) {
      us /= 2.0;
      ++bucket;
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Accumulate total time in nanoseconds for a mean read-out.
    total_ns_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                        std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const {
    std::vector<std::uint64_t> out(kBuckets);
    for (std::size_t i = 0; i < kBuckets; ++i) {
      out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  [[nodiscard]] double total_seconds() const {
    return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) /
           1e9;
  }

private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
};

/// Point-in-time copy of all metrics, suitable for diffing and rendering.
struct metrics_snapshot {
  std::uint64_t requests = 0;        ///< functions submitted to the batch
  std::uint64_t cache_hits = 0;      ///< served from an already-ready entry
  std::uint64_t cache_misses = 0;    ///< triggered a synthesis run
  std::uint64_t inflight_waits = 0;  ///< waited on another worker's run
  std::uint64_t bypassed = 0;        ///< n > 5, synthesized uncached
  std::uint64_t synth_runs = 0;      ///< underlying engine invocations
  std::uint64_t synth_failures = 0;  ///< runs that timed out / failed
  std::uint64_t cancelled = 0;       ///< jobs cancelled (queued or running)
  std::uint64_t synth_latency_count = 0;
  double synth_latency_total_s = 0.0;
  std::vector<std::uint64_t> synth_latency_buckets;
  /// Aggregated per-stage effort of every synthesis run.
  core::stage_counters stage;

  [[nodiscard]] std::string to_text() const {
    std::ostringstream os;
    os << "requests          " << requests << "\n"
       << "cache_hits        " << cache_hits << "\n"
       << "cache_misses      " << cache_misses << "\n"
       << "inflight_waits    " << inflight_waits << "\n"
       << "bypassed          " << bypassed << "\n"
       << "synth_runs        " << synth_runs << "\n"
       << "synth_failures    " << synth_failures << "\n"
       << "cancelled         " << cancelled << "\n"
       << "fences            " << stage.fences_enumerated << "\n"
       << "dags              " << stage.dags_generated << " (+"
       << stage.dags_pruned << " pruned)\n"
       << "factorizations    " << stage.factorization_attempts << " (+"
       << stage.factorization_prunes << " pruned, "
       << stage.dont_care_expansions << " dc expansions)\n"
       << "factor_memo       " << stage.factor_memo_hits << " hits, "
       << stage.factor_memo_misses << " misses\n"
       << "allsat            " << stage.allsat_propagations
       << " propagations, " << stage.allsat_merges << " merges\n"
       << "sat               " << stage.sat_decisions << " decisions, "
       << stage.sat_conflicts << " conflicts, " << stage.sat_restarts
       << " restarts\n"
       << "sweep             " << stage.sweep_candidates << " candidates, "
       << stage.sweep_proofs << " proofs, " << stage.sweep_refutations
       << " refutations, " << stage.sweep_merged_nodes << " merged, "
       << stage.sweep_sim_rounds << " sim rounds\n"
       << "probe             " << stage.probe_calls << " calls, "
       << stage.probe_unsat_levels << " unsat levels, "
       << stage.probe_sat_levels << " sat levels\n"
       << "portfolio         " << stage.portfolio_probe_wins
       << " probe wins, " << stage.portfolio_sweep_wins
       << " sweep wins\n"
       << "kernel_batch      " << stage.kernel_batch_queries
       << " queries, " << stage.kernel_batch_screened << " screened, "
       << stage.kernel_batch_survivors << " survivors\n";
    if (synth_latency_count > 0) {
      os << "synth_mean_ms     "
         << 1e3 * synth_latency_total_s /
                static_cast<double>(synth_latency_count)
         << "\n";
      os << "synth_latency_us  ";
      // Print only the populated range of the histogram.
      std::size_t last = 0;
      for (std::size_t i = 0; i < synth_latency_buckets.size(); ++i) {
        if (synth_latency_buckets[i] > 0) {
          last = i;
        }
      }
      for (std::size_t i = 0; i <= last; ++i) {
        if (i > 0) {
          os << " ";
        }
        os << "[2^" << i << "]=" << synth_latency_buckets[i];
      }
      os << "\n";
    }
    return os.str();
  }

  [[nodiscard]] std::string to_json() const {
    std::ostringstream os;
    os << "{\"requests\":" << requests << ",\"cache_hits\":" << cache_hits
       << ",\"cache_misses\":" << cache_misses
       << ",\"inflight_waits\":" << inflight_waits
       << ",\"bypassed\":" << bypassed << ",\"synth_runs\":" << synth_runs
       << ",\"synth_failures\":" << synth_failures
       << ",\"cancelled\":" << cancelled << ",\"stage_counters\":{"
       << "\"fences_enumerated\":" << stage.fences_enumerated
       << ",\"dags_generated\":" << stage.dags_generated
       << ",\"dags_pruned\":" << stage.dags_pruned
       << ",\"factorization_attempts\":" << stage.factorization_attempts
       << ",\"factorization_prunes\":" << stage.factorization_prunes
       << ",\"dont_care_expansions\":" << stage.dont_care_expansions
       << ",\"factor_memo_hits\":" << stage.factor_memo_hits
       << ",\"factor_memo_misses\":" << stage.factor_memo_misses
       << ",\"allsat_propagations\":" << stage.allsat_propagations
       << ",\"allsat_merges\":" << stage.allsat_merges
       << ",\"sat_decisions\":" << stage.sat_decisions
       << ",\"sat_conflicts\":" << stage.sat_conflicts
       << ",\"sat_restarts\":" << stage.sat_restarts
       << ",\"sweep_sim_rounds\":" << stage.sweep_sim_rounds
       << ",\"sweep_candidates\":" << stage.sweep_candidates
       << ",\"sweep_proofs\":" << stage.sweep_proofs
       << ",\"sweep_refutations\":" << stage.sweep_refutations
       << ",\"sweep_merged_nodes\":" << stage.sweep_merged_nodes
       << ",\"probe_calls\":" << stage.probe_calls
       << ",\"probe_unsat_levels\":" << stage.probe_unsat_levels
       << ",\"probe_sat_levels\":" << stage.probe_sat_levels
       << ",\"portfolio_probe_wins\":" << stage.portfolio_probe_wins
       << ",\"portfolio_sweep_wins\":" << stage.portfolio_sweep_wins
       << ",\"kernel_batch_queries\":" << stage.kernel_batch_queries
       << ",\"kernel_batch_screened\":" << stage.kernel_batch_screened
       << ",\"kernel_batch_survivors\":" << stage.kernel_batch_survivors
       << "}"
       << ",\"synth_latency_count\":" << synth_latency_count
       << ",\"synth_latency_total_s\":" << synth_latency_total_s
       << ",\"synth_latency_buckets\":[";
    for (std::size_t i = 0; i < synth_latency_buckets.size(); ++i) {
      if (i > 0) {
        os << ",";
      }
      os << synth_latency_buckets[i];
    }
    os << "]}";
    return os.str();
  }
};

/// The live counters, shared by every worker of a batch run.
class metrics {
public:
  void on_request() { requests_.fetch_add(1, std::memory_order_relaxed); }
  void on_cache_hit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void on_cache_miss() { misses_.fetch_add(1, std::memory_order_relaxed); }
  void on_inflight_wait() {
    inflight_waits_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_bypass() { bypassed_.fetch_add(1, std::memory_order_relaxed); }
  void on_synth_run(double seconds, bool ok) {
    synth_runs_.fetch_add(1, std::memory_order_relaxed);
    if (!ok) {
      synth_failures_.fetch_add(1, std::memory_order_relaxed);
    }
    latency_.record_seconds(seconds);
  }
  void on_cancelled() {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Folds one run's per-stage counter delta into the aggregate.
  void on_counters(const core::stage_counters& c) { stage_.add(c); }

  [[nodiscard]] metrics_snapshot snapshot() const {
    metrics_snapshot s;
    s.requests = requests_.load(std::memory_order_relaxed);
    s.cache_hits = hits_.load(std::memory_order_relaxed);
    s.cache_misses = misses_.load(std::memory_order_relaxed);
    s.inflight_waits = inflight_waits_.load(std::memory_order_relaxed);
    s.bypassed = bypassed_.load(std::memory_order_relaxed);
    s.synth_runs = synth_runs_.load(std::memory_order_relaxed);
    s.synth_failures = synth_failures_.load(std::memory_order_relaxed);
    s.cancelled = cancelled_.load(std::memory_order_relaxed);
    s.stage = stage_.load();
    s.synth_latency_count = latency_.count();
    s.synth_latency_total_s = latency_.total_seconds();
    s.synth_latency_buckets = latency_.bucket_counts();
    return s;
  }

private:
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inflight_waits_{0};
  std::atomic<std::uint64_t> bypassed_{0};
  std::atomic<std::uint64_t> synth_runs_{0};
  std::atomic<std::uint64_t> synth_failures_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  atomic_stage_counters stage_;
  latency_histogram latency_;
};

}  // namespace stpes::service
