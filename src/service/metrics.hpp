/// \file metrics.hpp
/// \brief Lock-free service metrics: atomic counters and a latency
///        histogram with log2 buckets.
///
/// The batch path increments these from every worker; reads produce a
/// consistent-enough `snapshot()` (counters are individually atomic, not
/// mutually — fine for operational metrics).  Rendering is text for humans
/// and JSON for scrapers, so the example driver doubles as a poor man's
/// metrics endpoint.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace stpes::service {

/// Histogram of latencies with power-of-two microsecond buckets: bucket i
/// counts samples in [2^i, 2^(i+1)) µs (bucket 0 additionally catches
/// sub-microsecond samples).
class latency_histogram {
public:
  static constexpr std::size_t kBuckets = 32;

  void record_seconds(double seconds) {
    double us = seconds * 1e6;
    std::size_t bucket = 0;
    while (bucket + 1 < kBuckets && us >= 2.0) {
      us /= 2.0;
      ++bucket;
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Accumulate total time in nanoseconds for a mean read-out.
    total_ns_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                        std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const {
    std::vector<std::uint64_t> out(kBuckets);
    for (std::size_t i = 0; i < kBuckets; ++i) {
      out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  [[nodiscard]] double total_seconds() const {
    return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) /
           1e9;
  }

private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
};

/// Point-in-time copy of all metrics, suitable for diffing and rendering.
struct metrics_snapshot {
  std::uint64_t requests = 0;        ///< functions submitted to the batch
  std::uint64_t cache_hits = 0;      ///< served from an already-ready entry
  std::uint64_t cache_misses = 0;    ///< triggered a synthesis run
  std::uint64_t inflight_waits = 0;  ///< waited on another worker's run
  std::uint64_t bypassed = 0;        ///< n > 5, synthesized uncached
  std::uint64_t synth_runs = 0;      ///< underlying engine invocations
  std::uint64_t synth_failures = 0;  ///< runs that timed out / failed
  std::uint64_t synth_latency_count = 0;
  double synth_latency_total_s = 0.0;
  std::vector<std::uint64_t> synth_latency_buckets;

  [[nodiscard]] std::string to_text() const {
    std::ostringstream os;
    os << "requests          " << requests << "\n"
       << "cache_hits        " << cache_hits << "\n"
       << "cache_misses      " << cache_misses << "\n"
       << "inflight_waits    " << inflight_waits << "\n"
       << "bypassed          " << bypassed << "\n"
       << "synth_runs        " << synth_runs << "\n"
       << "synth_failures    " << synth_failures << "\n";
    if (synth_latency_count > 0) {
      os << "synth_mean_ms     "
         << 1e3 * synth_latency_total_s /
                static_cast<double>(synth_latency_count)
         << "\n";
      os << "synth_latency_us  ";
      // Print only the populated range of the histogram.
      std::size_t last = 0;
      for (std::size_t i = 0; i < synth_latency_buckets.size(); ++i) {
        if (synth_latency_buckets[i] > 0) {
          last = i;
        }
      }
      for (std::size_t i = 0; i <= last; ++i) {
        if (i > 0) {
          os << " ";
        }
        os << "[2^" << i << "]=" << synth_latency_buckets[i];
      }
      os << "\n";
    }
    return os.str();
  }

  [[nodiscard]] std::string to_json() const {
    std::ostringstream os;
    os << "{\"requests\":" << requests << ",\"cache_hits\":" << cache_hits
       << ",\"cache_misses\":" << cache_misses
       << ",\"inflight_waits\":" << inflight_waits
       << ",\"bypassed\":" << bypassed << ",\"synth_runs\":" << synth_runs
       << ",\"synth_failures\":" << synth_failures
       << ",\"synth_latency_count\":" << synth_latency_count
       << ",\"synth_latency_total_s\":" << synth_latency_total_s
       << ",\"synth_latency_buckets\":[";
    for (std::size_t i = 0; i < synth_latency_buckets.size(); ++i) {
      if (i > 0) {
        os << ",";
      }
      os << synth_latency_buckets[i];
    }
    os << "]}";
    return os.str();
  }
};

/// The live counters, shared by every worker of a batch run.
class metrics {
public:
  void on_request() { requests_.fetch_add(1, std::memory_order_relaxed); }
  void on_cache_hit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void on_cache_miss() { misses_.fetch_add(1, std::memory_order_relaxed); }
  void on_inflight_wait() {
    inflight_waits_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_bypass() { bypassed_.fetch_add(1, std::memory_order_relaxed); }
  void on_synth_run(double seconds, bool ok) {
    synth_runs_.fetch_add(1, std::memory_order_relaxed);
    if (!ok) {
      synth_failures_.fetch_add(1, std::memory_order_relaxed);
    }
    latency_.record_seconds(seconds);
  }

  [[nodiscard]] metrics_snapshot snapshot() const {
    metrics_snapshot s;
    s.requests = requests_.load(std::memory_order_relaxed);
    s.cache_hits = hits_.load(std::memory_order_relaxed);
    s.cache_misses = misses_.load(std::memory_order_relaxed);
    s.inflight_waits = inflight_waits_.load(std::memory_order_relaxed);
    s.bypassed = bypassed_.load(std::memory_order_relaxed);
    s.synth_runs = synth_runs_.load(std::memory_order_relaxed);
    s.synth_failures = synth_failures_.load(std::memory_order_relaxed);
    s.synth_latency_count = latency_.count();
    s.synth_latency_total_s = latency_.total_seconds();
    s.synth_latency_buckets = latency_.bucket_counts();
    return s;
  }

private:
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inflight_waits_{0};
  std::atomic<std::uint64_t> bypassed_{0};
  std::atomic<std::uint64_t> synth_runs_{0};
  std::atomic<std::uint64_t> synth_failures_{0};
  latency_histogram latency_;
};

}  // namespace stpes::service
