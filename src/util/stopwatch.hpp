/// \file stopwatch.hpp
/// \brief Wall-clock measurement and cooperative time budgets.
///
/// `time_budget` is retained as a **deprecation shim**: new code should
/// share one `core::run_context` (see `util/run_context.hpp`) per
/// synthesis run instead of passing by-value deadline copies.  The shim
/// remains because (a) `run_context` wraps it for its deadline half and
/// (b) serialized cache metadata and a few leaf utilities still speak in
/// plain budgets.  Engines poll the run context at coarse-grained decision
/// points (per DAG candidate, per SAT conflict stride, ...) so that the
/// Table-I "#t/o" column can be reproduced with a configurable deadline
/// instead of the paper's fixed 3 minutes.

#pragma once

#include <chrono>
#include <cstdint>

namespace stpes::util {

/// Simple monotonic stopwatch; starts on construction.
class stopwatch {
public:
  using clock = std::chrono::steady_clock;

  stopwatch() : start_(clock::now()) {}

  /// Restarts the measurement.
  void restart() { start_ = clock::now(); }

  /// Elapsed time in seconds.
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  [[nodiscard]] std::int64_t elapsed_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                                 start_)
        .count();
  }

private:
  clock::time_point start_;
};

/// A cooperative deadline shared by the layers of one synthesis call.
///
/// A default-constructed budget is unlimited.  `expired()` is cheap enough
/// to be polled every few thousand solver steps.
class time_budget {
public:
  time_budget() = default;

  /// Budget of `seconds` starting now; non-positive means unlimited.
  explicit time_budget(double seconds) {
    if (seconds > 0.0) {
      deadline_ = stopwatch::clock::now() +
                  std::chrono::duration_cast<stopwatch::clock::duration>(
                      std::chrono::duration<double>(seconds));
      limited_ = true;
    }
  }

  [[nodiscard]] bool limited() const { return limited_; }

  [[nodiscard]] bool expired() const {
    return limited_ && stopwatch::clock::now() >= deadline_;
  }

  /// Seconds remaining (infinity-like large value when unlimited).
  [[nodiscard]] double remaining_seconds() const {
    if (!limited_) {
      return 1e18;
    }
    return std::chrono::duration<double>(deadline_ - stopwatch::clock::now())
        .count();
  }

private:
  stopwatch::clock::time_point deadline_{};
  bool limited_ = false;
};

}  // namespace stpes::util
