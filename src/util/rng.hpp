/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation used by all
///        workload generators and property tests.
///
/// All randomness in this repository flows through `stpes::util::rng`, a
/// small xoshiro256** implementation with an explicit 64-bit seed, so every
/// benchmark table and every test is reproducible bit-for-bit across runs
/// and platforms.  (std::mt19937 distributions are not guaranteed to be
/// portable across standard-library implementations; ours are.)

#pragma once

#include <cstdint>
#include <limits>

namespace stpes::util {

/// Deterministic 64-bit PRNG (xoshiro256**).
///
/// The generator is seeded through SplitMix64 so that low-entropy seeds
/// (0, 1, 2, ...) still produce well-distributed state.
class rng {
public:
  using result_type = std::uint64_t;

  explicit rng(std::uint64_t seed = 0xC0FFEE123456789Full) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) {
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform value in the inclusive range [lo, hi]. Requires lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  /// Fair coin.
  bool next_bool() { return (next_u64() >> 63) != 0; }

  /// Bernoulli trial with probability `num/den`.
  bool next_bernoulli(std::uint64_t num, std::uint64_t den) {
    return next_below(den) < num;
  }

  /// UniformRandomBitGenerator interface (for std::shuffle etc.).
  std::uint64_t operator()() { return next_u64(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace stpes::util
