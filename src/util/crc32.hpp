/// \file crc32.hpp
/// \brief CRC-32 (IEEE 802.3, reflected 0xEDB88320) over byte strings.
///
/// Used by `service::chain_io` to checksum each persisted cache entry so a
/// bit flip or torn write is detected at load time and degrades to a
/// skipped entry instead of a wrong circuit.  Table-driven, header-only;
/// the table is built once per process.

#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace stpes::util {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// CRC-32 of `data` (initial value 0, standard final inversion).
[[nodiscard]] inline std::uint32_t crc32(std::string_view data) {
  const auto& table = detail::crc32_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace stpes::util
