/// \file failpoint.hpp
/// \brief Named, deterministically-triggerable fault-injection points.
///
/// A failpoint is a named hook compiled into an I/O or scheduling seam
/// (file save/rename, cache insertion, task submission, socket reads and
/// writes).  In a normal run every hook is off and costs one hash lookup;
/// in a chaos run, tests or the daemon's `FAILPOINT` verb arm individual
/// hooks with a trigger spec:
///
///     off                 never fires (the default)
///     once                fires on the first evaluation, then disarms
///     always              fires on every evaluation
///     every=N             fires on every Nth evaluation (N >= 1)
///
/// Any trigger may append `,errno=E` (numeric, or EIO / ENOSPC / EPIPE /
/// ECONNRESET / EAGAIN) to pick which error the site simulates; EIO is the
/// default.  Several points are armed at once through the environment:
///
///     STPES_FAILPOINTS="chain_io.save.rename=once;fd_stream.read=every=7"
///
/// Sites use the two macros below.  `STPES_FAILPOINT(name)` throws
/// `failpoint_error` — for seams whose real failures surface as
/// exceptions.  `STPES_FAILPOINT_ERRNO(name)` evaluates to the errno to
/// simulate (0 = no fault) — for syscall-shaped seams that must set
/// `errno` and return a failure code instead of throwing.
///
/// When the build does not define `STPES_FAILPOINTS_ENABLED` (the Release
/// default, gated by the `STPES_FAILPOINTS` CMake option), both macros
/// compile to constants, the registry is never consulted on any hot path,
/// and the fault-injection surface costs exactly nothing — the bench
/// regression guard holds Release to that.
///
/// Triggering is deterministic by design: `every=N` counts evaluations of
/// that one point, so a chaos test that replays the same request sequence
/// injects the same faults.  The registry itself is thread-safe (one
/// mutex; failpoints guard I/O seams, not inner loops).

#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace stpes::util {

/// Thrown by `STPES_FAILPOINT` sites when their point fires.  Derives from
/// `std::runtime_error` so every existing catch-and-report path treats an
/// injected fault exactly like the real failure it stands in for.
struct failpoint_error : std::runtime_error {
  failpoint_error(const std::string& name, int err)
      : std::runtime_error{"failpoint '" + name + "' injected errno " +
                           std::to_string(err)},
        point(name),
        injected_errno(err) {}

  std::string point;
  int injected_errno;
};

/// True when failpoint hooks are compiled into this build.
[[nodiscard]] constexpr bool failpoints_compiled_in() {
#if defined(STPES_FAILPOINTS_ENABLED)
  return true;
#else
  return false;
#endif
}

/// Process-wide registry of armed failpoints.  Points not present are off.
class failpoint_registry {
public:
  static failpoint_registry& instance();

  /// Arms `name` with a trigger spec (grammar in the file comment).
  /// Returns false — and leaves the point unchanged — on a malformed spec.
  /// `set(name, "off")` disarms like `clear`.
  bool set(const std::string& name, const std::string& spec);

  /// Disarms one point / every point.
  void clear(const std::string& name);
  void clear_all();

  /// Evaluates a point: returns 0 when it does not fire, the configured
  /// errno when it does.  Called by the site macros on every pass.
  int should_fail(const std::string& name);

  /// Times `name` actually fired (0 when unknown or never fired).
  [[nodiscard]] std::uint64_t hits(const std::string& name) const;

  /// Every armed point as `(name, "spec hits=N")`, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> list()
      const;

  /// Arms points from `name=spec;name=spec` in the environment variable
  /// `var`; returns how many were armed.  Malformed items are skipped.
  std::size_t load_from_env(const char* var = "STPES_FAILPOINTS");

private:
  enum class trigger { off, once, every, always };

  struct point {
    trigger mode = trigger::off;
    std::uint64_t every_n = 1;  ///< period for trigger::every
    int err = 5;                ///< EIO; what the site simulates
    std::uint64_t evals = 0;    ///< evaluations since armed
    std::uint64_t fired = 0;    ///< times the point fired
    bool spent = false;         ///< trigger::once already consumed
  };

  static bool parse_spec(const std::string& spec, point& out);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, point> points_;
};

}  // namespace stpes::util

#if defined(STPES_FAILPOINTS_ENABLED)
/// Throws `failpoint_error` when the named point fires.
#define STPES_FAILPOINT(name)                                             \
  do {                                                                    \
    if (const int stpes_fp_err =                                          \
            ::stpes::util::failpoint_registry::instance().should_fail(    \
                name)) {                                                  \
      throw ::stpes::util::failpoint_error{name, stpes_fp_err};           \
    }                                                                     \
  } while (0)
/// Evaluates to the errno to simulate (0 = no fault) for syscall seams.
#define STPES_FAILPOINT_ERRNO(name) \
  (::stpes::util::failpoint_registry::instance().should_fail(name))
#else
#define STPES_FAILPOINT(name) ((void)0)
#define STPES_FAILPOINT_ERRNO(name) 0
#endif
