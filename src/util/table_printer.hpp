/// \file table_printer.hpp
/// \brief Minimal aligned-column console tables for the benchmark harness.
///
/// The Table-I reproduction binaries print rows in the same layout as the
/// paper (engine, mean(s), #t/o, #ok, ...); this helper keeps the columns
/// aligned without dragging in a formatting library.

#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace stpes::util {

/// Collects rows of strings and prints them with padded, aligned columns.
class table_printer {
public:
  /// Sets the header row (printed first, followed by a rule).
  void set_header(std::vector<std::string> header);

  /// Appends one data row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> row);

  /// Writes the formatted table to `os`.
  void print(std::ostream& os) const;

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  /// Formats a double with `digits` decimals (helper for cells).
  static std::string fmt(double value, int digits = 3);

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stpes::util
