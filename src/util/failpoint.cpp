#include "util/failpoint.hpp"

#include <algorithm>
#include <cstdlib>

namespace stpes::util {

namespace {

/// The few symbolic errno names chaos specs actually use; anything else is
/// written numerically.
int errno_from_name(const std::string& name, bool& ok) {
  ok = true;
  if (name == "EIO") {
    return 5;
  }
  if (name == "EAGAIN") {
    return 11;
  }
  if (name == "ENOSPC") {
    return 28;
  }
  if (name == "EPIPE") {
    return 32;
  }
  if (name == "ECONNABORTED") {
    return 103;
  }
  if (name == "ECONNRESET") {
    return 104;
  }
  // Numeric form.
  std::size_t pos = 0;
  int value = 0;
  try {
    value = std::stoi(name, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != name.size() || value <= 0) {
    ok = false;
    return 0;
  }
  return value;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto end = text.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

failpoint_registry& failpoint_registry::instance() {
  static failpoint_registry registry;
  return registry;
}

bool failpoint_registry::parse_spec(const std::string& spec, point& out) {
  point p;
  bool have_trigger = false;
  for (const auto& tok : split(spec, ',')) {
    if (tok == "off" || tok == "once" || tok == "always") {
      if (have_trigger) {
        return false;
      }
      have_trigger = true;
      p.mode = tok == "off"     ? trigger::off
               : tok == "once"  ? trigger::once
                                : trigger::always;
    } else if (tok.rfind("every=", 0) == 0) {
      if (have_trigger) {
        return false;
      }
      have_trigger = true;
      p.mode = trigger::every;
      const auto value = tok.substr(6);
      std::size_t pos = 0;
      unsigned long n = 0;
      try {
        n = std::stoul(value, &pos);
      } catch (const std::exception&) {
        pos = 0;
      }
      if (pos != value.size() || n == 0) {
        return false;
      }
      p.every_n = n;
    } else if (tok.rfind("errno=", 0) == 0) {
      bool ok = false;
      p.err = errno_from_name(tok.substr(6), ok);
      if (!ok) {
        return false;
      }
    } else {
      return false;
    }
  }
  if (!have_trigger) {
    return false;
  }
  out = p;
  return true;
}

bool failpoint_registry::set(const std::string& name,
                             const std::string& spec) {
  point p;
  if (name.empty() || !parse_spec(spec, p)) {
    return false;
  }
  std::lock_guard<std::mutex> lock{mutex_};
  if (p.mode == trigger::off) {
    points_.erase(name);
  } else {
    points_[name] = p;
  }
  return true;
}

void failpoint_registry::clear(const std::string& name) {
  std::lock_guard<std::mutex> lock{mutex_};
  points_.erase(name);
}

void failpoint_registry::clear_all() {
  std::lock_guard<std::mutex> lock{mutex_};
  points_.clear();
}

int failpoint_registry::should_fail(const std::string& name) {
  std::lock_guard<std::mutex> lock{mutex_};
  const auto it = points_.find(name);
  if (it == points_.end()) {
    return 0;
  }
  point& p = it->second;
  ++p.evals;
  switch (p.mode) {
    case trigger::off:
      return 0;
    case trigger::once:
      if (p.spent) {
        return 0;
      }
      p.spent = true;
      ++p.fired;
      return p.err;
    case trigger::always:
      ++p.fired;
      return p.err;
    case trigger::every:
      if (p.evals % p.every_n != 0) {
        return 0;
      }
      ++p.fired;
      return p.err;
  }
  return 0;
}

std::uint64_t failpoint_registry::hits(const std::string& name) const {
  std::lock_guard<std::mutex> lock{mutex_};
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fired;
}

std::vector<std::pair<std::string, std::string>> failpoint_registry::list()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  {
    std::lock_guard<std::mutex> lock{mutex_};
    out.reserve(points_.size());
    for (const auto& [name, p] : points_) {
      std::string spec;
      switch (p.mode) {
        case trigger::off:
          spec = "off";
          break;
        case trigger::once:
          spec = p.spent ? "once(spent)" : "once";
          break;
        case trigger::always:
          spec = "always";
          break;
        case trigger::every:
          spec = "every=" + std::to_string(p.every_n);
          break;
      }
      spec += ",errno=" + std::to_string(p.err) +
              " hits=" + std::to_string(p.fired);
      out.emplace_back(name, spec);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t failpoint_registry::load_from_env(const char* var) {
  const char* raw = std::getenv(var);
  if (raw == nullptr || *raw == '\0') {
    return 0;
  }
  std::size_t armed = 0;
  for (const auto& item : split(raw, ';')) {
    if (item.empty()) {
      continue;
    }
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      continue;  // malformed item: skipped, not fatal
    }
    if (set(item.substr(0, eq), item.substr(eq + 1))) {
      ++armed;
    }
  }
  return armed;
}

}  // namespace stpes::util
