/// \file run_context.hpp
/// \brief The unified deadline / cancellation / counter seam shared by
///        every layer of one synthesis run.
///
/// Historically each layer (synth::spec, sat::solver, the STP recursion,
/// the AllSAT merge loop, the server request path) held its *own* copy of
/// `util::time_budget` and polled it at inconsistent depths, so a daemon
/// timeout reply could leave a worker thread burning for seconds.  A
/// `run_context` replaces all of those copies with one shared object:
///
///   * a monotonic **deadline** (same semantics as `time_budget`),
///   * an `std::atomic<bool>` **cancel flag** that any thread may flip
///     (the daemon's CANCEL verb, SIGTERM drain, pool shutdown), and
///   * **per-stage counters** incremented by the layer doing the work.
///
/// Layers poll `should_stop()` at bounded strides (the engines every
/// 1024 ticks, the CDCL loop every 256 conflicts) so a cancel or an
/// expired deadline is observed promptly and uniformly.
///
/// Counters are written by the single thread running the synthesis and
/// must only be read by other threads after the run finished (join /
/// latch).  Only the cancel flag is safe for concurrent access.
///
/// The canonical name is `core::run_context`; the definition lives in
/// `util/` (the lowest layer) so `sat/`, `fence/`, `stp/` etc. can use it
/// without depending on the `core` facade library.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "util/stopwatch.hpp"

namespace stpes::core {

/// Effort counters for every stage of a synthesis run.
///
/// Deterministic counters (fences/DAGs/factorizations on solved
/// instances) double as a search-space fingerprint: the bench regression
/// gate compares them against committed baselines to catch silent drift
/// in the enumeration or pruning logic.
struct stage_counters {
  // Topology enumeration (fence/).
  std::uint64_t fences_enumerated = 0;
  std::uint64_t dags_generated = 0;
  std::uint64_t dags_pruned = 0;
  // STP factorization recursion (synth/factorize, stp_synth).
  std::uint64_t factorization_attempts = 0;
  std::uint64_t factorization_prunes = 0;
  std::uint64_t dont_care_expansions = 0;
  // Factorization memo (synth/factor_memo): requirement decompositions
  // served from cache vs. solved fresh.  Hits measure how much of the
  // DAG-search effort is shared sub-structure.
  std::uint64_t factor_memo_hits = 0;
  std::uint64_t factor_memo_misses = 0;
  // Circuit AllSAT verification (allsat/, stp/).
  std::uint64_t allsat_propagations = 0;
  std::uint64_t allsat_merges = 0;
  // CDCL solver (sat/).
  std::uint64_t sat_decisions = 0;
  std::uint64_t sat_conflicts = 0;
  std::uint64_t sat_restarts = 0;
  // SAT sweeping (sweep/): simulation refinement rounds, candidate pairs
  // tried, miter verdicts, and nodes actually merged into their class
  // representative.  proofs + refutations <= candidates (a deadline or
  // cancel can cut a round between the two).
  std::uint64_t sweep_sim_rounds = 0;
  std::uint64_t sweep_candidates = 0;
  std::uint64_t sweep_proofs = 0;
  std::uint64_t sweep_refutations = 0;
  std::uint64_t sweep_merged_nodes = 0;
  // Lower-bound probe (synth/lower_bound) and the per-level engine
  // portfolio (stp_synth).  `probe_calls` counts CNF solver calls; the
  // *_levels counters count levels classified by the probe; the
  // portfolio_* counters count which engine produced the per-level
  // verdict first (race-dependent: tolerance-gated in benches).
  std::uint64_t probe_calls = 0;
  std::uint64_t probe_unsat_levels = 0;
  std::uint64_t probe_sat_levels = 0;
  std::uint64_t portfolio_probe_wins = 0;
  std::uint64_t portfolio_sweep_wins = 0;
  // Batched factorization screen (synth/factor_requirement_batch):
  // constrained requirement/split queries entering the vectorized
  // AND-feasibility screen, queries refuted in both polarities (the
  // per-candidate solver never runs), and queries where at least one
  // polarity survived into the solver.  On runs that finish without a
  // deadline cut, screened + survivors == queries.
  std::uint64_t kernel_batch_queries = 0;
  std::uint64_t kernel_batch_screened = 0;
  std::uint64_t kernel_batch_survivors = 0;

  stage_counters& operator+=(const stage_counters& o) {
    fences_enumerated += o.fences_enumerated;
    dags_generated += o.dags_generated;
    dags_pruned += o.dags_pruned;
    factorization_attempts += o.factorization_attempts;
    factorization_prunes += o.factorization_prunes;
    dont_care_expansions += o.dont_care_expansions;
    factor_memo_hits += o.factor_memo_hits;
    factor_memo_misses += o.factor_memo_misses;
    allsat_propagations += o.allsat_propagations;
    allsat_merges += o.allsat_merges;
    sat_decisions += o.sat_decisions;
    sat_conflicts += o.sat_conflicts;
    sat_restarts += o.sat_restarts;
    sweep_sim_rounds += o.sweep_sim_rounds;
    sweep_candidates += o.sweep_candidates;
    sweep_proofs += o.sweep_proofs;
    sweep_refutations += o.sweep_refutations;
    sweep_merged_nodes += o.sweep_merged_nodes;
    probe_calls += o.probe_calls;
    probe_unsat_levels += o.probe_unsat_levels;
    probe_sat_levels += o.probe_sat_levels;
    portfolio_probe_wins += o.portfolio_probe_wins;
    portfolio_sweep_wins += o.portfolio_sweep_wins;
    kernel_batch_queries += o.kernel_batch_queries;
    kernel_batch_screened += o.kernel_batch_screened;
    kernel_batch_survivors += o.kernel_batch_survivors;
    return *this;
  }

  stage_counters& operator-=(const stage_counters& o) {
    fences_enumerated -= o.fences_enumerated;
    dags_generated -= o.dags_generated;
    dags_pruned -= o.dags_pruned;
    factorization_attempts -= o.factorization_attempts;
    factorization_prunes -= o.factorization_prunes;
    dont_care_expansions -= o.dont_care_expansions;
    factor_memo_hits -= o.factor_memo_hits;
    factor_memo_misses -= o.factor_memo_misses;
    allsat_propagations -= o.allsat_propagations;
    allsat_merges -= o.allsat_merges;
    sat_decisions -= o.sat_decisions;
    sat_conflicts -= o.sat_conflicts;
    sat_restarts -= o.sat_restarts;
    sweep_sim_rounds -= o.sweep_sim_rounds;
    sweep_candidates -= o.sweep_candidates;
    sweep_proofs -= o.sweep_proofs;
    sweep_refutations -= o.sweep_refutations;
    sweep_merged_nodes -= o.sweep_merged_nodes;
    probe_calls -= o.probe_calls;
    probe_unsat_levels -= o.probe_unsat_levels;
    probe_sat_levels -= o.probe_sat_levels;
    portfolio_probe_wins -= o.portfolio_probe_wins;
    portfolio_sweep_wins -= o.portfolio_sweep_wins;
    kernel_batch_queries -= o.kernel_batch_queries;
    kernel_batch_screened -= o.kernel_batch_screened;
    kernel_batch_survivors -= o.kernel_batch_survivors;
    return *this;
  }

  [[nodiscard]] std::uint64_t total() const {
    return fences_enumerated + dags_generated + dags_pruned +
           factorization_attempts + factorization_prunes +
           dont_care_expansions + factor_memo_hits + factor_memo_misses +
           allsat_propagations + allsat_merges + sat_decisions +
           sat_conflicts + sat_restarts + sweep_sim_rounds +
           sweep_candidates + sweep_proofs + sweep_refutations +
           sweep_merged_nodes + probe_calls + probe_unsat_levels +
           probe_sat_levels + portfolio_probe_wins + portfolio_sweep_wins +
           kernel_batch_queries + kernel_batch_screened +
           kernel_batch_survivors;
  }
};

inline stage_counters operator+(stage_counters a, const stage_counters& b) {
  a += b;
  return a;
}

inline stage_counters operator-(stage_counters a, const stage_counters& b) {
  a -= b;
  return a;
}

/// Shared state of one synthesis run: deadline + cancel flag + counters.
///
/// Non-copyable (holds an atomic); pass by pointer/reference.  A
/// default-constructed context is unlimited and never cancelled until
/// `request_cancel()` is called.
class run_context {
public:
  run_context() = default;

  /// Deadline of `seconds` from now; non-positive means unlimited.
  explicit run_context(double seconds) : budget_(seconds) {}

  /// Adopts an existing `time_budget` deadline (deprecation shim path).
  explicit run_context(util::time_budget budget) : budget_(budget) {}

  /// A worker-local child context: inherits the parent's deadline and
  /// observes the parent's cancel flag (transitively, so a cancel anywhere
  /// up the chain stops the worker), while owning its *own* counters and
  /// its own cancel flag.  The parallel DAG search gives every worker task
  /// one child so counters stay single-writer; the coordinator merges the
  /// deltas deterministically after the tasks are joined.  The parent must
  /// outlive the child.
  explicit run_context(const run_context* parent)
      : budget_(parent->budget_), parent_(parent) {}

  run_context(const run_context&) = delete;
  run_context& operator=(const run_context&) = delete;

  /// Replaces the deadline with `seconds` from now (<= 0 = unlimited).
  void set_deadline_after(double seconds) {
    budget_ = util::time_budget{seconds};
  }

  [[nodiscard]] bool limited() const { return budget_.limited(); }
  [[nodiscard]] bool deadline_expired() const { return budget_.expired(); }
  [[nodiscard]] double remaining_seconds() const {
    return budget_.remaining_seconds();
  }

  /// Requests cooperative cancellation; safe from any thread.
  void request_cancel() { cancel_.store(true, std::memory_order_release); }

  [[nodiscard]] bool cancel_requested() const {
    return cancel_.load(std::memory_order_acquire) ||
           (parent_ != nullptr && parent_->cancel_requested());
  }

  /// The single poll every layer uses: cancelled or past the deadline.
  [[nodiscard]] bool should_stop() const {
    return cancel_requested() || deadline_expired();
  }

  /// Per-stage effort counters; owned by the thread running the work.
  stage_counters counters;

private:
  util::time_budget budget_;
  std::atomic<bool> cancel_{false};
  const run_context* parent_ = nullptr;
};

}  // namespace stpes::core

namespace stpes::util {
// The definition lives in util/ for layering; re-export so util-level
// code can name it without reaching "up" into core.
using run_context = core::run_context;
using stage_counters = core::stage_counters;
}  // namespace stpes::util
