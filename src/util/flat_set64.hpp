/// \file flat_set64.hpp
/// \brief Open-addressing set of 64-bit keys for the synthesis hot path.
///
/// The fruitless-state memo is probed twice per DFS descend — over a
/// hundred million times on a hard instance — and `std::unordered_set`
/// pays a prime modulo plus a node pointer chase per probe.  This set
/// uses power-of-two capacity, a splitmix64 finalizer (the stored keys
/// are already hashes, but cheap insurance against clustered inputs) and
/// linear probing over a flat array, so the common miss costs one mixed
/// multiply and one cache line.
///
/// Insert-only by design (the memos never erase); key 0 is tracked by a
/// side flag so the table can use it as the empty sentinel.  Iteration
/// order is a deterministic function of the insertion *sequence* (each
/// worker task builds its delta in a deterministic order, so the capped
/// thread-merge in run_level stays thread-count independent).

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace stpes::util {

class flat_set64 {
public:
  flat_set64() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] bool contains(std::uint64_t key) const {
    if (key == 0) {
      return has_zero_;
    }
    if (slots_.empty()) {
      return false;
    }
    std::size_t i = index_of(key);
    while (slots_[i] != 0) {
      if (slots_[i] == key) {
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

  /// Inserts `key`; true when it was not yet present.
  bool insert(std::uint64_t key) {
    if (key == 0) {
      const bool fresh = !has_zero_;
      has_zero_ = true;
      size_ += fresh ? 1 : 0;
      return fresh;
    }
    if (slots_.size() < 2 * (size_ + 1)) {
      grow();
    }
    std::size_t i = index_of(key);
    while (slots_[i] != 0) {
      if (slots_[i] == key) {
        return false;
      }
      i = (i + 1) & mask_;
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

  void reserve(std::size_t count) {
    std::size_t cap = kMinCapacity;
    while (cap < 2 * count) {
      cap *= 2;
    }
    if (cap > slots_.size()) {
      rehash(cap);
    }
  }

  void clear() {
    slots_.clear();
    mask_ = 0;
    size_ = 0;
    has_zero_ = false;
  }

  /// Calls `fn(key)` for every key; the visit order is a deterministic
  /// function of the insertion sequence (slot order of the flat table).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (has_zero_) {
      fn(std::uint64_t{0});
    }
    for (const std::uint64_t k : slots_) {
      if (k != 0) {
        fn(k);
      }
    }
  }

private:
  static constexpr std::size_t kMinCapacity = 16;

  [[nodiscard]] std::size_t index_of(std::uint64_t key) const {
    // splitmix64 finalizer.
    std::uint64_t h = key;
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<std::size_t>(h) & mask_;
  }

  void grow() {
    rehash(slots_.empty() ? kMinCapacity : 2 * slots_.size());
  }

  void rehash(std::size_t new_capacity) {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    for (const std::uint64_t k : old) {
      if (k == 0) {
        continue;
      }
      std::size_t i = index_of(k);
      while (slots_[i] != 0) {
        i = (i + 1) & mask_;
      }
      slots_[i] = k;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  bool has_zero_ = false;
};

}  // namespace stpes::util
