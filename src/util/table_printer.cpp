#include "util/table_printer.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace stpes::util {

void table_printer::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void table_printer::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string table_printer::fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

void table_printer::print(std::ostream& os) const {
  std::size_t cols = header_.size();
  for (const auto& row : rows_) {
    cols = std::max(cols, row.size());
  }
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) {
    widen(row);
  }

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cell;
    }
    os << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (auto w : width) {
      total += w + 2;
    }
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) {
    emit(row);
  }
}

}  // namespace stpes::util
