/// \file selector.hpp
/// \brief Cost-based selection among the optimum chains.
///
/// The paper's closing argument: because the STP engine returns *all*
/// optimum 2-LUT chains in one pass, the implementation that best fits the
/// actual design cost can be chosen afterwards — conventional single-
/// solution SAT synthesis cannot do that.  This module provides the common
/// cost models and a weighted selector.

#pragma once

#include <functional>
#include <vector>

#include "chain/boolean_chain.hpp"

namespace stpes::core {

/// A chain cost: lower is better.
using cost_function = std::function<double(const chain::boolean_chain&)>;

/// \name Stock cost models
/// @{
/// Number of steps (all optima tie on this by construction).
cost_function gate_count_cost();
/// Logic depth in steps.
cost_function depth_cost();
/// Number of XOR/XNOR steps (e.g. expensive in NMOS-style libraries).
cost_function xor_cost();
/// Number of steps that are not plain AND/OR (inverter-pressure proxy).
cost_function polarity_cost();
/// alpha * depth + beta * xor_count + gamma * polarity.
cost_function weighted_cost(double alpha, double beta, double gamma);
/// @}

/// Index of the minimum-cost chain (first on ties).  `chains` must be
/// non-empty.
std::size_t select_best(const std::vector<chain::boolean_chain>& chains,
                        const cost_function& cost);

/// Convenience: the minimum-cost chain itself.
const chain::boolean_chain& best_chain(
    const std::vector<chain::boolean_chain>& chains,
    const cost_function& cost);

}  // namespace stpes::core
