#include "core/npn_cache.hpp"

#include <cassert>

#include "chain/transform.hpp"

namespace stpes::core {

synth::result npn_cached_synthesizer::synthesize(
    const tt::truth_table& function) {
  if (function.num_vars() > 5) {
    ++stats_.uncached;
    return exact_synthesis(function, engine_, timeout_);
  }

  const auto canon = tt::exact_npn_canonize(function);
  auto it = cache_.find(canon.canonical);
  if (it == cache_.end()) {
    ++stats_.misses;
    auto canonical_result =
        exact_synthesis(canon.canonical, engine_, timeout_);
    it = cache_.emplace(canon.canonical, std::move(canonical_result)).first;
  } else {
    ++stats_.hits;
  }

  const auto& cached = it->second;
  if (!cached.ok()) {
    return cached;  // timeout/failure propagates
  }
  // canonical == apply_npn_transform(function, transform), so rewriting
  // the canonical chains through the inverse transform realizes the
  // requested function.
  synth::result out;
  out.outcome = cached.outcome;
  out.optimum_gates = cached.optimum_gates;
  out.seconds = cached.seconds;
  out.chains.reserve(cached.chains.size());
  for (const auto& c : cached.chains) {
    auto rewritten = chain::apply_inverse_npn_to_chain(c, canon.transform);
    assert(rewritten.simulate() == function);
    out.chains.push_back(std::move(rewritten));
  }
  return out;
}

}  // namespace stpes::core
