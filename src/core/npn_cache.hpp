/// \file npn_cache.hpp
/// \brief NPN-cached exact synthesis.
///
/// The paper uses NPN classification to reduce DAG candidates; the same
/// classification makes a synthesis *cache*: canonize the target, run the
/// (expensive) exact synthesis once per class, and serve every other class
/// member by structurally rewriting the cached chains through the inverse
/// transform (`chain::apply_inverse_npn_to_chain`).  In rewriting-style
/// flows that call exact synthesis on millions of cuts, this is the layer
/// that makes it practical — e.g. the 2^16 4-input functions collapse to
/// 222 synthesis calls.
///
/// Exact canonization is orbit enumeration (n <= 5); larger functions fall
/// through to the uncached engine.
///
/// Storage is the thread-safe `service::shard_cache` (one implementation
/// for the serial and the batch path); this class is the thin serial
/// adapter that keeps the original single-threaded API.  For parallel
/// batches, use `service::batch_synthesizer` instead.

#pragma once

#include <cassert>
#include <cstddef>

#include "chain/transform.hpp"
#include "core/exact_synthesis.hpp"
#include "service/shard_cache.hpp"
#include "tt/npn.hpp"

namespace stpes::core {

/// Statistics of a cache instance.
struct npn_cache_stats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t uncached = 0;  ///< calls bypassing the cache (n > 5)
};

/// Memoizing wrapper over `exact_synthesis`.
class npn_cached_synthesizer {
public:
  /// `capacity_per_shard == 0` keeps the historical unbounded behavior.
  explicit npn_cached_synthesizer(engine which = engine::stp,
                                  double timeout_seconds = 0.0,
                                  std::size_t capacity_per_shard = 0)
      : engine_(which),
        timeout_(timeout_seconds),
        cache_(service::shard_cache::options{4, capacity_per_shard}) {}

  /// Synthesizes `function`; results for NPN-equivalent functions share
  /// one underlying synthesis run.  Returned chains realize `function`
  /// exactly (verified by simulation in debug builds).
  synth::result synthesize(const tt::truth_table& function) {
    if (function.num_vars() > 5) {
      ++stats_.uncached;
      return exact_synthesis(function, engine_, timeout_);
    }

    const auto canon = tt::exact_npn_canonize(function);
    bool computed = false;
    const auto cached = cache_.get_or_compute(canon.canonical, [&] {
      computed = true;
      return exact_synthesis(canon.canonical, engine_, timeout_);
    });
    if (computed) {
      ++stats_.misses;
    } else {
      ++stats_.hits;
    }

    if (!cached.ok()) {
      return cached;  // timeout/failure propagates
    }
    // canonical == apply_npn_transform(function, transform), so rewriting
    // the canonical chains through the inverse transform realizes the
    // requested function.
    synth::result out;
    out.outcome = cached.outcome;
    out.optimum_gates = cached.optimum_gates;
    out.seconds = cached.seconds;
    out.chains.reserve(cached.chains.size());
    for (const auto& c : cached.chains) {
      auto rewritten = chain::apply_inverse_npn_to_chain(c, canon.transform);
      assert(rewritten.simulate() == function);
      out.chains.push_back(std::move(rewritten));
    }
    return out;
  }

  [[nodiscard]] const npn_cache_stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return cache_.size(); }

private:
  engine engine_;
  double timeout_;
  service::shard_cache cache_;
  npn_cache_stats stats_;
};

}  // namespace stpes::core
