/// \file npn_cache.hpp
/// \brief NPN-cached exact synthesis.
///
/// The paper uses NPN classification to reduce DAG candidates; the same
/// classification makes a synthesis *cache*: canonize the target, run the
/// (expensive) exact synthesis once per class, and serve every other class
/// member by structurally rewriting the cached chains through the inverse
/// transform (`chain::apply_inverse_npn_to_chain`).  In rewriting-style
/// flows that call exact synthesis on millions of cuts, this is the layer
/// that makes it practical — e.g. the 2^16 4-input functions collapse to
/// 222 synthesis calls.
///
/// Exact canonization is orbit enumeration (n <= 5); larger functions fall
/// through to the uncached engine.

#pragma once

#include <cstddef>
#include <unordered_map>

#include "core/exact_synthesis.hpp"

namespace stpes::core {

/// Statistics of a cache instance.
struct npn_cache_stats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t uncached = 0;  ///< calls bypassing the cache (n > 5)
};

/// Memoizing wrapper over `exact_synthesis`.
class npn_cached_synthesizer {
public:
  explicit npn_cached_synthesizer(engine which = engine::stp,
                                  double timeout_seconds = 0.0)
      : engine_(which), timeout_(timeout_seconds) {}

  /// Synthesizes `function`; results for NPN-equivalent functions share
  /// one underlying synthesis run.  Returned chains realize `function`
  /// exactly (verified by simulation in debug builds).
  synth::result synthesize(const tt::truth_table& function);

  [[nodiscard]] const npn_cache_stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return cache_.size(); }

private:
  engine engine_;
  double timeout_;
  std::unordered_map<tt::truth_table, synth::result,
                     tt::truth_table_hash>
      cache_;
  npn_cache_stats stats_;
};

}  // namespace stpes::core
