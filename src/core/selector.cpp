#include "core/selector.hpp"

#include <stdexcept>

namespace stpes::core {

cost_function gate_count_cost() {
  return [](const chain::boolean_chain& c) {
    return static_cast<double>(c.size());
  };
}

cost_function depth_cost() {
  return [](const chain::boolean_chain& c) {
    return static_cast<double>(c.depth());
  };
}

cost_function xor_cost() {
  return [](const chain::boolean_chain& c) {
    return static_cast<double>(c.xor_count());
  };
}

cost_function polarity_cost() {
  return [](const chain::boolean_chain& c) {
    return static_cast<double>(c.nontrivial_polarity_count());
  };
}

cost_function weighted_cost(double alpha, double beta, double gamma) {
  return [alpha, beta, gamma](const chain::boolean_chain& c) {
    return alpha * c.depth() + beta * c.xor_count() +
           gamma * c.nontrivial_polarity_count();
  };
}

std::size_t select_best(const std::vector<chain::boolean_chain>& chains,
                        const cost_function& cost) {
  if (chains.empty()) {
    throw std::invalid_argument{"select_best: no chains"};
  }
  std::size_t best = 0;
  double best_cost = cost(chains[0]);
  for (std::size_t i = 1; i < chains.size(); ++i) {
    const double c = cost(chains[i]);
    if (c < best_cost) {
      best = i;
      best_cost = c;
    }
  }
  return best;
}

const chain::boolean_chain& best_chain(
    const std::vector<chain::boolean_chain>& chains,
    const cost_function& cost) {
  return chains[select_best(chains, cost)];
}

}  // namespace stpes::core
