#include "core/exact_synthesis.hpp"

#include <stdexcept>
#include <string>

#include "synth/bms.hpp"
#include "synth/cegar.hpp"
#include "synth/fen.hpp"

namespace stpes::core {

const char* to_string(engine e) {
  switch (e) {
    case engine::stp:
      return "STP";
    case engine::bms:
      return "BMS";
    case engine::fen:
      return "FEN";
    case engine::cegar:
      return "CEGAR";
    case engine::portfolio:
      return "PORTFOLIO";
  }
  return "?";
}

engine engine_from_string(std::string_view name) {
  if (name == "stp" || name == "STP") {
    return engine::stp;
  }
  if (name == "bms" || name == "BMS") {
    return engine::bms;
  }
  if (name == "fen" || name == "FEN") {
    return engine::fen;
  }
  if (name == "cegar" || name == "CEGAR" || name == "abc" || name == "ABC") {
    return engine::cegar;
  }
  if (name == "portfolio" || name == "PORTFOLIO") {
    return engine::portfolio;
  }
  throw std::invalid_argument{"unknown engine: " + std::string{name}};
}

synth::result exact_synthesis(const synth::spec& s, engine which) {
  switch (which) {
    case engine::stp:
      return synth::stp_synthesize(s);
    case engine::bms:
      return synth::bms_synthesize(s);
    case engine::fen:
      return synth::fen_synthesize(s);
    case engine::cegar:
      return synth::cegar_synthesize(s);
    case engine::portfolio: {
      synth::stp_options options;
      options.engine = synth::stp_level_engine::portfolio;
      synth::stp_engine eng{options};
      return eng.run(s);
    }
  }
  throw std::logic_error{"exact_synthesis: bad engine"};
}

synth::result exact_synthesis(const tt::truth_table& function, engine which,
                              double timeout_seconds) {
  run_context ctx{timeout_seconds};
  synth::spec s;
  s.function = function;
  s.ctx = &ctx;
  return exact_synthesis(s, which);
}

}  // namespace stpes::core
