#include "core/exact_synthesis.hpp"

#include <stdexcept>
#include <string>

#include "synth/bms.hpp"
#include "synth/cegar.hpp"
#include "synth/fen.hpp"
#include "util/stopwatch.hpp"

namespace stpes::core {

const char* to_string(engine e) {
  switch (e) {
    case engine::stp:
      return "STP";
    case engine::bms:
      return "BMS";
    case engine::fen:
      return "FEN";
    case engine::cegar:
      return "CEGAR";
    case engine::portfolio:
      return "PORTFOLIO";
  }
  return "?";
}

engine engine_from_string(std::string_view name) {
  if (name == "stp" || name == "STP") {
    return engine::stp;
  }
  if (name == "bms" || name == "BMS") {
    return engine::bms;
  }
  if (name == "fen" || name == "FEN") {
    return engine::fen;
  }
  if (name == "cegar" || name == "CEGAR" || name == "abc" || name == "ABC") {
    return engine::cegar;
  }
  if (name == "portfolio" || name == "PORTFOLIO") {
    return engine::portfolio;
  }
  throw std::invalid_argument{"unknown engine: " + std::string{name}};
}

namespace {

/// Dispatches to the selected engine; the spec's targets must already be
/// non-degenerate and pairwise distinct modulo complement (the pre-pass
/// below guarantees it).
synth::result run_engine(const synth::spec& s, engine which) {
  switch (which) {
    case engine::stp:
      return synth::stp_synthesize(s);
    case engine::bms:
      return synth::bms_synthesize(s);
    case engine::fen:
      return synth::fen_synthesize(s);
    case engine::cegar:
      return synth::cegar_synthesize(s);
    case engine::portfolio: {
      synth::stp_options options;
      options.engine = synth::stp_level_engine::portfolio;
      synth::stp_engine eng{options};
      return eng.run(s);
    }
  }
  throw std::logic_error{"exact_synthesis: bad engine"};
}

}  // namespace

synth::result exact_synthesis(const synth::spec& s, engine which) {
  // Shared degenerate pre-pass: constants, literals, duplicate and
  // complemented outputs are classified once here, so no engine ever
  // searches for them (they used to re-implement this check one by one).
  const auto targets = s.targets();
  const auto plan = synth::analyze_outputs(targets);

  if (plan.all_degenerate()) {
    util::stopwatch watch;
    synth::result out;
    if (targets.size() == 1) {
      // The historical m = 1 chains (const-1 as a 0xF step, not a
      // complemented const-0 output) stay bit-identical.
      (void)synth::synthesize_degenerate(targets.front(), out);
      out.seconds = watch.elapsed_seconds();
      return out;
    }
    out.outcome = synth::status::success;
    out.optimum_gates = plan.needs_constant ? 1u : 0u;
    out.chains = {synth::bind_plan_outputs(
        plan, chain::boolean_chain{targets.front().num_vars()})};
    out.seconds = watch.elapsed_seconds();
    return out;
  }

  synth::spec engine_spec = s;
  if (plan.distinct.size() == 1) {
    engine_spec.function = plan.distinct.front();
    engine_spec.functions.clear();
  } else {
    engine_spec.functions = plan.distinct;
    engine_spec.function = tt::truth_table{};
  }
  auto r = run_engine(engine_spec, which);
  if (!r.ok()) {
    return r;
  }
  for (auto& c : r.chains) {
    c = synth::bind_plan_outputs(plan, std::move(c));
  }
  if (plan.needs_constant) {
    ++r.optimum_gates;  // the shared const-0 step appended by the bind
  }
  return r;
}

synth::result exact_synthesis(const tt::truth_table& function, engine which,
                              double timeout_seconds) {
  run_context ctx{timeout_seconds};
  synth::spec s;
  s.function = function;
  s.ctx = &ctx;
  return exact_synthesis(s, which);
}

synth::result exact_synthesis(const std::vector<tt::truth_table>& functions,
                              engine which, double timeout_seconds) {
  run_context ctx{timeout_seconds};
  synth::spec s;
  s.functions = functions;
  s.ctx = &ctx;
  return exact_synthesis(s, which);
}

}  // namespace stpes::core
