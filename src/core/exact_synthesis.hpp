/// \file exact_synthesis.hpp
/// \brief Top-level façade: one entry point over the four engines.
///
/// Most users want exactly this:
///
///     auto r = stpes::core::exact_synthesis(
///         stpes::tt::truth_table::from_hex(4, "0x8ff8"));
///     std::cout << r.best().to_string();
///
/// The engine enum mirrors the columns of the paper's Table I.

#pragma once

#include <string_view>

#include "synth/spec.hpp"
#include "synth/stp_synth.hpp"

namespace stpes::core {

/// The four Table-I engines plus the probe/sweep portfolio.
enum class engine {
  stp,    ///< the paper's STP factorization + circuit AllSAT (all optima)
  bms,    ///< baseline SSV CNF encoding
  fen,    ///< fence-constrained SSV CNF encoding
  cegar,  ///< CEGAR SSV encoding (stand-in for ABC lutexact)
  /// The STP engine with `stp_level_engine::portfolio`: the CNF
  /// lower-bound probe races the sweep per level, first proof wins.
  /// Same solution set as `stp`; effort counters are race-dependent.
  portfolio,
};

const char* to_string(engine e);

/// Parses "stp" / "bms" / "fen" / "cegar" / "portfolio" (throws on
/// anything else).
engine engine_from_string(std::string_view name);

/// Runs `which` on the given spec (single- or multi-output).  A shared
/// pre-pass classifies every requested output first (constants, literals,
/// duplicates, complements — `synth::analyze_outputs`), so engines only
/// ever search for the pairwise-distinct non-degenerate functions; the
/// requested outputs are bound back onto each returned chain.  `s.ctx`
/// (when set) carries the deadline, the cancel flag, and accumulates
/// per-stage counters; the per-call counter delta is also returned in
/// `result::counters`.
synth::result exact_synthesis(const synth::spec& s,
                              engine which = engine::stp);

/// Convenience overload: builds a spec with a fresh deadline-only run
/// context (0 = unbounded).  Not cancellable from outside — callers that
/// need that must own a `run_context` and use the spec overload.
synth::result exact_synthesis(const tt::truth_table& function,
                              engine which = engine::stp,
                              double timeout_seconds = 0.0);

/// Multi-output convenience overload: one chain realizing all of
/// `functions`, in order.
synth::result exact_synthesis(const std::vector<tt::truth_table>& functions,
                              engine which = engine::stp,
                              double timeout_seconds = 0.0);

}  // namespace stpes::core
