/// \file collections.hpp
/// \brief The Table-I benchmark function collections.
///
/// * NPN4  — all 222 4-input NPN classes (exactly enumerated, no
///           substitution).
/// * FDSDn — fully-DSD-decomposable n-input functions.  The paper samples
///           functions "that occur frequently in practical synthesis"
///           [16]; those files are not published, so we *construct*
///           functions with the defining property: random read-once trees
///           of non-degenerate 2-input operators over all n variables with
///           random leaf polarities (every such function is fully DSD and
///           depends on all inputs).
/// * PDSDn — partially-DSD functions: a read-once tree in which one leaf
///           is replaced by a random *prime* block (3 or 4 inputs, verified
///           non-decomposable), so the function has DSD structure plus a
///           prime residue — the property that separates the PDSD rows of
///           Table I from the FDSD rows.
///
/// All generators are deterministic in (n, count, seed) and return
/// pairwise-distinct functions.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace stpes::workload {

/// All 222 4-input NPN class representatives.
std::vector<tt::truth_table> npn4_classes();

/// `count` distinct fully-DSD n-input functions with full support.
std::vector<tt::truth_table> fdsd_functions(unsigned num_vars,
                                            std::size_t count,
                                            std::uint64_t seed);

/// `count` distinct partially-DSD n-input functions with full support and
/// a verified prime block.
std::vector<tt::truth_table> pdsd_functions(unsigned num_vars,
                                            std::size_t count,
                                            std::uint64_t seed);

/// A random prime (non-DSD-decomposable) function on `num_vars` inputs
/// with full support (used by the PDSD generator and by tests).
tt::truth_table random_prime_function(unsigned num_vars, util::rng& rng);

/// A random fully-DSD function over all `num_vars` inputs (one sample of
/// the FDSD distribution).
tt::truth_table random_read_once_tree(unsigned num_vars, util::rng& rng);

/// One multi-output benchmark instance: `functions[k]` is output k's
/// truth table; all outputs share one input space.
struct multi_output_instance {
  std::string name;
  std::vector<tt::truth_table> functions;
};

/// The MADD collection: small arithmetic blocks whose outputs share
/// logic, so the joint optimum chain is strictly smaller than the
/// per-output optima combined.  Adders and comparators up to 4 inputs
/// with 2-3 outputs, computed from their arithmetic definitions (no
/// baked-in tables) and deterministic.
std::vector<multi_output_instance> madd_collection();

}  // namespace stpes::workload
