#include "workload/collections.hpp"

#include <set>
#include <stdexcept>

#include "tt/dsd.hpp"
#include "tt/npn.hpp"

namespace stpes::workload {

namespace {

/// Non-degenerate 2-input operators (depend on both inputs).
constexpr unsigned kOps[] = {0x1, 0x2, 0x4, 0x6, 0x7,
                             0x8, 0x9, 0xB, 0xD, 0xE};

/// Combines a multiset of sub-functions into one read-once tree.
tt::truth_table combine_tree(std::vector<tt::truth_table> leaves,
                             util::rng& rng) {
  while (leaves.size() > 1) {
    const std::size_t i = rng.next_below(leaves.size());
    const auto a = leaves[i];
    leaves.erase(leaves.begin() + static_cast<std::ptrdiff_t>(i));
    const std::size_t j = rng.next_below(leaves.size());
    const auto op = kOps[rng.next_below(std::size(kOps))];
    leaves[j] = tt::apply_binary_op(op, a, leaves[j]);
  }
  return leaves.front();
}

}  // namespace

std::vector<tt::truth_table> npn4_classes() {
  return tt::enumerate_npn_classes(4);
}

namespace {

/// Decodes `width` consecutive input variables (starting at `first`) of
/// minterm `t` as an unsigned integer, variable `first` being bit 0.
unsigned decode_operand(std::uint64_t t, unsigned first, unsigned width) {
  unsigned value = 0;
  for (unsigned b = 0; b < width; ++b) {
    if ((t >> (first + b)) & 1) {
      value |= 1u << b;
    }
  }
  return value;
}

/// A `width`-bit ripple adder a + b as `width + 1` outputs (sum bits
/// little-endian, then carry-out) over `2 * width` inputs.
multi_output_instance adder_instance(const std::string& name,
                                     unsigned width) {
  const unsigned num_vars = 2 * width;
  std::vector<tt::truth_table> outputs(width + 1,
                                       tt::truth_table{num_vars});
  for (std::uint64_t t = 0; t < (std::uint64_t{1} << num_vars); ++t) {
    const unsigned sum = decode_operand(t, 0, width) +
                         decode_operand(t, width, width);
    for (unsigned k = 0; k <= width; ++k) {
      outputs[k].set_bit(t, (sum >> k) & 1);
    }
  }
  return {name, std::move(outputs)};
}

/// A `width`-bit magnitude comparator a vs b as the 3 one-hot outputs
/// (less-than, equal, greater-than) over `2 * width` inputs.
multi_output_instance comparator_instance(const std::string& name,
                                          unsigned width) {
  const unsigned num_vars = 2 * width;
  std::vector<tt::truth_table> outputs(3, tt::truth_table{num_vars});
  for (std::uint64_t t = 0; t < (std::uint64_t{1} << num_vars); ++t) {
    const unsigned a = decode_operand(t, 0, width);
    const unsigned b = decode_operand(t, width, width);
    outputs[0].set_bit(t, a < b);
    outputs[1].set_bit(t, a == b);
    outputs[2].set_bit(t, a > b);
  }
  return {name, std::move(outputs)};
}

/// The 3-input full adder (a, b, carry-in) as (sum, carry-out).
multi_output_instance full_adder_instance() {
  std::vector<tt::truth_table> outputs(2, tt::truth_table{3});
  for (std::uint64_t t = 0; t < 8; ++t) {
    const unsigned ones = static_cast<unsigned>((t & 1) + ((t >> 1) & 1) +
                                                ((t >> 2) & 1));
    outputs[0].set_bit(t, ones & 1);
    outputs[1].set_bit(t, ones >= 2);
  }
  return {"full-adder", std::move(outputs)};
}

}  // namespace

std::vector<multi_output_instance> madd_collection() {
  std::vector<multi_output_instance> out;
  out.push_back(adder_instance("half-adder", 1));
  out.push_back(full_adder_instance());
  out.push_back(comparator_instance("cmp1", 1));
  out.push_back(comparator_instance("cmp2", 2));
  out.push_back(adder_instance("add2", 2));
  return out;
}

tt::truth_table random_read_once_tree(unsigned num_vars, util::rng& rng) {
  std::vector<tt::truth_table> leaves;
  leaves.reserve(num_vars);
  for (unsigned v = 0; v < num_vars; ++v) {
    leaves.push_back(
        tt::truth_table::nth_var(num_vars, v, rng.next_bool()));
  }
  return combine_tree(std::move(leaves), rng);
}

tt::truth_table random_prime_function(unsigned num_vars, util::rng& rng) {
  if (num_vars < 3) {
    throw std::invalid_argument{
        "random_prime_function: primes need >= 3 inputs"};
  }
  while (true) {
    tt::truth_table f{num_vars};
    for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
      f.set_bit(t, rng.next_bool());
    }
    if (f.support_size() == num_vars && tt::is_prime(f)) {
      return f;
    }
  }
}

std::vector<tt::truth_table> fdsd_functions(unsigned num_vars,
                                            std::size_t count,
                                            std::uint64_t seed) {
  util::rng rng{seed};
  std::set<std::string> seen;
  std::vector<tt::truth_table> out;
  std::size_t attempts = 0;
  while (out.size() < count) {
    if (++attempts > 1000 * count + 10000) {
      throw std::runtime_error{
          "fdsd_functions: cannot produce enough distinct functions"};
    }
    auto f = random_read_once_tree(num_vars, rng);
    if (f.support_size() != num_vars) {
      continue;  // defensive; read-once trees keep full support
    }
    if (seen.insert(f.to_hex()).second) {
      out.push_back(std::move(f));
    }
  }
  return out;
}

std::vector<tt::truth_table> pdsd_functions(unsigned num_vars,
                                            std::size_t count,
                                            std::uint64_t seed) {
  if (num_vars < 4) {
    throw std::invalid_argument{
        "pdsd_functions: need >= 4 inputs for a prime block plus DSD"};
  }
  util::rng rng{seed};
  std::set<std::string> seen;
  std::vector<tt::truth_table> out;
  std::size_t attempts = 0;
  while (out.size() < count) {
    if (++attempts > 1000 * count + 10000) {
      throw std::runtime_error{
          "pdsd_functions: cannot produce enough distinct functions"};
    }
    // Prime block on a random subset of 3 or 4 variables.
    const unsigned block_size =
        num_vars >= 5 && rng.next_bool() ? 4u : 3u;
    std::vector<unsigned> vars(num_vars);
    for (unsigned v = 0; v < num_vars; ++v) {
      vars[v] = v;
    }
    for (unsigned v = num_vars; v-- > 1;) {
      std::swap(vars[v], vars[rng.next_below(v + 1)]);
    }
    auto block_small = random_prime_function(block_size, rng);
    // Lift the block onto the chosen variables of the full space.
    tt::truth_table block{num_vars};
    for (std::uint64_t t = 0; t < block.num_bits(); ++t) {
      std::uint64_t small = 0;
      for (unsigned b = 0; b < block_size; ++b) {
        if ((t >> vars[b]) & 1) {
          small |= std::uint64_t{1} << b;
        }
      }
      block.set_bit(t, block_small.get_bit(small));
    }
    // Remaining variables join as read-once leaves around the block.
    std::vector<tt::truth_table> leaves{block};
    for (unsigned b = block_size; b < num_vars; ++b) {
      leaves.push_back(
          tt::truth_table::nth_var(num_vars, vars[b], rng.next_bool()));
    }
    auto f = combine_tree(std::move(leaves), rng);
    if (f.support_size() != num_vars) {
      continue;
    }
    if (tt::analyze_dsd(f).kind != tt::dsd_kind::partial) {
      continue;  // defensive: the block must stay visible as a prime core
    }
    if (seen.insert(f.to_hex()).second) {
      out.push_back(std::move(f));
    }
  }
  return out;
}

}  // namespace stpes::workload
