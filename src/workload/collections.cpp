#include "workload/collections.hpp"

#include <set>
#include <stdexcept>

#include "tt/dsd.hpp"
#include "tt/npn.hpp"

namespace stpes::workload {

namespace {

/// Non-degenerate 2-input operators (depend on both inputs).
constexpr unsigned kOps[] = {0x1, 0x2, 0x4, 0x6, 0x7,
                             0x8, 0x9, 0xB, 0xD, 0xE};

/// Combines a multiset of sub-functions into one read-once tree.
tt::truth_table combine_tree(std::vector<tt::truth_table> leaves,
                             util::rng& rng) {
  while (leaves.size() > 1) {
    const std::size_t i = rng.next_below(leaves.size());
    const auto a = leaves[i];
    leaves.erase(leaves.begin() + static_cast<std::ptrdiff_t>(i));
    const std::size_t j = rng.next_below(leaves.size());
    const auto op = kOps[rng.next_below(std::size(kOps))];
    leaves[j] = tt::apply_binary_op(op, a, leaves[j]);
  }
  return leaves.front();
}

}  // namespace

std::vector<tt::truth_table> npn4_classes() {
  return tt::enumerate_npn_classes(4);
}

tt::truth_table random_read_once_tree(unsigned num_vars, util::rng& rng) {
  std::vector<tt::truth_table> leaves;
  leaves.reserve(num_vars);
  for (unsigned v = 0; v < num_vars; ++v) {
    leaves.push_back(
        tt::truth_table::nth_var(num_vars, v, rng.next_bool()));
  }
  return combine_tree(std::move(leaves), rng);
}

tt::truth_table random_prime_function(unsigned num_vars, util::rng& rng) {
  if (num_vars < 3) {
    throw std::invalid_argument{
        "random_prime_function: primes need >= 3 inputs"};
  }
  while (true) {
    tt::truth_table f{num_vars};
    for (std::uint64_t t = 0; t < f.num_bits(); ++t) {
      f.set_bit(t, rng.next_bool());
    }
    if (f.support_size() == num_vars && tt::is_prime(f)) {
      return f;
    }
  }
}

std::vector<tt::truth_table> fdsd_functions(unsigned num_vars,
                                            std::size_t count,
                                            std::uint64_t seed) {
  util::rng rng{seed};
  std::set<std::string> seen;
  std::vector<tt::truth_table> out;
  std::size_t attempts = 0;
  while (out.size() < count) {
    if (++attempts > 1000 * count + 10000) {
      throw std::runtime_error{
          "fdsd_functions: cannot produce enough distinct functions"};
    }
    auto f = random_read_once_tree(num_vars, rng);
    if (f.support_size() != num_vars) {
      continue;  // defensive; read-once trees keep full support
    }
    if (seen.insert(f.to_hex()).second) {
      out.push_back(std::move(f));
    }
  }
  return out;
}

std::vector<tt::truth_table> pdsd_functions(unsigned num_vars,
                                            std::size_t count,
                                            std::uint64_t seed) {
  if (num_vars < 4) {
    throw std::invalid_argument{
        "pdsd_functions: need >= 4 inputs for a prime block plus DSD"};
  }
  util::rng rng{seed};
  std::set<std::string> seen;
  std::vector<tt::truth_table> out;
  std::size_t attempts = 0;
  while (out.size() < count) {
    if (++attempts > 1000 * count + 10000) {
      throw std::runtime_error{
          "pdsd_functions: cannot produce enough distinct functions"};
    }
    // Prime block on a random subset of 3 or 4 variables.
    const unsigned block_size =
        num_vars >= 5 && rng.next_bool() ? 4u : 3u;
    std::vector<unsigned> vars(num_vars);
    for (unsigned v = 0; v < num_vars; ++v) {
      vars[v] = v;
    }
    for (unsigned v = num_vars; v-- > 1;) {
      std::swap(vars[v], vars[rng.next_below(v + 1)]);
    }
    auto block_small = random_prime_function(block_size, rng);
    // Lift the block onto the chosen variables of the full space.
    tt::truth_table block{num_vars};
    for (std::uint64_t t = 0; t < block.num_bits(); ++t) {
      std::uint64_t small = 0;
      for (unsigned b = 0; b < block_size; ++b) {
        if ((t >> vars[b]) & 1) {
          small |= std::uint64_t{1} << b;
        }
      }
      block.set_bit(t, block_small.get_bit(small));
    }
    // Remaining variables join as read-once leaves around the block.
    std::vector<tt::truth_table> leaves{block};
    for (unsigned b = block_size; b < num_vars; ++b) {
      leaves.push_back(
          tt::truth_table::nth_var(num_vars, vars[b], rng.next_bool()));
    }
    auto f = combine_tree(std::move(leaves), rng);
    if (f.support_size() != num_vars) {
      continue;
    }
    if (tt::analyze_dsd(f).kind != tt::dsd_kind::partial) {
      continue;  // defensive: the block must stay visible as a prime core
    }
    if (seen.insert(f.to_hex()).second) {
      out.push_back(std::move(f));
    }
  }
  return out;
}

}  // namespace stpes::workload
