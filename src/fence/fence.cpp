#include "fence/fence.hpp"

#include <numeric>

namespace stpes::fence {

unsigned fence::num_nodes() const {
  return std::accumulate(widths.begin(), widths.end(), 0u);
}

std::string fence::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < widths.size(); ++i) {
    out += std::to_string(widths[i]);
    if (i + 1 < widths.size()) {
      out += ',';
    }
  }
  out += ')';
  return out;
}

namespace {

void compose(unsigned remaining, std::vector<unsigned>& prefix,
             std::vector<fence>& out) {
  if (remaining == 0) {
    out.push_back(fence{prefix});
    return;
  }
  for (unsigned first = 1; first <= remaining; ++first) {
    prefix.push_back(first);
    compose(remaining - first, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

std::vector<fence> all_fences(unsigned k, core::run_context* ctx) {
  std::vector<fence> out;
  std::vector<unsigned> prefix;
  if (k > 0) {
    compose(k, prefix, out);
  }
  if (ctx != nullptr) {
    ctx->counters.fences_enumerated += out.size();
  }
  return out;
}

bool is_pruned_valid(const fence& f) {
  if (f.widths.empty() || f.widths.back() != 1) {
    return false;  // single output: exactly one top node
  }
  // Fanin capacity: every node at level i must be used by some node above,
  // and nodes above level i provide 2 * (#nodes above) fanin slots in
  // total, of which the level directly above must absorb at least one per
  // node (levels are "real").  The simple necessary conditions used here:
  //   width[i] <= 2 * sum(width[j] for j > i)   (somebody consumes it)
  //   width[i] >= 1                             (by construction)
  unsigned above = 0;
  for (std::size_t i = f.widths.size(); i-- > 0;) {
    if (i + 1 < f.widths.size() && f.widths[i] > 2 * above) {
      return false;
    }
    above += f.widths[i];
  }
  return true;
}

std::vector<fence> pruned_fences(unsigned k, core::run_context* ctx) {
  std::vector<fence> out;
  for (const auto& f : all_fences(k)) {
    if (is_pruned_valid(f)) {
      out.push_back(f);
    }
  }
  if (ctx != nullptr) {
    ctx->counters.fences_enumerated += out.size();
  }
  return out;
}

bool is_pruned_valid_multi(const fence& f, unsigned max_outputs) {
  if (f.widths.empty()) {
    return false;
  }
  // Walking top-down, every gate a level's consumers cannot absorb must
  // dangle, and a chain with m outputs has at most m dangling gates (a
  // dangling gate in no output's cone contradicts optimality).  The top
  // level has no consumers, so it dangles entirely.
  unsigned above = 0;
  unsigned forced_dangling = 0;
  for (std::size_t i = f.widths.size(); i-- > 0;) {
    const unsigned consumable = 2 * above;
    if (f.widths[i] > consumable) {
      forced_dangling += f.widths[i] - consumable;
      if (forced_dangling > max_outputs) {
        return false;
      }
    }
    above += f.widths[i];
  }
  return true;
}

std::vector<fence> pruned_fences_multi(unsigned k, unsigned max_outputs,
                                       core::run_context* ctx) {
  std::vector<fence> out;
  for (const auto& f : all_fences(k)) {
    if (is_pruned_valid_multi(f, max_outputs)) {
      out.push_back(f);
    }
  }
  if (ctx != nullptr) {
    ctx->counters.fences_enumerated += out.size();
  }
  return out;
}

}  // namespace stpes::fence
