/// \file dag.hpp
/// \brief DAG topology generation from fences (Section III-A, Fig. 3).
///
/// A `dag_topology` fixes the gate-to-gate connectivity of a candidate
/// Boolean chain before any operator or input variable is chosen: each gate
/// has two fanin slots holding either a lower gate or an *open PI slot*.
/// Generation enforces the fence semantics (each gate above the bottom
/// level takes at least one fanin from the level directly below, so levels
/// are real) plus:
///
///   * the root is the single top-level gate and every other gate has at
///     least one fanout (dangling gates would contradict optimality),
///   * fanin pairs are unordered and never duplicate a gate (a 2-input
///     operator on twin inputs degenerates),
///   * gates within a level appear in non-decreasing fanin-signature order
///     and a final signature dedup removes remaining isomorphic duplicates — this
///     plays the role of the paper's NPN-based DAG reduction.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "fence/fence.hpp"

namespace stpes::fence {

/// Marker for a fanin slot fed by a primary input.
inline constexpr int kPiSlot = -1;

/// Connectivity skeleton of a candidate chain.
struct dag_topology {
  struct gate {
    /// Fanins sorted descending, so PI slots (-1) come last.
    std::array<int, 2> fanin{kPiSlot, kPiSlot};
    unsigned level = 0;
  };

  /// Gates in topological order (level-ascending); the last gate is the
  /// root / output.
  std::vector<gate> gates;

  [[nodiscard]] unsigned num_gates() const {
    return static_cast<unsigned>(gates.size());
  }
  [[nodiscard]] int root() const {
    return static_cast<int>(gates.size()) - 1;
  }
  /// All fanout-free gates in index order.  Single-output topologies have
  /// exactly one (== root()); multi-output generation allows up to
  /// `dag_options::max_outputs`, and each must be bound to an output.
  [[nodiscard]] std::vector<int> roots() const;
  /// Total number of open PI slots.
  [[nodiscard]] unsigned num_pi_slots() const;
  /// Number of open PI slots in the cone of each gate (counting a shared
  /// slot once) — the maximum number of distinct variables the gate's
  /// function can depend on.
  [[nodiscard]] std::vector<unsigned> pi_slot_capacity() const;
  /// Number of gates in the cone of each gate (including itself).  A cone
  /// of g gates can depend on at most g + 1 distinct variables, which is a
  /// much tighter capacity than the slot count on wide shapes.
  [[nodiscard]] std::vector<unsigned> gates_in_cone() const;
  /// Compact structural key for deduplication, e.g. "2,1|0,1;-1,-1".
  [[nodiscard]] std::string signature() const;
};

/// Options for DAG generation.
struct dag_options {
  /// Allow a gate to feed more than one higher gate.  When false only
  /// fanout-free (tree) topologies are produced.
  bool allow_shared_gates = true;
  /// Hard cap on the number of topologies generated (0 = unlimited).
  std::size_t limit = 0;
  /// Number of chain outputs the topologies may serve: up to this many
  /// gates may be fanout-free (each such gate must later be bound to an
  /// output).  1 reproduces the classic single-root family.
  unsigned max_outputs = 1;
};

/// All valid DAG topologies for one fence.  With a `ctx`, every emitted
/// topology counts into `dags_generated` and every complete assignment
/// rejected by the validity filters (dangling gate, duplicate signature,
/// fanout restriction) into `dags_pruned`; the enumeration also observes
/// the context's cancel flag between assignments.
std::vector<dag_topology> generate_dags(const fence& f,
                                        const dag_options& options = {},
                                        core::run_context* ctx = nullptr);

/// All valid DAG topologies over every pruned fence with `num_gates`
/// gates, concatenated in fence order.
std::vector<dag_topology> generate_dags_for_size(
    unsigned num_gates, const dag_options& options = {});

}  // namespace stpes::fence
