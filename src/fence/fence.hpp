/// \file fence.hpp
/// \brief Boolean fences (Section III-A): partitions of k nodes over l
///        levels that seed DAG topology families.
///
/// A fence F(k, l) distributes k gates over l levels with every level
/// non-empty.  The paper prunes the family for single-output synthesis with
/// 2-input operators:
///   * the top level holds exactly one node (single output), and
///   * a level may not hold more nodes than the levels above it can consume
///     (each node above contributes two fanin slots, and every node must
///     drive at least one node on a higher level).
///
/// For k = 3 this leaves {(2,1), (1,1,1)} of the unpruned
/// {(3), (2,1), (1,2), (1,1,1)}, matching Fig. 2.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/run_context.hpp"

namespace stpes::fence {

/// Node counts per level, bottom level (fed only by PIs) first.
struct fence {
  std::vector<unsigned> widths;

  [[nodiscard]] unsigned num_nodes() const;
  [[nodiscard]] unsigned num_levels() const {
    return static_cast<unsigned>(widths.size());
  }
  /// e.g. "(2,1)".
  [[nodiscard]] std::string to_string() const;

  bool operator==(const fence& other) const {
    return widths == other.widths;
  }
};

/// All fences of k nodes (all compositions of k), in lexicographic order.
/// When `ctx` is given, every emitted fence counts into
/// `ctx->counters.fences_enumerated`.
std::vector<fence> all_fences(unsigned k, core::run_context* ctx = nullptr);

/// The paper's pruned family (see file comment).  Counts as `all_fences`;
/// fences rejected by the pruning rules are not counted.
std::vector<fence> pruned_fences(unsigned k,
                                 core::run_context* ctx = nullptr);

/// True iff `f` survives the paper's pruning rules.
bool is_pruned_valid(const fence& f);

/// Multi-output generalization of the pruning rules: a chain with up to
/// `max_outputs` outputs may leave up to that many gates without fanout
/// (each dangling gate must be an output signal), so a level may exceed
/// the fanin capacity of the levels above by the remaining dangle budget.
/// `is_pruned_valid_multi(f, 1) == is_pruned_valid(f)`.
bool is_pruned_valid_multi(const fence& f, unsigned max_outputs);

/// The pruned fence family for chains with up to `max_outputs` outputs.
/// Counts into `fences_enumerated` like `pruned_fences`.
std::vector<fence> pruned_fences_multi(unsigned k, unsigned max_outputs,
                                       core::run_context* ctx = nullptr);

}  // namespace stpes::fence
