#include "fence/dag.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <unordered_set>

namespace stpes::fence {

unsigned dag_topology::num_pi_slots() const {
  unsigned count = 0;
  for (const auto& g : gates) {
    count += (g.fanin[0] == kPiSlot ? 1u : 0u) +
             (g.fanin[1] == kPiSlot ? 1u : 0u);
  }
  return count;
}

std::vector<unsigned> dag_topology::pi_slot_capacity() const {
  // Distinct PI slots reachable from each gate, as bitsets over slot ids
  // assigned in gate order.
  std::vector<std::uint64_t> reach(gates.size(), 0);
  unsigned next_slot = 0;
  for (std::size_t g = 0; g < gates.size(); ++g) {
    for (const int fi : gates[g].fanin) {
      if (fi == kPiSlot) {
        reach[g] |= std::uint64_t{1} << next_slot++;
      } else {
        reach[g] |= reach[static_cast<std::size_t>(fi)];
      }
    }
  }
  std::vector<unsigned> capacity(gates.size());
  for (std::size_t g = 0; g < gates.size(); ++g) {
    capacity[g] = static_cast<unsigned>(std::popcount(reach[g]));
  }
  return capacity;
}

std::vector<unsigned> dag_topology::gates_in_cone() const {
  std::vector<std::uint64_t> reach(gates.size(), 0);
  for (std::size_t g = 0; g < gates.size(); ++g) {
    reach[g] = std::uint64_t{1} << g;
    for (const int fi : gates[g].fanin) {
      if (fi != kPiSlot) {
        reach[g] |= reach[static_cast<std::size_t>(fi)];
      }
    }
  }
  std::vector<unsigned> count(gates.size());
  for (std::size_t g = 0; g < gates.size(); ++g) {
    count[g] = static_cast<unsigned>(std::popcount(reach[g]));
  }
  return count;
}

std::vector<int> dag_topology::roots() const {
  std::vector<bool> has_fanout(gates.size(), false);
  for (const auto& g : gates) {
    for (const int fi : g.fanin) {
      if (fi != kPiSlot) {
        has_fanout[static_cast<std::size_t>(fi)] = true;
      }
    }
  }
  std::vector<int> out;
  for (std::size_t g = 0; g < gates.size(); ++g) {
    if (!has_fanout[g]) {
      out.push_back(static_cast<int>(g));
    }
  }
  return out;
}

std::string dag_topology::signature() const {
  std::string out;
  for (const auto& g : gates) {
    out += std::to_string(g.level) + ':' + std::to_string(g.fanin[0]) + ',' +
           std::to_string(g.fanin[1]) + ';';
  }
  return out;
}

namespace {

struct generator {
  const fence& shape;
  const dag_options& options;
  core::run_context* ctx;
  std::vector<dag_topology>& out;
  std::unordered_set<std::string> seen;

  dag_topology current;
  std::vector<unsigned> level_first;  // first gate index of each level
  mutable std::uint64_t ticks = 0;

  bool limit_reached() const {
    // A cancel is an atomic load (cheap, polled every call); the deadline
    // needs a clock read, so it is polled at a stride.  Without the stride
    // poll a single large fence can overrun the budget by seconds.
    return (options.limit != 0 && out.size() >= options.limit) ||
           (ctx != nullptr &&
            (ctx->cancel_requested() ||
             ((++ticks & 0x3FF) == 0 && ctx->deadline_expired())));
  }

  void pruned() const {
    if (ctx != nullptr) {
      ++ctx->counters.dags_pruned;
    }
  }

  void emit() {
    // At most `max_outputs` gates may dangle (each must later carry an
    // output); optionally restrict to trees.  The top gate always
    // dangles, so max_outputs == 1 reproduces the single-root family.
    const unsigned k = current.num_gates();
    std::vector<unsigned> fanout(k, 0);
    for (const auto& g : current.gates) {
      for (const int fi : g.fanin) {
        if (fi >= 0) {
          ++fanout[static_cast<unsigned>(fi)];
        }
      }
    }
    unsigned dangling = 1;  // the last gate, by construction
    for (unsigned g = 0; g + 1 < k; ++g) {
      if (fanout[g] == 0 && ++dangling > options.max_outputs) {
        pruned();
        return;
      }
      if (!options.allow_shared_gates && fanout[g] > 1) {
        pruned();
        return;
      }
    }
    if (seen.insert(current.signature()).second) {
      out.push_back(current);
      if (ctx != nullptr) {
        ++ctx->counters.dags_generated;
      }
    } else {
      pruned();
    }
  }

  /// Enumerate fanins for gate `g`; gates are processed in index order.
  void assign(unsigned g) {
    if (limit_reached()) {
      return;
    }
    if (g == current.num_gates()) {
      emit();
      return;
    }
    const unsigned level = current.gates[g].level;
    if (level == 0) {
      current.gates[g].fanin = {kPiSlot, kPiSlot};
      assign(g + 1);
      return;
    }
    const int below_begin = static_cast<int>(level_first[level - 1]);
    const int below_end = static_cast<int>(level_first[level]);
    // First fanin: a gate on the level directly below (fence semantics).
    for (int a = below_begin; a < below_end; ++a) {
      // Second fanin: any strictly lower distinct gate, or a PI slot.
      for (int b = kPiSlot; b < below_end; ++b) {
        if (b == a) {
          continue;
        }
        // Pairs with both fanins on the level below would be enumerated
        // twice with roles swapped; keep only b < a.
        if (b >= below_begin && b > a) {
          continue;
        }
        std::array<int, 2> fanin{std::max(a, b), std::min(a, b)};
        // Canonical order among same-level siblings with symmetric shape.
        if (g > 0 && current.gates[g - 1].level == level &&
            fanin < current.gates[g - 1].fanin) {
          continue;
        }
        current.gates[g].fanin = fanin;
        assign(g + 1);
        if (limit_reached()) {
          return;
        }
      }
    }
  }

  void run() {
    const unsigned k = shape.num_nodes();
    current.gates.assign(k, dag_topology::gate{});
    level_first.assign(shape.num_levels() + 1, 0);
    unsigned index = 0;
    for (unsigned l = 0; l < shape.num_levels(); ++l) {
      level_first[l] = index;
      for (unsigned j = 0; j < shape.widths[l]; ++j) {
        current.gates[index].level = l;
        ++index;
      }
    }
    level_first[shape.num_levels()] = index;
    assign(0);
  }
};

}  // namespace

std::vector<dag_topology> generate_dags(const fence& f,
                                        const dag_options& options,
                                        core::run_context* ctx) {
  std::vector<dag_topology> out;
  if (f.num_nodes() == 0) {
    return out;
  }
  generator gen{f, options, ctx, out, {}, {}, {}};
  gen.run();
  return out;
}

std::vector<dag_topology> generate_dags_for_size(unsigned num_gates,
                                                 const dag_options& options) {
  std::vector<dag_topology> out;
  for (const auto& f : pruned_fences(num_gates)) {
    auto dags = generate_dags(f, options);
    out.insert(out.end(), std::make_move_iterator(dags.begin()),
               std::make_move_iterator(dags.end()));
    if (options.limit != 0 && out.size() >= options.limit) {
      out.resize(options.limit);
      break;
    }
  }
  return out;
}

}  // namespace stpes::fence
