#include "fence/fence.hpp"

#include <gtest/gtest.h>

#include <set>

#include "fence/dag.hpp"

namespace {

using stpes::fence::all_fences;
using stpes::fence::dag_options;
using stpes::fence::dag_topology;
using stpes::fence::fence;
using stpes::fence::generate_dags;
using stpes::fence::generate_dags_for_size;
using stpes::fence::is_pruned_valid;
using stpes::fence::kPiSlot;
using stpes::fence::pruned_fences;

TEST(Fence, AllFencesAreCompositions) {
  // Compositions of k: 2^(k-1).
  for (unsigned k = 1; k <= 8; ++k) {
    EXPECT_EQ(all_fences(k).size(), std::size_t{1} << (k - 1));
  }
  EXPECT_TRUE(all_fences(0).empty());
}

TEST(Fence, NodeCountsAndToString) {
  const fence f{{2, 1}};
  EXPECT_EQ(f.num_nodes(), 3u);
  EXPECT_EQ(f.num_levels(), 2u);
  EXPECT_EQ(f.to_string(), "(2,1)");
}

TEST(Fence, PrunedF3MatchesFig2) {
  // Fig. 2(b): of the four fences of F_3, only (2,1) and (1,1,1) survive.
  const auto pruned = pruned_fences(3);
  ASSERT_EQ(pruned.size(), 2u);
  EXPECT_EQ(pruned[0].to_string(), "(1,1,1)");
  EXPECT_EQ(pruned[1].to_string(), "(2,1)");
}

TEST(Fence, PruningRules) {
  EXPECT_FALSE(is_pruned_valid(fence{{3}}));       // top level too wide
  EXPECT_FALSE(is_pruned_valid(fence{{1, 2}}));    // top level too wide
  EXPECT_TRUE(is_pruned_valid(fence{{2, 1}}));
  EXPECT_TRUE(is_pruned_valid(fence{{1, 1, 1}}));
  EXPECT_FALSE(is_pruned_valid(fence{{3, 1}}));    // 3 > 2 * 1 above
  EXPECT_TRUE(is_pruned_valid(fence{{2, 2, 1}}));
  EXPECT_TRUE(is_pruned_valid(fence{{4, 2, 1}}));
  // (5,2,1): 5 <= 2 * (2 + 1) fanin slots above — still valid.
  EXPECT_TRUE(is_pruned_valid(fence{{5, 2, 1}}));
  // (7,2,1): 7 > 2 * (2 + 1) — no way to consume seven nodes above.
  EXPECT_FALSE(is_pruned_valid(fence{{7, 2, 1}}));
}

TEST(Fence, PrunedFencesSubsetOfAll) {
  for (unsigned k = 1; k <= 8; ++k) {
    const auto pruned = pruned_fences(k);
    const auto everything = all_fences(k);
    EXPECT_LE(pruned.size(), everything.size());
    for (const auto& f : pruned) {
      EXPECT_TRUE(is_pruned_valid(f));
      EXPECT_EQ(f.num_nodes(), k);
      EXPECT_EQ(f.widths.back(), 1u);
    }
  }
}

TEST(Dag, F3HasThreeTopologies) {
  // (2,1): the balanced tree; (1,1,1): the chain with a PI second fanin
  // and the chain reusing the bottom gate (Fig. 3).
  const auto dags = generate_dags_for_size(3);
  EXPECT_EQ(dags.size(), 3u);
}

TEST(Dag, SingleGate) {
  const auto dags = generate_dags_for_size(1);
  ASSERT_EQ(dags.size(), 1u);
  EXPECT_EQ(dags[0].num_pi_slots(), 2u);
  EXPECT_EQ(dags[0].gates[0].fanin[0], kPiSlot);
}

TEST(Dag, StructuralInvariants) {
  for (unsigned k = 1; k <= 6; ++k) {
    for (const auto& dag : generate_dags_for_size(k)) {
      ASSERT_EQ(dag.num_gates(), k);
      std::vector<unsigned> fanout(k, 0);
      for (std::size_t g = 0; g < dag.gates.size(); ++g) {
        const auto& gate = dag.gates[g];
        // Fanins strictly below, sorted descending, never twins.
        EXPECT_LT(gate.fanin[0], static_cast<int>(g));
        EXPECT_LT(gate.fanin[1], static_cast<int>(g));
        EXPECT_GE(gate.fanin[0], gate.fanin[1]);
        if (gate.fanin[0] != kPiSlot) {
          EXPECT_NE(gate.fanin[0], gate.fanin[1]);
        }
        bool has_direct_lower = gate.level == 0;
        for (const int fi : gate.fanin) {
          if (fi == kPiSlot) {
            continue;
          }
          ++fanout[static_cast<unsigned>(fi)];
          const auto fl = dag.gates[static_cast<std::size_t>(fi)].level;
          EXPECT_LT(fl, gate.level);
          has_direct_lower |= (fl + 1 == gate.level);
        }
        // Fence semantics: one fanin from the level directly below (level-0
        // gates take only PI slots).
        EXPECT_TRUE(has_direct_lower);
        if (gate.level == 0) {
          EXPECT_EQ(gate.fanin[0], kPiSlot);
          EXPECT_EQ(gate.fanin[1], kPiSlot);
        }
      }
      // Every non-root gate is used.
      for (unsigned g = 0; g + 1 < k; ++g) {
        EXPECT_GE(fanout[g], 1u);
      }
    }
  }
}

TEST(Dag, TreeModeForbidsSharing) {
  dag_options options;
  options.allow_shared_gates = false;
  for (unsigned k = 1; k <= 6; ++k) {
    for (const auto& dag : generate_dags_for_size(k, options)) {
      std::vector<unsigned> fanout(k, 0);
      for (const auto& gate : dag.gates) {
        for (const int fi : gate.fanin) {
          if (fi != kPiSlot) {
            ++fanout[static_cast<unsigned>(fi)];
          }
        }
      }
      for (unsigned g = 0; g + 1 < k; ++g) {
        EXPECT_EQ(fanout[g], 1u);
      }
    }
  }
}

TEST(Dag, TreeCountsAreFewerThanShared) {
  dag_options tree;
  tree.allow_shared_gates = false;
  // k = 2 admits a single topology either way; sharing kicks in at k = 3.
  EXPECT_EQ(generate_dags_for_size(2, tree).size(),
            generate_dags_for_size(2).size());
  for (unsigned k = 3; k <= 6; ++k) {
    EXPECT_LT(generate_dags_for_size(k, tree).size(),
              generate_dags_for_size(k).size());
  }
}

TEST(Dag, SignaturesAreUnique) {
  for (unsigned k = 1; k <= 6; ++k) {
    std::set<std::string> seen;
    for (const auto& dag : generate_dags_for_size(k)) {
      EXPECT_TRUE(seen.insert(dag.signature()).second);
    }
  }
}

TEST(Dag, PiSlotCapacity) {
  // The balanced F3 tree: root capacity 4, leaves capacity 2.
  for (const auto& dag : generate_dags_for_size(3)) {
    const auto capacity = dag.pi_slot_capacity();
    EXPECT_EQ(capacity.back(), dag.num_pi_slots());
  }
}

TEST(Dag, GatesInConeBound) {
  for (unsigned k = 2; k <= 6; ++k) {
    for (const auto& dag : generate_dags_for_size(k)) {
      const auto gates = dag.gates_in_cone();
      EXPECT_EQ(gates.back(), k);  // the root reaches every gate
      const auto capacity = dag.pi_slot_capacity();
      for (std::size_t g = 0; g < gates.size(); ++g) {
        // Any cone's variable reach is bounded by gates + 1.
        EXPECT_LE(capacity[g], 2 * gates[g]);
      }
    }
  }
}

TEST(Dag, LimitIsRespected) {
  dag_options options;
  options.limit = 5;
  EXPECT_LE(generate_dags_for_size(6, options).size(), 5u);
}

}  // namespace
