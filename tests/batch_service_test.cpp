/// \file batch_service_test.cpp
/// \brief The batch service's core contract: parallel results are bitwise
///        identical to the serial NPN-cached path, at any thread count.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/npn_cache.hpp"
#include "service/batch_synthesizer.hpp"
#include "workload/collections.hpp"

namespace {

using stpes::core::engine;
using stpes::core::npn_cached_synthesizer;
using stpes::service::batch_options;
using stpes::service::batch_request;
using stpes::service::batch_synthesizer;
using stpes::tt::truth_table;

/// A deterministic slice of the NPN4 classes.  The representatives are
/// enumerated in increasing numeric order, so the slice is stable across
/// runs.  The count is sized for a single-core CI box — the full 222-class
/// sweep is exercised by `examples/batch_service`.
std::vector<truth_table> npn4_slice(std::size_t count) {
  auto classes = stpes::workload::npn4_classes();
  if (classes.size() > count) {
    classes.resize(count);
  }
  return classes;
}

void expect_identical(const stpes::synth::result& serial,
                      const stpes::synth::result& batch,
                      const truth_table& f) {
  ASSERT_EQ(serial.outcome, batch.outcome) << f.to_hex();
  EXPECT_EQ(serial.optimum_gates, batch.optimum_gates) << f.to_hex();
  ASSERT_EQ(serial.chains.size(), batch.chains.size()) << f.to_hex();
  for (std::size_t j = 0; j < serial.chains.size(); ++j) {
    EXPECT_TRUE(serial.chains[j] == batch.chains[j]) << f.to_hex();
    EXPECT_EQ(batch.chains[j].simulate(), f) << f.to_hex();
  }
}

TEST(BatchService, ParallelEqualsSerialAcrossThreadCounts) {
  // Serial reference pass over the leading NPN4 classes with a small
  // per-class budget; classes that solve comfortably inside it become the
  // determinism workload.  The engines are deterministic and the budget
  // only gates *whether* a search finishes, never what it finds, so the
  // batch passes below rerun the kept classes with a far larger budget and
  // must reproduce the reference bit for bit — at every thread count.
  npn_cached_synthesizer serial{engine::stp, /*timeout_seconds=*/2.0};
  std::vector<truth_table> functions;
  std::vector<stpes::synth::result> reference;
  for (const auto& f : npn4_slice(40)) {
    auto r = serial.synthesize(f);
    if (r.ok() && r.seconds < 0.5) {
      functions.push_back(f);
      reference.push_back(std::move(r));
    }
  }
  // The leading classes are numerically small and sparse; most are easy.
  ASSERT_GE(functions.size(), 15u);

  for (const unsigned threads : {1u, 4u, 8u}) {
    batch_options opts;
    opts.engine = engine::stp;
    opts.timeout_seconds = 120.0;
    opts.num_threads = threads;
    batch_synthesizer service{opts};
    const auto batch = service.run(functions);
    ASSERT_EQ(batch.results.size(), functions.size());
    EXPECT_EQ(batch.unique_classes, functions.size());
    for (std::size_t i = 0; i < functions.size(); ++i) {
      expect_identical(reference[i], batch.results[i], functions[i]);
    }
    // Every class is distinct, so every request is a cold miss.
    EXPECT_EQ(batch.metrics.cache_misses, functions.size());
    EXPECT_EQ(batch.metrics.synth_runs, functions.size());
  }
}

TEST(BatchService, NpnVariantsCollapseToOneSynthesisRun) {
  // Build several members of one NPN class: permuted/complemented
  // variants of 0x8ff8 plus the representative itself, twice.
  const auto f = truth_table::from_hex(4, "0x8ff8");
  std::vector<truth_table> functions{
      f,
      f.swap_variables(0, 3),
      f.flip_variable(1),
      ~f,
      (~f).swap_variables(1, 2),
      f,
  };

  batch_options opts;
  opts.num_threads = 2;
  batch_synthesizer service{opts};
  const auto batch = service.run(functions);

  EXPECT_EQ(batch.unique_classes, 1u);
  EXPECT_EQ(batch.metrics.synth_runs, 1u);
  EXPECT_EQ(batch.metrics.cache_misses, 1u);
  for (std::size_t i = 0; i < functions.size(); ++i) {
    ASSERT_TRUE(batch.results[i].ok());
    EXPECT_EQ(batch.results[i].optimum_gates, 3u);
    for (const auto& c : batch.results[i].chains) {
      EXPECT_EQ(c.simulate(), functions[i]) << functions[i].to_hex();
    }
  }
}

TEST(BatchService, PerRequestEngineOverridesAreHonored) {
  const auto f = truth_table::from_hex(3, "0xe8");
  std::vector<batch_request> requests;
  requests.push_back(batch_request{f, {}, std::nullopt, std::nullopt});
  requests.push_back(batch_request{f, {}, engine::bms, std::nullopt});

  batch_options opts;  // default engine: stp
  opts.num_threads = 2;
  batch_synthesizer service{opts};
  const auto batch = service.run(requests);

  // Same class, different engines: two distinct groups, two runs.
  EXPECT_EQ(batch.unique_classes, 2u);
  EXPECT_EQ(batch.metrics.synth_runs, 2u);
  ASSERT_TRUE(batch.results[0].ok());
  ASSERT_TRUE(batch.results[1].ok());
  EXPECT_EQ(batch.results[0].optimum_gates, batch.results[1].optimum_gates);
  // The STP engine returns the complete optimum set; BMS exactly one.
  EXPECT_GE(batch.results[0].chains.size(), batch.results[1].chains.size());
  EXPECT_EQ(batch.results[1].chains.size(), 1u);
}

TEST(BatchService, LargeFunctionsBypassTheCache) {
  const auto functions = stpes::workload::fdsd_functions(6, 2, /*seed=*/7);
  batch_options opts;
  opts.num_threads = 2;
  opts.timeout_seconds = 120.0;
  batch_synthesizer service{opts};
  const auto batch = service.run(functions);

  EXPECT_EQ(batch.unique_classes, 0u);
  EXPECT_EQ(batch.metrics.bypassed, 2u);
  EXPECT_EQ(batch.cache.size, 0u);
  for (std::size_t i = 0; i < functions.size(); ++i) {
    ASSERT_TRUE(batch.results[i].ok()) << functions[i].to_hex();
    for (const auto& c : batch.results[i].chains) {
      EXPECT_EQ(c.simulate(), functions[i]);
    }
  }
}

TEST(BatchService, MultiOutputRequestsSolveJointlyAndKeyExactly) {
  const auto sum = truth_table::from_hex(3, "0x96");
  const auto carry = truth_table::from_hex(3, "0xe8");
  std::vector<batch_request> requests;
  requests.push_back(
      batch_request{truth_table{}, {sum, carry}, std::nullopt, std::nullopt});
  requests.push_back(batch_request{sum, {}, std::nullopt, std::nullopt});
  requests.push_back(batch_request{carry, {}, std::nullopt, std::nullopt});

  batch_options opts;
  opts.num_threads = 2;
  opts.timeout_seconds = 120.0;
  batch_synthesizer service{opts};
  const auto cold = service.run(requests);

  // Three groups: the joint pair keys on the exact function list, the two
  // single-output requests on their NPN classes.
  EXPECT_EQ(cold.unique_classes, 3u);
  EXPECT_EQ(cold.metrics.synth_runs, 3u);
  EXPECT_EQ(cold.metrics.cache_misses, 3u);

  // The joint chain is the proven full-adder optimum: 5 shared gates,
  // strictly better than the 2 + 4 the separate syntheses need.
  ASSERT_TRUE(cold.results[0].ok());
  EXPECT_EQ(cold.results[0].optimum_gates, 5u);
  ASSERT_FALSE(cold.results[0].chains.empty());
  for (const auto& c : cold.results[0].chains) {
    ASSERT_EQ(c.num_outputs(), 2u);
    EXPECT_EQ(c.simulate_output(0), sum);
    EXPECT_EQ(c.simulate_output(1), carry);
  }
  ASSERT_TRUE(cold.results[1].ok());
  ASSERT_TRUE(cold.results[2].ok());
  EXPECT_EQ(cold.results[1].optimum_gates, 2u);
  EXPECT_EQ(cold.results[2].optimum_gates, 4u);

  // A repeated joint request is an exact-key cache hit: no new synthesis.
  const auto warm = service.run(
      {batch_request{truth_table{}, {sum, carry}, std::nullopt, std::nullopt}});
  EXPECT_EQ(warm.metrics.synth_runs, 3u);
  EXPECT_GE(warm.metrics.cache_hits, 1u);
  ASSERT_TRUE(warm.results[0].ok());
  ASSERT_EQ(warm.results[0].chains.size(), cold.results[0].chains.size());
  for (std::size_t j = 0; j < warm.results[0].chains.size(); ++j) {
    EXPECT_TRUE(warm.results[0].chains[j] == cold.results[0].chains[j]);
  }

  // Output order is part of the key: (carry, sum) is a different function
  // list, so it synthesizes fresh instead of reusing the (sum, carry)
  // entry with scrambled outputs.
  const auto swapped = service.run(
      {batch_request{truth_table{}, {carry, sum}, std::nullopt, std::nullopt}});
  EXPECT_EQ(swapped.metrics.synth_runs, 4u);
  ASSERT_TRUE(swapped.results[0].ok());
  EXPECT_EQ(swapped.results[0].chains.front().simulate_output(0), carry);
  EXPECT_EQ(swapped.results[0].chains.front().simulate_output(1), sum);
}

TEST(BatchService, MultiOutputEntriesPersistAndWarmAcrossInstances) {
  const auto sum = truth_table::from_hex(3, "0x96");
  const auto carry = truth_table::from_hex(3, "0xe8");
  const std::vector<batch_request> requests{
      batch_request{truth_table{}, {sum, carry}, std::nullopt, std::nullopt}};
  const std::string path =
      ::testing::TempDir() + "/stpes_batch_cache_multi_test.txt";
  std::remove(path.c_str());

  batch_options opts;
  opts.num_threads = 2;
  opts.timeout_seconds = 120.0;
  batch_synthesizer first{opts};
  const auto cold = first.run(requests);
  ASSERT_TRUE(cold.results[0].ok());
  EXPECT_EQ(first.persist_cache(path), 1u);

  batch_synthesizer second{opts};
  EXPECT_EQ(second.warm_cache(path), 1u);
  const auto warm = second.run(requests);
  EXPECT_EQ(warm.metrics.synth_runs, 0u);
  EXPECT_EQ(warm.metrics.cache_hits, 1u);
  ASSERT_TRUE(warm.results[0].ok());
  ASSERT_EQ(warm.results[0].chains.size(), cold.results[0].chains.size());
  for (std::size_t j = 0; j < warm.results[0].chains.size(); ++j) {
    EXPECT_TRUE(warm.results[0].chains[j] == cold.results[0].chains[j]);
    EXPECT_EQ(warm.results[0].chains[j].simulate_output(0), sum);
    EXPECT_EQ(warm.results[0].chains[j].simulate_output(1), carry);
  }
  std::remove(path.c_str());
}

TEST(BatchService, CachePersistsAndWarmsAcrossInstances) {
  const auto functions = npn4_slice(8);
  const std::string path =
      ::testing::TempDir() + "/stpes_batch_cache_test.txt";
  std::remove(path.c_str());

  batch_options opts;
  opts.num_threads = 2;
  opts.timeout_seconds = 120.0;
  batch_synthesizer first{opts};
  const auto cold = first.run(functions);
  EXPECT_EQ(cold.metrics.synth_runs, functions.size());
  EXPECT_EQ(first.persist_cache(path), functions.size());

  batch_synthesizer second{opts};
  EXPECT_EQ(second.warm_cache(path), functions.size());
  const auto warm = second.run(functions);
  // Everything is served from the warmed cache: no synthesis at all.
  EXPECT_EQ(warm.metrics.synth_runs, 0u);
  EXPECT_EQ(warm.metrics.cache_hits, functions.size());
  for (std::size_t i = 0; i < functions.size(); ++i) {
    expect_identical(cold.results[i], warm.results[i], functions[i]);
  }
  std::remove(path.c_str());
}

}  // namespace
