/// \file protocol_fuzz_test.cpp
/// \brief Deterministic fuzzing of the stpes-serve line protocol.
///
/// Three layers, bottom up: `read_limited_line` must never buffer more
/// than its limit no matter the byte soup; `parse_synth_args` must either
/// return a valid request or throw `protocol_error` (no other exception
/// type, no crash); and a full `synthesis_server` session fed thousands
/// of hostile lines — truncated verbs, mutated SYNTH bodies, oversized
/// tokens, raw binary — must keep the framing invariant (every reply line
/// starts with a known head) and stay responsive: a PING after the
/// garbage still answers `OK pong`.
///
/// All inputs come from the repo's own `util::rng` with fixed seeds, so a
/// failure reproduces exactly; there is no flakiness budget.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "server/protocol.hpp"
#include "server/server.hpp"
#include "util/rng.hpp"

namespace {

using stpes::server::line_status;
using stpes::server::parse_synth_args;
using stpes::server::protocol_error;
using stpes::server::read_limited_line;
using stpes::server::request_limits;
using stpes::server::server_options;
using stpes::server::synthesis_server;
using stpes::server::tokenize;
using stpes::util::rng;

/// One random token: printable-biased, occasionally raw bytes, length
/// skewed small but with a long tail (up to ~200 bytes).
std::string fuzz_token(rng& r) {
  const std::uint64_t len = 1 + r.next_below(r.next_below(3) == 0 ? 200 : 12);
  std::string tok;
  tok.reserve(len);
  for (std::uint64_t i = 0; i < len; ++i) {
    const std::uint64_t roll = r.next_below(10);
    char c = 0;
    if (roll < 6) {
      c = static_cast<char>("0123456789abcdefx.-+,"[r.next_below(21)]);
    } else if (roll < 9) {
      c = static_cast<char>(' ' + r.next_below(95));  // any printable
    } else {
      c = static_cast<char>(1 + r.next_below(255));  // raw, never NUL
    }
    if (c == '\n' || c == '\r') {
      c = '?';
    }
    tok += c;
  }
  return tok;
}

/// The verbs the session dispatcher knows, minus the ones whose OK reply
/// carries a free-form payload (STATS, FAILPOINT LIST — those would make
/// the framing check below ambiguous) and the file verbs (SAVE, LOAD,
/// RELOAD — a fuzzed path must not touch the filesystem).  QUIT/SHUTDOWN
/// are appended by the test itself, never generated mid-stream.
const char* const kVerbs[] = {"SYNTH", "BATCH", "END", "CANCEL", "PING"};

/// One hostile request line.
std::string fuzz_line(rng& r) {
  const std::uint64_t shape = r.next_below(10);
  if (shape < 2) {
    // Pure token soup, no recognizable verb.
    std::string line;
    const std::uint64_t n = r.next_below(5);
    for (std::uint64_t i = 0; i < n; ++i) {
      line += fuzz_token(r);
      line += ' ';
    }
    return line;
  }
  std::string verb = kVerbs[r.next_below(std::size(kVerbs))];
  if (shape < 4 && !verb.empty()) {
    // Truncate or extend the verb so it no longer dispatches.
    if (r.next_below(2) == 0) {
      verb.resize(1 + r.next_below(verb.size()));
    } else {
      verb += fuzz_token(r);
    }
  }
  std::string line = verb;
  const std::uint64_t args = r.next_below(5);
  for (std::uint64_t i = 0; i < args; ++i) {
    line += ' ';
    line += fuzz_token(r);
  }
  return line;
}

TEST(ProtocolFuzz, ReadLimitedLineNeverExceedsLimit) {
  rng r{2026'08'07ull};
  for (int round = 0; round < 200; ++round) {
    // Byte soup with newlines sprinkled in, including runs far beyond the
    // limit, so every line-status path is exercised.
    std::string soup;
    const std::uint64_t bytes = 64 + r.next_below(4096);
    for (std::uint64_t i = 0; i < bytes; ++i) {
      const std::uint64_t roll = r.next_below(40);
      soup += roll == 0 ? '\n'
              : roll == 1
                  ? '\r'
                  : static_cast<char>(1 + r.next_below(255));
    }
    const std::size_t limit = 1 + r.next_below(128);
    std::istringstream in{soup};
    std::string line;
    std::size_t reads = 0;
    for (;;) {
      const line_status st = read_limited_line(in, line, limit);
      if (st == line_status::eof) {
        break;
      }
      // The core guarantee: the buffer never grows past the limit, even
      // when the input line does.
      ASSERT_LE(line.size(), limit);
      // An oversized line is dropped wholesale, never returned truncated.
      if (st == line_status::too_long) {
        ASSERT_TRUE(line.empty());
      }
      ASSERT_LT(++reads, soup.size() + 2) << "reader failed to make progress";
    }
  }
}

TEST(ProtocolFuzz, ParseSynthArgsReturnsValidOrThrowsProtocolError) {
  rng r{0xF00DF00Dull};
  const request_limits limits;
  std::size_t accepted = 0;
  for (int round = 0; round < 20000; ++round) {
    std::vector<std::string> tokens;
    const std::uint64_t n = r.next_below(6);
    for (std::uint64_t i = 0; i < n; ++i) {
      // Bias toward almost-valid requests so the deep checks (hex length
      // vs arity, timeout sign, output-list shape) get hit, not just the
      // token-count gate.
      switch (r.next_below(7)) {
        case 0: tokens.push_back("stp"); break;
        case 1: tokens.push_back("bench"); break;
        case 2: tokens.push_back(std::to_string(r.next_below(40))); break;
        case 3: tokens.push_back("8"); break;
        case 4: {
          // A comma list of plausible hex pieces, sometimes degenerate
          // (leading/trailing/double commas, over-long lists).
          std::string list;
          const std::uint64_t pieces = r.next_below(12);
          for (std::uint64_t p = 0; p < pieces; ++p) {
            if (p > 0 || r.next_below(8) == 0) {
              list += ',';
            }
            const char* const kPieces[] = {"8", "6", "96", "e8", "0x8", ""};
            list += kPieces[r.next_below(std::size(kPieces))];
          }
          tokens.push_back(list.empty() ? "," : list);
          break;
        }
        default: tokens.push_back(fuzz_token(r)); break;
      }
    }
    try {
      const auto args = parse_synth_args(tokens, limits);
      // Whatever survives parsing must respect the wire limits.
      EXPECT_LE(args.function.num_vars(), limits.max_vars);
      EXPECT_GE(args.num_outputs(), 1u);
      EXPECT_LE(args.num_outputs(), limits.max_outputs);
      for (const auto& f : args.functions) {
        // Every function of a surviving list shares one arity under the
        // cap (a mixed-arity list must have been rejected).
        EXPECT_EQ(f.num_vars(), args.functions.front().num_vars());
        EXPECT_LE(f.num_vars(), limits.max_vars);
      }
      if (args.timeout_seconds) {
        EXPECT_GE(*args.timeout_seconds, 0.0);
      }
      ++accepted;
    } catch (const protocol_error&) {
      // The one sanctioned rejection path.
    }
    // Any other exception type escapes and fails the test.
  }
  // The generator is valid-biased; if nothing ever parses the deep
  // validation paths were not actually reached.
  EXPECT_GT(accepted, 0u);
}

TEST(ProtocolFuzz, TokenizeRoundTripsArbitraryBytes) {
  rng r{42};
  for (int round = 0; round < 2000; ++round) {
    const std::string line = fuzz_line(r);
    const auto tokens = tokenize(line);
    for (const auto& tok : tokens) {
      EXPECT_FALSE(tok.empty());
      EXPECT_EQ(tok.find(' '), std::string::npos);
    }
  }
}

TEST(ProtocolFuzz, SessionSurvivesGarbageAndStaysResponsive) {
  server_options opts;
  opts.default_timeout_seconds = 30.0;
  opts.num_threads = 1;
  synthesis_server server{opts};

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    rng r{seed * 0x9E3779B97F4A7C15ull};
    std::string input;
    for (int i = 0; i < 400; ++i) {
      input += fuzz_line(r);
      input += '\n';
    }
    // A fuzzed BATCH may still be consuming body lines; END closes it (a
    // stray END outside a batch just earns its own ERR).  Then the
    // liveness probe: parse errors must poison only their own request.
    input += "END\nPING\nQUIT\n";

    std::istringstream in{input};
    std::ostringstream out;
    server.serve(in, out);

    const std::string transcript = out.str();
    std::istringstream replies{transcript};
    std::string line;
    std::size_t lines = 0;
    while (std::getline(replies, line)) {
      ++lines;
      // Framing invariant: with payload-carrying verbs excluded from the
      // generator, every reply line opens with a known head.  `chain`,
      // `mchain`, and `RESULT` appear when a mutated SYNTH/BATCH (possibly
      // with a comma list) accidentally parses.
      const bool known_head =
          line.rfind("OK", 0) == 0 || line.rfind("ERR", 0) == 0 ||
          line.rfind("BUSY", 0) == 0 || line.rfind("chain", 0) == 0 ||
          line.rfind("mchain", 0) == 0 || line.rfind("RESULT", 0) == 0;
      ASSERT_TRUE(known_head) << "seed " << seed << ": bad reply line: "
                              << line;
    }
    ASSERT_GE(lines, 2u) << "seed " << seed;
    // The transcript must end with the probe replies, in order.
    ASSERT_NE(transcript.find("OK pong\nOK bye\n"), std::string::npos)
        << "seed " << seed << ": session died before the liveness probe";
  }
}

/// A read source that hands the parser at most `chunk` bytes per
/// underflow — TCP's worst-case segmentation (one byte per segment, and
/// splits straddling every token and line boundary), deterministically.
class trickle_buf : public std::streambuf {
public:
  trickle_buf(std::string data, std::size_t chunk)
      : data_(std::move(data)), chunk_(chunk) {}

protected:
  int_type underflow() override {
    if (pos_ >= data_.size()) {
      return traits_type::eof();
    }
    const std::size_t n = std::min(chunk_, data_.size() - pos_);
    char* const base = data_.data() + pos_;
    setg(base, base, base + n);
    pos_ += n;
    return traits_type::to_int_type(*base);
  }

private:
  std::string data_;
  std::size_t chunk_;
  std::size_t pos_ = 0;
};

/// Blanks the nondeterministic reply fields (wall-clock seconds, request
/// ids) so transcripts from different runs compare structurally.
std::string normalize_transcript(const std::string& transcript) {
  std::istringstream is{transcript};
  std::string line;
  std::string out;
  while (std::getline(is, line)) {
    std::istringstream ls{line};
    std::string tok;
    bool first = true;
    while (ls >> tok) {
      if (tok.rfind("id=", 0) == 0) {
        tok = "id=_";
      } else if (tok.find('.') != std::string::npos &&
                 tok.find_first_not_of("0123456789.e+-") ==
                     std::string::npos) {
        tok = "_";  // a wall-clock seconds field
      }
      if (!first) {
        out += ' ';
      }
      out += tok;
      first = false;
    }
    out += '\n';
  }
  return out;
}

TEST(ProtocolFuzz, SegmentedDeliveryParsesIdenticallyToWholeLines) {
  // A session touching every framing shape: single- and multi-output
  // SYNTH, a BATCH body with its END, interleaved PINGs.
  const std::string script =
      "PING\n"
      "SYNTH stp 3 e8\n"
      "SYNTH stp 2 8\n"
      "BATCH\n"
      "stp 3 96\n"
      "stp 2 6\n"
      "END\n"
      "SYNTH stp 2 8,6\n"
      "PING\n"
      "QUIT\n";

  const auto run_with_chunk = [&script](std::size_t chunk) {
    server_options opts;
    opts.default_timeout_seconds = 30.0;
    opts.num_threads = 1;
    synthesis_server server{opts};
    std::ostringstream out;
    if (chunk == 0) {
      std::istringstream in{script};
      server.serve(in, out);
    } else {
      trickle_buf buf{script, chunk};
      std::istream in{&buf};
      server.serve(in, out);
    }
    return normalize_transcript(out.str());
  };

  const auto reference = run_with_chunk(0);
  ASSERT_NE(reference.find("OK pong\nOK bye\n"), std::string::npos)
      << reference;
  for (const std::size_t chunk : {1u, 2u, 3u, 7u}) {
    EXPECT_EQ(run_with_chunk(chunk), reference)
        << "segmentation at " << chunk << " bytes changed the parse";
  }
}

// SWEEP is deliberately absent from `kVerbs`: its argument is a filesystem
// path, and a randomly generated token could name a real file (or a
// device).  The SWEEP-specific fuzzing below keeps every path either
// provably nonexistent or inside the test's own TempDir, so the fuzzer
// still never touches foreign filesystem state.

TEST(ProtocolFuzz, SweepArgumentSoupIsRejectedWithoutReachingTheJobLayer) {
  server_options opts;
  opts.default_timeout_seconds = 30.0;
  opts.num_threads = 1;
  synthesis_server server{opts};

  rng r{0x53574545'50ull};  // "SWEEP"
  std::string input;
  std::size_t requests = 0;
  for (int i = 0; i < 300; ++i, ++requests) {
    switch (r.next_below(5)) {
      case 0:
        input += "SWEEP";  // missing path
        break;
      case 1:
        // Nonexistent path plus fuzzed trailing arguments (timeout and
        // prover slots get token soup).
        input += "SWEEP /nonexistent/fuzz/" + fuzz_token(r) + " " +
                 fuzz_token(r) + " " + fuzz_token(r);
        break;
      case 2:
        input += "SWEEP /nonexistent/fuzz/" + fuzz_token(r);
        break;
      case 3: {
        // Path long enough to trip read_limited_line: the whole line is
        // dropped before SWEEP ever dispatches.
        std::string path(request_limits{}.max_line_bytes + 64, 'p');
        input += "SWEEP /nonexistent/" + path;
        break;
      }
      default:
        // Too many arguments.
        input += "SWEEP a b c d e";
        break;
    }
    input += '\n';
  }
  input += "PING\nQUIT\n";

  std::istringstream in{input};
  std::ostringstream out;
  server.serve(in, out);

  const std::string transcript = out.str();
  std::istringstream replies{transcript};
  std::string line;
  std::size_t err_lines = 0;
  while (std::getline(replies, line)) {
    if (line.rfind("ERR", 0) == 0) {
      ++err_lines;
    } else {
      ASSERT_TRUE(line == "OK pong" || line == "OK bye") << line;
    }
  }
  // Every fuzzed SWEEP earned exactly one ERR (none silently vanished,
  // none produced an OK), and the probe still answered.
  EXPECT_EQ(err_lines, requests);
  ASSERT_NE(transcript.find("OK pong\nOK bye\n"), std::string::npos);
  // Nothing oversized, malformed, or unreadable was ever admitted as a
  // job: only the well-formed nonexistent-path lines were (they fail at
  // file-open inside the job), so no sweep may have merged anything.
  EXPECT_EQ(server.synthesizer().current_metrics().stage.sweep_merged_nodes,
            0u);
}

TEST(ProtocolFuzz, SweepsInterleavedWithCancelsKeepTheFramingInvariant) {
  // A real (tiny) benchmark in TempDir so some SWEEPs genuinely run; the
  // protocol is synchronous per session, so the interleaved CANCELs land
  // between jobs and must each earn their own OK/ERR without disturbing
  // framing.
  const std::string path = ::testing::TempDir() + "protocol_fuzz_sweep.aag";
  {
    std::ofstream os{path};
    os << "aag 4 2 0 1 2\n2\n4\n8\n6 4 2\n8 5 3\n";  // !(a&b) & ... = nor-ish
  }

  server_options opts;
  opts.default_timeout_seconds = 30.0;
  opts.num_threads = 1;
  synthesis_server server{opts};

  rng r{0xCA4CE1ull};
  std::string input;
  for (int i = 0; i < 120; ++i) {
    switch (r.next_below(4)) {
      case 0:
        input += "SWEEP " + path;
        break;
      case 1:
        input += "SWEEP " + path + " 5 " +
                 (r.next_below(2) == 0 ? "cdcl" : "allsat");
        break;
      case 2:
        input += "CANCEL";  // broadcast; nothing in flight is fine
        break;
      default:
        input += "CANCEL " + std::to_string(r.next_below(1000));
        break;
    }
    input += '\n';
  }
  input += "PING\nQUIT\n";

  std::istringstream in{input};
  std::ostringstream out;
  server.serve(in, out);

  const std::string transcript = out.str();
  std::istringstream replies{transcript};
  std::string line;
  while (std::getline(replies, line)) {
    const bool known_head = line.rfind("OK swept ", 0) == 0 ||
                            line.rfind("OK cancelled ", 0) == 0 ||
                            line.rfind("ERR", 0) == 0 || line == "OK pong" ||
                            line == "OK bye";
    ASSERT_TRUE(known_head) << line;
  }
  ASSERT_NE(transcript.find("OK pong\nOK bye\n"), std::string::npos);
  EXPECT_GT(server.counters().sweeps, 0u);
  std::remove(path.c_str());
}

}  // namespace
