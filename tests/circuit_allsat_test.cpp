#include "allsat/circuit_allsat.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace {

using stpes::allsat::solutions_to_function;
using stpes::allsat::solve_all;
using stpes::allsat::verify_chain;
using stpes::chain::boolean_chain;
using stpes::tt::truth_table;

boolean_chain example7_chain() {
  boolean_chain c{4};
  const auto x4 = c.add_step(0x8, 0, 1);
  const auto x5 = c.add_step(0x6, 2, 3);
  const auto x6 = c.add_step(0xE, x4, x5);
  c.set_output(x6);
  return c;
}

boolean_chain random_chain(unsigned num_inputs, unsigned num_steps,
                           stpes::util::rng& rng) {
  boolean_chain c{num_inputs};
  for (unsigned j = 0; j < num_steps; ++j) {
    const auto limit = num_inputs + j;
    const auto f0 = static_cast<std::uint32_t>(rng.next_below(limit));
    auto f1 = static_cast<std::uint32_t>(rng.next_below(limit));
    const auto op = 1 + rng.next_below(14);  // skip const0/const1 LUTs
    c.add_step(static_cast<unsigned>(op), f0, f1);
  }
  c.set_output(num_inputs + num_steps - 1, rng.next_bool());
  return c;
}

TEST(CircuitAllSat, Example8SolutionsSimulateToTarget) {
  // Section III-C / Example 8: the AllSAT solutions of the Example-7 chain
  // must simulate to f_s == 0x8ff8.
  const auto c = example7_chain();
  const auto result = solve_all(c);
  EXPECT_TRUE(result.satisfiable);
  EXPECT_FALSE(result.solutions.empty());
  EXPECT_EQ(solutions_to_function(4, result.solutions),
            truth_table::from_hex(4, "0x8ff8"));
}

TEST(CircuitAllSat, TargetZeroGivesComplement) {
  const auto c = example7_chain();
  const auto result = solve_all(c, /*target=*/false);
  EXPECT_EQ(solutions_to_function(4, result.solutions),
            ~truth_table::from_hex(4, "0x8ff8"));
}

TEST(CircuitAllSat, SolutionsAreSoundIndividually) {
  const auto c = example7_chain();
  const auto f = c.simulate();
  for (const auto& s : solve_all(c).solutions) {
    // Every minterm covered by a solution pattern satisfies the circuit.
    for (std::uint64_t t = 0; t < 16; ++t) {
      if (s.matches(t)) {
        EXPECT_TRUE(f.get_bit(t)) << s.to_string() << " minterm " << t;
      }
    }
  }
}

TEST(CircuitAllSat, UnsatisfiableNetwork) {
  boolean_chain c{2};
  const auto s = c.add_step(0x0, 0, 1);  // constant-0 LUT
  c.set_output(s);
  const auto result = solve_all(c);
  EXPECT_FALSE(result.satisfiable);
  EXPECT_TRUE(result.solutions.empty());
}

TEST(CircuitAllSat, ComplementedOutputHandled) {
  boolean_chain c{2};
  const auto s = c.add_step(0x8, 0, 1);
  c.set_output(s, /*complemented=*/true);  // NAND
  const auto result = solve_all(c);
  EXPECT_EQ(solutions_to_function(2, result.solutions),
            ~(truth_table::nth_var(2, 0) & truth_table::nth_var(2, 1)));
}

TEST(CircuitAllSat, DontCareInputsStayUnassigned) {
  // The output is input x0; the step on (x0, x1) is outside the output
  // cone, so its value is never pinned and x1 remains '-'.
  boolean_chain c{2};
  c.add_step(0x8, 0, 1);
  c.set_output(0);
  const auto result = solve_all(c);
  ASSERT_EQ(result.solutions.size(), 1u);
  EXPECT_EQ(result.solutions[0].values[0], 1);
  EXPECT_EQ(result.solutions[0].values[1], -1);
  EXPECT_EQ(result.solutions[0].coverage(), 2u);
  EXPECT_EQ(result.solutions[0].to_string(), "(1,-)");
}

TEST(CircuitAllSat, ReconvergentFanoutIsConsistent) {
  // g = x0 & x1, f = g ^ (g | x2): reconvergence through two paths.
  boolean_chain c{3};
  const auto g = c.add_step(0x8, 0, 1);
  const auto h = c.add_step(0xE, g, 2);
  const auto f = c.add_step(0x6, g, h);
  c.set_output(f);
  const auto result = solve_all(c);
  EXPECT_EQ(solutions_to_function(3, result.solutions), c.simulate());
}

TEST(CircuitAllSat, RandomNetworksMatchSimulation) {
  stpes::util::rng rng{2024};
  for (int iteration = 0; iteration < 60; ++iteration) {
    const unsigned n = 2 + static_cast<unsigned>(rng.next_below(5));
    const unsigned steps = 1 + static_cast<unsigned>(rng.next_below(6));
    const auto c = random_chain(n, steps, rng);
    const auto expected = c.simulate();
    const auto result = solve_all(c);
    EXPECT_EQ(solutions_to_function(n, result.solutions), expected)
        << c.to_string();
    EXPECT_EQ(result.satisfiable, !expected.is_const0());
    EXPECT_TRUE(verify_chain(c, expected));
    EXPECT_FALSE(verify_chain(c, ~expected));
  }
}

TEST(CircuitAllSat, VerifyChainRejectsWrongSpecification) {
  const auto c = example7_chain();
  EXPECT_TRUE(verify_chain(c, truth_table::from_hex(4, "0x8ff8")));
  EXPECT_FALSE(verify_chain(c, truth_table::from_hex(4, "0x8ff9")));
}

TEST(CircuitAllSat, CoverageAccounting) {
  stpes::allsat::partial_assignment p;
  p.values = {1, -1, 0, -1};
  EXPECT_EQ(p.coverage(), 4u);
  EXPECT_TRUE(p.matches(0b0001));
  EXPECT_TRUE(p.matches(0b1011));
  EXPECT_FALSE(p.matches(0b0101));
}

}  // namespace
