// Multi-output exact synthesis, end to end over the engine tier: ground
// truth on the full adder (the canonical shared-logic example: the
// 2-output optimum is strictly smaller than the two single-output optima
// combined), the degenerate-output pre-pass, and union-support lifting.

#include <gtest/gtest.h>

#include <vector>

#include "core/exact_synthesis.hpp"
#include "synth/spec.hpp"
#include "tt/truth_table.hpp"

namespace {

using stpes::core::engine;
using stpes::core::exact_synthesis;
using stpes::tt::truth_table;

// sum(a,b,c) = a ^ b ^ c, carry(a,b,c) = majority(a,b,c).
truth_table adder_sum() { return truth_table::from_hex(3, "96"); }
truth_table adder_carry() { return truth_table::from_hex(3, "e8"); }

class MultiOutputEngines : public ::testing::TestWithParam<engine> {};

TEST_P(MultiOutputEngines, FullAdderSharesLogicAcrossOutputs) {
  const std::vector<truth_table> fs{adder_sum(), adder_carry()};
  const auto r = exact_synthesis(fs, GetParam());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.optimum_gates, 5u);  // Knuth: the full adder takes 5 gates
  ASSERT_FALSE(r.chains.empty());
  const auto& c = r.best();
  ASSERT_EQ(c.num_outputs(), 2u);
  EXPECT_TRUE(c.is_well_formed());
  EXPECT_EQ(c.num_steps(), 5u);
  EXPECT_EQ(r.best_output(0), adder_sum());
  EXPECT_EQ(r.best_output(1), adder_carry());
}

TEST_P(MultiOutputEngines, JointOptimumBeatsPerOutputSynthesis) {
  const auto which = GetParam();
  const auto sum_alone = exact_synthesis(adder_sum(), which);
  const auto carry_alone = exact_synthesis(adder_carry(), which);
  ASSERT_TRUE(sum_alone.ok());
  ASSERT_TRUE(carry_alone.ok());
  EXPECT_EQ(sum_alone.optimum_gates, 2u);
  EXPECT_EQ(carry_alone.optimum_gates, 4u);

  const auto joint =
      exact_synthesis({adder_sum(), adder_carry()}, which);
  ASSERT_TRUE(joint.ok());
  EXPECT_LT(joint.optimum_gates,
            sum_alone.optimum_gates + carry_alone.optimum_gates);
}

TEST_P(MultiOutputEngines, DisjointSupportsNeedMultipleRoots) {
  // f0 = x0 & x1, f1 = x2 ^ x3: no shared logic is possible, so the
  // 2-output optimum is simply both single-output chains side by side —
  // which exercises the multi-root topology family (one dangling gate
  // per output).
  const auto f0 = truth_table::from_hex(4, "8888");
  const auto f1 = truth_table::from_hex(4, "6666");
  const auto r = exact_synthesis({f0, f1}, GetParam());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.optimum_gates, 2u);
  EXPECT_EQ(r.best_output(0), f0);
  EXPECT_EQ(r.best_output(1), f1);
}

TEST_P(MultiOutputEngines, DegenerateOutputsNeverReachTheSearch) {
  // Mixed list: a constant, a literal, one real function, its complement
  // and an exact duplicate.  Only one function enters the search; the
  // constant costs one extra shared step.
  const auto f = adder_carry();
  const std::vector<truth_table> fs{
      truth_table::constant(3, false), truth_table::nth_var(3, 1), f, ~f, f};
  const auto r = exact_synthesis(fs, GetParam());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.optimum_gates, 5u);  // 4 for majority + 1 shared const step
  ASSERT_EQ(r.best().num_outputs(), 5u);
  EXPECT_TRUE(r.best_output(0).is_const0());
  EXPECT_EQ(r.best_output(1), truth_table::nth_var(3, 1));
  EXPECT_EQ(r.best_output(2), f);
  EXPECT_EQ(r.best_output(3), ~f);
  EXPECT_EQ(r.best_output(4), f);
}

TEST_P(MultiOutputEngines, UnionSupportLiftRestoresOriginalVariables) {
  // Both outputs ignore x1 (of 4 inputs): the engines synthesize over the
  // 3-variable union support and lift back.
  const auto a = truth_table::nth_var(4, 0);
  const auto c = truth_table::nth_var(4, 2);
  const auto d = truth_table::nth_var(4, 3);
  const auto f0 = (a ^ c) ^ d;
  const auto f1 = (a & c) | (c & d) | (a & d);
  const auto r = exact_synthesis({f0, f1}, GetParam());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.optimum_gates, 5u);
  const auto& chain = r.best();
  EXPECT_EQ(chain.num_inputs(), 4u);
  EXPECT_TRUE(chain.is_well_formed());
  EXPECT_EQ(r.best_output(0), f0);
  EXPECT_EQ(r.best_output(1), f1);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, MultiOutputEngines,
                         ::testing::Values(engine::stp, engine::bms,
                                           engine::fen, engine::cegar,
                                           engine::portfolio),
                         [](const auto& info) {
                           return stpes::core::to_string(info.param);
                         });

TEST(MultiOutputPrePass, AllDegenerateListsSkipTheEnginesEntirely) {
  const std::vector<truth_table> fs{truth_table::constant(2, true),
                                    truth_table::nth_var(2, 0),
                                    ~truth_table::nth_var(2, 1)};
  const auto r = exact_synthesis(fs, engine::stp);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.optimum_gates, 1u);  // just the shared constant step
  ASSERT_EQ(r.best().num_outputs(), 3u);
  EXPECT_TRUE(r.best_output(0).is_const1());
  EXPECT_EQ(r.best_output(1), truth_table::nth_var(2, 0));
  EXPECT_EQ(r.best_output(2), ~truth_table::nth_var(2, 1));
}

TEST(MultiOutputPrePass, SingleOutputResultsAreUnchanged) {
  // The m = 1 path must stay bit-identical to the historical behavior,
  // including the degenerate chains.
  const auto c1 = exact_synthesis(truth_table::constant(3, true));
  ASSERT_TRUE(c1.ok());
  EXPECT_EQ(c1.optimum_gates, 1u);
  EXPECT_EQ(c1.best().steps().front().op, 0xFu);
  EXPECT_FALSE(c1.best().output_complemented());

  const auto lit = exact_synthesis(~truth_table::nth_var(3, 2));
  ASSERT_TRUE(lit.ok());
  EXPECT_EQ(lit.optimum_gates, 0u);
  EXPECT_EQ(lit.best().num_steps(), 0u);
  EXPECT_TRUE(lit.best().output_complemented());
}

TEST(MultiOutputSpec, AnalyzeOutputsClassifiesEveryKind) {
  using stpes::synth::analyze_outputs;
  using stpes::synth::output_plan;
  const auto f = adder_sum();
  const std::vector<truth_table> fs{f, ~f, truth_table::constant(3, true),
                                    ~truth_table::nth_var(3, 0),
                                    adder_carry()};
  const auto plan = analyze_outputs(fs);
  ASSERT_EQ(plan.distinct.size(), 2u);
  EXPECT_EQ(plan.distinct[0], f);
  EXPECT_EQ(plan.distinct[1], adder_carry());
  EXPECT_TRUE(plan.needs_constant);
  ASSERT_EQ(plan.outputs.size(), 5u);
  EXPECT_EQ(plan.outputs[0].what, output_plan::kind::synth);
  EXPECT_FALSE(plan.outputs[0].complemented);
  EXPECT_EQ(plan.outputs[1].what, output_plan::kind::synth);
  EXPECT_TRUE(plan.outputs[1].complemented);
  EXPECT_EQ(plan.outputs[1].synth_index, plan.outputs[0].synth_index);
  EXPECT_EQ(plan.outputs[2].what, output_plan::kind::constant);
  EXPECT_TRUE(plan.outputs[2].complemented);
  EXPECT_EQ(plan.outputs[3].what, output_plan::kind::literal);
  EXPECT_EQ(plan.outputs[3].var, 0u);
  EXPECT_TRUE(plan.outputs[3].complemented);
  EXPECT_EQ(plan.outputs[4].what, output_plan::kind::synth);
  EXPECT_EQ(plan.outputs[4].synth_index, 1u);
}

TEST(MultiOutputSpec, VectorLowerBoundDominatesPerFunctionBounds) {
  using stpes::synth::trivial_lower_bound;
  const std::vector<truth_table> two{adder_sum(), adder_carry()};
  EXPECT_EQ(trivial_lower_bound(two), 2u);
  const std::vector<truth_table> one_wide{
      truth_table::from_hex(4, "6996")};  // parity-4: support 4
  EXPECT_EQ(trivial_lower_bound(one_wide), 3u);
}

TEST(MultiOutputSpec, StpEnumeratesAllOptimaWithExactOutputs) {
  // The STP engine keeps its all-optima semantics in multi-output mode:
  // every reported chain must be distinct, 5 steps, and realize both
  // adder outputs.
  const auto r = exact_synthesis({adder_sum(), adder_carry()}, engine::stp);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.enumeration_complete);
  ASSERT_FALSE(r.chains.empty());
  for (const auto& c : r.chains) {
    EXPECT_EQ(c.num_steps(), 5u);
    ASSERT_EQ(c.num_outputs(), 2u);
    EXPECT_EQ(c.simulate_output(0), adder_sum());
    EXPECT_EQ(c.simulate_output(1), adder_carry());
  }
  for (std::size_t i = 0; i < r.chains.size(); ++i) {
    for (std::size_t j = i + 1; j < r.chains.size(); ++j) {
      EXPECT_FALSE(r.chains[i] == r.chains[j]);
    }
  }
}

}  // namespace
